#ifndef IDLOG_CHOICE_CHOICE_SEMANTICS_H_
#define IDLOG_CHOICE_CHOICE_SEMANTICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "ast/ast.h"
#include "choice/choice_program.h"
#include "common/limits.h"
#include "common/status.h"
#include "core/answer_enumerator.h"
#include "storage/database.h"

namespace idlog {

/// How EvaluateChoiceProgram picks the functional subset of each
/// extChoice relation.
struct ChoicePolicy {
  enum class Kind { kFirst, kRandom };
  Kind kind = Kind::kFirst;
  uint64_t seed = 0;
};

/// One intended model of a DATALOG^C program under the KN88 semantics:
///  1. translate to P^C with extChoice predicates,
///  2. compute the (perfect) model of P^C,
///  3. per extChoice_i, select a functional subset w.r.t. X -> Y
///     (one row per distinct X value, chosen by `policy`),
///  4. recompute the model with the selections fixed as facts.
///
/// Returns a Database holding every IDB relation of the final model
/// (including the selected ext_choice_i relations, for inspection).
/// Fails if the program violates (C1)/(C2).
/// With `governor` set, both fixpoint phases run governed (deadline,
/// budgets, cancellation). Not owned; null means ungoverned.
Result<Database> EvaluateChoiceProgram(const Program& program,
                                       const Database& database,
                                       const ChoicePolicy& policy,
                                       ResourceGovernor* governor = nullptr);

/// Exhaustively enumerates the possible answers of `query_pred` over
/// all functional-subset selections. Exponential; for small instances
/// (tests, bench E5 ground truth). `max_models` is a deprecated shim —
/// a governor tuple budget when `governor` is null; ignored otherwise.
Result<AnswerSet> EnumerateChoiceAnswers(const Program& program,
                                         const Database& database,
                                         const std::string& query_pred,
                                         uint64_t max_models = 1000000,
                                         ResourceGovernor* governor =
                                             nullptr);

}  // namespace idlog

#endif  // IDLOG_CHOICE_CHOICE_SEMANTICS_H_
