#include "choice/choice_program.h"

#include <set>

#include "analysis/dependency_graph.h"
#include "ast/program_builder.h"

namespace idlog {

namespace {

// Replaces the choice literal of `occ` in `clause` with an ordinary
// extChoice atom over the choice variables.
Clause ReplaceChoiceLiteral(const Clause& clause,
                            const ChoiceOccurrence& occ) {
  Clause out = clause;
  std::vector<Term> args;
  for (const std::string& v : occ.domain_vars) args.push_back(Term::Var(v));
  for (const std::string& v : occ.range_vars) args.push_back(Term::Var(v));
  out.body[static_cast<size_t>(occ.literal_index)] =
      Literal::Pos(Atom::Ordinary(occ.ext_pred, std::move(args)));
  return out;
}

// The choice-clause extChoice_i(X,Y) :- body-without-choice.
Clause MakeChoiceClause(const Clause& clause, const ChoiceOccurrence& occ) {
  Clause out;
  std::vector<Term> args;
  for (const std::string& v : occ.domain_vars) args.push_back(Term::Var(v));
  for (const std::string& v : occ.range_vars) args.push_back(Term::Var(v));
  out.head = Atom::Ordinary(occ.ext_pred, std::move(args));
  for (size_t i = 0; i < clause.body.size(); ++i) {
    if (static_cast<int>(i) == occ.literal_index) continue;
    out.body.push_back(clause.body[i]);
  }
  return out;
}

}  // namespace

Result<std::vector<ChoiceOccurrence>> AnalyzeChoiceProgram(
    const Program& program) {
  std::vector<ChoiceOccurrence> occurrences;

  for (size_t c = 0; c < program.clauses.size(); ++c) {
    const Clause& clause = program.clauses[c];
    int found = 0;
    for (size_t l = 0; l < clause.body.size(); ++l) {
      const Literal& lit = clause.body[l];
      if (lit.atom.kind != AtomKind::kChoice) continue;
      ++found;
      if (found > 1) {
        return Status::InvalidArgument(
            "condition (C1) violated: clause defining '" +
            clause.head.predicate + "' contains more than one choice");
      }
      ChoiceOccurrence occ;
      occ.clause_index = static_cast<int>(c);
      occ.literal_index = static_cast<int>(l);
      occ.ext_pred = "ext_choice_" + std::to_string(occurrences.size());

      // Collect positively bound variables of the clause.
      std::set<std::string> positive_vars;
      for (size_t j = 0; j < clause.body.size(); ++j) {
        const Literal& other = clause.body[j];
        if (other.negated || other.atom.kind == AtomKind::kBuiltin ||
            other.atom.kind == AtomKind::kChoice) {
          continue;
        }
        for (const Term& t : other.atom.terms) {
          if (t.is_variable()) positive_vars.insert(t.var_name());
        }
      }

      std::set<std::string> seen;
      auto take = [&](const Term& t,
                      std::vector<std::string>* out) -> Status {
        if (!t.is_variable()) {
          return Status::InvalidArgument(
              "choice arguments must be variables");
        }
        if (!seen.insert(t.var_name()).second) {
          return Status::InvalidArgument(
              "choice arguments must be distinct variables");
        }
        if (positive_vars.count(t.var_name()) == 0) {
          return Status::UnsafeProgram(
              "choice variable '" + t.var_name() +
              "' is not positively bound in the clause body");
        }
        out->push_back(t.var_name());
        return Status::OK();
      };
      for (int i = 0; i < lit.atom.choice_split; ++i) {
        IDLOG_RETURN_NOT_OK(take(lit.atom.terms[static_cast<size_t>(i)],
                                 &occ.domain_vars));
      }
      for (size_t i = static_cast<size_t>(lit.atom.choice_split);
           i < lit.atom.terms.size(); ++i) {
        IDLOG_RETURN_NOT_OK(take(lit.atom.terms[i], &occ.range_vars));
      }
      occurrences.push_back(std::move(occ));
    }
  }

  // (C2): no choice clause may be related to the head predicate of
  // another choice clause.
  if (occurrences.size() > 1) {
    DependencyGraph graph(program);
    for (const ChoiceOccurrence& a : occurrences) {
      const std::string& head_a =
          program.clauses[static_cast<size_t>(a.clause_index)]
              .head.predicate;
      std::set<std::string> related = graph.ReachableFrom(head_a);
      for (const ChoiceOccurrence& b : occurrences) {
        if (a.clause_index == b.clause_index) continue;
        const std::string& head_b =
            program.clauses[static_cast<size_t>(b.clause_index)]
                .head.predicate;
        if (related.count(head_b) > 0) {
          return Status::InvalidArgument(
              "condition (C2) violated: choice clause defining '" + head_b +
              "' is related to choice output '" + head_a + "'");
        }
      }
    }
  }
  return occurrences;
}

Program BuildPc(const Program& program,
                const std::vector<ChoiceOccurrence>& occurrences) {
  Program out = BuildFinalProgram(program, occurrences);
  for (const ChoiceOccurrence& occ : occurrences) {
    out.clauses.push_back(MakeChoiceClause(
        program.clauses[static_cast<size_t>(occ.clause_index)], occ));
  }
  // Type table: register the extChoice predicates and re-infer.
  InferPredicateTypes(&out);
  return out;
}

Program BuildFinalProgram(const Program& program,
                          const std::vector<ChoiceOccurrence>& occurrences) {
  Program out;
  out.predicates = program.predicates;
  out.clauses = program.clauses;
  for (const ChoiceOccurrence& occ : occurrences) {
    out.clauses[static_cast<size_t>(occ.clause_index)] = ReplaceChoiceLiteral(
        program.clauses[static_cast<size_t>(occ.clause_index)], occ);
    out.GetOrAddPredicate(
        occ.ext_pred,
        static_cast<int>(occ.domain_vars.size() + occ.range_vars.size()));
  }
  InferPredicateTypes(&out);
  return out;
}

}  // namespace idlog
