#include "choice/choice_to_idlog.h"

#include "ast/program_builder.h"
#include "choice/choice_program.h"

namespace idlog {

Result<Program> TranslateChoiceToIdlog(const Program& choice_program) {
  IDLOG_ASSIGN_OR_RETURN(std::vector<ChoiceOccurrence> occurrences,
                         AnalyzeChoiceProgram(choice_program));

  Program out;
  out.predicates = choice_program.predicates;
  out.clauses = choice_program.clauses;

  for (size_t i = 0; i < occurrences.size(); ++i) {
    const ChoiceOccurrence& occ = occurrences[i];
    const Clause& original =
        choice_program.clauses[static_cast<size_t>(occ.clause_index)];
    const std::string body_pred = "choice_body_" + std::to_string(i);
    const std::string chosen_pred = "chosen_" + std::to_string(i);

    std::vector<Term> xy_terms;
    for (const std::string& v : occ.domain_vars) {
      xy_terms.push_back(Term::Var(v));
    }
    for (const std::string& v : occ.range_vars) {
      xy_terms.push_back(Term::Var(v));
    }
    const int xy_arity = static_cast<int>(xy_terms.size());

    // choice_body_i(X, Y) :- body-without-choice.
    Clause body_clause;
    body_clause.head = Atom::Ordinary(body_pred, xy_terms);
    for (size_t l = 0; l < original.body.size(); ++l) {
      if (static_cast<int>(l) == occ.literal_index) continue;
      body_clause.body.push_back(original.body[l]);
    }
    out.clauses.push_back(std::move(body_clause));
    out.GetOrAddPredicate(body_pred, xy_arity);

    // chosen_i(X, Y) :- choice_body_i[sX](X, Y, 0).
    std::vector<int> group;
    for (size_t g = 0; g < occ.domain_vars.size(); ++g) {
      group.push_back(static_cast<int>(g));
    }
    std::vector<Term> id_args = xy_terms;
    id_args.push_back(Term::Number(0));
    Clause chosen_clause;
    chosen_clause.head = Atom::Ordinary(chosen_pred, xy_terms);
    chosen_clause.body.push_back(
        Literal::Pos(Atom::Id(body_pred, group, std::move(id_args))));
    out.clauses.push_back(std::move(chosen_clause));
    out.GetOrAddPredicate(chosen_pred, xy_arity);

    // Replace the choice literal in the original clause.
    Clause& rewritten =
        out.clauses[static_cast<size_t>(occ.clause_index)];
    rewritten.body[static_cast<size_t>(occ.literal_index)] =
        Literal::Pos(Atom::Ordinary(chosen_pred, xy_terms));
  }

  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&out));
  return out;
}

}  // namespace idlog
