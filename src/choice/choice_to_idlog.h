#ifndef IDLOG_CHOICE_CHOICE_TO_IDLOG_H_
#define IDLOG_CHOICE_CHOICE_TO_IDLOG_H_

#include "ast/ast.h"
#include "common/status.h"

namespace idlog {

/// The constructive side of Theorem 2: translates a DATALOG^C program
/// satisfying (C1)/(C2) into a q-equivalent stratified IDLOG program.
/// For the i-th choice occurrence `choice((X),(Y))` in clause r:
///
///   choice_body_i(X, Y) :- body(r) minus the choice literal.
///   chosen_i(X, Y)      :- choice_body_i[sX](X, Y, 0).
///   r'                   = r with the choice literal replaced by
///                          chosen_i(X, Y).
///
/// where sX groups by the X columns, so tid 0 picks exactly one Y per
/// X value — precisely a functional subset w.r.t. X -> Y that covers
/// every X group. The result spans four strata (inputs, choice_body,
/// chosen via the ID-edge, and the rewritten rules).
Result<Program> TranslateChoiceToIdlog(const Program& choice_program);

}  // namespace idlog

#endif  // IDLOG_CHOICE_CHOICE_TO_IDLOG_H_
