#ifndef IDLOG_CHOICE_CHOICE_PROGRAM_H_
#define IDLOG_CHOICE_CHOICE_PROGRAM_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace idlog {

/// One occurrence of a choice operator in a DATALOG^C program
/// (Krishnamurthy–Naqvi, Section 3.2.2): in clause `clause_index`,
/// literal `literal_index` is `choice((domain...), (range...))`.
struct ChoiceOccurrence {
  int clause_index = 0;
  int literal_index = 0;
  std::vector<std::string> domain_vars;  ///< The X part (may be empty).
  std::vector<std::string> range_vars;   ///< The Y part (non-empty).
  std::string ext_pred;                  ///< Generated extChoice_i name.
};

/// Validates a DATALOG^C program against the paper's restrictions and
/// returns its choice occurrences:
///  (C1) every clause contains at most one choice operator;
///  (C2) no clause containing a choice operator is related to the head
///       predicate of another clause containing a choice operator;
/// plus: choice arguments must be distinct variables that occur in
/// positive non-choice body literals of the same clause.
Result<std::vector<ChoiceOccurrence>> AnalyzeChoiceProgram(
    const Program& program);

/// The translated program P^C of Section 3.2.2: each choice literal is
/// replaced by `extChoice_i(X, Y)` and the choice-clause
/// `extChoice_i(X, Y) :- body-without-choice` is appended.
Program BuildPc(const Program& program,
                const std::vector<ChoiceOccurrence>& occurrences);

/// Like BuildPc but without the choice-clauses: the original clauses
/// with choice literals replaced by extChoice references (used when the
/// extChoice relations are supplied as EDB facts).
Program BuildFinalProgram(const Program& program,
                          const std::vector<ChoiceOccurrence>& occurrences);

}  // namespace idlog

#endif  // IDLOG_CHOICE_CHOICE_PROGRAM_H_
