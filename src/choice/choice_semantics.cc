#include "choice/choice_semantics.h"

#include <algorithm>
#include <map>
#include <random>

#include "analysis/classification.h"
#include "analysis/dependency_graph.h"
#include "eval/engine_impl.h"
#include "obs/trace.h"
#include "storage/tid_assigner.h"

namespace idlog {

namespace {

// The choice entry points accept a null governor, so the trace sink
// (which rides on the governor) needs a null-safe accessor.
TraceSink* TraceOf(ResourceGovernor* governor) {
  return governor != nullptr ? governor->trace_sink() : nullptr;
}

// The groups of one extChoice relation: row tuples bucketed by their
// domain-column values, in first-seen order.
std::vector<std::vector<Tuple>> GroupByDomain(const Relation& rel,
                                              size_t domain_arity) {
  std::vector<int> cols;
  for (size_t i = 0; i < domain_arity; ++i) cols.push_back(static_cast<int>(i));
  std::vector<std::vector<Tuple>> groups;
  std::map<Tuple, size_t> index;
  for (const Tuple& t : rel.tuples()) {
    Tuple key = ProjectTuple(t, cols);
    auto [it, inserted] = index.emplace(std::move(key), groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(t);
  }
  return groups;
}

// Computes the P^C model and returns, per occurrence, its groups.
struct PcAnalysis {
  std::vector<ChoiceOccurrence> occurrences;
  Program pc;
  std::vector<RelationType> ext_types;
  std::vector<std::vector<std::vector<Tuple>>> groups_per_occurrence;
};

Result<PcAnalysis> AnalyzePc(const Program& program,
                             const Database& database,
                             ResourceGovernor* governor) {
  TraceSpan span(TraceOf(governor), "choice phase 1 (P^C analysis)",
                 "choice");
  PcAnalysis out;
  IDLOG_ASSIGN_OR_RETURN(out.occurrences, AnalyzeChoiceProgram(program));
  span.AddArg(TraceArg::Num("occurrences", out.occurrences.size()));
  out.pc = BuildPc(program, out.occurrences);

  // Phase 1 only needs the extChoice relations; evaluating the rest of
  // P^C against the *unrestricted* extChoice relations can explode
  // combinatorially (e.g. a k-way join over k choices). Restrict to the
  // clauses the choice-clauses depend on.
  Program restricted;
  restricted.predicates = out.pc.predicates;
  {
    DependencyGraph graph(out.pc);
    std::set<std::string> needed;
    for (const ChoiceOccurrence& occ : out.occurrences) {
      std::set<std::string> r = graph.ReachableFrom(occ.ext_pred);
      needed.insert(r.begin(), r.end());
    }
    for (const Clause& clause : out.pc.clauses) {
      if (needed.count(clause.head.predicate) > 0) {
        restricted.clauses.push_back(clause);
      }
    }
  }

  EngineImpl engine(&restricted, &database);
  engine.set_governor(governor);
  engine.set_trace_sink(TraceOf(governor));
  IDLOG_RETURN_NOT_OK(engine.Prepare());
  IdentityTidAssigner identity;
  IDLOG_RETURN_NOT_OK(engine.Evaluate(&identity));

  for (const ChoiceOccurrence& occ : out.occurrences) {
    IDLOG_ASSIGN_OR_RETURN(const Relation* rel,
                           engine.RelationOf(occ.ext_pred));
    out.ext_types.push_back(rel->type());
    out.groups_per_occurrence.push_back(
        GroupByDomain(*rel, occ.domain_vars.size()));
  }
  return out;
}

// Builds the final model given one selected row per group and returns a
// Database with the IDB relations (and the selections).
Result<Database> EvaluateWithSelections(
    const Program& program, const Database& database, const PcAnalysis& pc,
    const std::vector<std::vector<size_t>>& selection,
    ResourceGovernor* governor) {
  TraceSpan span(TraceOf(governor), "choice phase 2 (final model)",
                 "choice");
  Database working = database;
  for (size_t i = 0; i < pc.occurrences.size(); ++i) {
    const ChoiceOccurrence& occ = pc.occurrences[i];
    IDLOG_RETURN_NOT_OK(
        working.CreateRelation(occ.ext_pred, pc.ext_types[i]));
    const auto& groups = pc.groups_per_occurrence[i];
    for (size_t g = 0; g < groups.size(); ++g) {
      IDLOG_RETURN_NOT_OK(
          working.AddTuple(occ.ext_pred, groups[g][selection[i][g]]));
    }
  }

  Program final_program = BuildFinalProgram(program, pc.occurrences);
  EngineImpl engine(&final_program, &working);
  engine.set_governor(governor);
  engine.set_trace_sink(TraceOf(governor));
  IDLOG_RETURN_NOT_OK(engine.Prepare());
  IdentityTidAssigner identity;
  IDLOG_RETURN_NOT_OK(engine.Evaluate(&identity));

  Database result(database.symbols());
  PredicateClassification classes = ClassifyPredicates(final_program);
  for (const std::string& pred : classes.output) {
    IDLOG_ASSIGN_OR_RETURN(const Relation* rel, engine.RelationOf(pred));
    IDLOG_RETURN_NOT_OK(result.CreateRelation(pred, rel->type()));
    for (const Tuple& t : rel->tuples()) {
      IDLOG_RETURN_NOT_OK(result.AddTuple(pred, t));
    }
  }
  // Include the selections for inspection.
  for (size_t i = 0; i < pc.occurrences.size(); ++i) {
    const ChoiceOccurrence& occ = pc.occurrences[i];
    if (result.HasRelation(occ.ext_pred)) continue;
    IDLOG_RETURN_NOT_OK(
        result.CreateRelation(occ.ext_pred, pc.ext_types[i]));
    IDLOG_ASSIGN_OR_RETURN(const Relation* sel, working.Get(occ.ext_pred));
    for (const Tuple& t : sel->tuples()) {
      IDLOG_RETURN_NOT_OK(result.AddTuple(occ.ext_pred, t));
    }
  }
  return result;
}

}  // namespace

Result<Database> EvaluateChoiceProgram(const Program& program,
                                       const Database& database,
                                       const ChoicePolicy& policy,
                                       ResourceGovernor* governor) {
  IDLOG_ASSIGN_OR_RETURN(PcAnalysis pc,
                         AnalyzePc(program, database, governor));
  std::mt19937_64 rng(policy.seed);
  std::vector<std::vector<size_t>> selection(pc.occurrences.size());
  for (size_t i = 0; i < pc.occurrences.size(); ++i) {
    const auto& groups = pc.groups_per_occurrence[i];
    selection[i].resize(groups.size(), 0);
    if (policy.kind == ChoicePolicy::Kind::kRandom) {
      for (size_t g = 0; g < groups.size(); ++g) {
        std::uniform_int_distribution<size_t> dist(0, groups[g].size() - 1);
        selection[i][g] = dist(rng);
      }
    }
  }
  return EvaluateWithSelections(program, database, pc, selection, governor);
}

Result<AnswerSet> EnumerateChoiceAnswers(const Program& program,
                                         const Database& database,
                                         const std::string& query_pred,
                                         uint64_t max_models,
                                         ResourceGovernor* governor) {
  // Legacy max_models as a governor tuple budget: one "tuple" per
  // evaluated selection. The inner fixpoints are only governed when an
  // external governor is supplied — the legacy budget counts
  // selections, not the tuples each model derives.
  ResourceGovernor local;
  ArmLegacyTupleCap(&local, max_models);
  ResourceGovernor* gov = governor != nullptr ? governor : &local;
  gov->set_scope("choice enumeration");

  IDLOG_ASSIGN_OR_RETURN(PcAnalysis pc,
                         AnalyzePc(program, database, governor));

  // Flattened odometer over every group of every occurrence.
  std::vector<size_t> radix;
  for (const auto& groups : pc.groups_per_occurrence) {
    for (const auto& g : groups) radix.push_back(g.size());
  }
  std::vector<size_t> digits(radix.size(), 0);

  AnswerSet result;
  while (true) {
    // Each evaluated selection charges the tuple budget (the legacy
    // max_models cap when no external governor is installed).
    IDLOG_RETURN_NOT_OK(gov->OnDerived(1, 0));
    // Unflatten digits into per-occurrence selections.
    std::vector<std::vector<size_t>> selection(pc.occurrences.size());
    size_t pos = 0;
    for (size_t i = 0; i < pc.occurrences.size(); ++i) {
      selection[i].assign(pc.groups_per_occurrence[i].size(), 0);
      for (size_t g = 0; g < selection[i].size(); ++g) {
        selection[i][g] = digits[pos++];
      }
    }
    IDLOG_ASSIGN_OR_RETURN(
        Database model,
        EvaluateWithSelections(program, database, pc, selection, governor));
    ++result.assignments_tried;
    Result<const Relation*> rel = model.Get(query_pred);
    if (rel.ok()) {
      result.answers.insert((*rel)->SortedTuples());
    } else {
      result.answers.insert({});
    }

    // Odometer increment; full wrap-around means we are done.
    bool advanced = false;
    for (size_t i = digits.size(); i > 0;) {
      --i;
      if (digits[i] + 1 < radix[i]) {
        ++digits[i];
        std::fill(digits.begin() + static_cast<long>(i) + 1, digits.end(),
                  size_t{0});
        advanced = true;
        break;
      }
      digits[i] = 0;
    }
    if (!advanced) return result;
  }
}

}  // namespace idlog
