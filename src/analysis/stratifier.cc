#include "analysis/stratifier.h"

#include <algorithm>
#include <functional>

namespace idlog {

namespace {

// Iterative Tarjan SCC over the dependency graph.
struct SccResult {
  std::vector<int> component_of;  // node -> component id
  int num_components = 0;
};

SccResult ComputeScc(const DependencyGraph& graph) {
  const int n = static_cast<int>(graph.nodes().size());
  SccResult result;
  result.component_of.assign(static_cast<size_t>(n), -1);

  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int node;
    size_t edge;
  };

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[static_cast<size_t>(root)] = lowlink[static_cast<size_t>(root)] =
        next_index++;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto& succ = graph.Successors(frame.node);
      if (frame.edge < succ.size()) {
        int w = succ[frame.edge].first;
        ++frame.edge;
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = lowlink[static_cast<size_t>(w)] =
              next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(frame.node)] =
              std::min(lowlink[static_cast<size_t>(frame.node)],
                       index[static_cast<size_t>(w)]);
        }
      } else {
        int v = frame.node;
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().node;
          lowlink[static_cast<size_t>(parent)] =
              std::min(lowlink[static_cast<size_t>(parent)],
                       lowlink[static_cast<size_t>(v)]);
        }
        if (lowlink[static_cast<size_t>(v)] ==
            index[static_cast<size_t>(v)]) {
          int comp = result.num_components++;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            result.component_of[static_cast<size_t>(w)] = comp;
            if (w == v) break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

Result<Stratification> Stratify(const Program& program) {
  DependencyGraph graph(program);
  SccResult scc = ComputeScc(graph);
  const int n = static_cast<int>(graph.nodes().size());

  // Reject negative/ID edges inside an SCC.
  for (const DepEdge& e : graph.edges()) {
    if (e.kind == DepKind::kPositive) continue;
    int from = graph.NodeIndex(e.from);
    int to = graph.NodeIndex(e.to);
    if (scc.component_of[static_cast<size_t>(from)] ==
        scc.component_of[static_cast<size_t>(to)]) {
      const char* what = e.kind == DepKind::kNegative ? "negation" : "ID-literal";
      return Status::NotStratified(
          std::string("recursion through ") + what + " between '" + e.from +
          "' and '" + e.to + "'");
    }
  }

  // Longest-path strata over the component DAG: positive edges demand
  // stratum(to) >= stratum(from); negative/ID edges demand strictly
  // greater. Relax to fixpoint (the DAG guarantees termination).
  std::vector<int> comp_stratum(static_cast<size_t>(scc.num_components), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DepEdge& e : graph.edges()) {
      int from = scc.component_of[static_cast<size_t>(graph.NodeIndex(e.from))];
      int to = scc.component_of[static_cast<size_t>(graph.NodeIndex(e.to))];
      int need = comp_stratum[static_cast<size_t>(from)] +
                 (e.kind == DepKind::kPositive ? 0 : 1);
      if (comp_stratum[static_cast<size_t>(to)] < need) {
        comp_stratum[static_cast<size_t>(to)] = need;
        changed = true;
      }
    }
  }

  Stratification strat;
  int max_stratum = 0;
  for (int v = 0; v < n; ++v) {
    int s = comp_stratum[static_cast<size_t>(scc.component_of[static_cast<size_t>(v)])];
    strat.stratum_of[graph.nodes()[static_cast<size_t>(v)]] = s;
    max_stratum = std::max(max_stratum, s);
  }
  strat.num_strata = max_stratum + 1;

  strat.clauses_by_stratum.assign(static_cast<size_t>(strat.num_strata), {});
  for (size_t i = 0; i < program.clauses.size(); ++i) {
    int s = strat.StratumOf(program.clauses[i].head.predicate);
    strat.clauses_by_stratum[static_cast<size_t>(s)].push_back(
        static_cast<int>(i));
  }
  return strat;
}

}  // namespace idlog
