#ifndef IDLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
#define IDLOG_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace idlog {

/// How a clause head depends on a body predicate.
enum class DepKind : uint8_t {
  kPositive,  ///< Positive ordinary literal: same or lower stratum.
  kNegative,  ///< Negated literal: strictly lower stratum.
  kId,        ///< ID-literal p[s]: p must be complete, strictly lower
              ///< stratum (the ID-relation is a function of the whole
              ///< relation, like negation it cannot be inside recursion).
};

struct DepEdge {
  std::string from;  ///< Body (base) predicate.
  std::string to;    ///< Head predicate.
  DepKind kind;
};

/// The predicate dependency graph of a program. Nodes are ordinary
/// predicate names; built-ins and choice atoms contribute no nodes.
class DependencyGraph {
 public:
  /// Builds the graph for `program`.
  explicit DependencyGraph(const Program& program);

  const std::vector<std::string>& nodes() const { return nodes_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  /// Outgoing adjacency: node -> (successor index, kind) pairs.
  const std::vector<std::pair<int, DepKind>>& Successors(int node) const {
    return adj_[node];
  }

  int NodeIndex(const std::string& name) const;

  /// Predicates transitively needed to compute `output` (the paper's
  /// program portion P/q): all predicates from which `output` is
  /// reachable, plus `output` itself. Unknown name yields just {}.
  std::set<std::string> ReachableFrom(const std::string& output) const;

 private:
  std::vector<std::string> nodes_;
  std::map<std::string, int> index_;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<std::pair<int, DepKind>>> adj_;
};

/// Returns the clauses of `program` related to output predicate `q`
/// (the paper's P/q): every clause whose head predicate `q` transitively
/// depends on, including the clauses defining `q`.
std::vector<Clause> ProgramPortion(const Program& program,
                                   const std::string& q);

}  // namespace idlog

#endif  // IDLOG_ANALYSIS_DEPENDENCY_GRAPH_H_
