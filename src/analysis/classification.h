#ifndef IDLOG_ANALYSIS_CLASSIFICATION_H_
#define IDLOG_ANALYSIS_CLASSIFICATION_H_

#include <set>
#include <string>

#include "ast/ast.h"

namespace idlog {

/// Input/output predicate classification (Section 3.1): an *input*
/// predicate never appears in a clause head but appears (directly or as
/// an ID-version) in a body; an *output* predicate appears in a head.
/// Built-ins are neither.
struct PredicateClassification {
  std::set<std::string> input;
  std::set<std::string> output;

  bool IsInput(const std::string& p) const { return input.count(p) > 0; }
  bool IsOutput(const std::string& p) const { return output.count(p) > 0; }
};

PredicateClassification ClassifyPredicates(const Program& program);

}  // namespace idlog

#endif  // IDLOG_ANALYSIS_CLASSIFICATION_H_
