#include "analysis/tid_bounds.h"

#include <algorithm>
#include <optional>
#include <set>

namespace idlog {

namespace {

// The tightest bound this clause places on variable `var` through a
// positive comparison against a constant; nullopt if unconstrained.
std::optional<int64_t> VariableBound(const Clause& clause,
                                     const std::string& var) {
  std::optional<int64_t> best;
  auto consider = [&best](int64_t bound) {
    if (bound < 0) bound = 0;
    if (!best.has_value() || bound < *best) best = bound;
  };
  for (const Literal& lit : clause.body) {
    if (lit.negated || lit.atom.kind != AtomKind::kBuiltin) continue;
    const Atom& a = lit.atom;
    if (a.terms.size() != 2) continue;
    const Term& lhs = a.terms[0];
    const Term& rhs = a.terms[1];
    bool lhs_is_var = lhs.is_variable() && lhs.var_name() == var;
    bool rhs_is_var = rhs.is_variable() && rhs.var_name() == var;
    auto const_num = [](const Term& t) -> std::optional<int64_t> {
      if (t.is_constant() && t.value().is_number()) return t.value().number();
      return std::nullopt;
    };
    switch (a.builtin) {
      case BuiltinKind::kLt:  // T < k  |  k < T (no bound)
        if (lhs_is_var) {
          if (auto k = const_num(rhs)) consider(*k);
        }
        break;
      case BuiltinKind::kLe:  // T <= k
        if (lhs_is_var) {
          if (auto k = const_num(rhs)) consider(*k + 1);
        }
        break;
      case BuiltinKind::kGt:  // k > T
        if (rhs_is_var) {
          if (auto k = const_num(lhs)) consider(*k);
        }
        break;
      case BuiltinKind::kGe:  // k >= T
        if (rhs_is_var) {
          if (auto k = const_num(lhs)) consider(*k + 1);
        }
        break;
      case BuiltinKind::kEq:  // T = c or c = T
        if (lhs_is_var) {
          if (auto k = const_num(rhs)) consider(*k + 1);
        } else if (rhs_is_var) {
          if (auto k = const_num(lhs)) consider(*k + 1);
        }
        break;
      default:
        break;
    }
  }
  return best;
}

}  // namespace

std::map<TidBoundKey, int64_t> ComputeTidBounds(const Program& program) {
  std::map<TidBoundKey, int64_t> bounds;
  std::set<TidBoundKey> unbounded;

  for (const Clause& clause : program.clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind != AtomKind::kId) continue;
      TidBoundKey key{lit.atom.predicate, lit.atom.group};
      if (unbounded.count(key) > 0) continue;

      const Term& tid = lit.atom.terms.back();
      std::optional<int64_t> need;
      if (tid.is_constant()) {
        if (tid.value().is_number()) {
          need = std::max<int64_t>(tid.value().number() + 1, 0);
        }
      } else {
        std::optional<int64_t> var_bound =
            VariableBound(clause, tid.var_name());
        if (var_bound.has_value()) need = var_bound;
      }

      if (!need.has_value()) {
        unbounded.insert(key);
        bounds.erase(key);
        continue;
      }
      auto it = bounds.find(key);
      if (it == bounds.end()) {
        bounds.emplace(std::move(key), *need);
      } else {
        it->second = std::max(it->second, *need);
      }
    }
  }
  return bounds;
}

}  // namespace idlog
