#include "analysis/classification.h"

namespace idlog {

PredicateClassification ClassifyPredicates(const Program& program) {
  PredicateClassification result;
  std::set<std::string> in_body;
  for (const Clause& clause : program.clauses) {
    result.output.insert(clause.head.predicate);
    for (const Literal& lit : clause.body) {
      const Atom& a = lit.atom;
      if (a.kind == AtomKind::kOrdinary || a.kind == AtomKind::kId) {
        in_body.insert(a.predicate);
      }
    }
  }
  for (const std::string& p : in_body) {
    if (result.output.count(p) == 0) result.input.insert(p);
  }
  return result;
}

}  // namespace idlog
