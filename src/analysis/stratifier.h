#ifndef IDLOG_ANALYSIS_STRATIFIER_H_
#define IDLOG_ANALYSIS_STRATIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "ast/ast.h"
#include "common/status.h"

namespace idlog {

/// The result of stratifying a program: a stratum number per predicate
/// such that positive dependencies never decrease the stratum and
/// negative / ID dependencies strictly increase it. Stratum 0 holds the
/// extensional (input) predicates and anything defined without negation
/// or ID-literals over IDB predicates.
struct Stratification {
  std::map<std::string, int> stratum_of;
  int num_strata = 0;

  int StratumOf(const std::string& pred) const {
    auto it = stratum_of.find(pred);
    return it == stratum_of.end() ? 0 : it->second;
  }

  /// Clause indexes of the program grouped by the head's stratum.
  std::vector<std::vector<int>> clauses_by_stratum;
};

/// Stratifies `program`. Fails with NotStratified if a negative or ID
/// edge occurs inside a strongly connected component (Theorem 1 covers
/// exactly the stratified programs; we reject the rest).
Result<Stratification> Stratify(const Program& program);

}  // namespace idlog

#endif  // IDLOG_ANALYSIS_STRATIFIER_H_
