#include "analysis/database_program.h"

#include <set>

#include "analysis/classification.h"
#include "analysis/dependency_graph.h"
#include "ast/program_builder.h"

namespace idlog {

Result<Program> BuildDatabaseProgram(const Program& program,
                                     const std::string& output_pred,
                                     const Database& database) {
  Program out;
  out.predicates = program.predicates;
  out.clauses = ProgramPortion(program, output_pred);
  if (out.clauses.empty()) {
    return Status::NotFound("no clauses related to '" + output_pred + "'");
  }

  // Which input predicates does P/q read (directly or as ID-versions)?
  std::set<std::string> inputs_used;
  PredicateClassification classes = ClassifyPredicates(program);
  for (const Clause& clause : out.clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind != AtomKind::kOrdinary &&
          lit.atom.kind != AtomKind::kId) {
        continue;
      }
      if (classes.IsInput(lit.atom.predicate)) {
        inputs_used.insert(lit.atom.predicate);
      }
    }
  }

  // Inline their contents as fact clauses.
  for (const std::string& pred : inputs_used) {
    if (pred == "udom") continue;  // handled below
    Result<const Relation*> rel = database.Get(pred);
    if (!rel.ok()) continue;  // absent input: stays empty
    for (const Tuple& t : (*rel)->tuples()) {
      Clause fact;
      std::vector<Term> args;
      for (const Value& v : t) args.push_back(Term::Const(v));
      fact.head = Atom::Ordinary(pred, std::move(args));
      out.clauses.push_back(std::move(fact));
    }
  }

  // The explicit udom(d_i) facts.
  bool uses_udom = inputs_used.count("udom") > 0;
  if (uses_udom) {
    for (SymbolId id : database.u_domain()) {
      Clause fact;
      fact.head =
          Atom::Ordinary("udom", {Term::Const(Value::Symbol(id))});
      out.clauses.push_back(std::move(fact));
    }
  }

  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&out));
  return out;
}

}  // namespace idlog
