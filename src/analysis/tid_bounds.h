#ifndef IDLOG_ANALYSIS_TID_BOUNDS_H_
#define IDLOG_ANALYSIS_TID_BOUNDS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ast/ast.h"

namespace idlog {

/// Key identifying one ID-relation: (base predicate, grouping columns).
using TidBoundKey = std::pair<std::string, std::vector<int>>;

/// Static tid-bound analysis (the optimization of footnotes 6/7): if
/// every occurrence of `p[s]` in the program constrains its tid
/// argument — a constant tid, or a positive comparison against a
/// constant (`T < k`, `T <= k`, `T = c`, and mirrored forms) in the
/// same clause body — then only tuples with tid below the collected
/// maximum ever matter, and the engine can truncate materialization.
///
/// Returns a map from ID-relation key to the materialization bound.
/// Keys with any unconstrained occurrence are absent (materialize in
/// full). The analysis is a sound under-approximation: indirect bounds
/// (through arithmetic) are not chased.
std::map<TidBoundKey, int64_t> ComputeTidBounds(const Program& program);

}  // namespace idlog

#endif  // IDLOG_ANALYSIS_TID_BOUNDS_H_
