#include "analysis/dependency_graph.h"

#include <algorithm>

namespace idlog {

DependencyGraph::DependencyGraph(const Program& program) {
  auto add_node = [&](const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    int idx = static_cast<int>(nodes_.size());
    nodes_.push_back(name);
    index_[name] = idx;
    adj_.emplace_back();
    return idx;
  };

  for (const PredicateInfo& info : program.predicates) add_node(info.name);

  for (const Clause& clause : program.clauses) {
    int head = add_node(clause.head.predicate);
    for (const Literal& lit : clause.body) {
      const Atom& a = lit.atom;
      if (a.kind == AtomKind::kBuiltin || a.kind == AtomKind::kChoice) {
        continue;
      }
      DepKind kind = DepKind::kPositive;
      if (a.kind == AtomKind::kId) {
        kind = DepKind::kId;
      } else if (lit.negated) {
        kind = DepKind::kNegative;
      }
      // A negated ID-literal still requires completeness of the base.
      if (a.kind == AtomKind::kId && lit.negated) kind = DepKind::kId;
      int body = add_node(a.predicate);
      edges_.push_back(DepEdge{a.predicate, clause.head.predicate, kind});
      adj_[body].push_back({head, kind});
    }
  }
}

int DependencyGraph::NodeIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::set<std::string> DependencyGraph::ReachableFrom(
    const std::string& output) const {
  std::set<std::string> result;
  int start = NodeIndex(output);
  if (start < 0) return result;
  // Walk edges backwards: predicates that can reach `output`.
  std::vector<std::vector<int>> rev(nodes_.size());
  for (size_t v = 0; v < adj_.size(); ++v) {
    for (auto [to, kind] : adj_[v]) {
      (void)kind;
      rev[static_cast<size_t>(to)].push_back(static_cast<int>(v));
    }
  }
  std::vector<int> stack = {start};
  std::vector<bool> seen(nodes_.size(), false);
  seen[static_cast<size_t>(start)] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    result.insert(nodes_[static_cast<size_t>(v)]);
    for (int u : rev[static_cast<size_t>(v)]) {
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = true;
        stack.push_back(u);
      }
    }
  }
  return result;
}

std::vector<Clause> ProgramPortion(const Program& program,
                                   const std::string& q) {
  DependencyGraph graph(program);
  std::set<std::string> needed = graph.ReachableFrom(q);
  std::vector<Clause> out;
  for (const Clause& clause : program.clauses) {
    if (needed.count(clause.head.predicate) > 0) out.push_back(clause);
  }
  return out;
}

}  // namespace idlog
