#ifndef IDLOG_ANALYSIS_DATABASE_PROGRAM_H_
#define IDLOG_ANALYSIS_DATABASE_PROGRAM_H_

#include <string>

#include "ast/ast.h"
#include "common/status.h"
#include "storage/database.h"

namespace idlog {

/// Builds the paper's database program dbp(P, q, τ) of Section 3.1:
///
///     P/q ∪ { p_j(t) : t ∈ r_j, p_j appears in P/q }
///         ∪ { udom(d_i) : d_i in the u-domain of τ }
///
/// — the program portion related to the output predicate `q`, with the
/// relevant input relations inlined as fact clauses and the u-domain
/// spelled out. The result is self-contained: evaluating it against an
/// *empty* database yields exactly the same answer for `q` as
/// evaluating P against τ (tested in database_program_test.cc), which
/// is the form the paper's model-theoretic definitions quantify over.
///
/// The unique-name and domain-closure axioms the paper adds are
/// implicit in our Herbrand evaluation: distinct constants are distinct
/// values, and quantification never leaves the active domain.
Result<Program> BuildDatabaseProgram(const Program& program,
                                     const std::string& output_pred,
                                     const Database& database);

}  // namespace idlog

#endif  // IDLOG_ANALYSIS_DATABASE_PROGRAM_H_
