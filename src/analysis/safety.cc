#include "analysis/safety.h"

#include <algorithm>

#include "ast/printer.h"

namespace idlog {

void CollectVariables(const Atom& atom, std::vector<std::string>* vars) {
  for (const Term& t : atom.terms) {
    if (t.is_variable()) vars->push_back(t.var_name());
  }
}

bool BuiltinPatternAdmissible(BuiltinKind kind,
                              const std::vector<bool>& bound) {
  auto b = [&](size_t i) { return bound[i]; };
  switch (kind) {
    case BuiltinKind::kSucc:
      // succ(A,B): either argument determines the other.
      return b(0) || b(1);
    case BuiltinKind::kAdd:
      // A+B=C: any two bound, or C alone (finitely many decompositions).
      return (b(0) && b(1)) || b(2);
    case BuiltinKind::kSub:
      // A-B=C over naturals: any two bound, or A alone (B<=A finite).
      return (b(1) && b(2)) || b(0);
    case BuiltinKind::kMul:
      // A*B=C: only bbb/bbn are safe (a zero factor with C=0 leaves the
      // other factor unconstrained, so C-driven generation is unsafe).
      return b(0) && b(1);
    case BuiltinKind::kDiv:
      // floor(A/B)=C: bbb/bbn.
      return b(0) && b(1);
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
    case BuiltinKind::kNe:
      return b(0) && b(1);
    case BuiltinKind::kEq:
      // One side determines the other.
      return b(0) || b(1);
  }
  return false;
}

namespace {

// Boundness vector of an atom's arguments given the currently bound
// variable set (constants are always bound).
std::vector<bool> ArgBoundness(const Atom& atom,
                               const std::set<std::string>& bound_vars) {
  std::vector<bool> out;
  out.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    out.push_back(t.is_constant() || bound_vars.count(t.var_name()) > 0);
  }
  return out;
}

bool AllBound(const Atom& atom, const std::set<std::string>& bound_vars) {
  for (const Term& t : atom.terms) {
    if (t.is_variable() && bound_vars.count(t.var_name()) == 0) return false;
  }
  return true;
}

// Whether the literal can be evaluated now, and a scheduling priority
// (lower = sooner). Filters run as early as possible; generators last.
struct Candidate {
  bool evaluable = false;
  int priority = 0;
};

Candidate Classify(const Literal& lit, const std::set<std::string>& bound,
                   bool allow_choice) {
  const Atom& a = lit.atom;
  Candidate c;
  switch (a.kind) {
    case AtomKind::kOrdinary:
    case AtomKind::kId: {
      if (lit.negated) {
        c.evaluable = AllBound(a, bound);
        c.priority = 0;  // negation filter: run as soon as it is bound
      } else {
        c.evaluable = true;
        // Prefer scans that are more selective: more bound arguments.
        std::vector<bool> bv = ArgBoundness(a, bound);
        int bound_count = static_cast<int>(
            std::count(bv.begin(), bv.end(), true));
        c.priority = 10 + (static_cast<int>(bv.size()) - bound_count);
      }
      return c;
    }
    case AtomKind::kBuiltin: {
      std::vector<bool> bv = ArgBoundness(a, bound);
      bool all = std::count(bv.begin(), bv.end(), false) == 0;
      if (lit.negated) {
        c.evaluable = all;
        c.priority = 1;
      } else {
        c.evaluable = BuiltinPatternAdmissible(a.builtin, bv);
        c.priority = all ? 1 : 5;  // pure filter before generator
      }
      return c;
    }
    case AtomKind::kChoice: {
      if (!allow_choice) return c;  // never evaluable -> rejected later
      c.evaluable = AllBound(a, bound) && !lit.negated;
      c.priority = 20;  // after everything that binds its arguments
      return c;
    }
  }
  return c;
}

}  // namespace

Result<SafeOrder> ComputeSafeOrder(const Clause& clause, bool allow_choice) {
  std::set<std::string> bound;
  std::vector<bool> used(clause.body.size(), false);
  SafeOrder result;

  for (size_t step = 0; step < clause.body.size(); ++step) {
    int best = -1;
    int best_priority = 0;
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (used[i]) continue;
      Candidate c = Classify(clause.body[i], bound, allow_choice);
      if (!c.evaluable) continue;
      if (best < 0 || c.priority < best_priority) {
        best = static_cast<int>(i);
        best_priority = c.priority;
      }
    }
    if (best < 0) {
      // Identify the offender for the error message.
      for (size_t i = 0; i < clause.body.size(); ++i) {
        if (!used[i]) {
          const Atom& a = clause.body[i].atom;
          if (a.kind == AtomKind::kChoice && !allow_choice) {
            return Status::Unsupported(
                "choice atoms are only valid in DATALOG^C programs");
          }
        }
      }
      return Status::UnsafeProgram(
          "no safe evaluation order for the body of a clause defining '" +
          clause.head.predicate +
          "' (unbound built-in arguments or unbound negation)");
    }
    used[static_cast<size_t>(best)] = true;
    result.order.push_back(best);
    // A positive literal (or an evaluable generator builtin / eq) binds
    // all of its variables.
    const Literal& lit = clause.body[static_cast<size_t>(best)];
    if (!lit.negated) {
      std::vector<std::string> vars;
      CollectVariables(lit.atom, &vars);
      for (const std::string& v : vars) bound.insert(v);
    }
  }

  for (const Term& t : clause.head.terms) {
    if (t.is_variable() && bound.count(t.var_name()) == 0) {
      return Status::UnsafeProgram("head variable '" + t.var_name() +
                                   "' of '" + clause.head.predicate +
                                   "' is not bound by a positive body literal");
    }
  }
  return result;
}

Status CheckProgramSafety(const Program& program, bool allow_choice) {
  for (const Clause& clause : program.clauses) {
    Result<SafeOrder> order = ComputeSafeOrder(clause, allow_choice);
    if (!order.ok()) return order.status();
  }
  return Status::OK();
}

}  // namespace idlog
