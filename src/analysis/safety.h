#ifndef IDLOG_ANALYSIS_SAFETY_H_
#define IDLOG_ANALYSIS_SAFETY_H_

#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace idlog {

/// A safe left-to-right evaluation order for a clause body: a
/// permutation of body literal indexes such that, processing literals in
/// this order with positive database literals binding their variables,
/// every built-in is reached with one of its admissible bound/unbound
/// argument patterns (Section 2.2's sufficient safety condition) and
/// every negated literal is reached fully bound. The head variables are
/// all bound at the end.
struct SafeOrder {
  std::vector<int> order;
};

/// Admissibility of a built-in under the given per-argument boundness
/// (true = bound). Implements the paper's sufficient patterns, e.g. for
/// `+` (add): bbb, bbn, bnb, nbb and the finite nnb case.
bool BuiltinPatternAdmissible(BuiltinKind kind, const std::vector<bool>& bound);

/// Computes a safe order for `clause`, or UnsafeProgram. `allow_choice`
/// admits choice atoms (treated as filters over bound variables), for
/// validating DATALOG^C programs before translation.
Result<SafeOrder> ComputeSafeOrder(const Clause& clause, bool allow_choice);

/// Checks every clause of `program`; returns the first violation.
Status CheckProgramSafety(const Program& program, bool allow_choice = false);

/// Collects the variables of an atom in order of first occurrence.
void CollectVariables(const Atom& atom, std::vector<std::string>* vars);

}  // namespace idlog

#endif  // IDLOG_ANALYSIS_SAFETY_H_
