#ifndef IDLOG_OBS_PROFILE_H_
#define IDLOG_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/eval_stats.h"
#include "obs/metrics.h"

namespace idlog {

/// Work and self-time attributed to one program clause across a run.
/// The counters are deltas of the engine's EvalStats taken around each
/// rule evaluation, so summing any column over all rules reproduces the
/// engine-level total exactly.
struct RuleProfile {
  int clause_index = -1;
  std::string head_pred;
  std::string rule;  ///< Rendered clause text (may be empty).
  int stratum = -1;
  uint64_t evals = 0;    ///< EvaluateRuleInto calls (incl. empty-delta).
  uint64_t firings = 0;  ///< Calls that actually scanned (non-empty delta).
  uint64_t tuples_considered = 0;
  uint64_t facts_derived = 0;
  uint64_t facts_inserted = 0;
  uint64_t self_ns = 0;  ///< Wall time inside this rule's evaluations.
};

/// Fixpoint work of one stratum.
struct StratumProfile {
  int index = -1;
  uint64_t rules = 0;
  uint64_t rounds = 0;
  uint64_t wall_ns = 0;
};

/// The per-rule / per-stratum breakdown of one evaluation, collected by
/// the engine when profiling is enabled (EngineImpl::set_profiling /
/// IdlogEngine::EnableProfiling). Attribution happens per rule
/// evaluation, not per tuple, so the overhead is a few clock reads per
/// rule call — invisible next to the join work they bracket.
struct EvalProfile {
  std::vector<RuleProfile> rules;    ///< Indexed by clause index.
  std::vector<StratumProfile> strata;
  EvalStats totals;                  ///< Engine-level stats of the run.
  uint64_t wall_ns = 0;              ///< Whole Evaluate() wall time.

  void Clear() { *this = EvalProfile(); }

  /// Human-readable per-rule table sorted by self time, with per-stratum
  /// rows and the engine totals (the CLI's --profile output).
  std::string ToTable() const;

  /// Flattens the profile into `metrics` under "totals.*", "stratum.*"
  /// and "rule.*" keys (the --metrics-json report, schema
  /// idlog-metrics-v1; see MetricsRegistry::ToJson).
  void ToMetrics(MetricsRegistry* metrics) const;

  /// Convenience: a registry holding only this profile, as JSON.
  std::string ToMetricsJson() const;
};

}  // namespace idlog

#endif  // IDLOG_OBS_PROFILE_H_
