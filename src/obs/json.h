#ifndef IDLOG_OBS_JSON_H_
#define IDLOG_OBS_JSON_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace idlog {

/// Renders `text` as a JSON string literal (quotes included): escapes
/// the two mandatory characters, the ASCII control range and nothing
/// else, so symbol names round-trip byte-for-byte.
std::string JsonQuote(std::string_view text);

/// Strict RFC-8259 well-formedness check over a complete document
/// (exactly one value plus whitespace). The trace writer and the
/// metrics report are emitted by hand-rolled printers; tests and the CI
/// smoke step parse their output back through this instead of trusting
/// the printer. Errors carry a byte offset.
Status ValidateJson(std::string_view text);

}  // namespace idlog

#endif  // IDLOG_OBS_JSON_H_
