#ifndef IDLOG_OBS_TRACE_H_
#define IDLOG_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace idlog {

/// One rendered key/value pair of a trace event's "args" object.
struct TraceArg {
  std::string key;
  std::string value;   ///< Rendered JSON fragment or raw string.
  bool quoted = true;  ///< False when `value` is already a number.

  static TraceArg Str(std::string key, std::string value) {
    return TraceArg{std::move(key), std::move(value), true};
  }
  static TraceArg Num(std::string key, uint64_t value) {
    return TraceArg{std::move(key), std::to_string(value), false};
  }
  static TraceArg Int(std::string key, int64_t value) {
    return TraceArg{std::move(key), std::to_string(value), false};
  }
};

/// One event in the Chrome trace-event format ("X" complete spans with
/// a duration, "i" instant events).
struct TraceEvent {
  char phase = 'i';
  std::string name;
  std::string category;
  uint64_t ts_us = 0;   ///< Microseconds since the sink's epoch.
  uint64_t dur_us = 0;  ///< Complete events only.
  std::vector<TraceArg> args;
};

/// Collects structured trace events against a monotonic-clock epoch and
/// serializes them as a chrome://tracing-loadable JSON array. Every
/// instrumentation point in the engine takes a `TraceSink*` and does
/// nothing when it is null — detached tracing costs one pointer test.
///
/// Recording is thread-safe (the event buffer is mutex-guarded), so
/// governor trips and spans may land from parallel workers. The
/// deterministic event *ordering* the serial engine produces is
/// preserved under `--jobs N` by the stratum executor, which measures
/// rule spans on workers and records them from the coordinating thread
/// in clause order via CompleteWithDuration(). Reading (events(),
/// ToJson()) still assumes no concurrent writer.
class TraceSink {
 public:
  TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since this sink was constructed (event timestamps).
  uint64_t NowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Instant(std::string name, std::string category,
               std::vector<TraceArg> args = {}) {
    TraceEvent ev;
    ev.phase = 'i';
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.ts_us = NowUs();
    ev.args = std::move(args);
    Push(std::move(ev));
  }

  /// Records a complete span that started at `start_us` (a prior
  /// NowUs() reading) and ends now.
  void Complete(std::string name, std::string category, uint64_t start_us,
                std::vector<TraceArg> args = {}) {
    uint64_t now = NowUs();
    CompleteWithDuration(std::move(name), std::move(category), start_us,
                         now >= start_us ? now - start_us : 0,
                         std::move(args));
  }

  /// Records a complete span with an explicit duration — for spans
  /// measured on a worker thread and recorded later, in deterministic
  /// order, by the coordinating thread.
  void CompleteWithDuration(std::string name, std::string category,
                            uint64_t start_us, uint64_t dur_us,
                            std::vector<TraceArg> args = {}) {
    TraceEvent ev;
    ev.phase = 'X';
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.ts_us = start_us;
    ev.dur_us = dur_us;
    ev.args = std::move(args);
    Push(std::move(ev));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  /// The whole trace as a bare JSON array of trace events (the array
  /// form chrome://tracing and Perfetto load directly).
  std::string ToJson() const;

  /// Writes ToJson() to `path`, replacing the file.
  Status WriteJson(const std::string& path) const;

 private:
  void Push(TraceEvent ev) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
  }

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII recorder of one complete span: remembers NowUs() at
/// construction, records the event at destruction. Args may be attached
/// any time in between. A null sink makes it a no-op.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, std::string name, std::string category)
      : sink_(sink) {
    if (sink_ == nullptr) return;
    name_ = std::move(name);
    category_ = std::move(category);
    start_us_ = sink_->NowUs();
  }
  ~TraceSpan() {
    if (sink_ == nullptr) return;
    sink_->Complete(std::move(name_), std::move(category_), start_us_,
                    std::move(args_));
  }

  /// Sets (or overwrites) one args entry; the last value per key wins,
  /// so loops may refresh an arg each iteration.
  void AddArg(TraceArg arg) {
    if (sink_ == nullptr) return;
    for (TraceArg& existing : args_) {
      if (existing.key == arg.key) {
        existing = std::move(arg);
        return;
      }
    }
    args_.push_back(std::move(arg));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* sink_;
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace idlog

#endif  // IDLOG_OBS_TRACE_H_
