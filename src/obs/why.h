#ifndef IDLOG_OBS_WHY_H_
#define IDLOG_OBS_WHY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "common/value.h"
#include "eval/provenance.h"
#include "eval/rule_plan.h"
#include "storage/relation.h"

namespace idlog {

/// Bounds on an explanation walk. Both WHY (proof trees) and WHY NOT
/// (failure analysis) stop at these budgets and say so in their output,
/// so a deep recursion or a cyclic ruleset can never hang the surface.
struct WhyBudget {
  int max_depth = 32;   ///< Maximum tree depth / recursion depth.
  int max_nodes = 512;  ///< Maximum nodes across the whole document.
};

// ---------------------------------------------------------------------------
// WHY: bounded proof trees over the provenance store.

/// One node of a rendered proof tree. Labels are pre-rendered with the
/// run's symbol table at build time, so the text and JSON renderers are
/// pure functions of the tree — which keeps `--jobs 1` and `--jobs N`
/// output byte-identical (the parallel merge reproduces the serial
/// provenance store exactly).
struct ProofNode {
  enum class Kind : uint8_t {
    kDerived,       ///< Interior node: fact derived by `clause_index`.
    kDatabaseFact,  ///< Leaf: stored EDB fact.
    kTidChoice,     ///< Leaf: ID-relation tuple (the run's ID-function
                    ///< choice); may carry the base derivation as child.
    kNegation,      ///< Leaf: a fact whose absence was checked.
    kBuiltin,       ///< Leaf: a satisfied built-in constraint.
    kCycle,         ///< Fact already being explained on this path.
    kDepthLimit,    ///< Subtree elided: depth budget reached.
    kNodeLimit,     ///< Siblings elided: node budget reached.
    kUnderivable,   ///< No derivation recorded and not a database fact.
  };
  Kind kind = Kind::kDerived;
  std::string label;      ///< Rendered fact / constraint text.
  int clause_index = -1;  ///< kDerived only.
  std::vector<ProofNode> children;
};

struct ProofTree {
  ProofNode root;
  WhyBudget budget;
  int nodes = 0;
  bool truncated = false;  ///< Some budget cut the tree somewhere.
};

/// Builds a bounded, cycle-safe proof tree for `pred(tuple)` from the
/// recorded derivations. `is_leaf` marks stored database facts (same
/// contract as ExplainFact).
ProofTree BuildProofTree(const ProvenanceStore& store,
                         const SymbolTable& symbols, const std::string& pred,
                         const Tuple& tuple,
                         const std::function<bool(const std::string&,
                                                  const Tuple&)>& is_leaf,
                         const WhyBudget& budget = WhyBudget());

/// Aligned indented text, one node per line with its annotation.
std::string RenderWhyText(const ProofTree& tree);

/// Deterministic `idlog-why-v1` JSON document (mode "why"); validated
/// against the strict RFC-8259 checker in tests.
std::string RenderWhyJson(const ProofTree& tree);

// ---------------------------------------------------------------------------
// WHY NOT: first-failing-premise analysis for a missing tuple.

/// Why one rule could not (re-)derive the queried tuple: the first
/// premise, in plan order, that has no solution given a satisfiable
/// binding of everything before it.
struct WhyNotFailure {
  enum class Class : uint8_t {
    kMissingSubgoal,   ///< Positive premise with no matching fact.
    kBlockedNegation,  ///< Negated premise whose fact is present.
    kFailedBuiltin,    ///< Built-in with no satisfying solution.
    kTidMismatch,      ///< ID premise: base tuple materialized, but
                       ///< under a different tid than required.
  };
  Class cls = Class::kMissingSubgoal;
  int step_index = -1;
  std::string rendered;   ///< Premise with bound args; `_` = unbound.
  bool ground = false;    ///< Every argument was bound at the failure.
  std::string predicate;  ///< Scan/negation premise base predicate.
  Tuple tuple;            ///< Ground probe (kMissingSubgoal, ground).
  std::string chosen_tid; ///< kTidMismatch: tid the model chose.
};

struct WhyNotNode;

/// Per-rule verdict for one analyzed fact.
struct WhyNotRule {
  int clause_index = -1;
  std::string rule_text;  ///< Source clause (empty if unavailable).
  bool unifies = false;   ///< Head unified with the queried tuple.
  bool derivable = false; ///< Body satisfiable (an interrupted run may
                          ///< have stopped before deriving the fact).
  WhyNotFailure failure;  ///< Valid when unifies && !derivable.
  std::unique_ptr<WhyNotNode> sub;  ///< Bounded recursion into a
                                    ///< ground missing premise.
};

/// One analyzed fact (the query, or a ground missing premise reached
/// by recursion).
struct WhyNotNode {
  std::string label;      ///< Rendered `pred(tuple)`.
  std::string predicate;
  Tuple tuple;
  bool holds = false;     ///< Present in the computed model after all.
  bool cycle = false;     ///< Already being analyzed on this path.
  bool no_rules = false;  ///< No clause derives this predicate.
  bool truncated = false; ///< A budget cut this node's analysis.
  std::string truncation; ///< Human marker naming the budget value.
  std::vector<WhyNotRule> rules;
};

struct WhyNotReport {
  WhyNotNode root;
  WhyBudget budget;
  int nodes = 0;
  bool truncated = false;
};

/// What the WHY NOT walker reads. The resolvers may return null
/// (unknown predicate / never-materialized ID-relation — both treated
/// as empty).
struct WhyNotContext {
  const std::vector<RulePlan>* plans = nullptr;
  /// Source text per clause index (optional; labels the report).
  const std::vector<std::string>* rule_texts = nullptr;
  const SymbolTable* symbols = nullptr;
  std::function<const Relation*(const std::string&)> full;
  std::function<const Relation*(const std::string&,
                                const std::vector<int>&)>
      id_relation;
};

/// Walks every rule whose head predicate matches `pred`, unifies the
/// head against `tuple`, and reports the first failing premise of each
/// unifying rule, recursing (bounded) into fully-ground missing
/// premises. Always terminates: recursion is depth/node-budgeted and
/// cycle-checked, and each step enumerates finite relations.
WhyNotReport BuildWhyNot(const WhyNotContext& ctx, const std::string& pred,
                         const Tuple& tuple,
                         const WhyBudget& budget = WhyBudget());

std::string RenderWhyNotText(const WhyNotReport& report);

/// Deterministic `idlog-why-v1` JSON document (mode "why-not").
std::string RenderWhyNotJson(const WhyNotReport& report);

}  // namespace idlog

#endif  // IDLOG_OBS_WHY_H_
