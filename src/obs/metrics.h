#ifndef IDLOG_OBS_METRICS_H_
#define IDLOG_OBS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace idlog {

/// Aggregate of every duration observed under one timer name.
struct DurationStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;  ///< Of the observed durations (0 when count==0).
  uint64_t max_ns = 0;

  void Observe(uint64_t ns) {
    if (count == 0 || ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
    ++count;
    total_ns += ns;
  }
};

/// Named counters, gauges and wall-clock histograms. Ordered maps make
/// every export deterministic: two identical runs produce byte-equal
/// JSON, which is what lets CI diff the reports. Single-threaded, like
/// the evaluation it measures.
class MetricsRegistry {
 public:
  /// Counters only go up (per-run totals: tuples, firings, trips...).
  void AddCounter(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Gauges record the latest value (sizes, configuration, strata).
  void SetGauge(const std::string& name, int64_t value) {
    gauges_[name] = value;
  }
  int64_t gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }

  /// Feeds one duration into the named histogram.
  void ObserveDuration(const std::string& name, uint64_t ns) {
    timers_[name].Observe(ns);
  }
  DurationStats timer(const std::string& name) const {
    auto it = timers_.find(name);
    return it == timers_.end() ? DurationStats() : it->second;
  }

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, DurationStats>& timers() const {
    return timers_;
  }

  void Clear() {
    counters_.clear();
    gauges_.clear();
    timers_.clear();
  }

  /// The flat machine-readable run report (`--metrics-json`), schema
  /// "idlog-metrics-v1": {"schema":..., "counters":{...},
  /// "gauges":{...}, "timers":{name:{count,total_ns,min_ns,max_ns}}}.
  std::string ToJson() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, DurationStats> timers_;
};

/// RAII wall-clock measurement against the monotonic clock; feeds the
/// named histogram on destruction. A null registry makes it a no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    registry_->ObserveDuration(
        name_, static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace idlog

#endif  // IDLOG_OBS_METRICS_H_
