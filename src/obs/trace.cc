#include "obs/trace.h"

#include "obs/json.h"
#include "store/atomic_file.h"

namespace idlog {

namespace {

void AppendEvent(const TraceEvent& ev, std::string* out) {
  *out += "{\"name\":" + JsonQuote(ev.name) +
          ",\"cat\":" + JsonQuote(ev.category) + ",\"ph\":\"";
  out->push_back(ev.phase);
  *out += "\",\"ts\":" + std::to_string(ev.ts_us);
  if (ev.phase == 'X') *out += ",\"dur\":" + std::to_string(ev.dur_us);
  // chrome://tracing requires pid/tid lanes; the evaluation is
  // single-threaded, so one lane.
  *out += ",\"pid\":1,\"tid\":1";
  if (ev.phase == 'i') *out += ",\"s\":\"t\"";
  if (!ev.args.empty()) {
    *out += ",\"args\":{";
    for (size_t i = 0; i < ev.args.size(); ++i) {
      if (i > 0) *out += ",";
      const TraceArg& arg = ev.args[i];
      *out += JsonQuote(arg.key) + ":" +
              (arg.quoted ? JsonQuote(arg.value) : arg.value);
    }
    *out += "}";
  }
  *out += "}";
}

}  // namespace

std::string TraceSink::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ",\n";
    AppendEvent(events_[i], &out);
  }
  out += "]\n";
  return out;
}

Status TraceSink::WriteJson(const std::string& path) const {
  // Atomic: readers (and crash recovery) see the previous trace or the
  // complete new one, never a truncated JSON document.
  return WriteFileAtomic(path, ToJson());
}

}  // namespace idlog
