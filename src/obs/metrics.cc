#include "obs/metrics.h"

#include "obs/json.h"

namespace idlog {

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"schema\":\"idlog-metrics-v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" + std::to_string(value);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, stats] : timers_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":{\"count\":" + std::to_string(stats.count) +
           ",\"total_ns\":" + std::to_string(stats.total_ns) +
           ",\"min_ns\":" + std::to_string(stats.min_ns) +
           ",\"max_ns\":" + std::to_string(stats.max_ns) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace idlog
