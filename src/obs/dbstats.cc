#include "obs/dbstats.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace idlog {

namespace {

/// ApproxTupleBytes over a whole relation — the governor's per-tuple
/// charge formula, applied uniformly so component sums reconcile.
uint64_t RelationApproxBytes(const Relation& rel) {
  return static_cast<uint64_t>(rel.size()) *
         ApproxTupleBytes(static_cast<size_t>(rel.arity()));
}

/// Attributes the relation's cached indexes (if any) onto `row`.
void AttachIndexStats(
    const Relation* rel,
    const std::map<const Relation*, std::unique_ptr<IndexCache>>* caches,
    RelationStorageStats* row) {
  if (caches == nullptr) return;
  auto it = caches->find(rel);
  if (it == caches->end() || it->second == nullptr) return;
  for (const auto& [cols, index] : it->second->indexes()) {
    row->indexes += 1;
    row->index_keys += index.num_keys();
    row->index_entries += index.num_entries();
    row->index_bytes += index.approx_bytes();
  }
}

RelationStorageStats MakeRow(std::string name, std::string kind,
                             const Relation& rel) {
  RelationStorageStats row;
  row.name = std::move(name);
  row.kind = std::move(kind);
  row.arity = rel.arity();
  row.tuples = rel.size();
  row.version = rel.version();
  row.clear_generation = rel.clear_generation();
  row.approx_bytes = RelationApproxBytes(rel);
  return row;
}

std::string GroupLabel(const std::vector<int>& group) {
  std::string s = "[";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(group[i]);
  }
  return s + "]";
}

void AppendGroupJson(const std::vector<int>& group, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(group[i]);
  }
  out->push_back(']');
}

}  // namespace

StorageStats CollectStorageStats(const StorageStatsView& view) {
  StorageStats out;

  // EDB relations, in creation order (deterministic: creation happens
  // during program/CSV load, before any parallel evaluation).
  if (view.database != nullptr) {
    for (const std::string& name : view.database->relation_names()) {
      auto rel = view.database->Get(name);
      if (!rel.ok()) continue;
      RelationStorageStats row = MakeRow(name, "edb", *rel.value());
      AttachIndexStats(rel.value(), view.index_caches, &row);
      out.edb_tuples += row.tuples;
      out.edb_bytes += row.approx_bytes;
      out.relations.push_back(std::move(row));
    }
  }

  // Derived (IDB) relations in map (name) order.
  if (view.derived != nullptr) {
    for (const auto& [name, rel] : *view.derived) {
      RelationStorageStats row = MakeRow(name, "derived", rel);
      AttachIndexStats(&rel, view.index_caches, &row);
      out.derived_tuples += row.tuples;
      out.derived_bytes += row.approx_bytes;
      out.relations.push_back(std::move(row));
    }
  }

  // The synthesized u-domain relation, when the program materialized it.
  if (view.udom != nullptr && !view.udom->empty()) {
    RelationStorageStats row = MakeRow("udom", "udom", *view.udom);
    AttachIndexStats(view.udom, view.index_caches, &row);
    out.udom_tuples += row.tuples;
    out.udom_bytes += row.approx_bytes;
    out.relations.push_back(std::move(row));
  }

  // Materialized ID-relations in (predicate, group) map order.
  if (view.id_relations != nullptr) {
    for (const auto& [key, rel] : *view.id_relations) {
      RelationStorageStats row = MakeRow(key.first, "id", rel);
      row.group = key.second;
      AttachIndexStats(&rel, view.index_caches, &row);
      out.id_tuples += row.tuples;
      out.id_bytes += row.approx_bytes;
      out.id_relations.push_back(std::move(row));
    }
  }

  if (view.symbols != nullptr) {
    out.symbol_count = view.symbols->size();
    out.symbol_bytes = view.symbols->approx_bytes();
  }

  if (view.assigner != nullptr) {
    out.assigner_kind = view.assigner->kind();
    out.assigner_state_bytes = view.assigner->SaveState().size();
  }

  if (view.provenance != nullptr) {
    out.provenance_nodes = view.provenance->size();
    out.provenance_premises = view.provenance->num_premises();
    out.provenance_bytes = view.provenance->approx_bytes();
  }

  // Governor reconciliation: the run charges exactly the derived
  // commits, the ID-materializations and the provenance arena.
  out.accounted_bytes = out.derived_bytes + out.id_bytes +
                        out.provenance_bytes;
  if (view.governor != nullptr) {
    out.has_governor = true;
    out.governor_memory_bytes = view.governor->memory_charged();
  }

  for (const RelationStorageStats& row : out.relations) {
    out.total_indexes += row.indexes;
    out.total_index_keys += row.index_keys;
    out.total_index_entries += row.index_entries;
    out.total_index_bytes += row.index_bytes;
  }
  for (const RelationStorageStats& row : out.id_relations) {
    out.total_indexes += row.indexes;
    out.total_index_keys += row.index_keys;
    out.total_index_entries += row.index_entries;
    out.total_index_bytes += row.index_bytes;
  }

  return out;
}

std::string StorageStats::ToTable() const {
  std::ostringstream os;
  // Column widths: name column sized to contents, numbers right-aligned.
  size_t name_w = 8;
  for (const auto& r : relations) name_w = std::max(name_w, r.name.size());
  for (const auto& r : id_relations) {
    name_w = std::max(name_w, r.name.size() + GroupLabel(r.group).size());
  }
  name_w = std::min<size_t>(name_w, 40) + 2;

  auto pad = [&os](const std::string& s, size_t w) {
    os << s;
    for (size_t i = s.size(); i < w; ++i) os << ' ';
  };
  auto num = [&os](uint64_t v, size_t w) {
    std::string s = std::to_string(v);
    for (size_t i = s.size(); i < w; ++i) os << ' ';
    os << s;
  };

  os << "storage statistics\n";
  pad("relation", name_w);
  os << "kind      arity      tuples     version  clears       ~bytes"
        "   idx        keys     entries   ~idx-bytes\n";
  auto emit = [&](const RelationStorageStats& r, const std::string& name) {
    pad(name, name_w);
    pad(r.kind, 10);
    num(static_cast<uint64_t>(r.arity), 5);
    num(r.tuples, 12);
    num(r.version, 12);
    num(r.clear_generation, 8);
    num(r.approx_bytes, 13);
    num(r.indexes, 6);
    num(r.index_keys, 12);
    num(r.index_entries, 12);
    num(r.index_bytes, 13);
    os << "\n";
  };
  for (const auto& r : relations) emit(r, r.name);
  for (const auto& r : id_relations) emit(r, r.name + GroupLabel(r.group));

  os << "\ncomponents (~bytes)\n";
  os << "  edb tuples        " << edb_bytes << "  (" << edb_tuples
     << " tuples)\n";
  os << "  derived tuples    " << derived_bytes << "  (" << derived_tuples
     << " tuples)\n";
  if (udom_tuples > 0) {
    os << "  udom tuples       " << udom_bytes << "  (" << udom_tuples
       << " tuples)\n";
  }
  os << "  id-relations      " << id_bytes << "  (" << id_tuples
     << " tuples)\n";
  os << "  intern pool       " << symbol_bytes << "  (" << symbol_count
     << " symbols)\n";
  os << "  provenance        " << provenance_bytes << "  ("
     << provenance_nodes << " nodes, " << provenance_premises
     << " premises)\n";
  if (!assigner_kind.empty()) {
    os << "  tid-assigner      " << assigner_state_bytes << "  ("
       << assigner_kind << " state)\n";
  }
  os << "  indexes (phys)    " << total_index_bytes << "  ("
     << total_indexes << " indexes, " << total_index_entries
     << " entries)\n";
  os << "  total (logical)   " << total_approx_bytes() << "\n";
  if (has_governor) {
    os << "governor: memory_charged=" << governor_memory_bytes
       << "  accounted(derived+id+provenance)=" << accounted_bytes << "\n";
  }
  return os.str();
}

std::string StorageStats::ToJson() const {
  // Logical fields only: every number here is part of the --jobs /
  // --partitions byte-identity contract. Index data is deliberately
  // absent (physical; see the text table).
  std::string out;
  out += "{\"schema\":\"idlog-dbstats-v1\",\"relations\":[";
  bool first = true;
  for (const auto& r : relations) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + JsonQuote(r.name);
    out += ",\"kind\":" + JsonQuote(r.kind);
    out += ",\"arity\":" + std::to_string(r.arity);
    out += ",\"tuples\":" + std::to_string(r.tuples);
    out += ",\"version\":" + std::to_string(r.version);
    out += ",\"clear_generation\":" + std::to_string(r.clear_generation);
    out += ",\"approx_bytes\":" + std::to_string(r.approx_bytes);
    out += "}";
  }
  out += "],\"id_relations\":[";
  first = true;
  for (const auto& r : id_relations) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + JsonQuote(r.name);
    out += ",\"group\":";
    AppendGroupJson(r.group, &out);
    out += ",\"arity\":" + std::to_string(r.arity);
    out += ",\"tuples\":" + std::to_string(r.tuples);
    out += ",\"approx_bytes\":" + std::to_string(r.approx_bytes);
    out += "}";
  }
  out += "],\"symbols\":{\"count\":" + std::to_string(symbol_count);
  out += ",\"approx_bytes\":" + std::to_string(symbol_bytes);
  out += "},\"tid_assigner\":{\"kind\":" +
         JsonQuote(assigner_kind.empty() ? "none" : assigner_kind);
  out += ",\"state_bytes\":" + std::to_string(assigner_state_bytes);
  out += "},\"provenance\":{\"nodes\":" + std::to_string(provenance_nodes);
  out += ",\"premises\":" + std::to_string(provenance_premises);
  out += ",\"approx_bytes\":" + std::to_string(provenance_bytes);
  out += "},\"totals\":{\"relations\":" + std::to_string(relations.size());
  out += ",\"id_relations\":" + std::to_string(id_relations.size());
  out += ",\"tuples\":" + std::to_string(total_tuples());
  out += ",\"edb_tuples\":" + std::to_string(edb_tuples);
  out += ",\"edb_bytes\":" + std::to_string(edb_bytes);
  out += ",\"derived_tuples\":" + std::to_string(derived_tuples);
  out += ",\"derived_bytes\":" + std::to_string(derived_bytes);
  out += ",\"udom_tuples\":" + std::to_string(udom_tuples);
  out += ",\"udom_bytes\":" + std::to_string(udom_bytes);
  out += ",\"id_tuples\":" + std::to_string(id_tuples);
  out += ",\"id_bytes\":" + std::to_string(id_bytes);
  out += ",\"approx_bytes\":" + std::to_string(total_approx_bytes());
  out += "},\"governor\":{\"present\":";
  out += has_governor ? "true" : "false";
  out += ",\"memory_charged\":" + std::to_string(governor_memory_bytes);
  out += ",\"accounted_bytes\":" + std::to_string(accounted_bytes);
  out += "}}\n";
  return out;
}

}  // namespace idlog
