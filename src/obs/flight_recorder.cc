#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

#include "obs/json.h"
#include "store/atomic_file.h"

namespace idlog {

std::atomic<bool> FlightRecorder::armed_{false};

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kRunStart: return "run-start";
    case FlightEventKind::kRunEnd: return "run-end";
    case FlightEventKind::kRoundStart: return "round-start";
    case FlightEventKind::kRoundCommit: return "round-commit";
    case FlightEventKind::kPartitionCommit: return "partition-commit";
    case FlightEventKind::kIndexBuild: return "index-build";
    case FlightEventKind::kCheckpointSection: return "checkpoint-section";
    case FlightEventKind::kGovernorMemory: return "governor-memory";
    case FlightEventKind::kFailpointHit: return "failpoint-hit";
    case FlightEventKind::kTrip: return "trip";
    case FlightEventKind::kWalAppend: return "wal-append";
    case FlightEventKind::kWalFsync: return "wal-fsync";
    case FlightEventKind::kWalReplay: return "wal-replay";
    case FlightEventKind::kWalRotate: return "wal-rotate";
  }
  return "unknown";
}

void FlightRecorder::Arm(size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_per_thread < 16) capacity_per_thread = 16;
  if (capacity_per_thread > (1u << 20)) capacity_per_thread = 1u << 20;
  capacity_ = capacity_per_thread;
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_release);
  seq_.store(0, std::memory_order_relaxed);
  armed_at_ = std::chrono::steady_clock::now();
  armed_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::ThisThreadRing() {
  // The cached pointer is only valid for the generation it was handed
  // out under: Arm() clears the ring registry, so stale pointers must
  // re-register rather than write into freed memory.
  struct Tls {
    uint64_t generation = 0;
    Ring* ring = nullptr;
  };
  thread_local Tls tls;
  // Unlocked generation probe keeps the armed path lock-free after a
  // thread's first event; Arm() never runs concurrently with recording
  // (same single-coordinator contract as ResourceGovernor::Arm).
  if (tls.ring != nullptr &&
      tls.generation == generation_.load(std::memory_order_acquire)) {
    return tls.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  tls.ring = rings_.back().get();
  tls.generation = generation_.load(std::memory_order_relaxed);
  return tls.ring;
}

void FlightRecorder::RecordSlow(FlightEventKind kind, const char* label,
                                int64_t a, int64_t b, int64_t c) {
  Ring* ring = ThisThreadRing();
  FlightEvent& e = ring->slots[ring->count % ring->slots.size()];
  ++ring->count;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.ts_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - armed_at_)
          .count());
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.c = c;
  if (label == nullptr) {
    e.label[0] = '\0';
  } else {
    std::strncpy(e.label, label, sizeof(e.label) - 1);
    e.label[sizeof(e.label) - 1] = '\0';
  }
}

uint64_t FlightRecorder::total_recorded() const {
  return seq_.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& ring : rings_) {
    n += std::min<uint64_t>(ring->count, ring->slots.size());
  }
  return n;
}

size_t FlightRecorder::capacity_per_thread() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::string FlightRecorder::ToJson() const {
  std::vector<FlightEvent> events;
  size_t capacity;
  size_t threads;
  uint64_t recorded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity = capacity_;
    threads = rings_.size();
    recorded = seq_.load(std::memory_order_relaxed);
    for (const auto& ring : rings_) {
      const size_t cap = ring->slots.size();
      const uint64_t held = std::min<uint64_t>(ring->count, cap);
      // Oldest retained slot first; the global sort below interleaves
      // the threads back into record order.
      for (uint64_t i = 0; i < held; ++i) {
        events.push_back(
            ring->slots[(ring->count - held + i) % cap]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });

  std::string out = "{\"schema\":\"idlog-flight-v1\"";
  out += ",\"capacity_per_thread\":" + std::to_string(capacity);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"recorded\":" + std::to_string(recorded);
  out += ",\"retained\":" + std::to_string(events.size());
  out += ",\"dropped\":" + std::to_string(recorded - events.size());
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i > 0) out += ",";
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"ts_ns\":" + std::to_string(e.ts_ns);
    out += ",\"kind\":" + JsonQuote(FlightEventKindName(e.kind));
    out += ",\"label\":" + JsonQuote(e.label);
    out += ",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b);
    out += ",\"c\":" + std::to_string(e.c);
    out += "}";
  }
  out += "]}\n";
  return out;
}

Status FlightRecorder::Dump(const std::string& path) const {
  return WriteFileAtomic(path, ToJson());
}

}  // namespace idlog
