#ifndef IDLOG_OBS_EXPLAIN_H_
#define IDLOG_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/eval_stats.h"
#include "eval/rule_plan.h"

namespace idlog {

/// One annotation from a rewrite pass: `pass` names the transform
/// ("id-desugar", "magic-sets", "projection-push", "id-rewrite",
/// "cleanup", "tid-pushdown"), `clause_index` the clause of the pass's
/// *output* program the note attaches to (-1 = program-wide), and
/// `detail` says what happened in that clause's terms.
struct RewriteNote {
  std::string pass;
  int clause_index = -1;
  std::string detail;
};

/// An append-only log of rewrite annotations, threaded through the
/// `opt/` passes (each takes an optional RewriteLog*) and through the
/// engine's own tid-bound pushdown. EXPLAIN renders the notes next to
/// the clause they touched, so a plan reads together with the history
/// of how it came to look that way.
class RewriteLog {
 public:
  void Note(std::string pass, int clause_index, std::string detail) {
    notes_.push_back(
        RewriteNote{std::move(pass), clause_index, std::move(detail)});
  }
  void Append(const RewriteLog& other) {
    notes_.insert(notes_.end(), other.notes_.begin(), other.notes_.end());
  }
  const std::vector<RewriteNote>& notes() const { return notes_; }
  bool empty() const { return notes_.empty(); }
  void Clear() { notes_.clear(); }

 private:
  std::vector<RewriteNote> notes_;
};

/// EXPLAIN ANALYZE counters of one PlanStep, accumulated over every
/// evaluation of the owning rule across all rounds.
///
/// `rows_in` counts entries into the step (bindings arriving from the
/// steps before it), `rows_scanned` the candidate tuples it enumerated,
/// `rows_emitted` the bindings it passed downstream — so
/// rows_emitted / rows_scanned is the step's observed selectivity.
/// `index_probes` counts index Lookup calls; these three are logical
/// counters, identical across --jobs settings. `index_hits` /
/// `index_misses` describe the physical cache behaviour (a fresh cached
/// index served the entry vs. a build/refresh or, for parallel workers,
/// a FindFresh fallback) and may legitimately differ between serial and
/// parallel execution, like timings.
struct StepCounters {
  uint64_t rows_in = 0;
  uint64_t rows_scanned = 0;
  uint64_t index_probes = 0;
  uint64_t index_hits = 0;
  uint64_t index_misses = 0;
  uint64_t rows_emitted = 0;

  StepCounters& operator+=(const StepCounters& o) {
    rows_in += o.rows_in;
    rows_scanned += o.rows_scanned;
    index_probes += o.index_probes;
    index_hits += o.index_hits;
    index_misses += o.index_misses;
    rows_emitted += o.rows_emitted;
    return *this;
  }
};

/// Per-step counters of one rule: one entry per PlanStep plus a final
/// synthetic "emit" step whose rows_in is the rule's facts_derived and
/// whose rows_emitted is its facts_inserted — the bridge to the
/// EvalProfile columns (the sum invariant EXPLAIN tests assert).
struct RuleStepStats {
  std::vector<StepCounters> steps;
};

/// Fixpoint shape of one stratum: the number of new facts each round
/// committed (the per-round delta sizes). Ends with the 0 of the round
/// that reached the fixpoint.
struct StratumRoundStats {
  int stratum = -1;
  std::vector<uint64_t> new_facts_per_round;
};

/// Everything EXPLAIN ANALYZE collects during one Evaluate(): per-step
/// counters per rule (indexed by clause index, sized by the engine) and
/// per-round delta sizes per stratum. Aggregation is deterministic
/// under --jobs N: workers count into private RuleStepStats and the
/// driver merges them in serial task order, exactly like EvalStats.
struct PlanAnalysis {
  std::vector<RuleStepStats> rules;
  std::vector<StratumRoundStats> strata;

  void Clear() { *this = PlanAnalysis(); }
};

/// One rule of an EXPLAIN document: the compiled plan plus rendering
/// context the plan itself does not carry.
struct ExplainRule {
  int clause_index = -1;
  int stratum = -1;
  std::string text;  ///< Rendered clause (may be empty).
  const RulePlan* plan = nullptr;
};

/// Input to the EXPLAIN renderers. With `analysis` null the output is
/// the static plan (EXPLAIN); with it set, per-step counters and
/// per-round delta sizes are included (EXPLAIN ANALYZE). `totals`
/// optionally carries the engine-level EvalStats of the analyzed run.
struct ExplainDoc {
  std::vector<ExplainRule> rules;
  bool use_indexes = true;
  const RewriteLog* rewrites = nullptr;
  const PlanAnalysis* analysis = nullptr;
  const EvalStats* totals = nullptr;
};

/// Aligned text tree: one block per rule (clause text, rewrite notes,
/// steps with key columns / index choice / ArgModes / delta-candidate
/// marks), per-step counters and observed selectivity when analyzing,
/// then per-stratum round sizes and engine totals.
std::string RenderExplainText(const ExplainDoc& doc);

/// Deterministic `idlog-explain-v1` JSON document (RFC 8259, validated
/// by obs/json's checker in tests/CI). Contains only logical counters —
/// no timings, no physical cache counters — so two runs of one program
/// produce byte-identical documents regardless of --jobs.
std::string RenderExplainJson(const ExplainDoc& doc);

}  // namespace idlog

#endif  // IDLOG_OBS_EXPLAIN_H_
