#ifndef IDLOG_OBS_FLIGHT_RECORDER_H_
#define IDLOG_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace idlog {

/// What a flight-recorder event describes. The payload fields a/b/c are
/// kind-specific (see the table in docs/INTERNALS.md §14):
///   kRunStart         label=mode ("seminaive"/"naive"), a=threads, b=partitions
///   kRunEnd           label=status code name, a=ok(1)/failed(0)
///   kRoundStart       a=stratum, b=round, c=tasks
///   kRoundCommit      a=stratum, b=round, c=new facts this round
///   kPartitionCommit  label=head predicate, a=partitions, b=inserted, c=round
///   kIndexBuild       label=column list ("0,2"), a=rows indexed, b=keys
///   kCheckpointSection label=section name ("META".."END"), a=payload bytes
///   kGovernorMemory   label="memory", a=bytes charged, b=milestone crossed
///   kFailpointHit     label=site, a=hit count, b=1 iff this hit fired
///   kTrip             label=budget kind, a=tuples charged, b=bytes charged,
///                     c=stratum
///   kWalAppend        label=record type name, a=payload bytes, b=txn id
///   kWalFsync         label="commit", a=records in the synced group,
///                     b=file bytes after the sync
///   kWalReplay        label=record type name, a=file offset, b=txn id
///   kWalRotate        label="rotate", a=new epoch, b=bytes retired
enum class FlightEventKind : uint8_t {
  kRunStart = 0,
  kRunEnd,
  kRoundStart,
  kRoundCommit,
  kPartitionCommit,
  kIndexBuild,
  kCheckpointSection,
  kGovernorMemory,
  kFailpointHit,
  kTrip,
  kWalAppend,
  kWalFsync,
  kWalReplay,
  kWalRotate,
};

/// Stable dump name of a kind ("run-start", "round-commit", ...).
const char* FlightEventKindName(FlightEventKind kind);

/// One compact structured event. Fixed size, no heap: recording is a
/// few stores into a preallocated ring slot.
struct FlightEvent {
  uint64_t seq = 0;    ///< Global record order (merge key at dump time).
  uint64_t ts_ns = 0;  ///< Monotonic ns since the recorder was armed.
  FlightEventKind kind = FlightEventKind::kRunStart;
  char label[23] = {0};  ///< Truncated NUL-terminated tag.
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
};

/// Process-global crash/trip black box: fixed-capacity per-thread ring
/// buffers of FlightEvents behind a relaxed-atomic disarmed fast path,
/// in the style of common/failpoint.h. While disarmed (the default),
/// every instrumentation site costs one relaxed load and a branch.
/// While armed, a site costs an atomic sequence fetch_add plus a few
/// stores into this thread's preallocated ring — no locks, no
/// allocation (rings register once per thread under a mutex).
///
/// Each thread overwrites its own oldest events once its ring wraps, so
/// memory is bounded at capacity_per_thread × threads events no matter
/// how long the run is; a dump always holds the *last* window of
/// activity, which is the window a post-mortem wants.
///
/// Dump (ToJson/Dump) merges every ring by global sequence number into
/// one deterministic `idlog-flight-v1` JSON document. Dump when the
/// evaluation is quiescent (after Run() returned or tripped): recording
/// threads write their rings without synchronization against readers.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  static FlightRecorder& Instance();

  /// Enables recording with `capacity_per_thread` slots per thread ring
  /// (clamped to [16, 1<<20]), discarding previously recorded events.
  /// The arm time is the ts_ns origin.
  void Arm(size_t capacity_per_thread = kDefaultCapacity);

  /// Stops recording. Recorded events stay dumpable until the next
  /// Arm().
  void Disarm();

  /// Fast path for instrumentation sites: false unless Arm()ed.
  static bool Enabled() {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Records one event (no-op while disarmed). `label` may be null;
  /// longer labels are truncated to the fixed slot.
  static void Record(FlightEventKind kind, const char* label,
                     int64_t a = 0, int64_t b = 0, int64_t c = 0) {
    if (!Enabled()) return;
    Instance().RecordSlow(kind, label, a, b, c);
  }

  /// Events recorded since the last Arm() (including overwritten ones).
  uint64_t total_recorded() const;

  /// Events still held in the rings (<= total_recorded()).
  uint64_t retained() const;

  size_t capacity_per_thread() const;

  /// The merged `idlog-flight-v1` document: every ring's retained
  /// events sorted by global sequence number.
  std::string ToJson() const;

  /// Writes ToJson() to `path` atomically (temp + fsync + rename).
  Status Dump(const std::string& path) const;

 private:
  /// One thread's event window. Owned by the registry, not the thread:
  /// a worker that exits leaves its ring behind for the dump.
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<FlightEvent> slots;
    uint64_t count = 0;  ///< Events ever written; slots[count % size].
  };

  FlightRecorder() = default;

  void RecordSlow(FlightEventKind kind, const char* label, int64_t a,
                  int64_t b, int64_t c);
  Ring* ThisThreadRing();

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;             ///< Guards rings_ registration.
  std::vector<std::unique_ptr<Ring>> rings_;
  size_t capacity_ = kDefaultCapacity;
  /// Bumped by Arm(); a thread whose cached ring pointer carries an
  /// older generation re-registers instead of writing freed memory.
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> seq_{0};
  std::chrono::steady_clock::time_point armed_at_{};
};

}  // namespace idlog

#endif  // IDLOG_OBS_FLIGHT_RECORDER_H_
