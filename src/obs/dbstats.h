#ifndef IDLOG_OBS_DBSTATS_H_
#define IDLOG_OBS_DBSTATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/limits.h"
#include "common/symbol_table.h"
#include "eval/provenance.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "storage/tid_assigner.h"

namespace idlog {

/// Per-relation storage statistics. The logical fields (name, kind,
/// group, arity, tuples, version, clear_generation, approx_bytes) are
/// byte-identical across --jobs/--partitions settings: tuple contents,
/// committed-insert counts and the byte formula all live on the
/// deterministic side of the executor's commit contract. The index_*
/// fields are physical — which indexes exist and how often they were
/// built depends on lazy-vs-eager build scheduling — so they appear in
/// the text table only, never in the JSON document (same split as
/// EXPLAIN's index_builds counters).
struct RelationStorageStats {
  std::string name;
  std::string kind;        ///< "edb", "derived", "udom" or "id".
  std::vector<int> group;  ///< ID-relations only: the grouping columns.
  int arity = 0;
  uint64_t tuples = 0;
  uint64_t version = 0;           ///< Committed-insert count (+1 per Clear).
  uint64_t clear_generation = 0;  ///< Clear() churn counter.
  /// ApproxTupleBytes(arity) * tuples — deliberately the same formula
  /// the governor charges per materialized tuple, so component sums
  /// reconcile against memory_charged().
  uint64_t approx_bytes = 0;
  // --- Physical index attribution (text table only). ---
  uint64_t indexes = 0;
  uint64_t index_keys = 0;
  uint64_t index_entries = 0;
  uint64_t index_bytes = 0;
};

/// A full storage walk: every EDB/derived/udom relation, every
/// materialized ID-relation, the intern pool, the tid-assigner state,
/// the provenance arena, per-component byte totals and the governor
/// reconciliation. Rendered as an aligned text table (--db-stats) or
/// the deterministic `idlog-dbstats-v1` JSON (--db-stats-json).
struct StorageStats {
  std::vector<RelationStorageStats> relations;     ///< edb, derived, udom.
  std::vector<RelationStorageStats> id_relations;  ///< (pred, group) order.

  uint64_t symbol_count = 0;
  uint64_t symbol_bytes = 0;

  std::string assigner_kind;          ///< Empty when no assigner in view.
  uint64_t assigner_state_bytes = 0;  ///< SaveState() payload size.

  uint64_t provenance_nodes = 0;
  uint64_t provenance_premises = 0;
  uint64_t provenance_bytes = 0;

  // --- Component byte totals (logical). ---
  uint64_t edb_tuples = 0, edb_bytes = 0;
  uint64_t derived_tuples = 0, derived_bytes = 0;
  uint64_t udom_tuples = 0, udom_bytes = 0;
  uint64_t id_tuples = 0, id_bytes = 0;

  /// Governor reconciliation. accounted_bytes = derived_bytes +
  /// id_bytes + provenance_bytes — exactly the components Run() charges
  /// against the memory budget (EDB/udom storage predates the run's
  /// Arm() and is never charged). For a completed, non-resumed run the
  /// two are equal; a resumed run restores uncharged tuples
  /// (accounted > charged) and a tripped run may commit a failing
  /// round's tail uncharged (accounted >= charged).
  bool has_governor = false;
  uint64_t governor_memory_bytes = 0;  ///< memory_charged() now.
  uint64_t accounted_bytes = 0;

  // --- Physical totals (text table only). ---
  uint64_t total_indexes = 0;
  uint64_t total_index_keys = 0;
  uint64_t total_index_entries = 0;
  uint64_t total_index_bytes = 0;

  uint64_t total_tuples() const {
    return edb_tuples + derived_tuples + udom_tuples + id_tuples;
  }
  /// Every logical component: relation payloads + intern pool +
  /// assigner state + provenance arena.
  uint64_t total_approx_bytes() const {
    return edb_bytes + derived_bytes + udom_bytes + id_bytes +
           symbol_bytes + assigner_state_bytes + provenance_bytes;
  }

  /// Aligned text table, physical index columns included.
  std::string ToTable() const;

  /// Deterministic `idlog-dbstats-v1` JSON: logical fields only, so
  /// the document is byte-identical across --jobs/--partitions.
  std::string ToJson() const;
};

/// Borrowed pointers into the engine state the walker reads; only
/// `database` and `symbols` are required, everything else degrades to
/// zeros/absence (a pre-run engine has no derived state yet).
struct StorageStatsView {
  const Database* database = nullptr;
  const SymbolTable* symbols = nullptr;
  const std::map<std::string, Relation>* derived = nullptr;
  const std::map<std::pair<std::string, std::vector<int>>, Relation>*
      id_relations = nullptr;
  const Relation* udom = nullptr;  ///< Synthesized u-domain, if built.
  const std::map<const Relation*, std::unique_ptr<IndexCache>>*
      index_caches = nullptr;
  const ProvenanceStore* provenance = nullptr;
  const TidAssigner* assigner = nullptr;
  const ResourceGovernor* governor = nullptr;
};

/// Walks the view and fills every StorageStats field.
StorageStats CollectStorageStats(const StorageStatsView& view);

}  // namespace idlog

#endif  // IDLOG_OBS_DBSTATS_H_
