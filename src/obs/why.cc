#include "obs/why.h"

#include <optional>
#include <set>
#include <utility>

#include "ast/ast.h"
#include "eval/builtin_eval.h"
#include "obs/json.h"

namespace idlog {

namespace {

std::string IdSuffix(const std::vector<int>& group) {
  std::string out = "[";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(group[i] + 1);
  }
  return out + "]";
}

// ---------------------------------------------------------------------------
// WHY: proof trees.

class ProofBuilder {
 public:
  ProofBuilder(const ProvenanceStore& store, const SymbolTable& symbols,
               const std::function<bool(const std::string&, const Tuple&)>&
                   is_leaf,
               ProofTree* tree)
      : store_(store), symbols_(symbols), is_leaf_(is_leaf), tree_(tree) {}

  void Build(const std::string& pred, const Tuple& tuple, int depth,
             ProofNode* out) {
    ++tree_->nodes;
    out->label = pred + TupleToString(tuple, symbols_);
    const Derivation* d = store_.Lookup(pred, tuple);
    if (d == nullptr) {
      out->kind = is_leaf_(pred, tuple) ? ProofNode::Kind::kDatabaseFact
                                        : ProofNode::Kind::kUnderivable;
      return;
    }
    auto key = std::make_pair(pred, tuple);
    if (on_path_.count(key) > 0) {
      out->kind = ProofNode::Kind::kCycle;
      return;
    }
    if (depth >= tree_->budget.max_depth) {
      out->kind = ProofNode::Kind::kDepthLimit;
      tree_->truncated = true;
      return;
    }
    out->kind = ProofNode::Kind::kDerived;
    out->clause_index = d->clause_index;
    on_path_.insert(key);
    const Premise* premises = store_.premises(*d);
    for (uint32_t pi = 0; pi < d->premise_count; ++pi) {
      if (tree_->nodes >= tree_->budget.max_nodes) {
        tree_->truncated = true;
        ProofNode cut;
        cut.kind = ProofNode::Kind::kNodeLimit;
        out->children.push_back(std::move(cut));
        break;
      }
      const Premise& p = premises[pi];
      ProofNode child;
      switch (p.kind) {
        case Premise::Kind::kFact:
          Build(p.predicate, p.tuple, depth + 1, &child);
          break;
        case Premise::Kind::kIdFact: {
          ++tree_->nodes;
          child.kind = ProofNode::Kind::kTidChoice;
          child.label = p.predicate + IdSuffix(p.group) +
                        TupleToString(p.tuple, symbols_);
          // The underlying tuple (without the tid) may itself be derived.
          Tuple base(p.tuple.begin(), p.tuple.end() - 1);
          if (store_.Lookup(p.predicate, base) != nullptr &&
              tree_->nodes < tree_->budget.max_nodes) {
            ProofNode sub;
            Build(p.predicate, base, depth + 2, &sub);
            child.children.push_back(std::move(sub));
          }
          break;
        }
        case Premise::Kind::kNegation:
          ++tree_->nodes;
          child.kind = ProofNode::Kind::kNegation;
          child.label =
              "not " + p.predicate + TupleToString(p.tuple, symbols_);
          break;
        case Premise::Kind::kBuiltin:
          ++tree_->nodes;
          child.kind = ProofNode::Kind::kBuiltin;
          child.label = p.builtin_text;
          break;
      }
      out->children.push_back(std::move(child));
    }
    on_path_.erase(key);
  }

 private:
  const ProvenanceStore& store_;
  const SymbolTable& symbols_;
  const std::function<bool(const std::string&, const Tuple&)>& is_leaf_;
  ProofTree* tree_;
  std::set<std::pair<std::string, Tuple>> on_path_;
};

void RenderProofNodeText(const ProofNode& node, const WhyBudget& budget,
                         int depth, std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case ProofNode::Kind::kDerived:
      *out += indent + node.label + "   <= clause #" +
              std::to_string(node.clause_index) + "\n";
      break;
    case ProofNode::Kind::kDatabaseFact:
      *out += indent + node.label + "   [database fact]\n";
      break;
    case ProofNode::Kind::kTidChoice:
      *out += indent + node.label + "   [tid choice]\n";
      break;
    case ProofNode::Kind::kNegation:
      *out += indent + node.label + "   [absent]\n";
      break;
    case ProofNode::Kind::kBuiltin:
      *out += indent + node.label + "   [built-in]\n";
      break;
    case ProofNode::Kind::kCycle:
      *out += indent + node.label + "   [cycle — already being explained]\n";
      break;
    case ProofNode::Kind::kDepthLimit:
      *out += indent + node.label + "   [... depth limit (" +
              std::to_string(budget.max_depth) + ")]\n";
      break;
    case ProofNode::Kind::kNodeLimit:
      *out += indent + "[... node budget (" +
              std::to_string(budget.max_nodes) + ") reached]\n";
      break;
    case ProofNode::Kind::kUnderivable:
      *out += indent + node.label + "   [underivable]\n";
      break;
  }
  for (const ProofNode& child : node.children) {
    RenderProofNodeText(child, budget, depth + 1, out);
  }
}

const char* ProofKindName(ProofNode::Kind kind) {
  switch (kind) {
    case ProofNode::Kind::kDerived: return "derived";
    case ProofNode::Kind::kDatabaseFact: return "database-fact";
    case ProofNode::Kind::kTidChoice: return "tid-choice";
    case ProofNode::Kind::kNegation: return "negation";
    case ProofNode::Kind::kBuiltin: return "builtin";
    case ProofNode::Kind::kCycle: return "cycle";
    case ProofNode::Kind::kDepthLimit: return "depth-limit";
    case ProofNode::Kind::kNodeLimit: return "node-limit";
    case ProofNode::Kind::kUnderivable: return "underivable";
  }
  return "unknown";
}

void RenderProofNodeJson(const ProofNode& node, std::string* out) {
  *out += "{\"kind\":\"";
  *out += ProofKindName(node.kind);
  *out += "\",\"label\":" + JsonQuote(node.label);
  if (node.kind == ProofNode::Kind::kDerived) {
    *out += ",\"clause\":" + std::to_string(node.clause_index);
  }
  if (node.kind == ProofNode::Kind::kDerived ||
      node.kind == ProofNode::Kind::kTidChoice) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ",";
      RenderProofNodeJson(node.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

std::string BudgetJson(const WhyBudget& budget) {
  return "{\"max_depth\":" + std::to_string(budget.max_depth) +
         ",\"max_nodes\":" + std::to_string(budget.max_nodes) + "}";
}

// ---------------------------------------------------------------------------
// WHY NOT: rule-by-rule first-failing-premise analysis.

/// Executes one compiled rule body over the final relations, mimicking
/// the executor's binding discipline, to find the first failing premise
/// (the deepest plan step reachable by some binding of the steps before
/// it; ties keep the first binding reached, which makes the report
/// deterministic given the relations' insertion order).
class RuleWalker {
 public:
  RuleWalker(const WhyNotContext& ctx, const RulePlan& plan,
             std::vector<std::optional<Value>> slots)
      : ctx_(ctx), plan_(plan), slots_(std::move(slots)) {}

  /// True if the body is satisfiable under the head bindings; otherwise
  /// fills `*failure` with the first failing premise.
  bool Satisfiable(WhyNotFailure* failure) {
    best_ = WhyNotFailure();
    best_.step_index = -1;
    if (Step(0)) return true;
    *failure = std::move(best_);
    return false;
  }

 private:
  using Undo = std::vector<std::pair<int, std::optional<Value>>>;

  bool Step(size_t i) {
    if (i == plan_.steps.size()) return true;
    const PlanStep& step = plan_.steps[i];
    switch (step.kind) {
      case PlanStep::Kind::kScan: return StepScan(i, step);
      case PlanStep::Kind::kNegation: return StepNegation(i, step);
      case PlanStep::Kind::kBuiltin: return StepBuiltin(i, step);
    }
    return false;
  }

  const Relation* Resolve(const PlanStep& step) const {
    if (step.is_id) {
      return ctx_.id_relation ? ctx_.id_relation(step.predicate, step.group)
                              : nullptr;
    }
    return ctx_.full ? ctx_.full(step.predicate) : nullptr;
  }

  /// Binds the step's sources against `row`; on mismatch restores any
  /// tentative bindings and returns false. On success the caller owns
  /// undoing `*undo`.
  bool MatchRow(const PlanStep& step, const Tuple& row, Undo* undo) {
    if (row.size() != step.sources.size()) return false;
    for (size_t pos = 0; pos < step.sources.size(); ++pos) {
      const ArgSource& src = step.sources[pos];
      bool ok;
      if (!src.is_slot) {
        ok = src.constant == row[pos];
      } else {
        std::optional<Value>& slot = slots_[src.slot];
        if (slot.has_value()) {
          ok = *slot == row[pos];
        } else {
          undo->emplace_back(src.slot, slot);
          slot = row[pos];
          ok = true;
        }
      }
      if (!ok) {
        Rollback(undo);
        return false;
      }
    }
    return true;
  }

  void Rollback(Undo* undo) {
    for (auto it = undo->rbegin(); it != undo->rend(); ++it) {
      slots_[it->first] = it->second;
    }
    undo->clear();
  }

  bool StepScan(size_t i, const PlanStep& step) {
    const Relation* rel = Resolve(step);
    bool any = false;
    if (rel != nullptr) {
      for (const Tuple& row : rel->tuples()) {
        Undo undo;
        if (!MatchRow(step, row, &undo)) continue;
        any = true;
        if (Step(i + 1)) return true;
        Rollback(&undo);
      }
    }
    if (!any) RecordScanFail(i, step, rel);
    return false;
  }

  bool StepNegation(size_t i, const PlanStep& step) {
    const Relation* rel = Resolve(step);
    bool present = false;
    if (rel != nullptr) {
      for (const Tuple& row : rel->tuples()) {
        Undo undo;
        if (MatchRow(step, row, &undo)) {
          Rollback(&undo);
          present = true;
          break;
        }
      }
    }
    if (!present) return Step(i + 1);
    RecordFail(i, MakeFailure(WhyNotFailure::Class::kBlockedNegation, i,
                              "not " + RenderAtom(step)));
    return false;
  }

  bool StepBuiltin(size_t i, const PlanStep& step) {
    const size_t n = step.sources.size();
    if (step.negated) {
      std::vector<Value> args;
      args.reserve(n);
      for (size_t pos = 0; pos < n; ++pos) {
        std::optional<Value> v = ValueAt(step, pos);
        if (!v.has_value()) break;  // Planner guarantees bound; bail safe.
        args.push_back(*v);
      }
      if (args.size() == n && !BuiltinHolds(step.builtin, args)) {
        return Step(i + 1);
      }
      RecordFail(i, MakeFailure(WhyNotFailure::Class::kFailedBuiltin, i,
                                RenderBuiltin(step)));
      return false;
    }
    // Enumerate with the executor's kKey binding pattern; extra-bound
    // slots (head-bound kWrite positions) act as filters on solutions.
    std::vector<std::optional<Value>> pattern(n);
    for (size_t pos = 0; pos < n; ++pos) {
      if (step.modes[pos] == ArgMode::kKey) pattern[pos] = ValueAt(step, pos);
    }
    bool any = false;
    std::vector<std::vector<Value>> sols;
    Status st = EnumerateBuiltin(step.builtin, pattern,
                                 [&](const std::vector<Value>& sol) {
                                   sols.push_back(sol);
                                 });
    if (st.ok()) {
      for (const std::vector<Value>& sol : sols) {
        Undo undo;
        bool ok = true;
        for (size_t pos = 0; pos < n && ok; ++pos) {
          const ArgSource& src = step.sources[pos];
          if (!src.is_slot) {
            ok = src.constant == sol[pos];
            continue;
          }
          std::optional<Value>& slot = slots_[src.slot];
          if (slot.has_value()) {
            ok = *slot == sol[pos];
          } else {
            undo.emplace_back(src.slot, slot);
            slot = sol[pos];
          }
        }
        if (ok) {
          any = true;
          if (Step(i + 1)) return true;
        }
        Rollback(&undo);
      }
    }
    if (!any) {
      RecordFail(i, MakeFailure(WhyNotFailure::Class::kFailedBuiltin, i,
                                RenderBuiltin(step)));
    }
    return false;
  }

  std::optional<Value> ValueAt(const PlanStep& step, size_t pos) const {
    const ArgSource& src = step.sources[pos];
    if (!src.is_slot) return src.constant;
    return slots_[src.slot];
  }

  std::string RenderValue(const std::optional<Value>& v) const {
    return v.has_value() ? v->ToString(*ctx_.symbols) : "_";
  }

  std::string RenderAtom(const PlanStep& step) const {
    std::string out = step.predicate;
    if (step.is_id) out += IdSuffix(step.group);
    out += "(";
    for (size_t pos = 0; pos < step.sources.size(); ++pos) {
      if (pos > 0) out += ", ";
      out += RenderValue(ValueAt(step, pos));
    }
    return out + ")";
  }

  std::string RenderBuiltin(const PlanStep& step) const {
    std::string out = step.negated ? "not " : "";
    out += BuiltinName(step.builtin);
    out += "(";
    for (size_t pos = 0; pos < step.sources.size(); ++pos) {
      if (pos > 0) out += ", ";
      out += RenderValue(ValueAt(step, pos));
    }
    return out + ")";
  }

  WhyNotFailure MakeFailure(WhyNotFailure::Class cls, size_t i,
                            std::string rendered) const {
    WhyNotFailure f;
    f.cls = cls;
    f.step_index = static_cast<int>(i);
    f.rendered = std::move(rendered);
    return f;
  }

  void RecordScanFail(size_t i, const PlanStep& step, const Relation* rel) {
    if (static_cast<int>(i) <= best_.step_index) return;
    WhyNotFailure f = MakeFailure(WhyNotFailure::Class::kMissingSubgoal, i,
                                  RenderAtom(step));
    const size_t n = step.sources.size();
    std::vector<std::optional<Value>> bound(n);
    bool ground = true;
    for (size_t pos = 0; pos < n; ++pos) {
      bound[pos] = ValueAt(step, pos);
      ground = ground && bound[pos].has_value();
    }
    if (step.is_id && n > 0 && bound[n - 1].has_value()) {
      // A materialized row matching every non-tid position means the
      // base tuple is in the group — just under a different tid than
      // required.
      if (rel != nullptr) {
        for (const Tuple& row : rel->tuples()) {
          if (row.size() != n) continue;
          bool base_match = true;
          for (size_t pos = 0; pos + 1 < n && base_match; ++pos) {
            base_match = !bound[pos].has_value() || *bound[pos] == row[pos];
          }
          if (base_match) {
            f.cls = WhyNotFailure::Class::kTidMismatch;
            f.chosen_tid = row[n - 1].ToString(*ctx_.symbols);
            break;
          }
        }
      }
      // Tid-bound pushdown materializes only the tids the program can
      // use, so the mismatching row may have been elided. The base
      // relation still witnesses the mismatch; the chosen tid is then
      // unknown (unmaterialized).
      if (f.cls == WhyNotFailure::Class::kMissingSubgoal) {
        const Relation* base =
            ctx_.full ? ctx_.full(step.predicate) : nullptr;
        if (base != nullptr) {
          for (const Tuple& row : base->tuples()) {
            if (row.size() + 1 != n) continue;
            bool base_match = true;
            for (size_t pos = 0; pos + 1 < n && base_match; ++pos) {
              base_match =
                  !bound[pos].has_value() || *bound[pos] == row[pos];
            }
            if (base_match) {
              f.cls = WhyNotFailure::Class::kTidMismatch;
              break;
            }
          }
        }
      }
    }
    if (f.cls == WhyNotFailure::Class::kMissingSubgoal) {
      f.predicate = step.predicate;
      // For an ID premise the recursion target is the base tuple (the
      // tid is the model's choice, not a derivable fact).
      const size_t base_n = step.is_id ? n - 1 : n;
      f.ground = ground || (step.is_id && [&] {
                   for (size_t pos = 0; pos < base_n; ++pos) {
                     if (!bound[pos].has_value()) return false;
                   }
                   return true;
                 }());
      if (f.ground) {
        for (size_t pos = 0; pos < base_n; ++pos) f.tuple.push_back(*bound[pos]);
      }
    }
    RecordFail(i, std::move(f));
  }

  void RecordFail(size_t i, WhyNotFailure f) {
    // Deepest frontier wins; first binding to reach it wins ties.
    if (static_cast<int>(i) <= best_.step_index) return;
    best_ = std::move(f);
  }

  const WhyNotContext& ctx_;
  const RulePlan& plan_;
  std::vector<std::optional<Value>> slots_;
  WhyNotFailure best_;
};

class WhyNotBuilder {
 public:
  WhyNotBuilder(const WhyNotContext& ctx, WhyNotReport* report)
      : ctx_(ctx), report_(report) {}

  void Build(const std::string& pred, const Tuple& tuple, int depth,
             WhyNotNode* out) {
    ++report_->nodes;
    out->predicate = pred;
    out->tuple = tuple;
    out->label = pred + TupleToString(tuple, *ctx_.symbols);
    const Relation* rel = ctx_.full ? ctx_.full(pred) : nullptr;
    if (rel != nullptr && rel->Contains(tuple)) {
      out->holds = true;
      return;
    }
    auto key = std::make_pair(pred, tuple);
    if (on_path_.count(key) > 0) {
      out->cycle = true;
      return;
    }
    if (depth >= report_->budget.max_depth) {
      out->truncated = true;
      out->truncation =
          "depth budget (" + std::to_string(report_->budget.max_depth) +
          ") reached";
      report_->truncated = true;
      return;
    }
    std::vector<const RulePlan*> candidates;
    if (ctx_.plans != nullptr) {
      for (const RulePlan& plan : *ctx_.plans) {
        if (plan.head_pred == pred) candidates.push_back(&plan);
      }
    }
    if (candidates.empty()) {
      out->no_rules = true;
      return;
    }
    on_path_.insert(key);
    for (const RulePlan* plan : candidates) {
      if (report_->nodes >= report_->budget.max_nodes) {
        out->truncated = true;
        out->truncation =
            "node budget (" + std::to_string(report_->budget.max_nodes) +
            ") reached";
        report_->truncated = true;
        break;
      }
      ++report_->nodes;
      WhyNotRule r;
      r.clause_index = plan->clause_index;
      if (ctx_.rule_texts != nullptr && plan->clause_index >= 0 &&
          static_cast<size_t>(plan->clause_index) < ctx_.rule_texts->size()) {
        r.rule_text = (*ctx_.rule_texts)[plan->clause_index];
      }
      std::vector<std::optional<Value>> slots(
          static_cast<size_t>(plan->num_slots));
      if (tuple.size() == plan->head_args.size() &&
          UnifyHead(*plan, tuple, &slots)) {
        r.unifies = true;
        RuleWalker walker(ctx_, *plan, std::move(slots));
        if (walker.Satisfiable(&r.failure)) {
          r.derivable = true;
        } else if (r.failure.cls == WhyNotFailure::Class::kMissingSubgoal &&
                   r.failure.ground) {
          r.sub = std::make_unique<WhyNotNode>();
          Build(r.failure.predicate, r.failure.tuple, depth + 1, r.sub.get());
        }
      }
      out->rules.push_back(std::move(r));
    }
    on_path_.erase(key);
  }

 private:
  static bool UnifyHead(const RulePlan& plan, const Tuple& tuple,
                        std::vector<std::optional<Value>>* slots) {
    for (size_t i = 0; i < plan.head_args.size(); ++i) {
      const ArgSource& src = plan.head_args[i];
      if (!src.is_slot) {
        if (!(src.constant == tuple[i])) return false;
        continue;
      }
      std::optional<Value>& slot = (*slots)[src.slot];
      if (slot.has_value()) {
        if (!(*slot == tuple[i])) return false;
      } else {
        slot = tuple[i];
      }
    }
    return true;
  }

  const WhyNotContext& ctx_;
  WhyNotReport* report_;
  std::set<std::pair<std::string, Tuple>> on_path_;
};

const char* FailureClassName(WhyNotFailure::Class cls) {
  switch (cls) {
    case WhyNotFailure::Class::kMissingSubgoal: return "missing-subgoal";
    case WhyNotFailure::Class::kBlockedNegation: return "blocked-negation";
    case WhyNotFailure::Class::kFailedBuiltin: return "failed-builtin";
    case WhyNotFailure::Class::kTidMismatch: return "tid-mismatch";
  }
  return "unknown";
}

const char* FailureAnnotation(WhyNotFailure::Class cls) {
  switch (cls) {
    case WhyNotFailure::Class::kMissingSubgoal: return "[missing subgoal]";
    case WhyNotFailure::Class::kBlockedNegation:
      return "[blocked: fact is present]";
    case WhyNotFailure::Class::kFailedBuiltin:
      return "[built-in unsatisfied]";
    case WhyNotFailure::Class::kTidMismatch: return "[tid mismatch]";
  }
  return "";
}

void RenderWhyNotNodeText(const WhyNotNode& node, int depth,
                          std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (node.holds) {
    *out += indent + node.label + "   holds in the computed model\n";
    return;
  }
  if (node.cycle) {
    *out += indent + node.label + "   [cycle — already being analyzed]\n";
    return;
  }
  if (node.no_rules) {
    *out += indent + node.label +
            "   [no rule derives this predicate and it is not stored]\n";
    return;
  }
  *out += indent + node.label + "   does not hold\n";
  for (const WhyNotRule& r : node.rules) {
    std::string rule_indent(static_cast<size_t>(depth + 1) * 2, ' ');
    *out += rule_indent + "clause #" + std::to_string(r.clause_index);
    if (!r.rule_text.empty()) *out += ": " + r.rule_text;
    *out += "\n";
    std::string detail_indent(static_cast<size_t>(depth + 2) * 2, ' ');
    if (!r.unifies) {
      *out += detail_indent + "head does not unify\n";
      continue;
    }
    if (r.derivable) {
      *out += detail_indent +
              "body satisfiable — the run may have stopped before "
              "deriving this fact\n";
      continue;
    }
    *out += detail_indent + "first failing premise: " + r.failure.rendered +
            "   " + FailureAnnotation(r.failure.cls);
    if (r.failure.cls == WhyNotFailure::Class::kTidMismatch) {
      *out += r.failure.chosen_tid.empty()
                  ? " (the base tuple exists under an unmaterialized tid)"
                  : " (the model chose tid " + r.failure.chosen_tid + ")";
    }
    *out += "\n";
    if (r.sub != nullptr) {
      RenderWhyNotNodeText(*r.sub, depth + 3, out);
    }
  }
  if (node.truncated) {
    std::string mark_indent(static_cast<size_t>(depth + 1) * 2, ' ');
    *out += mark_indent + "[... " + node.truncation + "]\n";
  }
}

void RenderWhyNotNodeJson(const WhyNotNode& node, std::string* out) {
  *out += "{\"label\":" + JsonQuote(node.label);
  *out += ",\"pred\":" + JsonQuote(node.predicate);
  const char* status = node.holds     ? "holds"
                       : node.cycle   ? "cycle"
                       : node.no_rules ? "no-rules"
                                       : "analyzed";
  *out += ",\"status\":\"";
  *out += status;
  *out += "\"";
  if (node.truncated) {
    *out += ",\"truncation\":" + JsonQuote(node.truncation);
  }
  if (!node.holds && !node.cycle && !node.no_rules) {
    *out += ",\"rules\":[";
    for (size_t i = 0; i < node.rules.size(); ++i) {
      if (i > 0) *out += ",";
      const WhyNotRule& r = node.rules[i];
      *out += "{\"clause\":" + std::to_string(r.clause_index);
      if (!r.rule_text.empty()) {
        *out += ",\"rule\":" + JsonQuote(r.rule_text);
      }
      *out += ",\"unifies\":";
      *out += r.unifies ? "true" : "false";
      if (r.unifies && r.derivable) {
        *out += ",\"derivable\":true";
      }
      if (r.unifies && !r.derivable) {
        *out += ",\"failure\":{\"class\":\"";
        *out += FailureClassName(r.failure.cls);
        *out += "\",\"step\":" + std::to_string(r.failure.step_index);
        *out += ",\"premise\":" + JsonQuote(r.failure.rendered);
        *out += ",\"ground\":";
        *out += r.failure.ground ? "true" : "false";
        if (r.failure.cls == WhyNotFailure::Class::kTidMismatch &&
            !r.failure.chosen_tid.empty()) {
          *out += ",\"chosen_tid\":" + JsonQuote(r.failure.chosen_tid);
        }
        *out += "}";
        if (r.sub != nullptr) {
          *out += ",\"why_not\":";
          RenderWhyNotNodeJson(*r.sub, out);
        }
      }
      *out += "}";
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

ProofTree BuildProofTree(const ProvenanceStore& store,
                         const SymbolTable& symbols, const std::string& pred,
                         const Tuple& tuple,
                         const std::function<bool(const std::string&,
                                                  const Tuple&)>& is_leaf,
                         const WhyBudget& budget) {
  ProofTree tree;
  tree.budget = budget;
  ProofBuilder builder(store, symbols, is_leaf, &tree);
  builder.Build(pred, tuple, 0, &tree.root);
  return tree;
}

std::string RenderWhyText(const ProofTree& tree) {
  std::string out = "WHY " + tree.root.label + "\n";
  RenderProofNodeText(tree.root, tree.budget, 1, &out);
  if (tree.truncated) {
    out += "(truncated at depth " + std::to_string(tree.budget.max_depth) +
           " / " + std::to_string(tree.budget.max_nodes) + " nodes)\n";
  }
  return out;
}

std::string RenderWhyJson(const ProofTree& tree) {
  std::string out = "{\"schema\":\"idlog-why-v1\",\"mode\":\"why\"";
  out += ",\"query\":" + JsonQuote(tree.root.label);
  out += ",\"budget\":" + BudgetJson(tree.budget);
  out += ",\"nodes\":" + std::to_string(tree.nodes);
  out += ",\"truncated\":";
  out += tree.truncated ? "true" : "false";
  out += ",\"tree\":";
  RenderProofNodeJson(tree.root, &out);
  out += "}";
  return out;
}

WhyNotReport BuildWhyNot(const WhyNotContext& ctx, const std::string& pred,
                         const Tuple& tuple, const WhyBudget& budget) {
  WhyNotReport report;
  report.budget = budget;
  WhyNotBuilder builder(ctx, &report);
  builder.Build(pred, tuple, 0, &report.root);
  return report;
}

std::string RenderWhyNotText(const WhyNotReport& report) {
  std::string out = "WHY NOT " + report.root.label + "\n";
  RenderWhyNotNodeText(report.root, 1, &out);
  if (report.truncated) {
    out += "(truncated at depth " +
           std::to_string(report.budget.max_depth) + " / " +
           std::to_string(report.budget.max_nodes) + " nodes)\n";
  }
  return out;
}

std::string RenderWhyNotJson(const WhyNotReport& report) {
  std::string out = "{\"schema\":\"idlog-why-v1\",\"mode\":\"why-not\"";
  out += ",\"query\":" + JsonQuote(report.root.label);
  out += ",\"budget\":" + BudgetJson(report.budget);
  out += ",\"nodes\":" + std::to_string(report.nodes);
  out += ",\"truncated\":";
  out += report.truncated ? "true" : "false";
  out += ",\"root\":";
  RenderWhyNotNodeJson(report.root, &out);
  out += "}";
  return out;
}

}  // namespace idlog
