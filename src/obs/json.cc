#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace idlog {

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

/// Recursive-descent JSON reader that only tracks positions.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  Status Check() {
    SkipSpace();
    IDLOG_RETURN_NOT_OK(Value(0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing content");
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("malformed JSON at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status String() {
    if (!Eat('"')) return Error("expected string");
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<size_t>(i)]))) {
              return Error("bad \\u escape");
            }
          }
          pos_ += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return Error("bad escape");
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status Number() {
    size_t start = pos_;
    (void)Eat('-');
    if (!DigitRun()) return Error("expected digits");
    if (Eat('.') && !DigitRun()) return Error("expected fraction digits");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!DigitRun()) return Error("expected exponent digits");
    }
    // "01" is not a JSON number.
    if (text_[start] == '-') ++start;
    if (text_[start] == '0' && start + 1 < pos_ &&
        std::isdigit(static_cast<unsigned char>(text_[start + 1]))) {
      return Error("leading zero");
    }
    return Status::OK();
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("expected value");
    char c = text_[pos_];
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  Status Object(int depth) {
    (void)Eat('{');
    SkipSpace();
    if (Eat('}')) return Status::OK();
    while (true) {
      SkipSpace();
      IDLOG_RETURN_NOT_OK(String());
      SkipSpace();
      if (!Eat(':')) return Error("expected ':'");
      SkipSpace();
      IDLOG_RETURN_NOT_OK(Value(depth + 1));
      SkipSpace();
      if (Eat('}')) return Status::OK();
      if (!Eat(',')) return Error("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    (void)Eat('[');
    SkipSpace();
    if (Eat(']')) return Status::OK();
    while (true) {
      SkipSpace();
      IDLOG_RETURN_NOT_OK(Value(depth + 1));
      SkipSpace();
      if (Eat(']')) return Status::OK();
      if (!Eat(',')) return Error("expected ',' or ']'");
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return JsonChecker(text).Check();
}

}  // namespace idlog
