#include "obs/explain.h"

#include <cstdarg>
#include <cstdio>

#include "obs/json.h"

namespace idlog {

namespace {

void AppendRow(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  *out += buf;
}

std::string ColsToString(const std::vector<int>& cols) {
  std::string s;
  for (int c : cols) {
    if (!s.empty()) s += ",";
    s += std::to_string(c);
  }
  return s;
}

/// Compact ArgMode string, one letter per argument position:
/// k = key (bound before the step), w = write (binds a slot),
/// f = filter (must equal a slot already written).
std::string ModesToString(const PlanStep& step) {
  std::string s;
  for (ArgMode m : step.modes) {
    switch (m) {
      case ArgMode::kKey: s += 'k'; break;
      case ArgMode::kWrite: s += 'w'; break;
      case ArgMode::kFilter: s += 'f'; break;
    }
  }
  return s.empty() ? "-" : s;
}

const char* StepKindName(const PlanStep& step) {
  switch (step.kind) {
    case PlanStep::Kind::kScan: return "scan";
    case PlanStep::Kind::kNegation: return "negation";
    case PlanStep::Kind::kBuiltin: return "builtin";
  }
  return "?";
}

std::string StepTarget(const PlanStep& step) {
  if (step.kind == PlanStep::Kind::kBuiltin) {
    std::string s = step.negated ? "not " : "";
    s += BuiltinName(step.builtin);
    return s;
  }
  std::string s = step.predicate;
  if (step.is_id) s += "[" + ColsToString(step.group) + "]";
  s += "/" + std::to_string(step.sources.size());
  return s;
}

/// How the step reaches its rows: the index choice for scans, a hash
/// probe for negation, enumeration/check for built-ins.
std::string StepAccess(const PlanStep& step, bool use_indexes) {
  switch (step.kind) {
    case PlanStep::Kind::kScan:
      if (step.key_cols.empty()) return "full-scan";
      if (!use_indexes) return "filter-scan";
      return "index(" + ColsToString(step.key_cols) + ")";
    case PlanStep::Kind::kNegation:
      return "probe";
    case PlanStep::Kind::kBuiltin:
      return step.negated ? "check" : "enumerate";
  }
  return "-";
}

bool IsDeltaCandidate(const RulePlan& plan, size_t step) {
  for (int s : plan.positive_scan_steps) {
    if (static_cast<size_t>(s) == step) return true;
  }
  return false;
}

const StepCounters* CountersFor(const ExplainDoc& doc, int clause_index,
                                size_t step) {
  if (doc.analysis == nullptr || clause_index < 0) return nullptr;
  size_t ci = static_cast<size_t>(clause_index);
  if (ci >= doc.analysis->rules.size()) return nullptr;
  const auto& steps = doc.analysis->rules[ci].steps;
  return step < steps.size() ? &steps[step] : nullptr;
}

void AppendCounters(std::string* out, const StepCounters* c,
                    bool with_selectivity) {
  if (c == nullptr) {
    AppendRow(out, " %10s %10s %9s %8s %8s %10s %7s", "-", "-", "-", "-",
              "-", "-", "-");
    return;
  }
  std::string sel = "-";
  if (with_selectivity && c->rows_scanned > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * static_cast<double>(c->rows_emitted) /
                      static_cast<double>(c->rows_scanned));
    sel = buf;
  }
  AppendRow(out, " %10llu %10llu %9llu %8llu %8llu %10llu %7s",
            static_cast<unsigned long long>(c->rows_in),
            static_cast<unsigned long long>(c->rows_scanned),
            static_cast<unsigned long long>(c->index_probes),
            static_cast<unsigned long long>(c->index_hits),
            static_cast<unsigned long long>(c->index_misses),
            static_cast<unsigned long long>(c->rows_emitted), sel.c_str());
}

void AppendNotes(std::string* out, const RewriteLog* log, int clause_index,
                 const char* indent) {
  if (log == nullptr) return;
  for (const RewriteNote& n : log->notes()) {
    if (n.clause_index != clause_index) continue;
    AppendRow(out, "%s- %s: %s\n", indent, n.pass.c_str(),
              n.detail.c_str());
  }
}

bool HasNotes(const RewriteLog* log, int clause_index) {
  if (log == nullptr) return false;
  for (const RewriteNote& n : log->notes()) {
    if (n.clause_index == clause_index) return true;
  }
  return false;
}

}  // namespace

std::string RenderExplainText(const ExplainDoc& doc) {
  const bool analyze = doc.analysis != nullptr;
  std::string out;
  int strata = 0;
  for (const ExplainRule& r : doc.rules) {
    if (r.stratum + 1 > strata) strata = r.stratum + 1;
  }
  AppendRow(&out, "EXPLAIN%s (%zu rules, %d strata)\n",
            analyze ? " ANALYZE" : "", doc.rules.size(), strata);

  if (HasNotes(doc.rewrites, -1)) {
    out += "program rewrites:\n";
    AppendNotes(&out, doc.rewrites, -1, "  ");
  }

  for (const ExplainRule& r : doc.rules) {
    out += "\n";
    AppendRow(&out, "clause %d  [stratum %d]  %s\n", r.clause_index,
              r.stratum, r.text.c_str());
    if (HasNotes(doc.rewrites, r.clause_index)) {
      out += "  rewrites:\n";
      AppendNotes(&out, doc.rewrites, r.clause_index, "    ");
    }
    if (r.plan == nullptr) continue;
    const RulePlan& plan = *r.plan;

    AppendRow(&out, "  %-5s %-9s %-22s %-6s %-6s %-12s %-5s", "step",
              "kind", "target", "keys", "modes", "access", "delta");
    if (analyze) {
      AppendRow(&out, " %10s %10s %9s %8s %8s %10s %7s", "rows_in",
                "scanned", "probes", "idx_hit", "idx_miss", "emitted",
                "sel");
    }
    out += "\n";

    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& step = plan.steps[i];
      std::string name = "s" + std::to_string(i);
      std::string keys =
          step.key_cols.empty() ? "-" : ColsToString(step.key_cols);
      AppendRow(&out, "  %-5s %-9s %-22s %-6s %-6s %-12s %-5s",
                name.c_str(), StepKindName(step), StepTarget(step).c_str(),
                keys.c_str(), ModesToString(step).c_str(),
                StepAccess(step, doc.use_indexes).c_str(),
                IsDeltaCandidate(plan, i) ? "cand" : "-");
      if (analyze) {
        AppendCounters(&out, CountersFor(doc, r.clause_index, i),
                       /*with_selectivity=*/true);
      }
      out += "\n";
    }
    std::string head =
        plan.head_pred + "/" + std::to_string(plan.head_args.size());
    AppendRow(&out, "  %-5s %-9s %-22s %-6s %-6s %-12s %-5s", "emit",
              "emit", head.c_str(), "-", "-", "-", "-");
    if (analyze) {
      // The emit pseudo-step: rows_in is the rule's facts_derived,
      // rows_emitted its facts_inserted (new in the round's staging).
      AppendCounters(&out, CountersFor(doc, r.clause_index,
                                       plan.steps.size()),
                     /*with_selectivity=*/false);
    }
    out += "\n";
  }

  if (analyze && !doc.analysis->strata.empty()) {
    out += "\nfixpoint rounds:\n";
    for (const StratumRoundStats& s : doc.analysis->strata) {
      AppendRow(&out, "  stratum %d: %zu round(s), new facts per round:",
                s.stratum, s.new_facts_per_round.size());
      for (uint64_t n : s.new_facts_per_round) {
        AppendRow(&out, " %llu", static_cast<unsigned long long>(n));
      }
      out += "\n";
    }
  }

  if (analyze && doc.totals != nullptr) {
    const EvalStats& t = *doc.totals;
    AppendRow(&out,
              "\ntotals: tuples_considered=%llu facts_derived=%llu "
              "facts_inserted=%llu rule_firings=%llu iterations=%llu "
              "index_probes=%llu index_builds=%llu "
              "index_cache_misses=%llu\n",
              static_cast<unsigned long long>(t.tuples_considered),
              static_cast<unsigned long long>(t.facts_derived),
              static_cast<unsigned long long>(t.facts_inserted),
              static_cast<unsigned long long>(t.rule_firings),
              static_cast<unsigned long long>(t.iterations),
              static_cast<unsigned long long>(t.index_probes),
              static_cast<unsigned long long>(t.index_builds),
              static_cast<unsigned long long>(t.index_cache_misses));
  }
  return out;
}

std::string RenderExplainJson(const ExplainDoc& doc) {
  const bool analyze = doc.analysis != nullptr;
  std::string out = "{\"schema\":\"idlog-explain-v1\"";
  out += ",\"analyze\":";
  out += analyze ? "true" : "false";
  out += ",\"use_indexes\":";
  out += doc.use_indexes ? "true" : "false";

  auto append_notes = [&](int clause_index) {
    bool first = true;
    out += "[";
    if (doc.rewrites != nullptr) {
      for (const RewriteNote& n : doc.rewrites->notes()) {
        if (n.clause_index != clause_index) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"pass\":" + JsonQuote(n.pass) +
               ",\"detail\":" + JsonQuote(n.detail) + "}";
      }
    }
    out += "]";
  };

  out += ",\"program_rewrites\":";
  append_notes(-1);

  auto append_int_array = [&](const std::vector<int>& v) {
    out += "[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(v[i]);
    }
    out += "]";
  };

  out += ",\"rules\":[";
  for (size_t ri = 0; ri < doc.rules.size(); ++ri) {
    const ExplainRule& r = doc.rules[ri];
    if (ri > 0) out += ",";
    out += "{\"clause\":" + std::to_string(r.clause_index);
    out += ",\"stratum\":" + std::to_string(r.stratum);
    out += ",\"rule\":" + JsonQuote(r.text);
    if (r.plan != nullptr) {
      out += ",\"head\":" + JsonQuote(r.plan->head_pred);
    }
    out += ",\"rewrites\":";
    append_notes(r.clause_index);
    out += ",\"steps\":[";
    if (r.plan != nullptr) {
      const RulePlan& plan = *r.plan;
      // Only logical counters go into the JSON (rows in/scanned/
      // emitted, index probes): they are identical whatever --jobs is,
      // which keeps the whole document byte-identical across runs.
      // Physical cache counters (hits/misses) live in the text output.
      auto append_step_counters = [&](size_t i) {
        const StepCounters* c = CountersFor(doc, r.clause_index, i);
        if (!analyze || c == nullptr) return;
        out += ",\"rows_in\":" + std::to_string(c->rows_in);
        out += ",\"rows_scanned\":" + std::to_string(c->rows_scanned);
        out += ",\"index_probes\":" + std::to_string(c->index_probes);
        out += ",\"rows_emitted\":" + std::to_string(c->rows_emitted);
      };
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep& step = plan.steps[i];
        if (i > 0) out += ",";
        out += "{\"step\":" + std::to_string(i);
        out += ",\"kind\":" + JsonQuote(StepKindName(step));
        out += ",\"target\":" + JsonQuote(StepTarget(step));
        if (step.kind != PlanStep::Kind::kBuiltin) {
          out += ",\"predicate\":" + JsonQuote(step.predicate);
          out += ",\"id\":";
          out += step.is_id ? "true" : "false";
          if (step.is_id) {
            out += ",\"group\":";
            append_int_array(step.group);
          }
        }
        out += ",\"keys\":";
        append_int_array(step.key_cols);
        out += ",\"modes\":" + JsonQuote(ModesToString(step));
        out += ",\"access\":" + JsonQuote(StepAccess(step, doc.use_indexes));
        out += ",\"delta_candidate\":";
        out += IsDeltaCandidate(plan, i) ? "true" : "false";
        append_step_counters(i);
        out += "}";
      }
      if (!plan.steps.empty()) out += ",";
      out += "{\"step\":" + std::to_string(plan.steps.size());
      out += ",\"kind\":\"emit\"";
      out += ",\"target\":" + JsonQuote(plan.head_pred);
      append_step_counters(plan.steps.size());
      out += "}";
    }
    out += "]}";
  }
  out += "]";

  if (analyze) {
    out += ",\"strata\":[";
    for (size_t si = 0; si < doc.analysis->strata.size(); ++si) {
      const StratumRoundStats& s = doc.analysis->strata[si];
      if (si > 0) out += ",";
      out += "{\"stratum\":" + std::to_string(s.stratum);
      out += ",\"new_facts_per_round\":[";
      for (size_t i = 0; i < s.new_facts_per_round.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(s.new_facts_per_round[i]);
      }
      out += "]}";
    }
    out += "]";
  }

  if (analyze && doc.totals != nullptr) {
    const EvalStats& t = *doc.totals;
    // Logical counters only — no wall time, no build/miss counts.
    out += ",\"totals\":{";
    out += "\"tuples_considered\":" + std::to_string(t.tuples_considered);
    out += ",\"facts_derived\":" + std::to_string(t.facts_derived);
    out += ",\"facts_inserted\":" + std::to_string(t.facts_inserted);
    out += ",\"rule_firings\":" + std::to_string(t.rule_firings);
    out += ",\"iterations\":" + std::to_string(t.iterations);
    out += ",\"strata_evaluated\":" + std::to_string(t.strata_evaluated);
    out += ",\"id_groups_assigned\":" + std::to_string(t.id_groups_assigned);
    out += ",\"id_tuples_materialized\":" +
           std::to_string(t.id_tuples_materialized);
    out += ",\"index_probes\":" + std::to_string(t.index_probes);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace idlog
