#include "obs/profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace idlog {

namespace {

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendRow(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

std::string EvalProfile::ToTable() const {
  std::vector<const RuleProfile*> order;
  order.reserve(rules.size());
  for (const RuleProfile& r : rules) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const RuleProfile* a, const RuleProfile* b) {
              if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
              return a->clause_index < b->clause_index;
            });

  std::string out;
  AppendRow(&out, "%-6s %-7s %-16s %9s %9s %12s %10s %10s %10s  %s\n",
            "clause", "stratum", "head", "evals", "firings", "considered",
            "derived", "inserted", "self-ms", "rule");
  for (const RuleProfile* r : order) {
    AppendRow(&out, "%-6d %-7d %-16s %9llu %9llu %12llu %10llu %10llu %10s  %s\n",
              r->clause_index, r->stratum, r->head_pred.c_str(),
              static_cast<unsigned long long>(r->evals),
              static_cast<unsigned long long>(r->firings),
              static_cast<unsigned long long>(r->tuples_considered),
              static_cast<unsigned long long>(r->facts_derived),
              static_cast<unsigned long long>(r->facts_inserted),
              FormatMs(r->self_ns).c_str(), r->rule.c_str());
  }
  out += "\n";
  AppendRow(&out, "%-8s %6s %7s %10s\n", "stratum", "rules", "rounds",
            "wall-ms");
  for (const StratumProfile& s : strata) {
    AppendRow(&out, "%-8d %6llu %7llu %10s\n", s.index,
              static_cast<unsigned long long>(s.rules),
              static_cast<unsigned long long>(s.rounds),
              FormatMs(s.wall_ns).c_str());
  }
  AppendRow(&out,
            "\ntotals: tuples_considered=%llu facts_derived=%llu "
            "facts_inserted=%llu rule_firings=%llu iterations=%llu "
            "strata=%llu id_groups=%llu id_tuples=%llu wall-ms=%s\n",
            static_cast<unsigned long long>(totals.tuples_considered),
            static_cast<unsigned long long>(totals.facts_derived),
            static_cast<unsigned long long>(totals.facts_inserted),
            static_cast<unsigned long long>(totals.rule_firings),
            static_cast<unsigned long long>(totals.iterations),
            static_cast<unsigned long long>(totals.strata_evaluated),
            static_cast<unsigned long long>(totals.id_groups_assigned),
            static_cast<unsigned long long>(totals.id_tuples_materialized),
            FormatMs(wall_ns).c_str());
  return out;
}

void EvalProfile::ToMetrics(MetricsRegistry* metrics) const {
  metrics->AddCounter("totals.tuples_considered", totals.tuples_considered);
  metrics->AddCounter("totals.facts_derived", totals.facts_derived);
  metrics->AddCounter("totals.facts_inserted", totals.facts_inserted);
  metrics->AddCounter("totals.rule_firings", totals.rule_firings);
  metrics->AddCounter("totals.iterations", totals.iterations);
  metrics->AddCounter("totals.strata_evaluated", totals.strata_evaluated);
  metrics->AddCounter("totals.id_groups_assigned", totals.id_groups_assigned);
  metrics->AddCounter("totals.id_tuples_materialized",
                      totals.id_tuples_materialized);
  // index_probes is logical (identical across --jobs); index_builds and
  // index_cache_misses are physical (serial builds lazily, --jobs
  // pre-builds eagerly) and, like wall times, are excluded from
  // serial-vs-parallel equality comparisons.
  metrics->AddCounter("totals.index_probes", totals.index_probes);
  metrics->AddCounter("totals.index_builds", totals.index_builds);
  metrics->AddCounter("totals.index_cache_misses",
                      totals.index_cache_misses);
  // Provenance footprint: logical quantities (the parallel merge
  // reproduces the serial store), so all three are jobs-invariant.
  // Zero when provenance is off.
  metrics->AddCounter("provenance.nodes", totals.provenance_nodes);
  metrics->AddCounter("provenance.premises", totals.provenance_premises);
  metrics->SetGauge("provenance.bytes",
                    static_cast<int64_t>(totals.provenance_bytes));
  metrics->ObserveDuration("totals.eval_wall", wall_ns);
  for (const StratumProfile& s : strata) {
    std::string prefix = "stratum." + std::to_string(s.index) + ".";
    metrics->SetGauge(prefix + "rules", static_cast<int64_t>(s.rules));
    metrics->AddCounter(prefix + "rounds", s.rounds);
    metrics->ObserveDuration(prefix + "wall", s.wall_ns);
  }
  for (const RuleProfile& r : rules) {
    // "rule.<clause>.<head>." keys stay stable across runs of one
    // program, so two reports diff cleanly.
    std::string prefix =
        "rule." + std::to_string(r.clause_index) + "." + r.head_pred + ".";
    metrics->SetGauge(prefix + "stratum", r.stratum);
    metrics->AddCounter(prefix + "evals", r.evals);
    metrics->AddCounter(prefix + "firings", r.firings);
    metrics->AddCounter(prefix + "tuples_considered", r.tuples_considered);
    metrics->AddCounter(prefix + "facts_derived", r.facts_derived);
    metrics->AddCounter(prefix + "facts_inserted", r.facts_inserted);
    metrics->ObserveDuration(prefix + "self", r.self_ns);
  }
}

std::string EvalProfile::ToMetricsJson() const {
  MetricsRegistry metrics;
  ToMetrics(&metrics);
  return metrics.ToJson();
}

}  // namespace idlog
