#include "inflationary/inflationary.h"

#include <algorithm>
#include <optional>
#include <random>

#include "eval/builtin_eval.h"
#include "obs/trace.h"

namespace idlog {

namespace {

/// The evolving instance: predicate name -> tuple set. Ordered
/// containers give a canonical form for memoization.
using State = std::map<std::string, std::set<Tuple>>;

State InitialState(const Database& database) {
  State state;
  for (const std::string& name : database.relation_names()) {
    const Relation* rel = *database.Get(name);
    auto& bucket = state[name];
    for (const Tuple& t : rel->tuples()) bucket.insert(t);
  }
  return state;
}

/// A fully instantiated clause firing: adds `adds`, removes `dels`.
struct Firing {
  std::vector<std::pair<std::string, Tuple>> adds;
  std::vector<std::pair<std::string, Tuple>> dels;
  int invented = 0;  ///< Number of fresh constants this firing needs.

  bool ChangesState(const State& state) const {
    for (const auto& [pred, t] : adds) {
      auto it = state.find(pred);
      if (it == state.end() || it->second.count(t) == 0) return true;
    }
    for (const auto& [pred, t] : dels) {
      auto it = state.find(pred);
      if (it != state.end() && it->second.count(t) > 0) return true;
    }
    return false;
  }

  bool operator<(const Firing& o) const {
    if (adds != o.adds) return adds < o.adds;
    return dels < o.dels;
  }
};

using Bindings = std::map<std::string, Value>;

/// Enumerates all satisfying ground substitutions of `body` against
/// `state`. Positive ordinary literals are matched first (in order),
/// then built-ins, then negations — programs whose builtins/negations
/// have variables unbound by positives are rejected.
class BodyMatcher {
 public:
  BodyMatcher(const std::vector<Literal>& body, const State& state)
      : state_(state) {
    for (const Literal& l : body) {
      if (l.atom.kind == AtomKind::kOrdinary && !l.negated) {
        positives_.push_back(&l);
      } else if (l.atom.kind == AtomKind::kBuiltin) {
        builtins_.push_back(&l);
      } else {
        negatives_.push_back(&l);
      }
    }
  }

  Status ForEachMatch(const std::function<Status(const Bindings&)>& fn) {
    Bindings bindings;
    return MatchPositive(0, &bindings, fn);
  }

 private:
  static bool UnifyAtom(const Atom& atom, const Tuple& t,
                        Bindings* bindings,
                        std::vector<std::string>* newly_bound) {
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& term = atom.terms[i];
      if (term.is_constant()) {
        if (term.value() != t[i]) return false;
        continue;
      }
      auto it = bindings->find(term.var_name());
      if (it != bindings->end()) {
        if (it->second != t[i]) return false;
      } else {
        bindings->emplace(term.var_name(), t[i]);
        newly_bound->push_back(term.var_name());
      }
    }
    return true;
  }

  Result<Value> Eval(const Term& term, const Bindings& bindings) const {
    if (term.is_constant()) return term.value();
    auto it = bindings.find(term.var_name());
    if (it == bindings.end()) {
      return Status::UnsafeProgram(
          "variable '" + term.var_name() +
          "' in a built-in or negation is not positively bound");
    }
    return it->second;
  }

  Status MatchPositive(size_t i, Bindings* bindings,
                       const std::function<Status(const Bindings&)>& fn) {
    if (i == positives_.size()) return CheckFilters(*bindings, fn);
    const Atom& atom = positives_[i]->atom;
    auto it = state_.find(atom.predicate);
    if (it == state_.end()) return Status::OK();
    for (const Tuple& t : it->second) {
      if (t.size() != atom.terms.size()) continue;
      std::vector<std::string> newly_bound;
      if (UnifyAtom(atom, t, bindings, &newly_bound)) {
        IDLOG_RETURN_NOT_OK(MatchPositive(i + 1, bindings, fn));
      }
      for (const std::string& v : newly_bound) bindings->erase(v);
    }
    return Status::OK();
  }

  Status CheckFilters(const Bindings& bindings,
                      const std::function<Status(const Bindings&)>& fn) {
    for (const Literal* lit : builtins_) {
      std::vector<Value> args;
      for (const Term& t : lit->atom.terms) {
        IDLOG_ASSIGN_OR_RETURN(Value v, Eval(t, bindings));
        args.push_back(v);
      }
      bool holds = BuiltinHolds(lit->atom.builtin, args);
      if (holds == lit->negated) return Status::OK();
    }
    for (const Literal* lit : negatives_) {
      if (lit->atom.kind != AtomKind::kOrdinary) {
        return Status::Unsupported(
            "inflationary programs support only ordinary and built-in "
            "literals");
      }
      Tuple t;
      for (const Term& term : lit->atom.terms) {
        IDLOG_ASSIGN_OR_RETURN(Value v, Eval(term, bindings));
        t.push_back(v);
      }
      auto it = state_.find(lit->atom.predicate);
      bool present = it != state_.end() && it->second.count(t) > 0;
      if (present) return Status::OK();  // Negation fails: no match.
    }
    return fn(bindings);
  }

  const State& state_;
  std::vector<const Literal*> positives_;
  std::vector<const Literal*> builtins_;
  std::vector<const Literal*> negatives_;
};

/// Cache of invented constants, keyed by (clause index, body binding,
/// head variable). Functional (Skolem-style) invention: re-firing the
/// same instantiation reuses its constants, so invention rules saturate
/// instead of inventing forever.
class InventionCache {
 public:
  InventionCache(SymbolTable* symbols, uint64_t budget)
      : symbols_(symbols), budget_(budget) {}

  Result<Value> Get(size_t clause_index, const Bindings& body_bindings,
                    const std::string& var) {
    std::string key = std::to_string(clause_index) + "|" + var;
    for (const auto& [name, value] : body_bindings) {
      key += "|" + name + "=" +
             (value.is_number() ? "i" + std::to_string(value.number())
                                : "u" + std::to_string(value.symbol()));
    }
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    if (cache_.size() >= budget_) {
      return Status::ResourceExhausted("invented-value budget exhausted");
    }
    Value fresh = Value::Symbol(
        symbols_->Intern("@new" + std::to_string(cache_.size())));
    cache_.emplace(std::move(key), fresh);
    return fresh;
  }

 private:
  SymbolTable* symbols_;
  uint64_t budget_;
  std::map<std::string, Value> cache_;
};

/// Builds the firing for one clause instantiation. Head variables
/// missing from `bindings` are invented (DL only) via the functional
/// invention cache.
Result<Firing> MakeFiring(const InfClause& clause, size_t clause_index,
                          const Bindings& bindings, InfLanguage language,
                          InventionCache* inventions) {
  Firing firing;
  Bindings extended = bindings;
  for (const Literal& h : clause.head) {
    if (h.atom.kind != AtomKind::kOrdinary) {
      return Status::InvalidArgument("head atoms must be ordinary");
    }
    Tuple t;
    for (const Term& term : h.atom.terms) {
      if (term.is_constant()) {
        t.push_back(term.value());
        continue;
      }
      auto it = extended.find(term.var_name());
      if (it != extended.end()) {
        t.push_back(it->second);
        continue;
      }
      if (language == InfLanguage::kNDatalog) {
        return Status::UnsafeProgram(
            "N-DATALOG head variable '" + term.var_name() +
            "' must be positively bound in the body");
      }
      if (h.negated) {
        return Status::UnsafeProgram(
            "invented values cannot appear under a negated head");
      }
      IDLOG_ASSIGN_OR_RETURN(
          Value fresh,
          inventions->Get(clause_index, bindings, term.var_name()));
      extended.emplace(term.var_name(), fresh);
      t.push_back(fresh);
      ++firing.invented;
    }
    if (h.negated) {
      if (language != InfLanguage::kNDatalog) {
        return Status::InvalidArgument(
            "negated heads are only valid in N-DATALOG");
      }
      firing.dels.emplace_back(h.atom.predicate, std::move(t));
    } else {
      firing.adds.emplace_back(h.atom.predicate, std::move(t));
    }
  }
  // N-DATALOG consistency: a head containing p(t) and not p(t) is
  // inconsistent and the instantiation cannot fire.
  for (const auto& add : firing.adds) {
    for (const auto& del : firing.dels) {
      if (add == del) {
        return Status::InvalidArgument("inconsistent head");
      }
    }
  }
  return firing;
}

void Apply(const Firing& firing, State* state) {
  for (const auto& [pred, t] : firing.adds) (*state)[pred].insert(t);
  for (const auto& [pred, t] : firing.dels) {
    auto it = state->find(pred);
    if (it != state->end()) it->second.erase(t);
  }
}

/// All firings applicable in `state` that would change it.
Result<std::vector<Firing>> ApplicableFirings(const InfProgram& program,
                                              const State& state,
                                              InfLanguage language,
                                              InventionCache* inventions,
                                              ResourceGovernor* gov) {
  std::vector<Firing> firings;
  for (size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const InfClause& clause = program.clauses[ci];
    BodyMatcher matcher(clause.body, state);
    Status st = matcher.ForEachMatch([&](const Bindings& b) -> Status {
      IDLOG_RETURN_NOT_OK(gov->CheckPoint());
      Result<Firing> firing =
          MakeFiring(clause, ci, b, language, inventions);
      if (!firing.ok()) {
        if (firing.status().code() == StatusCode::kInvalidArgument &&
            firing.status().message() == "inconsistent head") {
          return Status::OK();  // Skip inconsistent instantiations.
        }
        return firing.status();
      }
      if (firing->ChangesState(state)) {
        firings.push_back(std::move(*firing));
      }
      return Status::OK();
    });
    IDLOG_RETURN_NOT_OK(st);
  }
  return firings;
}

Result<Database> StateToDatabase(const State& state,
                                 const Database& original) {
  Database out(original.symbols());
  for (const auto& [pred, tuples] : state) {
    if (tuples.empty()) {
      // Preserve emptied relations with their original type if known.
      Result<const Relation*> rel = original.Get(pred);
      if (rel.ok()) {
        IDLOG_RETURN_NOT_OK(out.CreateRelation(pred, (*rel)->type()));
      }
      continue;
    }
    for (const Tuple& t : tuples) {
      IDLOG_RETURN_NOT_OK(out.AddTuple(pred, t));
    }
  }
  return out;
}

}  // namespace

Result<InfProgram> InfProgramFromProgram(const Program& program) {
  InfProgram out;
  for (const Clause& clause : program.clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind == AtomKind::kId ||
          lit.atom.kind == AtomKind::kChoice) {
        return Status::InvalidArgument(
            "ID-atoms and choice have no inflationary semantics");
      }
    }
    InfClause ic;
    ic.head.push_back(Literal::Pos(clause.head));
    ic.body = clause.body;
    out.clauses.push_back(std::move(ic));
  }
  return out;
}

Result<Database> EvaluateInflationary(const InfProgram& program,
                                      const Database& database,
                                      const InfOptions& options) {
  State state = InitialState(database);
  std::mt19937_64 rng(options.seed);
  InventionCache inventions(database.symbols(), options.max_invented);

  // Legacy max_steps as a governor iteration budget when no shared
  // governor is supplied.
  ResourceGovernor local;
  ArmLegacyIterationCap(&local, options.max_steps);
  ResourceGovernor* gov =
      options.governor != nullptr ? options.governor : &local;
  gov->set_scope("inflationary evaluation");
  TraceSpan span(gov->trace_sink(), "inflationary evaluation",
                 "inflationary");
  span.AddArg(TraceArg::Num("clauses", program.clauses.size()));
  uint64_t steps = 0;

  while (true) {
    ++steps;
    span.AddArg(TraceArg::Num("steps", steps));
    IDLOG_RETURN_NOT_OK(gov->OnIteration());
    IDLOG_ASSIGN_OR_RETURN(std::vector<Firing> firings,
                           ApplicableFirings(program, state,
                                             options.language, &inventions,
                                             gov));
    if (firings.empty()) return StateToDatabase(state, database);

    if (options.mode == InfMode::kDeterministic) {
      if (options.language == InfLanguage::kNDatalog) {
        return Status::Unsupported(
            "deterministic mode is implemented for DL programs only");
      }
      for (const Firing& f : firings) {
        IDLOG_RETURN_NOT_OK(
            gov->OnDerived(f.adds.size(), f.adds.size() * 64));
        Apply(f, &state);
      }
    } else {
      std::uniform_int_distribution<size_t> dist(0, firings.size() - 1);
      const Firing& chosen = firings[dist(rng)];
      IDLOG_RETURN_NOT_OK(
          gov->OnDerived(chosen.adds.size(), chosen.adds.size() * 64));
      Apply(chosen, &state);
    }
  }
}

Result<AnswerSet> EnumerateInflationaryAnswers(const InfProgram& program,
                                               const Database& database,
                                               const std::string& query_pred,
                                               InfLanguage language,
                                               uint64_t max_states,
                                               ResourceGovernor* governor) {
  AnswerSet result;
  std::set<State> visited;
  std::vector<State> frontier = {InitialState(database)};
  InventionCache inventions(database.symbols(), /*budget=*/10000);

  // Legacy max_states as a governor tuple budget: one "tuple" per
  // distinct visited state.
  ResourceGovernor local;
  ArmLegacyTupleCap(&local, max_states);
  ResourceGovernor* gov = governor != nullptr ? governor : &local;
  gov->set_scope("inflationary enumeration");
  TraceSpan span(gov->trace_sink(), "inflationary enumeration",
                 "inflationary");
  span.AddArg(TraceArg::Str("query", query_pred));

  while (!frontier.empty()) {
    span.AddArg(TraceArg::Num("states_visited", result.assignments_tried));
    span.AddArg(TraceArg::Num("distinct_answers", result.answers.size()));
    State state = std::move(frontier.back());
    frontier.pop_back();
    if (!visited.insert(state).second) continue;
    uint64_t state_bytes = 0;
    for (const auto& [pred, tuples] : state) {
      state_bytes += pred.size() + tuples.size() * 64;
    }
    IDLOG_RETURN_NOT_OK(gov->OnDerived(1, state_bytes));
    ++result.assignments_tried;

    IDLOG_ASSIGN_OR_RETURN(
        std::vector<Firing> firings,
        ApplicableFirings(program, state, language, &inventions, gov));
    if (firings.empty()) {
      auto it = state.find(query_pred);
      std::vector<Tuple> answer;
      if (it != state.end()) {
        answer.assign(it->second.begin(), it->second.end());
      }
      result.answers.insert(std::move(answer));
      continue;
    }
    for (const Firing& f : firings) {
      State next = state;
      Apply(f, &next);
      if (visited.count(next) == 0) frontier.push_back(std::move(next));
    }
  }
  return result;
}

}  // namespace idlog
