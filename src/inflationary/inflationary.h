#ifndef IDLOG_INFLATIONARY_INFLATIONARY_H_
#define IDLOG_INFLATIONARY_INFLATIONARY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/limits.h"
#include "common/status.h"
#include "core/answer_enumerator.h"
#include "storage/database.h"

namespace idlog {

/// A clause of the inflationary-semantics languages of Section 3.2.1:
/// DL [AV88] allows negation in the body, several positive atoms in the
/// head, and head variables missing from the body (invented values);
/// N-DATALOG [ASV90] additionally allows negated head atoms (deletions)
/// but requires every head variable to be positively bound in the body.
struct InfClause {
  std::vector<Literal> head;  ///< Non-empty; atoms must be kOrdinary.
  std::vector<Literal> body;
};

struct InfProgram {
  std::vector<InfClause> clauses;
};

enum class InfLanguage {
  kDL,        ///< Multi-head, invented values, positive heads only.
  kNDatalog,  ///< Negated heads are deletions; no invented values.
};

enum class InfMode {
  /// Fire one applicable instantiation at a time, chosen by the policy
  /// — the non-deterministic inflationary semantics.
  kNonDeterministic,
  /// Fire all applicable instantiations per round simultaneously — the
  /// deterministic inflationary fixpoint (DL only; used for the
  /// Example 3 contrast).
  kDeterministic,
};

struct InfOptions {
  InfLanguage language = InfLanguage::kDL;
  InfMode mode = InfMode::kNonDeterministic;
  uint64_t seed = 0;            ///< Random instantiation choice.
  /// Deprecated firing cap (N-DATALOG may not terminate); applied as a
  /// local governor iteration budget when `governor` is null.
  uint64_t max_steps = 100000;
  uint64_t max_invented = 1000; ///< Cap on invented u-constants.
  /// Shared resource governor (deadline, tuple/memory budgets,
  /// cancellation). When set it supersedes max_steps. Not owned.
  ResourceGovernor* governor = nullptr;
};

/// Converts a standard single-head Program (no ID-atoms, no choice)
/// into an InfProgram.
Result<InfProgram> InfProgramFromProgram(const Program& program);

/// Runs the inflationary semantics from `database` and returns the
/// final state (every predicate touched, as relations). Sort-u values
/// invented by DL head variables appear as fresh "@newN" symbols.
Result<Database> EvaluateInflationary(const InfProgram& program,
                                      const Database& database,
                                      const InfOptions& options);

/// Exhaustively enumerates the possible final answers of `query_pred`
/// over all firing orders (DFS with state memoization). Exponential;
/// for the small instances of tests and bench E8. `max_states` caps the
/// number of distinct visited states (deprecated shim — a governor
/// tuple budget when `governor` is null; ignored otherwise). With a
/// governor, deadline/cancellation are observed once per visited state.
Result<AnswerSet> EnumerateInflationaryAnswers(const InfProgram& program,
                                               const Database& database,
                                               const std::string& query_pred,
                                               InfLanguage language,
                                               uint64_t max_states = 100000,
                                               ResourceGovernor* governor =
                                                   nullptr);

}  // namespace idlog

#endif  // IDLOG_INFLATIONARY_INFLATIONARY_H_
