#include "exec/thread_pool.h"

namespace idlog {

ThreadPool::ThreadPool(int size) : size_(size < 1 ? 1 : size) {
  workers_.reserve(static_cast<size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainQueue(std::unique_lock<std::mutex>* lock) {
  while (next_task_ < queue_.size()) {
    // The claim happens under the mutex and always takes the lowest
    // unclaimed index — the claim-order invariant Run() documents.
    std::function<void()> task = std::move(queue_[next_task_]);
    if (claim_observer_) claim_observer_(next_task_);
    ++next_task_;
    ++tasks_running_;
    lock->unlock();
    // Tasks are supposed to report errors through their own state, but a
    // throw must not take the process down or corrupt the batch
    // accounting (a stuck tasks_running_ would deadlock Run() forever).
    try {
      task();
    } catch (...) {
      // Swallowed: the submitter sees the task's unset/failed result.
    }
    lock->lock();
    --tasks_running_;
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_ready_.wait(lock, [this] {
      return shutdown_ || next_task_ < queue_.size();
    });
    if (shutdown_) return;
    DrainQueue(&lock);
    if (tasks_running_ == 0 && next_task_ == queue_.size()) {
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  queue_ = std::move(tasks);
  next_task_ = 0;
  work_ready_.notify_all();
  // The caller is one of the pool's threads: it executes tasks instead
  // of blocking, then waits for stragglers claimed by workers.
  DrainQueue(&lock);
  batch_done_.wait(lock, [this] {
    return tasks_running_ == 0 && next_task_ == queue_.size();
  });
  queue_.clear();
  next_task_ = 0;
}

}  // namespace idlog
