#ifndef IDLOG_EXEC_ROUND_EXECUTOR_H_
#define IDLOG_EXEC_ROUND_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "eval/eval_stats.h"
#include "eval/provenance.h"
#include "eval/rule_eval.h"
#include "eval/rule_plan.h"
#include "obs/explain.h"
#include "storage/relation.h"

namespace idlog {

class ThreadPool;

/// One partition's share of a round task: its private staging, private
/// counters, private provenance and its status. Unpartitioned tasks
/// have exactly one part covering the whole delta.
struct RoundPart {
  int partition = 0;            ///< Partition index in [0, partitions).
  Relation staged;              ///< Private output; typed by the driver.
  std::vector<uint64_t> staged_order;
                                ///< Delta-row ordinal per staged tuple
                                ///< (partitioned tasks only): the merge
                                ///< key that restores serial emission
                                ///< order across partitions at Commit.
  EvalStats stats;              ///< Private counters (facts_inserted is
                                ///< left 0 — Commit computes it against
                                ///< the full relation).
  RuleStepStats step_stats;     ///< EXPLAIN ANALYZE per-step counters.
                                ///< Sized steps+1 by the driver when
                                ///< analysis is on (empty = off); the
                                ///< emit entry's rows_emitted is left 0
                                ///< — Commit fills it, like
                                ///< facts_inserted.
  ProvenanceStore prov;         ///< Private derivations recorded by the
                                ///< part (uncharged); the driver
                                ///< absorbs them in task order — merged
                                ///< across partitions by `prov_order` —
                                ///< which reproduces the serial
                                ///< first-derivation-wins store exactly.
  std::vector<uint64_t> prov_order;
                                ///< Delta-row ordinal per retained
                                ///< provenance record (partitioned
                                ///< tasks only).
  uint64_t start_us = 0;        ///< Trace timestamp at part start.
  uint64_t self_ns = 0;         ///< Wall time inside the evaluation.
  Status status;                ///< The evaluation's status.
};

/// One independent `(rule, delta_step)` evaluation of a fixpoint round,
/// possibly fanned out into `partitions` sub-evaluations that each own
/// a hash partition of the delta relation. The driver (EvaluateStratum)
/// builds the task list in the exact order the serial loop would
/// evaluate, the executor runs every part, and the driver merges the
/// private results back in (task, partition-ordered) order — which is
/// what makes `--jobs N` and every partition count byte-identical to
/// serial.
struct RoundTask {
  const RulePlan* plan = nullptr;
  int delta_step = -1;          ///< -1 = full evaluation (round 0 / naive).
  int partitions = 1;           ///< Fan-out; > 1 only for eligible
                                ///< delta-step-0 tasks (see the driver).
  std::vector<int> partition_cols;
                                ///< Delta columns hashed to pick an
                                ///< owner (empty = whole row).
  std::vector<RoundPart> parts; ///< Sized `partitions` by the driver.
};

/// Evaluates every part of every task, each into its private `staged`
/// relation with private `stats`, and returns when all have finished.
///
/// With a pool (and more than one part), parts run concurrently: the
/// executor pre-builds (serially, via `base_ctx.index_caches`) every
/// column index any task can touch, and workers run with
/// `EvalContext::parallel_worker` set, which makes index access
/// lookup-only (IndexCache::FindFresh). Without a pool — or with a
/// single part — parts run sequentially on the calling thread with the
/// ordinary lazy mutable index builds, so a serial run keeps its
/// physical index counters. Both modes run with
/// `EvalContext::defer_inserts`: staged-insert accounting
/// (facts_inserted, emit rows_emitted, governor OnDerived charges,
/// provenance byte charges) is the driver's job at Commit, where "new"
/// is judged against the full relation — the definition that is
/// invariant across jobs and partition counts. The shared
/// ResourceGovernor is still probed from all workers (it is
/// thread-safe), so deadlines and cancellation interrupt long scans.
/// When `base_ctx.provenance` is set, each part records derivations
/// into its private `prov` store; the driver absorbs those stores in
/// serial task order (partitions merged by `prov_order`).
///
/// Per-part failures are reported in RoundPart::status and left to the
/// driver. A failing (or throwing — exceptions are converted to Status
/// inside the part) evaluation cancels the round: parts not yet started
/// are marked aborted instead of running. The pool claims queued parts
/// in index order, but claim order is not completion order — a part
/// claimed before the failure can still observe the abort flag after a
/// later-indexed part failed, so the driver must skip abort markers and
/// surface the first *real* error in part order (RoundAborted
/// identifies the markers). A governor trip additionally latches, so
/// parts already running unwind at their next checkpoint. The returned
/// Status covers executor-level failures only (index pre-build).
Status RunRoundTasks(const EvalContext& base_ctx, ThreadPool* pool,
                     std::vector<RoundTask>* tasks);

/// True if `s` is the synthetic "round aborted" marker RunRoundTasks
/// assigns to parts that were skipped because an earlier failure
/// cancelled the round (as opposed to a real evaluation error).
bool IsRoundAbortMarker(const Status& s);

}  // namespace idlog

#endif  // IDLOG_EXEC_ROUND_EXECUTOR_H_
