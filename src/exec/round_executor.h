#ifndef IDLOG_EXEC_ROUND_EXECUTOR_H_
#define IDLOG_EXEC_ROUND_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "eval/eval_stats.h"
#include "eval/rule_eval.h"
#include "eval/rule_plan.h"
#include "storage/relation.h"

namespace idlog {

class ThreadPool;

/// One independent `(rule, delta_step)` evaluation of a fixpoint round.
/// The driver (EvaluateStratum) builds the task list in the exact order
/// the serial loop would evaluate, the executor runs the evaluations
/// concurrently, and the driver merges the private results back in task
/// order — which is what makes `--jobs N` byte-identical to serial.
struct RoundTask {
  const RulePlan* plan = nullptr;
  int delta_step = -1;          ///< -1 = full evaluation (round 0 / naive).

  // Filled by RunRoundTasks:
  Relation staged;              ///< Private output; typed by the driver.
  EvalStats stats;              ///< Private counters (facts_inserted is
                                ///< left 0 — the merge computes it
                                ///< against the combined staging).
  RuleStepStats step_stats;     ///< EXPLAIN ANALYZE per-step counters.
                                ///< Sized steps+1 by the driver when
                                ///< analysis is on (empty = off); the
                                ///< emit entry's rows_emitted is left 0
                                ///< — the merge fills it, like
                                ///< facts_inserted.
  ProvenanceStore prov;         ///< Private derivations recorded by the
                                ///< worker (uncharged); the driver
                                ///< absorbs per-task stores in task
                                ///< order, which reproduces the serial
                                ///< first-derivation-wins store exactly.
  uint64_t start_us = 0;        ///< Trace timestamp at task start.
  uint64_t self_ns = 0;         ///< Wall time inside the evaluation.
  Status status;                ///< The evaluation's status.
};

/// Evaluates every task concurrently on `pool`, each into its private
/// `staged` relation with private `stats`.
///
/// Shared state is read-only for the duration: before dispatching, the
/// executor pre-builds (serially, via `base_ctx.index_caches`) every
/// column index any task can touch, and workers run with
/// `EvalContext::parallel_worker` set, which makes index access
/// lookup-only (IndexCache::FindFresh) and defers staged-insert
/// accounting (facts_inserted, governor OnDerived charges) to the
/// driver's deterministic merge. The shared ResourceGovernor is charged
/// from all workers (it is thread-safe). When `base_ctx.provenance` is
/// set, each worker records derivations into its task's private `prov`
/// store instead; the driver absorbs those stores in serial task order
/// (charging the governor for the retained bytes), so provenance runs
/// parallelize with the same byte-identical contract as everything else.
///
/// Per-task failures are reported in RoundTask::status and left to the
/// driver, which merges results up to the first failing task in task
/// order and then surfaces that error — the same error a serial run
/// would have stopped at. A failing (or throwing — exceptions are
/// converted to Status inside the task) evaluation cancels the round:
/// tasks not yet started are marked aborted instead of running, and
/// since the pool claims tasks in index order every aborted task sits
/// after the first failure, so the in-order merge never surfaces an
/// abort marker. A governor trip additionally latches, so tasks already
/// running unwind at their next checkpoint. The returned Status covers
/// executor-level failures only (index pre-build).
Status RunRoundTasks(const EvalContext& base_ctx, ThreadPool* pool,
                     std::vector<RoundTask>* tasks);

}  // namespace idlog

#endif  // IDLOG_EXEC_ROUND_EXECUTOR_H_
