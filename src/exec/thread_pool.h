#ifndef IDLOG_EXEC_THREAD_POOL_H_
#define IDLOG_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idlog {

/// A small fixed-size pool for the parallel stratum executor.
///
/// `size` is the total parallelism of a Run() call: the pool spawns
/// size-1 persistent workers and the calling thread executes tasks too,
/// so SetThreads(4) means four threads doing rule evaluations, not
/// five. Run() is a barrier — it returns only after every submitted
/// task finished — which is exactly the shape a fixpoint round needs
/// (no task of round r+1 may start before round r committed).
///
/// Error reporting goes through whatever state the task closure writes
/// (the stratum executor records a Status per task). A task that throws
/// anyway is contained: the exception is swallowed at the pool boundary
/// so it can neither terminate the process nor wedge the batch
/// accounting — submitters that may throw should catch inside the task
/// and record a Status, as RunRoundTasks does. One Run() at a time per
/// pool: the engine that owns the pool evaluates one stratum at a time,
/// so there is no re-entrancy.
class ThreadPool {
 public:
  explicit ThreadPool(int size);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  int size() const { return size_; }

  /// Executes every task, on workers and on the calling thread, and
  /// returns when all have finished.
  ///
  /// Claim-order invariant: tasks are *claimed* strictly in index
  /// order — every thread takes `tasks[next_task_++]` under the pool
  /// mutex, so no task is claimed before all lower-indexed tasks have
  /// been claimed. The round executor's abort protocol depends on this
  /// (a task skipped by the abort flag can only sit after a task that
  /// already started), and the unit test pins it; a future
  /// work-stealing scheduler must either preserve it or revisit that
  /// protocol. Claim order is NOT completion order: a claimed task may
  /// finish after arbitrarily many higher-indexed ones, so callers
  /// needing determinism must still merge results by task index
  /// afterwards, and must not assume a lower-indexed task observed any
  /// shared state (e.g. an abort flag) earlier than a higher-indexed
  /// one.
  void Run(std::vector<std::function<void()>> tasks);

  /// Test-only seam: `obs` is invoked with each task's index at claim
  /// time, under the pool mutex (so observed order == claim order).
  /// Pass nullptr to remove. Not for production use — the callback
  /// runs inside the pool's critical section.
  void SetClaimObserverForTest(std::function<void(size_t)> obs) {
    std::lock_guard<std::mutex> lock(mu_);
    claim_observer_ = std::move(obs);
  }

 private:
  void WorkerLoop();
  /// Pops and runs queued tasks until the queue drains; used by both
  /// workers and the Run() caller.
  void DrainQueue(std::unique_lock<std::mutex>* lock);

  const int size_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::vector<std::function<void()>> queue_;
  size_t next_task_ = 0;       ///< Index of the next unclaimed task.
  std::function<void(size_t)> claim_observer_;  ///< Test-only.
  size_t tasks_running_ = 0;   ///< Claimed but not yet finished.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace idlog

#endif  // IDLOG_EXEC_THREAD_POOL_H_
