#include "exec/round_executor.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "exec/thread_pool.h"

namespace idlog {

namespace {

/// Builds or refreshes, on the calling thread, every column index the
/// tasks can reach, so workers never mutate the shared cache. The set
/// is enumerable up front because each plan step scans one fixed
/// relation (its predicate's full, delta, or ID relation) with fixed
/// key columns.
Status PrebuildIndexes(const EvalContext& ctx,
                       const std::vector<RoundTask>& tasks) {
  if (!ctx.use_indexes || ctx.index_caches == nullptr) return Status::OK();
  for (const RoundTask& task : tasks) {
    const RulePlan& plan = *task.plan;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& step = plan.steps[i];
      if (step.kind != PlanStep::Kind::kScan || step.key_cols.empty()) {
        continue;
      }
      const Relation* rel = nullptr;
      if (step.is_id) {
        IDLOG_ASSIGN_OR_RETURN(rel,
                               ctx.id_relation(step.predicate, step.group));
      } else if (static_cast<int>(i) == task.delta_step) {
        rel = ctx.delta ? ctx.delta(step.predicate) : nullptr;
      } else {
        rel = ctx.full(step.predicate);
      }
      if (rel == nullptr || rel->empty()) continue;
      auto it = ctx.index_caches->find(rel);
      if (it == ctx.index_caches->end()) {
        it = ctx.index_caches
                 ->emplace(rel, std::make_unique<IndexCache>(rel))
                 .first;
      }
      bool rebuilt = false;
      (void)it->second->Get(step.key_cols, &rebuilt);
      // Physical index work moves into this coordinator pre-build under
      // --jobs; the counters are physical (like wall times) and are not
      // compared across serial/parallel runs.
      if (rebuilt && ctx.stats != nullptr) {
        ++ctx.stats->index_builds;
        ++ctx.stats->index_cache_misses;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status RunRoundTasks(const EvalContext& base_ctx, ThreadPool* pool,
                     std::vector<RoundTask>* tasks) {
  IDLOG_RETURN_NOT_OK(PrebuildIndexes(base_ctx, *tasks));

  // One failed (or throwing) task cancels the round: tasks not yet
  // started when the flag goes up return a "round aborted" status
  // instead of evaluating. Because the pool claims tasks in index order,
  // every skipped task has a higher index than the first failure, so the
  // driver's in-order merge always surfaces the real error, never an
  // abort marker.
  std::atomic<bool> abort{false};

  std::vector<std::function<void()>> jobs;
  jobs.reserve(tasks->size());
  for (RoundTask& task : *tasks) {
    RoundTask* t = &task;
    jobs.push_back([&base_ctx, &abort, t] {
      if (abort.load(std::memory_order_relaxed)) {
        t->status = Status::Internal(
            "round aborted: an earlier task in this round failed");
        return;
      }
      EvalContext worker_ctx = base_ctx;
      worker_ctx.stats = &t->stats;
      worker_ctx.parallel_worker = true;
      // Observability attribution happens in the driver's deterministic
      // merge; workers only measure. Per-step counters go to the task's
      // private buffer, never the shared PlanAnalysis.
      worker_ctx.trace = nullptr;
      worker_ctx.profile = nullptr;
      worker_ctx.analyze = nullptr;
      worker_ctx.step_stats =
          t->step_stats.steps.empty() ? nullptr : &t->step_stats;
      // Derivations go to the task's private store; the driver absorbs
      // them in serial task order (first-derivation-wins), so the final
      // store matches a serial run byte-for-byte.
      if (base_ctx.provenance != nullptr) worker_ctx.provenance = &t->prov;
      if (base_ctx.trace != nullptr) t->start_us = base_ctx.trace->NowUs();
      auto t0 = std::chrono::steady_clock::now();
      // Rule evaluation reports through Status, but anything it calls
      // could still throw (and the fault-injection harness does, on
      // purpose): convert to a Status here so exactly one error reaches
      // the driver and the pool never sees an exception.
      try {
        Status fp = Status::OK();
        if (Failpoints::AnyArmed()) {
          fp = Failpoints::Instance().OnHit("exec.round.task");
        }
        t->status = fp.ok() ? EvaluateRuleInto(*t->plan, worker_ctx,
                                               t->delta_step, &t->staged)
                            : fp;
      } catch (const std::exception& e) {
        t->status =
            Status::Internal(std::string("round task threw: ") + e.what());
      } catch (...) {
        t->status = Status::Internal("round task threw a non-standard "
                                     "exception");
      }
      t->self_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (!t->status.ok()) abort.store(true, std::memory_order_relaxed);
    });
  }
  pool->Run(std::move(jobs));
  return Status::OK();
}

}  // namespace idlog
