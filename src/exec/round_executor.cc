#include "exec/round_executor.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "exec/thread_pool.h"

namespace idlog {

namespace {

constexpr const char kAbortMarker[] =
    "round aborted: an earlier task in this round failed";

/// Builds or refreshes, on the calling thread, every column index the
/// tasks can reach, so workers never mutate the shared cache. The set
/// is enumerable up front because each plan step scans one fixed
/// relation (its predicate's full, delta, or ID relation) with fixed
/// key columns.
Status PrebuildIndexes(const EvalContext& ctx,
                       const std::vector<RoundTask>& tasks) {
  if (!ctx.use_indexes || ctx.index_caches == nullptr) return Status::OK();
  for (const RoundTask& task : tasks) {
    const RulePlan& plan = *task.plan;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& step = plan.steps[i];
      if (step.kind != PlanStep::Kind::kScan || step.key_cols.empty()) {
        continue;
      }
      const Relation* rel = nullptr;
      if (step.is_id) {
        IDLOG_ASSIGN_OR_RETURN(rel,
                               ctx.id_relation(step.predicate, step.group));
      } else if (static_cast<int>(i) == task.delta_step) {
        rel = ctx.delta ? ctx.delta(step.predicate) : nullptr;
      } else {
        rel = ctx.full(step.predicate);
      }
      if (rel == nullptr || rel->empty()) continue;
      auto it = ctx.index_caches->find(rel);
      if (it == ctx.index_caches->end()) {
        it = ctx.index_caches
                 ->emplace(rel, std::make_unique<IndexCache>(rel))
                 .first;
      }
      bool rebuilt = false;
      (void)it->second->Get(step.key_cols, &rebuilt);
      // Physical index work moves into this coordinator pre-build under
      // --jobs; the counters are physical (like wall times) and are not
      // compared across serial/parallel runs.
      if (rebuilt && ctx.stats != nullptr) {
        ++ctx.stats->index_builds;
        ++ctx.stats->index_cache_misses;
      }
    }
  }
  return Status::OK();
}

/// Evaluates one part: sets up the part-private context (counters,
/// per-step buffer, provenance store, partition slice) and converts any
/// escaping exception into the part's Status. `pooled` selects the
/// lookup-only index mode for pool workers.
void RunPart(const EvalContext& base_ctx, const RoundTask& task,
             RoundPart* part, std::atomic<bool>* abort, bool pooled) {
  if (abort->load(std::memory_order_relaxed)) {
    part->status = Status::Internal(kAbortMarker);
    return;
  }
  EvalContext ctx = base_ctx;
  ctx.stats = &part->stats;
  ctx.parallel_worker = pooled;
  ctx.defer_inserts = true;
  // Observability attribution happens in the driver's deterministic
  // merge; parts only measure. Per-step counters go to the part's
  // private buffer, never the shared PlanAnalysis.
  ctx.trace = nullptr;
  ctx.profile = nullptr;
  ctx.analyze = nullptr;
  ctx.step_stats =
      part->step_stats.steps.empty() ? nullptr : &part->step_stats;
  // Derivations go to the part's private store; the driver absorbs them
  // in serial task order (first-derivation-wins), so the final store
  // matches a serial run byte-for-byte.
  if (base_ctx.provenance != nullptr) ctx.provenance = &part->prov;
  if (task.partitions > 1) {
    ctx.partition_index = part->partition;
    ctx.partition_count = task.partitions;
    ctx.partition_cols = &task.partition_cols;
    ctx.staged_order = &part->staged_order;
    if (base_ctx.provenance != nullptr) ctx.prov_order = &part->prov_order;
  }
  if (base_ctx.trace != nullptr) part->start_us = base_ctx.trace->NowUs();
  auto t0 = std::chrono::steady_clock::now();
  // Rule evaluation reports through Status, but anything it calls
  // could still throw (and the fault-injection harness does, on
  // purpose): convert to a Status here so exactly one error reaches
  // the driver and the pool never sees an exception.
  try {
    Status fp = Status::OK();
    if (Failpoints::AnyArmed()) {
      fp = Failpoints::Instance().OnHit("exec.round.task");
    }
    part->status = fp.ok() ? EvaluateRuleInto(*task.plan, ctx,
                                              task.delta_step, &part->staged)
                           : fp;
  } catch (const std::exception& e) {
    part->status =
        Status::Internal(std::string("round task threw: ") + e.what());
  } catch (...) {
    part->status = Status::Internal("round task threw a non-standard "
                                    "exception");
  }
  part->self_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (!part->status.ok()) abort->store(true, std::memory_order_relaxed);
}

}  // namespace

bool IsRoundAbortMarker(const Status& s) {
  return !s.ok() && s.message() == kAbortMarker;
}

Status RunRoundTasks(const EvalContext& base_ctx, ThreadPool* pool,
                     std::vector<RoundTask>* tasks) {
  size_t total_parts = 0;
  for (const RoundTask& task : *tasks) total_parts += task.parts.size();

  // One failed (or throwing) part cancels the round: parts not yet
  // started when the flag goes up return an abort marker instead of
  // evaluating. The driver's in-order merge skips the markers and
  // surfaces the first real error.
  std::atomic<bool> abort{false};

  const bool pooled = pool != nullptr && pool->size() > 1 && total_parts > 1;
  if (!pooled) {
    // Serial mode: the same task machinery, run in order on the calling
    // thread. Indexes build lazily inside the evaluation (mutable
    // cache access), exactly as the pre-task serial loop did.
    for (RoundTask& task : *tasks) {
      for (RoundPart& part : task.parts) {
        RunPart(base_ctx, task, &part, &abort, /*pooled=*/false);
      }
    }
    return Status::OK();
  }

  IDLOG_RETURN_NOT_OK(PrebuildIndexes(base_ctx, *tasks));
  std::vector<std::function<void()>> jobs;
  jobs.reserve(total_parts);
  for (RoundTask& task : *tasks) {
    RoundTask* tp = &task;
    for (RoundPart& part : task.parts) {
      RoundPart* pp = &part;
      jobs.push_back([&base_ctx, &abort, tp, pp] {
        RunPart(base_ctx, *tp, pp, &abort, /*pooled=*/true);
      });
    }
  }
  pool->Run(std::move(jobs));
  return Status::OK();
}

}  // namespace idlog
