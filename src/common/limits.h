#ifndef IDLOG_COMMON_LIMITS_H_
#define IDLOG_COMMON_LIMITS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "eval/eval_stats.h"

namespace idlog {

class TraceSink;  // obs/trace.h; the governor only holds a pointer.

/// Which governor budget tripped (see ResourceGovernor).
enum class BudgetKind {
  kDeadline,    ///< Wall-clock timeout.
  kTuples,      ///< Global derived-tuple budget.
  kMemory,      ///< Approximate-memory budget.
  kIterations,  ///< Fixpoint-iteration / firing-step cap.
  kCancelled,   ///< Cooperative cancellation from another thread.
};

/// "deadline", "tuples", "memory", "iterations" or "cancelled".
const char* BudgetKindName(BudgetKind kind);

/// Caller-facing resource-limit configuration. Zero means unlimited.
/// One EvalLimits governs a whole evaluation (all strata, all
/// enumeration branches) — not one relation or one module.
struct EvalLimits {
  int64_t timeout_ms = 0;          ///< Wall-clock deadline from Arm().
  uint64_t max_tuples = 0;         ///< Facts/states materialized anywhere.
  uint64_t max_memory_bytes = 0;   ///< Approximate bytes of derived data.
  uint64_t max_iterations = 0;     ///< Fixpoint rounds / firing steps.

  static EvalLimits Unlimited() { return EvalLimits{}; }
  static EvalLimits Deadline(int64_t ms) {
    EvalLimits l;
    l.timeout_ms = ms;
    return l;
  }
  static EvalLimits TupleBudget(uint64_t n) {
    EvalLimits l;
    l.max_tuples = n;
    return l;
  }
  static EvalLimits IterationBudget(uint64_t n) {
    EvalLimits l;
    l.max_iterations = n;
    return l;
  }

  bool unlimited() const {
    return timeout_ms == 0 && max_tuples == 0 && max_memory_bytes == 0 &&
           max_iterations == 0;
  }
};

/// Diagnostic captured at the moment a budget trips: which budget,
/// where (subsystem scope and stratum, when inside the stratified
/// engine), and the work-counter snapshot.
struct TripInfo {
  BudgetKind budget = BudgetKind::kCancelled;
  std::string scope;   ///< "stratum fixpoint", "grounder", ...
  int stratum = -1;    ///< Stratum index, or -1 outside the engine.
  EvalStats stats;     ///< Snapshot at trip time (if a source was set).
  /// Wall time between Arm() and the trip. Also copied into
  /// stats.eval_wall_ns when the source had not stamped one, so the
  /// snapshot is self-consistent (counters *and* elapsed time at trip).
  uint64_t elapsed_ns = 0;
  std::string message; ///< The rendered Status message.
};

/// One object carrying every resource budget of an evaluation: a
/// wall-clock deadline, a cooperative cancellation token, a global
/// derived-tuple budget, an approximate-memory budget and a
/// fixpoint-iteration cap.
///
/// Evaluation threads call CheckPoint()/OnDerived()/OnIteration() from
/// their hot loops; CheckPoint is amortized — it counts work units and
/// probes the clock and the cancel flag only once every kProbeInterval
/// units, so per-tuple cost is one relaxed atomic add and one compare.
/// Cancel() may be called from any thread at any time; the evaluation
/// observes it at its next probe.
///
/// Accounting is thread-safe: the parallel stratum executor charges one
/// shared governor from every worker (counters are relaxed atomics;
/// budget totals stay exact because each fetch_add observes its own
/// contribution). The trip latch is guarded by a mutex, so exactly one
/// thread renders the diagnostic and every other sees it complete.
/// Arm() and the diagnostic-label setters (set_scope/set_stratum/
/// set_stats_source) remain single-threaded: call them only between
/// evaluations or from the coordinating thread while workers are idle.
///
/// Once a budget trips the governor latches: every subsequent check
/// returns the same structured ResourceExhausted Status, so deep
/// evaluation stacks unwind promptly. Arm() resets everything.
class ResourceGovernor {
 public:
  /// Probe cadence of the amortized checkpoint (work units between
  /// clock/cancel probes). Public so tests can reason about how fast a
  /// Cancel() is observed.
  static constexpr uint64_t kProbeInterval = 2048;

  ResourceGovernor() { Arm(EvalLimits()); }
  explicit ResourceGovernor(const EvalLimits& limits) { Arm(limits); }

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Installs `limits`, clears all counters, diagnostic labels, the
  /// stats source and any latched trip, and starts the deadline clock
  /// now. Also clears a pending Cancel(). Call only between
  /// evaluations, never concurrently with one.
  void Arm(const EvalLimits& limits);

  /// Thread-safe cooperative cancellation: flags the governor; the
  /// evaluation thread trips at its next probe (within one checkpoint
  /// interval of work).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // --- Accounting, called from the (single) evaluation thread. ---

  /// Counts `units` of work; probes deadline/cancellation every
  /// kProbeInterval units. Returns the trip Status once tripped.
  Status CheckPoint(uint64_t units = 1) {
    if (tripped_.load(std::memory_order_acquire)) return TripStatus();
    uint64_t seen =
        work_.fetch_add(units, std::memory_order_relaxed) + units;
    if (seen < next_probe_.load(std::memory_order_relaxed)) {
      return Status::OK();
    }
    return Probe();
  }

  /// Charges `n` materialized tuples (facts, ground clauses, visited
  /// states — whatever the subsystem's unit of result is) and `bytes`
  /// of approximate memory against the global budgets.
  Status OnDerived(uint64_t n, uint64_t bytes) {
    if (tripped_.load(std::memory_order_acquire)) return TripStatus();
    uint64_t tuples =
        tuples_.fetch_add(n, std::memory_order_relaxed) + n;
    uint64_t memory =
        memory_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limits_.max_tuples != 0 && tuples > limits_.max_tuples) {
      return Trip(BudgetKind::kTuples);
    }
    if (limits_.max_memory_bytes != 0 &&
        memory > limits_.max_memory_bytes) {
      return Trip(BudgetKind::kMemory);
    }
    if (memory >= next_memory_milestone_.load(std::memory_order_relaxed)) {
      MaybeRecordMemoryMilestone(memory);
    }
    return CheckPoint(n);
  }

  /// Charges one fixpoint round (or one non-deterministic firing step)
  /// and probes the clock — rounds can be slow, so every round checks.
  Status OnIteration() {
    if (tripped_.load(std::memory_order_acquire)) return TripStatus();
    uint64_t rounds =
        iterations_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limits_.max_iterations != 0 && rounds > limits_.max_iterations) {
      return Trip(BudgetKind::kIterations);
    }
    return Probe();
  }

  // --- Diagnostic labelling (evaluation thread only). ---

  /// Names the subsystem currently charging the governor; appears in
  /// the trip diagnostic ("grounder", "stratum fixpoint", ...).
  void set_scope(std::string scope) { scope_ = std::move(scope); }
  const std::string& scope() const { return scope_; }

  /// Stratum index for trips inside the stratified engine (-1 outside).
  void set_stratum(int stratum) { stratum_ = stratum; }
  int stratum() const { return stratum_; }

  /// Observability hook: when set, the governor records a "governor
  /// trip" instant event (budget kind, scope, stratum, charges, elapsed
  /// time) into `sink` at the moment a budget trips or a cancellation
  /// is observed. Not owned; the sink must outlive the governor or be
  /// detached with nullptr. Unlike the diagnostic labels, Arm() keeps
  /// the sink installed — one trace can span many governed runs.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
  TraceSink* trace_sink() const { return trace_sink_; }

  /// Stats to snapshot into TripInfo when a budget trips. May be null.
  /// The pointed-to stats must stay alive until the source is replaced,
  /// cleared, or the governor is re-armed — engines that borrow a
  /// longer-lived governor should install it via GovernorScope, which
  /// restores the previous source when they are done.
  void set_stats_source(const EvalStats* stats) { stats_source_ = stats; }
  const EvalStats* stats_source() const { return stats_source_; }

  // --- Inspection. ---

  bool tripped() const {
    return tripped_.load(std::memory_order_acquire);
  }
  /// Valid only when tripped().
  const TripInfo& trip() const { return trip_; }
  /// ResourceExhausted with the trip diagnostic, or OK if not tripped.
  Status TripStatus() const;

  const EvalLimits& limits() const { return limits_; }
  uint64_t tuples_charged() const {
    return tuples_.load(std::memory_order_relaxed);
  }
  uint64_t memory_charged() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t iterations_charged() const {
    return iterations_.load(std::memory_order_relaxed);
  }

 private:
  Status Probe();                 ///< Slow path of CheckPoint.
  Status Trip(BudgetKind kind);   ///< Latches the trip diagnostic.
  /// Flight-recorder breadcrumb at memory-charge milestones (1 MiB,
  /// then doubling). Out of line: the hot path only pays the relaxed
  /// load above, and only crossings reach this call.
  void MaybeRecordMemoryMilestone(uint64_t memory);

  EvalLimits limits_;
  std::chrono::steady_clock::time_point armed_at_{};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  TraceSink* trace_sink_ = nullptr;
  std::atomic<bool> cancelled_{false};

  std::atomic<uint64_t> work_{0};
  std::atomic<uint64_t> next_probe_{kProbeInterval};
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> memory_bytes_{0};
  std::atomic<uint64_t> iterations_{0};
  /// Next memory-charge level worth a flight-recorder breadcrumb;
  /// doubles on every crossing. Reset to 1 MiB by Arm().
  std::atomic<uint64_t> next_memory_milestone_{1ull << 20};

  std::string scope_ = "evaluation";
  int stratum_ = -1;
  const EvalStats* stats_source_ = nullptr;

  /// Serializes the trip latch: the first tripping thread fills `trip_`
  /// and then publishes via `tripped_` (release); readers that saw
  /// `tripped_` (acquire) may read `trip_` without the mutex because it
  /// is never written again until the next Arm().
  std::mutex trip_mu_;
  std::atomic<bool> tripped_{false};
  TripInfo trip_;
};

/// RAII installer for the diagnostic labels and stats source of a
/// governor the caller merely borrows: saves the governor's current
/// scope, stratum and stats source, installs the caller's, and restores
/// the saved ones on destruction. A shared governor routinely outlives
/// the stack-local engines charging it (one governor spans a whole
/// enumeration), so every engine must withdraw its EvalStats pointer on
/// exit or a later trip dereferences freed memory. A null governor
/// makes the guard a no-op.
class GovernorScope {
 public:
  GovernorScope(ResourceGovernor* governor, const EvalStats* stats,
                std::string scope)
      : governor_(governor) {
    if (governor_ == nullptr) return;
    saved_stats_ = governor_->stats_source();
    saved_scope_ = governor_->scope();
    saved_stratum_ = governor_->stratum();
    governor_->set_stats_source(stats);
    governor_->set_scope(std::move(scope));
  }
  ~GovernorScope() {
    if (governor_ == nullptr) return;
    governor_->set_stats_source(saved_stats_);
    governor_->set_scope(std::move(saved_scope_));
    governor_->set_stratum(saved_stratum_);
  }

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ResourceGovernor* governor_;
  const EvalStats* saved_stats_ = nullptr;
  std::string saved_scope_;
  int saved_stratum_ = -1;
};

/// Shims for the deprecated per-module caps (max_instantiations,
/// max_models, max_states, max_steps). The legacy caps rejected the
/// first unit of work when set to 0, whereas EvalLimits treats 0 as
/// unlimited — so a cap of 0 arms a budget of one and spends it up
/// front, preserving "cap N admits exactly N charges" for every N.
inline void ArmLegacyTupleCap(ResourceGovernor* governor, uint64_t cap) {
  governor->Arm(EvalLimits::TupleBudget(cap == 0 ? 1 : cap));
  if (cap == 0) (void)governor->OnDerived(1, 0);
}
inline void ArmLegacyIterationCap(ResourceGovernor* governor, uint64_t cap) {
  governor->Arm(EvalLimits::IterationBudget(cap == 0 ? 1 : cap));
  if (cap == 0) (void)governor->OnIteration();
}

/// Rough per-tuple heap cost used for the approximate-memory budget:
/// the inline Values plus container/node overhead.
inline uint64_t ApproxTupleBytes(size_t arity) {
  return static_cast<uint64_t>(arity) * 16 + 48;
}

}  // namespace idlog

#endif  // IDLOG_COMMON_LIMITS_H_
