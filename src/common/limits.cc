#include "common/limits.h"

#include "obs/trace.h"

namespace idlog {

const char* BudgetKindName(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kDeadline: return "deadline";
    case BudgetKind::kTuples: return "tuples";
    case BudgetKind::kMemory: return "memory";
    case BudgetKind::kIterations: return "iterations";
    case BudgetKind::kCancelled: return "cancelled";
  }
  return "unknown";
}

void ResourceGovernor::Arm(const EvalLimits& limits) {
  limits_ = limits;
  armed_at_ = std::chrono::steady_clock::now();
  has_deadline_ = limits.timeout_ms > 0;
  if (has_deadline_) {
    deadline_ = armed_at_ + std::chrono::milliseconds(limits.timeout_ms);
  }
  cancelled_.store(false, std::memory_order_relaxed);
  work_ = 0;
  next_probe_ = kProbeInterval;
  tuples_ = 0;
  memory_bytes_ = 0;
  iterations_ = 0;
  scope_ = "evaluation";
  stratum_ = -1;
  stats_source_ = nullptr;
  tripped_ = false;
  trip_ = TripInfo();
}

Status ResourceGovernor::Probe() {
  next_probe_ = work_ + kProbeInterval;
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Trip(BudgetKind::kCancelled);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Trip(BudgetKind::kDeadline);
  }
  return Status::OK();
}

Status ResourceGovernor::Trip(BudgetKind kind) {
  tripped_ = true;
  trip_.budget = kind;
  trip_.scope = scope_;
  trip_.stratum = stratum_;
  trip_.elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - armed_at_)
          .count());
  if (stats_source_ != nullptr) {
    trip_.stats = *stats_source_;
    if (trip_.stats.eval_wall_ns == 0) {
      trip_.stats.eval_wall_ns = trip_.elapsed_ns;
    }
  }

  std::string msg;
  switch (kind) {
    case BudgetKind::kDeadline:
      msg = "deadline budget exceeded (timeout_ms=" +
            std::to_string(limits_.timeout_ms) + ")";
      break;
    case BudgetKind::kTuples:
      msg = "tuples budget exceeded (max_tuples=" +
            std::to_string(limits_.max_tuples) + ")";
      break;
    case BudgetKind::kMemory:
      msg = "memory budget exceeded (max_memory_bytes=" +
            std::to_string(limits_.max_memory_bytes) +
            ", charged=" + std::to_string(memory_bytes_) + ")";
      break;
    case BudgetKind::kIterations:
      msg = "iterations budget exceeded (max_iterations=" +
            std::to_string(limits_.max_iterations) + ")";
      break;
    case BudgetKind::kCancelled:
      msg = "evaluation cancelled";
      break;
  }
  msg += " in " + scope_;
  if (stratum_ >= 0) msg += " (stratum " + std::to_string(stratum_) + ")";
  if (stats_source_ != nullptr) {
    msg += "; at trip: tuples_considered=" +
           std::to_string(trip_.stats.tuples_considered) +
           ", facts_derived=" + std::to_string(trip_.stats.facts_derived) +
           ", iterations=" + std::to_string(trip_.stats.iterations);
  }
  trip_.message = std::move(msg);
  if (trace_sink_ != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg::Str("budget", BudgetKindName(kind)));
    args.push_back(TraceArg::Str("scope", scope_));
    args.push_back(TraceArg::Int("stratum", stratum_));
    args.push_back(TraceArg::Num("tuples_charged", tuples_));
    args.push_back(TraceArg::Num("memory_charged", memory_bytes_));
    args.push_back(TraceArg::Num("iterations_charged", iterations_));
    args.push_back(TraceArg::Num("elapsed_ns", trip_.elapsed_ns));
    trace_sink_->Instant("governor trip", "governor", std::move(args));
  }
  return TripStatus();
}

Status ResourceGovernor::TripStatus() const {
  if (!tripped_) return Status::OK();
  return Status::ResourceExhausted(trip_.message);
}

}  // namespace idlog
