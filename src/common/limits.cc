#include "common/limits.h"

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace idlog {

const char* BudgetKindName(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kDeadline: return "deadline";
    case BudgetKind::kTuples: return "tuples";
    case BudgetKind::kMemory: return "memory";
    case BudgetKind::kIterations: return "iterations";
    case BudgetKind::kCancelled: return "cancelled";
  }
  return "unknown";
}

void ResourceGovernor::Arm(const EvalLimits& limits) {
  limits_ = limits;
  armed_at_ = std::chrono::steady_clock::now();
  has_deadline_ = limits.timeout_ms > 0;
  if (has_deadline_) {
    deadline_ = armed_at_ + std::chrono::milliseconds(limits.timeout_ms);
  }
  cancelled_.store(false, std::memory_order_relaxed);
  work_.store(0, std::memory_order_relaxed);
  next_probe_.store(kProbeInterval, std::memory_order_relaxed);
  tuples_.store(0, std::memory_order_relaxed);
  memory_bytes_.store(0, std::memory_order_relaxed);
  iterations_.store(0, std::memory_order_relaxed);
  next_memory_milestone_.store(1ull << 20, std::memory_order_relaxed);
  scope_ = "evaluation";
  stratum_ = -1;
  stats_source_ = nullptr;
  tripped_.store(false, std::memory_order_release);
  trip_ = TripInfo();
}

Status ResourceGovernor::Probe() {
  next_probe_.store(work_.load(std::memory_order_relaxed) + kProbeInterval,
                    std::memory_order_relaxed);
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Trip(BudgetKind::kCancelled);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Trip(BudgetKind::kDeadline);
  }
  return Status::OK();
}

Status ResourceGovernor::Trip(BudgetKind kind) {
  // Concurrent workers can trip simultaneously; the first one in latches
  // the diagnostic, everyone else reports the latched trip.
  std::lock_guard<std::mutex> lock(trip_mu_);
  if (tripped_.load(std::memory_order_relaxed)) return TripStatus();
  trip_.budget = kind;
  trip_.scope = scope_;
  trip_.stratum = stratum_;
  trip_.elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - armed_at_)
          .count());
  if (stats_source_ != nullptr) {
    trip_.stats = *stats_source_;
    if (trip_.stats.eval_wall_ns == 0) {
      trip_.stats.eval_wall_ns = trip_.elapsed_ns;
    }
  }

  std::string msg;
  switch (kind) {
    case BudgetKind::kDeadline:
      msg = "deadline budget exceeded (timeout_ms=" +
            std::to_string(limits_.timeout_ms) + ")";
      break;
    case BudgetKind::kTuples:
      msg = "tuples budget exceeded (max_tuples=" +
            std::to_string(limits_.max_tuples) + ")";
      break;
    case BudgetKind::kMemory:
      msg = "memory budget exceeded (max_memory_bytes=" +
            std::to_string(limits_.max_memory_bytes) + ", charged=" +
            std::to_string(memory_bytes_.load(std::memory_order_relaxed)) +
            ")";
      break;
    case BudgetKind::kIterations:
      msg = "iterations budget exceeded (max_iterations=" +
            std::to_string(limits_.max_iterations) + ")";
      break;
    case BudgetKind::kCancelled:
      msg = "evaluation cancelled";
      break;
  }
  msg += " in " + scope_;
  if (stratum_ >= 0) msg += " (stratum " + std::to_string(stratum_) + ")";
  if (stats_source_ != nullptr) {
    msg += "; at trip: tuples_considered=" +
           std::to_string(trip_.stats.tuples_considered) +
           ", facts_derived=" + std::to_string(trip_.stats.facts_derived) +
           ", iterations=" + std::to_string(trip_.stats.iterations);
  }
  trip_.message = std::move(msg);
  // Publish after the diagnostic is complete: a reader that observes
  // tripped_ == true (acquire) sees a fully-formed trip_.
  tripped_.store(true, std::memory_order_release);
  if (trace_sink_ != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg::Str("budget", BudgetKindName(kind)));
    args.push_back(TraceArg::Str("scope", scope_));
    args.push_back(TraceArg::Int("stratum", stratum_));
    args.push_back(TraceArg::Num(
        "tuples_charged", tuples_.load(std::memory_order_relaxed)));
    args.push_back(TraceArg::Num(
        "memory_charged", memory_bytes_.load(std::memory_order_relaxed)));
    args.push_back(TraceArg::Num(
        "iterations_charged",
        iterations_.load(std::memory_order_relaxed)));
    args.push_back(TraceArg::Num("elapsed_ns", trip_.elapsed_ns));
    trace_sink_->Instant("governor trip", "governor", std::move(args));
  }
  // The flight recorder gets the trip even when no trace sink is
  // installed — a post-mortem must not depend on --trace having been on.
  FlightRecorder::Record(
      FlightEventKind::kTrip, BudgetKindName(kind),
      static_cast<int64_t>(tuples_.load(std::memory_order_relaxed)),
      static_cast<int64_t>(memory_bytes_.load(std::memory_order_relaxed)),
      stratum_);
  return TripStatus();
}

void ResourceGovernor::MaybeRecordMemoryMilestone(uint64_t memory) {
  if (!FlightRecorder::Enabled()) return;
  // CAS-advance the milestone so exactly one thread records each
  // crossing; doubling keeps the event count logarithmic in footprint.
  uint64_t next = next_memory_milestone_.load(std::memory_order_relaxed);
  while (memory >= next) {
    uint64_t target = next * 2;
    if (next_memory_milestone_.compare_exchange_weak(
            next, target, std::memory_order_relaxed)) {
      FlightRecorder::Record(
          FlightEventKind::kGovernorMemory, scope_.c_str(),
          static_cast<int64_t>(next), static_cast<int64_t>(memory),
          static_cast<int64_t>(
              tuples_.load(std::memory_order_relaxed)));
      next = target;
    }
  }
}

Status ResourceGovernor::TripStatus() const {
  if (!tripped_.load(std::memory_order_acquire)) return Status::OK();
  return Status::ResourceExhausted(trip_.message);
}

}  // namespace idlog
