#include "common/status.h"

namespace idlog {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kUnsafeProgram: return "UnsafeProgram";
    case StatusCode::kNotStratified: return "NotStratified";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace idlog
