#ifndef IDLOG_COMMON_SYMBOL_TABLE_H_
#define IDLOG_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace idlog {

/// Identifier of an interned uninterpreted constant (sort-u value).
using SymbolId = uint32_t;

/// Interns uninterpreted-domain constants (the paper's universal domain U)
/// as dense integer ids so tuples are flat 64-bit arrays.
///
/// Not thread-safe; one table per engine / test.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Returns the id of `name`, interning it if new.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` or kNoSymbol if it was never interned.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the spelling of an interned symbol. `id` must be valid.
  const std::string& NameOf(SymbolId id) const { return names_[id]; }

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

  /// Approximate heap bytes of the intern pool: every spelling is
  /// stored twice (names_ vector and ids_ map key) plus per-symbol
  /// container overhead. A logical quantity — interning happens during
  /// parse/load, so it is identical across --jobs settings.
  uint64_t approx_bytes() const {
    uint64_t bytes = 0;
    for (const std::string& name : names_) {
      bytes += 2 * (name.size() + 1);
    }
    return bytes + static_cast<uint64_t>(names_.size()) * 64;
  }

  static constexpr SymbolId kNoSymbol = UINT32_MAX;

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace idlog

#endif  // IDLOG_COMMON_SYMBOL_TABLE_H_
