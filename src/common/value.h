#ifndef IDLOG_COMMON_VALUE_H_
#define IDLOG_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/symbol_table.h"

namespace idlog {

/// The paper's two sorts: `u` (uninterpreted constants drawn from the
/// universal domain U) and `i` (the interpreted domain, natural numbers).
/// Relation types are written as 0/1 strings in the paper; kU==0, kI==1.
enum class Sort : uint8_t {
  kU = 0,  ///< Uninterpreted constant (interned symbol).
  kI = 1,  ///< Natural number.
};

/// Returns "u" or "i".
const char* SortName(Sort sort);

/// A single two-sorted value. Sort-u values carry a SymbolId into a
/// SymbolTable; sort-i values carry a non-negative int64.
///
/// Ordering compares sort first (u < i), then payload; for sort-u values
/// this is interning order, which is arbitrary but stable within a run —
/// exactly the "some order, not a semantic one" the genericity condition
/// of Section 3.1 requires us not to depend on.
class Value {
 public:
  Value() : sort_(Sort::kU), payload_(0) {}

  static Value Symbol(SymbolId id) { return Value(Sort::kU, id); }
  static Value Number(int64_t n) { return Value(Sort::kI, n); }

  Sort sort() const { return sort_; }
  bool is_symbol() const { return sort_ == Sort::kU; }
  bool is_number() const { return sort_ == Sort::kI; }

  /// SymbolId payload; only meaningful when is_symbol().
  SymbolId symbol() const { return static_cast<SymbolId>(payload_); }
  /// Numeric payload; only meaningful when is_number().
  int64_t number() const { return payload_; }

  bool operator==(const Value& o) const {
    return sort_ == o.sort_ && payload_ == o.payload_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const {
    if (sort_ != o.sort_) return sort_ < o.sort_;
    return payload_ < o.payload_;
  }

  /// Renders the value using `symbols` for sort-u spellings.
  std::string ToString(const SymbolTable& symbols) const;

  size_t Hash() const {
    uint64_t h = static_cast<uint64_t>(payload_) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(sort_) << 62;
    return static_cast<size_t>(h ^ (h >> 29));
  }

 private:
  Value(Sort sort, int64_t payload) : sort_(sort), payload_(payload) {}

  Sort sort_;
  int64_t payload_;
};

/// A database tuple: a fixed-arity sequence of values.
using Tuple = std::vector<Value>;

/// Combines hashes (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9E3779B9u + (seed << 6) + (seed >> 2));
}

/// Hash functor for tuples, for use with unordered containers.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) seed = HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& t, const SymbolTable& symbols);

/// A relation type: the sort of each column (the paper's 0/1 strings).
using RelationType = std::vector<Sort>;

/// Parses a 0/1 string such as "001" into a RelationType.
RelationType TypeFromString(std::string_view bits);

/// Renders a RelationType back into a 0/1 string.
std::string TypeToString(const RelationType& type);

}  // namespace idlog

#endif  // IDLOG_COMMON_VALUE_H_
