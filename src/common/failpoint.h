#ifndef IDLOG_COMMON_FAILPOINT_H_
#define IDLOG_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace idlog {

/// Deterministic fault-injection registry.
///
/// Code that can fail plants named failure points with
/// `IDLOG_FAILPOINT("store.write.rename")`; tests and the CLI arm a
/// point with a spec `site:nth[:throw]`, meaning the nth execution of
/// that site fails (returning an Internal Status, or throwing when the
/// `throw` action is requested — the latter exists to exercise the
/// thread pool's exception hardening). Every site must be listed in the
/// central Catalog(); arming an unknown site is an InvalidArgument, so
/// a typo in `--fail-at` cannot silently test nothing, and a drift test
/// greps the sources to keep the catalog complete.
///
/// Cost when disarmed: one relaxed atomic load per site execution
/// (AnyArmed()), no lock, no map lookup. The registry is process-global
/// and thread-safe; sweep tests arm one site at a time and Reset()
/// between iterations.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms from a spec string `site:nth[:throw]` (nth is 1-based: the
  /// nth execution of the site fails; earlier and later ones pass).
  /// Unknown sites, malformed counts and unknown actions are
  /// InvalidArgument. Several sites may be armed at once.
  Status ArmFromSpec(const std::string& spec);

  /// Disarms every site and zeroes hit counters.
  void Reset();

  /// Executions of `site` so far (armed sites only; 0 otherwise).
  uint64_t HitCount(const std::string& site) const;

  /// Every registered site name, sorted. The sweep test iterates this;
  /// the drift test checks it against IDLOG_FAILPOINT uses in src/.
  static const std::vector<std::string>& Catalog();

  /// Fast path for the IDLOG_FAILPOINT macro: false unless some site is
  /// armed anywhere in the process.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: counts one execution of `site` and returns the injected
  /// error if this execution is the armed one (or throws, for the
  /// `throw` action). OK when the site is not armed.
  Status OnHit(const char* site);

 private:
  Failpoints() = default;

  struct Armed {
    uint64_t nth = 1;      ///< 1-based execution index that fails.
    bool throws = false;   ///< Throw instead of returning a Status.
    uint64_t hits = 0;
  };

  static std::atomic<int> armed_count_;
  mutable std::mutex mu_;
  std::map<std::string, Armed> armed_;
};

/// Plants a failure point: in the nth execution of an armed site, the
/// enclosing function returns an Internal Status (or, for Result<T>
/// returns, an error Result). Near-zero cost while nothing is armed.
#define IDLOG_FAILPOINT(site)                                          \
  do {                                                                 \
    if (::idlog::Failpoints::AnyArmed()) {                             \
      ::idlog::Status _idlog_fp =                                      \
          ::idlog::Failpoints::Instance().OnHit(site);                 \
      if (!_idlog_fp.ok()) return _idlog_fp;                           \
    }                                                                  \
  } while (0)

}  // namespace idlog

#endif  // IDLOG_COMMON_FAILPOINT_H_
