#include "common/value.h"

namespace idlog {

const char* SortName(Sort sort) { return sort == Sort::kU ? "u" : "i"; }

std::string Value::ToString(const SymbolTable& symbols) const {
  if (is_number()) return std::to_string(number());
  if (symbol() < symbols.size()) return symbols.NameOf(symbol());
  return "<sym#" + std::to_string(symbol()) + ">";
}

std::string TupleToString(const Tuple& t, const SymbolTable& symbols) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString(symbols);
  }
  out += ")";
  return out;
}

RelationType TypeFromString(std::string_view bits) {
  RelationType type;
  type.reserve(bits.size());
  for (char c : bits) type.push_back(c == '1' ? Sort::kI : Sort::kU);
  return type;
}

std::string TypeToString(const RelationType& type) {
  std::string out;
  out.reserve(type.size());
  for (Sort s : type) out += (s == Sort::kI ? '1' : '0');
  return out;
}

}  // namespace idlog
