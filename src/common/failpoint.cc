#include "common/failpoint.h"

#include <stdexcept>

#include "obs/flight_recorder.h"

namespace idlog {

std::atomic<int> Failpoints::armed_count_{0};

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

const std::vector<std::string>& Failpoints::Catalog() {
  // Every IDLOG_FAILPOINT site in the library and the snapshot/output
  // I/O helpers. tests/failpoint_test.cc greps the sources and fails if
  // this list and the planted sites ever diverge.
  static const std::vector<std::string>* catalog =
      new std::vector<std::string>{
          "csv.load.open",           // CSV file open
          "csv.load.row",            // per-row CSV ingestion
          "engine.checkpoint.frame", // round-boundary frame serialization
          "eval.emit.insert",        // staged insert of a derived fact
          "eval.index.build",        // column-index (re)build for a scan
          "exec.round.task",         // parallel round task boundary
          "storage.relation.insert", // checked EDB tuple insert
          "store.read.header",       // snapshot magic/version check
          "store.read.open",         // snapshot file open
          "store.read.section",      // snapshot section decode
          "store.write.data",        // temp-file payload write
          "store.write.fsync",       // temp-file fsync
          "store.write.open",        // temp-file creation
          "store.write.rename",      // atomic rename into place
          "wal.append",              // WAL record append to the buffer
          "wal.commit",              // commit-mark append (the COMMIT record)
          "wal.fsync",               // WAL fsync of a committed group
          "wal.replay.decode",       // per-record decode during recovery
          "wal.rotate",              // fresh-epoch header rename on rotation
      };
  return *catalog;
}

Status Failpoints::ArmFromSpec(const std::string& spec) {
  size_t colon = spec.rfind(':');
  bool throws = false;
  std::string rest = spec;
  if (colon != std::string::npos && spec.substr(colon + 1) == "throw") {
    throws = true;
    rest = spec.substr(0, colon);
    colon = rest.rfind(':');
  } else {
    colon = rest.rfind(':');
  }
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    return Status::InvalidArgument(
        "failpoint spec must be 'site:nth' or 'site:nth:throw', got '" +
        spec + "'");
  }
  const std::string site = rest.substr(0, colon);
  const std::string count = rest.substr(colon + 1);
  uint64_t nth = 0;
  for (char c : count) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("failpoint count '" + count +
                                     "' is not a number in '" + spec + "'");
    }
    nth = nth * 10 + static_cast<uint64_t>(c - '0');
  }
  if (nth == 0) {
    return Status::InvalidArgument(
        "failpoint count is 1-based; ':0' never fires in '" + spec + "'");
  }
  bool known = false;
  for (const std::string& s : Catalog()) {
    if (s == site) {
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::InvalidArgument("unknown failpoint site '" + site +
                                   "' (see Failpoints::Catalog())");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.emplace(site, Armed{nth, throws, 0}).second) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    armed_[site] = Armed{nth, throws, 0};
  }
  return Status::OK();
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(armed_.size()),
                         std::memory_order_relaxed);
  armed_.clear();
}

uint64_t Failpoints::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = armed_.find(site);
  return it == armed_.end() ? 0 : it->second.hits;
}

Status Failpoints::OnHit(const char* site) {
  bool throws = false;
  bool fired = false;
  uint64_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = armed_.find(site);
    if (it == armed_.end()) return Status::OK();
    hits = ++it->second.hits;
    if (hits == it->second.nth) {
      fired = true;
      throws = it->second.throws;
    }
  }
  // Breadcrumb for every pass through an *armed* site (disarmed sites
  // return above without reaching this): hit ordinal + whether it fired.
  FlightRecorder::Record(FlightEventKind::kFailpointHit, site,
                         static_cast<int64_t>(hits), fired ? 1 : 0);
  if (!fired) return Status::OK();
  std::string what = std::string("injected failure at failpoint '") + site +
                     "' (execution " + std::to_string(hits) + ")";
  if (throws) throw std::runtime_error(what);
  return Status::Internal(std::move(what));
}

}  // namespace idlog
