#include "common/symbol_table.h"

namespace idlog {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return kNoSymbol;
  return it->second;
}

}  // namespace idlog
