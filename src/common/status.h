#ifndef IDLOG_COMMON_STATUS_H_
#define IDLOG_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>

namespace idlog {

/// Error categories used across the library. Library code never throws;
/// fallible operations return Status or Result<T> (Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input from the caller.
  kParseError,        ///< Lexical or syntactic error in program text.
  kTypeError,         ///< Sort mismatch (u vs i) or arity mismatch.
  kUnsafeProgram,     ///< Range-restriction / arithmetic-safety violation.
  kNotStratified,     ///< Negation or ID-edge inside a recursive component.
  kUnsupported,       ///< Feature outside the implemented fragment.
  kNotFound,          ///< Lookup of a missing predicate/relation.
  kResourceExhausted, ///< Step or size limit exceeded.
  kInternal,          ///< Invariant violation inside the library.
};

/// Returns a human-readable name for a StatusCode ("ParseError" etc.).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status UnsafeProgram(std::string msg) {
    return Status(StatusCode::kUnsafeProgram, std::move(msg));
  }
  static Status NotStratified(std::string msg) {
    return Status(StatusCode::kNotStratified, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Callers must check ok() before
/// dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or aborts with the error message.
  /// For use in tests and examples where failure is a bug.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error [%s]: %s\n",
                   StatusCodeName(status().code()),
                   status().ToString().c_str());
      std::abort();
    }
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define IDLOG_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::idlog::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors; on success binds
/// the value into `lhs` (a declaration).
#define IDLOG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define IDLOG_ASSIGN_OR_RETURN(lhs, expr)                                 \
  IDLOG_ASSIGN_OR_RETURN_IMPL(                                            \
      IDLOG_CONCAT_NAME_(_idlog_result_, __LINE__), lhs, expr)

#define IDLOG_CONCAT_NAME_INNER_(a, b) a##b
#define IDLOG_CONCAT_NAME_(a, b) IDLOG_CONCAT_NAME_INNER_(a, b)

}  // namespace idlog

#endif  // IDLOG_COMMON_STATUS_H_
