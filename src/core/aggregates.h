#ifndef IDLOG_CORE_AGGREGATES_H_
#define IDLOG_CORE_AGGREGATES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace idlog {

/// Aggregates implemented *as IDLOG programs* — the practical face of
/// the Section 5 expressiveness result. DATALOG alone cannot count;
/// with tuple identifiers, cardinality is "successor of the largest
/// global tid", per-group counts use per-group tids, and sums fold the
/// relation along the tid order:
///
///     item(I, V) :- r[](X1..Xn, I).            % project tid + value
///     acc(0, V)  :- item(0, V).
///     acc(J, S2) :- acc(I, S), succ(I, J), item(J, V), S2 = S + V.
///
/// Every function below builds the corresponding program with
/// ProgramBuilder, evaluates it and reads the answer back. All of them
/// are deterministic queries even though the programs are
/// non-deterministic (any tid order gives the same aggregate).

/// |rel| via the counting idiom (0 for the empty relation).
Result<int64_t> CountViaTids(const Relation& rel);

/// Per-group cardinalities: returns a relation of type
/// type(group cols) . 1 mapping each group key to its size.
Result<Relation> GroupCountViaTids(const Relation& rel,
                                   const std::vector<int>& group_cols);

/// Minimum / maximum of sort-i column `col` (InvalidArgument if the
/// column is not numeric, NotFound if the relation is empty).
Result<int64_t> MinOfColumn(const Relation& rel, int col);
Result<int64_t> MaxOfColumn(const Relation& rel, int col);

/// Sum of sort-i column `col` via the ordered fold (0 for empty).
Result<int64_t> SumViaTids(const Relation& rel, int col);

}  // namespace idlog

#endif  // IDLOG_CORE_AGGREGATES_H_
