#ifndef IDLOG_CORE_SAMPLING_H_
#define IDLOG_CORE_SAMPLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/tid_assigner.h"

namespace idlog {

/// Sampling queries (Section 3.3) as a library call: returns `k`
/// uniformly chosen tuples from every sub-relation of `rel` grouped by
/// `group_cols` (all tuples of a group when the group has fewer than
/// `k`). Implemented as the paper's one-line IDLOG idiom
///
///     sample(X1..Xn) :- r[s](X1..Xn, T), T < k.
///
/// evaluated under a RandomTidAssigner seeded with `seed` — random tids
/// make `T < k` a uniform k-subset per group.
Result<Relation> SampleKPerGroup(const Relation& rel,
                                 const std::vector<int>& group_cols,
                                 int64_t k, uint64_t seed);

/// Same, but with a caller-supplied assigner (e.g. IdentityTidAssigner
/// for the deterministic "first k in canonical order" variant).
Result<Relation> SampleKPerGroupWith(const Relation& rel,
                                     const std::vector<int>& group_cols,
                                     int64_t k, TidAssigner* assigner);

/// Renders the sampling program text for documentation/demo purposes,
/// e.g. SamplingProgramText("emp", 3, {1}, 2) ==
///   "sample(X1, X2, X3) :- emp[2](X1, X2, X3, T), T < 2."
std::string SamplingProgramText(const std::string& relation_name, int arity,
                                const std::vector<int>& group_cols,
                                int64_t k);

}  // namespace idlog

#endif  // IDLOG_CORE_SAMPLING_H_
