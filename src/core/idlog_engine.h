#ifndef IDLOG_CORE_IDLOG_ENGINE_H_
#define IDLOG_CORE_IDLOG_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.h"
#include "common/limits.h"
#include "common/status.h"
#include "common/symbol_table.h"
#include "eval/engine_impl.h"
#include "obs/dbstats.h"
#include "obs/why.h"
#include "storage/database.h"
#include "storage/tid_assigner.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace idlog {

/// The main entry point of the library: owns a symbol table, an
/// extensional database and one loaded IDLOG program, and evaluates the
/// program's perfect model under a pluggable tid-assignment policy.
///
///   IdlogEngine engine;
///   engine.AddRow("emp", {"ann", "sales"});
///   engine.AddRow("emp", {"bob", "sales"});
///   engine.LoadProgramText(
///       "one_per_dept(N) :- emp[2](N, D, 0).");
///   engine.SetTidAssigner(std::make_unique<RandomTidAssigner>(42));
///   const Relation* r = engine.Query("one_per_dept").ValueOrDie();
///
/// Every call to Run()/Query() after changing the assigner or database
/// recomputes the model; with a deterministic assigner results are
/// repeatable.
class IdlogEngine {
 public:
  IdlogEngine();

  IdlogEngine(const IdlogEngine&) = delete;
  IdlogEngine& operator=(const IdlogEngine&) = delete;

  SymbolTable& symbols() { return symbols_; }
  Database& database() { return database_; }
  const Database& database() const { return database_; }

  /// Parses and loads program text (see ParseProgram for the syntax).
  /// Replaces any previously loaded program.
  Status LoadProgramText(std::string_view text);

  /// Loads an already-built Program (its u-constants must be interned
  /// in this engine's symbol table).
  Status LoadProgram(Program program);

  const Program& program() const { return program_; }
  bool has_program() const { return impl_ != nullptr; }

  /// Adds an EDB fact; convenience wrappers over Database.
  Status AddFact(const std::string& pred, Tuple t);
  Status AddRow(const std::string& pred,
                const std::vector<std::string>& fields);

  /// Selects the non-determinism policy. Default: IdentityTidAssigner.
  void SetTidAssigner(std::unique_ptr<TidAssigner> assigner);
  TidAssigner* tid_assigner() { return assigner_.get(); }

  /// Naive-vs-semi-naive fixpoint (ablation switch; default semi-naive).
  void SetSeminaive(bool seminaive);

  /// Footnote 6/7 tid-bound pushdown (ablation switch; default on):
  /// when every use of an ID-relation bounds its tid, materialize only
  /// the needed prefix of each group.
  void SetTidBoundPushdown(bool enabled);

  /// Index ablation switch (default on): with false, joins fall back to
  /// full scans with key filters.
  void SetUseIndexes(bool enabled);

  /// Total evaluation threads for the fixpoint — the calling thread
  /// included, so n = 4 means four threads doing rule evaluations, not
  /// five (default 1 = serial; values < 1 clamp to 1). With n >= 2 each
  /// round's independent rule evaluations run on a thread pool — heavy
  /// recursive evaluations additionally fan out over hash partitions of
  /// their delta (see SetDeltaPartitions) — and merge deterministically:
  /// answers, stats, profiles, traces, explain output and the
  /// provenance store (so proof trees and WHY JSON) are byte-identical
  /// to a serial run.
  void SetThreads(int n);
  int threads() const { return threads_; }

  /// Delta-partition fan-out for heavy recursive tasks: a semi-naive
  /// task whose delta scan is the outermost plan step splits into K
  /// sub-tasks, each evaluating the delta rows whose join-key hash it
  /// owns into partition-private staging. Default 0 = auto (match the
  /// thread count; 1 when serial); explicit values — honored even with
  /// one thread — exist for tests and tuning, and every value yields
  /// byte-identical results (values < 0 clamp to 0).
  void SetDeltaPartitions(int k);
  int delta_partitions() const { return delta_partitions_; }

  /// Installs resource budgets enforced by every subsequent Run():
  /// wall-clock deadline, derived-tuple budget, approximate-memory
  /// budget and fixpoint-iteration cap. Each Run() re-arms the governor
  /// (the deadline counts from Run entry). Default: unlimited.
  void SetLimits(const EvalLimits& limits);
  const EvalLimits& limits() const { return limits_; }

  /// Cooperative cancellation, callable from another thread while
  /// Run()/Query() is evaluating: the evaluation observes the flag at
  /// its next governor checkpoint and returns ResourceExhausted.
  void Cancel() { governor_.Cancel(); }

  /// The governor backing this engine — share it with the standalone
  /// enumerators (EnumerateAnswers etc.) so one Cancel() stops both.
  ResourceGovernor& governor() { return governor_; }

  /// With partial results enabled (default off), a Run() that trips a
  /// budget keeps the model computed so far: Run() returns OK, the
  /// partial relations are queryable, and last_trip() carries the
  /// ResourceExhausted diagnostic. Without it, a trip fails Run().
  void SetPartialResults(bool enabled) { partial_results_ = enabled; }

  /// The trip diagnostic of the last Run() in partial-results mode, or
  /// OK if the run completed within budget.
  const Status& last_trip() const { return last_trip_; }

  /// Arms durable round-boundary checkpointing for subsequent Run()s:
  /// at every fixpoint round boundary a consistent `idlog-snap-v2`
  /// frame is serialized, and every `every_rounds`-th frame is written
  /// atomically to `path` (plus the last frame when a governor trips or
  /// the evaluation fails, and a final completed frame on success).
  /// An empty path disarms. `every_rounds` < 1 clamps to 1.
  void SetCheckpoint(std::string path, uint64_t every_rounds = 1);
  const std::string& checkpoint_path() const { return checkpoint_path_; }

  /// Writes a snapshot of the engine to `path` on demand: the finished
  /// model after a clean Run(), the last consistent round frame after a
  /// trip under SetCheckpoint(), or a cold-start frame (program config
  /// + database, no progress) before any run. A tripped run without
  /// checkpointing armed has no consistent frame and is an error.
  Status SaveCheckpoint(const std::string& path);

  /// Restores the snapshot at `path` into this engine, which must be
  /// fresh (no program loaded, empty database). The caller then loads
  /// the *same* program text — guarded by a program hash — after which
  /// Run() continues the checkpointed fixpoint exactly where it
  /// stopped (or adopts the finished model without re-evaluating).
  /// Fixpoint-content switches (semi-naive, tid-bound pushdown, index
  /// use) and the tid-assigner state are adopted from the snapshot;
  /// thread count stays caller-chosen, as it never changes answers.
  Status ResumeFromCheckpoint(const std::string& path);

  /// Evaluates the program (all strata). Idempotent until the program,
  /// database, assigner or mode changes.
  Status Run();

  /// Forces re-evaluation on the next Run()/Query() (e.g. after
  /// reseeding a random assigner in place).
  void InvalidateRun() { ran_ = false; }

  /// Returns the relation for `pred` after evaluation, running first if
  /// needed. EDB predicates resolve to their stored contents.
  Result<const Relation*> Query(const std::string& pred);

  /// The materialized ID-relation of (pred, group) from the last run.
  Result<const Relation*> QueryIdRelation(const std::string& pred,
                                          const std::vector<int>& group);

  /// Evaluates only the program portion related to `pred` (the paper's
  /// P/q) and returns its relation by value. Useful when the loaded
  /// program defines many outputs and only one is needed; the engine's
  /// cached full-program results are left untouched.
  Result<Relation> QueryPortion(const std::string& pred);

  const EvalStats& stats() const;
  /// Stratification of the loaded program (valid after load).
  Result<const Stratification*> stratification() const;

  /// Soundness self-check: after Run(), re-derives every rule against
  /// the computed relations (same ID-relations) and confirms the result
  /// is a fixpoint model — nothing new is derivable. Runs first if
  /// needed.
  Result<bool> VerifyModel();

  /// Installs a structured trace-event sink observing every subsequent
  /// LoadProgram()/Run()/QueryPortion(): program analysis and
  /// stratification, per-stratum and per-round fixpoint spans, per-rule
  /// evaluations, ID-relation materialization, and governor trips. Not
  /// owned and must outlive the engine (or be detached with null, the
  /// default, which restores the zero-instrumentation fast path).
  void SetTraceSink(TraceSink* sink);
  TraceSink* trace_sink() const { return trace_; }

  /// Enables the per-rule/per-stratum profile collected by Run() (off
  /// by default; costs a few clock reads per rule evaluation).
  void EnableProfiling(bool enabled);
  bool profiling_enabled() const { return profiling_; }

  /// The profile of the last Run() (empty unless profiling enabled).
  const EvalProfile& profile() const;

  /// Records derivations during evaluation so Explain() works. Off by
  /// default (memory proportional to the number of derived facts).
  void EnableProvenance(bool enabled);

  /// Renders the derivation tree of `pred(tuple)` from the last run:
  /// which clause fired, from which facts, which tid choices and
  /// built-ins it used. Requires EnableProvenance(true); runs first if
  /// needed. NotFound if the fact does not hold.
  Result<std::string> Explain(const std::string& pred, const Tuple& tuple);

  /// WHY: renders a bounded proof tree for `pred(tuple)` — the budgeted
  /// successor of Explain(), with an explicit depth/node budget, cycle
  /// safety, and a deterministic `idlog-why-v1` JSON twin. Requires
  /// EnableProvenance(true); runs first if needed. NotFound if the fact
  /// does not hold (use WhyNot for those).
  Result<std::string> Why(const std::string& pred, const Tuple& tuple,
                          const WhyBudget& budget = WhyBudget());
  Result<std::string> WhyJson(const std::string& pred, const Tuple& tuple,
                              const WhyBudget& budget = WhyBudget());

  /// WHY NOT: explains why `pred(tuple)` is absent from the computed
  /// model. Walks every rule whose head unifies with the query and
  /// reports its first failing premise — a missing subgoal (recursing,
  /// bounded, when it is ground), a blocking negation, an unsatisfied
  /// built-in, or a tid mismatch against the model's ID choice. Does
  /// not require provenance; runs first if needed. If the fact holds
  /// after all, the report says so (not an error).
  Result<std::string> WhyNot(const std::string& pred, const Tuple& tuple,
                             const WhyBudget& budget = WhyBudget());
  Result<std::string> WhyNotJson(const std::string& pred, const Tuple& tuple,
                                 const WhyBudget& budget = WhyBudget());

  /// Enables EXPLAIN ANALYZE per-step counter collection during Run()
  /// (off by default; zero cost when off — one pointer test per rule
  /// evaluation).
  void EnableExplain(bool enabled);
  bool explain_enabled() const { return explain_; }

  /// Installs rewrite provenance from the opt/ pipeline (MagicSetTransform,
  /// OptimizeForOutput, etc.): when the caller ran rewrite passes before
  /// loading the transformed program, passing their RewriteLog here makes
  /// EXPLAIN annotate each clause with the rewrites that shaped it.
  /// Takes effect at the next LoadProgram(); the engine adds its own
  /// tid-pushdown notes during program analysis.
  void SetRewriteLog(RewriteLog log);

  /// Static EXPLAIN: the compiled plan of every rule as an aligned text
  /// tree — safe join order, key columns / index choice, ArgModes,
  /// delta-substitution candidates, plus the rewrite annotations.
  /// Requires a loaded program; does not run the evaluation.
  Result<std::string> ExplainPlan();

  /// EXPLAIN ANALYZE: enables explain collection, runs if needed, and
  /// renders the plan tree with per-step runtime counters (rows in /
  /// scanned / emitted, observed selectivity, index probes) and
  /// per-stratum fixpoint round sizes.
  Result<std::string> ExplainAnalyze();

  /// The deterministic `idlog-explain-v1` JSON document. With `analyze`,
  /// enables explain collection and runs first (counters included);
  /// without, renders the static plan only. Byte-identical across
  /// --jobs settings for the same program and database.
  Result<std::string> ExplainPlanJson(bool analyze);

  /// Per-step counters of the last Run() (empty unless explain enabled).
  const PlanAnalysis& plan_analysis() const;

  /// Storage observability: walks the database, derived/ID-relations,
  /// index caches, intern pool, tid-assigner and provenance arena into
  /// per-relation statistics with component byte attribution. Valid any
  /// time (a pre-run engine reports EDB state only); does not run.
  StorageStats DbStats() const;
  /// The walk rendered as an aligned text table (physical index columns
  /// included) or the deterministic `idlog-dbstats-v1` JSON (logical
  /// fields only — byte-identical across --jobs/--partitions).
  std::string DbStatsText() const;
  std::string DbStatsJson() const;

  /// The `idlog-metrics-v1` document of the last Run(): the profile's
  /// counters plus governor/storage gauges (totals.memory_bytes,
  /// db.relations, db.tuples, db.approx_bytes, db.indexes — the last is
  /// physical). Superset of profile().ToMetricsJson().
  std::string MetricsJson() const;

  // --- Durable update sessions (write-ahead fact log). -------------
  //
  // A session turns the engine into an updatable database: committed
  // EDB insertions and retractions are made durable in an
  // `idlog-wal-v1` log *before* they are applied, and insertions
  // re-derive the model incrementally by seeding the semi-naive delta
  // machinery instead of re-running the whole fixpoint. After a crash
  // at any instant, PrepareRecovery + LoadProgramText +
  // CompleteRecovery rebuild a state byte-identical (answers, db-stats
  // JSON, provenance, WHY proofs) to a session that never crashed.

  /// Knobs of a durable session; passed to AttachWal / CompleteRecovery.
  struct WalOptions {
    /// Fsync the log once per `group_commit_every` commits (default 1:
    /// every commit is durable before Commit() returns). Larger values
    /// trade the durability of the trailing group for fewer fsyncs; a
    /// crash then loses at most the unsynced tail, never consistency.
    uint64_t group_commit_every = 1;
    /// Auto-checkpoint (snapshot + log rotation) every N commits.
    /// 0 (default) checkpoints only on explicit WalCheckpoint() calls.
    uint64_t checkpoint_every_commits = 0;
  };

  /// Starts a durable session: runs the program to its fixpoint, writes
  /// the session's base snapshot to `path` + ".snap" and creates the
  /// WAL at `path`. Requires a loaded program; fails if a WAL is
  /// already attached. The snapshot and log are a pair — recovery
  /// refuses one without the other.
  Status AttachWal(const std::string& path, const WalOptions& options);
  Status AttachWal(const std::string& path) {
    return AttachWal(path, WalOptions());
  }
  bool wal_attached() const { return wal_ != nullptr; }

  /// Opens an update transaction. Operations buffer in memory — the
  /// model, the database and the log are untouched until Commit().
  Status Begin();
  /// Stages an EDB insertion/retraction. Predicates derived by rules
  /// are refused (their contents are the program's, not the caller's);
  /// sort/arity mismatches are refused here so nothing invalid is ever
  /// logged. Requires an open transaction.
  Status Insert(const std::string& pred, Tuple t);
  Status Retract(const std::string& pred, Tuple t);
  /// Makes the transaction durable (BEGIN..ops..COMMIT appended to the
  /// WAL, fsynced per group_commit_every), applies it to the database,
  /// and re-derives: pure insertions extend the model incrementally
  /// (semi-naive seed rounds; falls back to a full re-run when the
  /// change touches negation, ID-relations or `udom`), retractions
  /// recompute from the EDB. Queries see the new model immediately.
  Status Commit();
  /// Discards the open transaction. Nothing was logged or applied.
  Status Abort();
  bool in_transaction() const { return in_txn_; }

  /// Durably compacts the session: writes a fresh base snapshot
  /// covering every commit so far, appends a CHECKPOINT-REF record and
  /// rotates the log to a new epoch (records before the snapshot are
  /// retired). Refused inside a transaction.
  Status WalCheckpoint();

  /// Stage one of crash recovery, on a *fresh* engine (no program,
  /// empty database): loads the base snapshot next to `wal_path` (if
  /// any) and scans the log's committed prefix, tolerating a torn tail.
  /// The caller then loads the same program text the session ran
  /// (guarded by a program hash) and calls CompleteRecovery(). With
  /// nothing durable on disk, recovery degrades to a fresh AttachWal().
  Status PrepareRecovery(const std::string& wal_path);

  /// Stage two: validates the snapshot/log pairing (program hash,
  /// epoch lineage), adopts the snapshot's model without re-evaluating,
  /// truncates the log's torn tail durably, replays the committed
  /// transactions beyond the snapshot through the normal commit path,
  /// and reopens the log for append. Idempotent: recovering twice in a
  /// row yields the same state and a second recovery replays nothing.
  Status CompleteRecovery(const WalOptions& options);
  Status CompleteRecovery() { return CompleteRecovery(WalOptions()); }

  /// Committed transactions applied by this session so far — the base
  /// snapshot's commits plus replayed and newly committed ones. Update
  /// drivers use this to skip the prefix of a script that is already
  /// durable.
  uint64_t wal_commits() const { return wal_commits_; }
  /// Transactions CompleteRecovery() replayed from the log tail.
  uint64_t wal_commits_replayed() const { return wal_commits_replayed_; }
  /// True when the last Commit() re-derived incrementally (seeded
  /// delta rounds) rather than re-running the full fixpoint.
  bool last_commit_incremental() const { return last_commit_incremental_; }

  /// Arms the crash black box: when a Run() returns a failure Status or
  /// trips a governor budget (partial-results mode included), the
  /// process-global FlightRecorder is dumped to `path` as
  /// `idlog-flight-v1` JSON before Run() returns. Empty disarms. The
  /// recorder itself is armed separately (FlightRecorder::Instance()).
  void SetFlightRecorderDump(std::string path) {
    flight_dump_path_ = std::move(path);
  }
  const std::string& flight_recorder_dump_path() const {
    return flight_dump_path_;
  }

 private:
  Result<ProofTree> BuildWhy(const std::string& pred, const Tuple& tuple,
                             const WhyBudget& budget);
  Result<WhyNotReport> BuildWhyNotReport(const std::string& pred,
                                         const Tuple& tuple,
                                         const WhyBudget& budget);
  void DumpFlightRecorder() const;
  SnapshotConfig CurrentConfig() const;
  SnapshotView CurrentView(const SnapshotProgress& progress) const;
  std::string SerializeCurrentState(const SnapshotProgress& progress) const;
  Status OnCheckpointFrame(const FixpointFrame& frame,
                           const std::map<std::string, Relation>& delta);
  Status RestoreAssigner(const SnapshotConfig& config);
  /// Restores a decoded snapshot's symbols/EDB/config into this (fresh)
  /// engine and stages the rest for the matching LoadProgram + Run.
  Status AdoptSnapshot(SnapshotData snap);
  /// Applies the buffered transaction to the database and re-derives
  /// (incrementally when possible). Called after the WAL commit is
  /// durable, and again — appends suppressed — during replay.
  Status ApplyCommittedOps();
  /// Writes the session snapshot to wal_path_ + ".snap" with a WAL
  /// position of (epoch, offset, wal_commits_).
  Status WriteSessionSnapshot(uint64_t epoch, uint64_t offset);
  /// Charges the governor for an adopted snapshot's derived state, so
  /// recovered sessions report the same totals.memory_bytes as the
  /// session they replace.
  Status RechargeGovernor();
  Status ReplayWal(const WalScanResult& scan, uint64_t replay_from);

  SymbolTable symbols_;
  Database database_;
  Program program_;
  std::unique_ptr<EngineImpl> impl_;
  std::unique_ptr<TidAssigner> assigner_;
  EvalLimits limits_;
  ResourceGovernor governor_;
  Status last_trip_;
  TraceSink* trace_ = nullptr;
  bool profiling_ = false;
  bool partial_results_ = false;
  bool seminaive_ = true;
  bool tid_bound_pushdown_ = true;
  bool provenance_ = false;
  bool use_indexes_ = true;
  bool explain_ = false;
  RewriteLog rewrite_log_;
  int threads_ = 1;
  int delta_partitions_ = 0;
  bool ran_ = false;

  std::string flight_dump_path_;      ///< Empty: no dump-on-failure.
  std::string checkpoint_path_;       ///< Empty: checkpointing off.
  uint64_t checkpoint_every_ = 1;     ///< Write cadence in round frames.
  uint64_t frames_since_write_ = 0;
  std::string last_frame_;            ///< Last serialized round frame.
  uint64_t program_hash_ = 0;         ///< FNV-1a of the printed program.
  /// Decoded snapshot awaiting the matching LoadProgram + Run.
  std::unique_ptr<SnapshotData> pending_resume_;

  // --- Durable-session state. ---
  struct PendingOp {
    bool retract = false;
    std::string pred;
    Tuple tuple;
  };
  /// Recovery staging between PrepareRecovery and CompleteRecovery.
  struct RecoveryState {
    std::string wal_path;
    WalScanResult scan;
    SnapshotWalPosition snap_pos;
    bool have_wal = false;
    bool have_snapshot = false;
  };
  std::unique_ptr<WriteAheadLog> wal_;  ///< Null: no session attached.
  std::string wal_path_;
  WalOptions wal_options_;
  std::vector<PendingOp> txn_ops_;
  bool in_txn_ = false;
  bool wal_replaying_ = false;  ///< Suppresses appends during replay.
  /// Latched on any log write failure: the append buffer's state is no
  /// longer known to match the file, so further commits are refused and
  /// the caller must recover from the WAL (the durable prefix is intact
  /// — nothing before the failed write is ever rewritten).
  bool wal_failed_ = false;
  uint64_t wal_commits_ = 0;
  uint64_t wal_commits_replayed_ = 0;
  bool last_commit_incremental_ = false;
  std::unique_ptr<RecoveryState> pending_recovery_;
};

}  // namespace idlog

#endif  // IDLOG_CORE_IDLOG_ENGINE_H_
