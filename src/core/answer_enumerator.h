#ifndef IDLOG_CORE_ANSWER_ENUMERATOR_H_
#define IDLOG_CORE_ANSWER_ENUMERATOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/limits.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/database.h"

namespace idlog {

struct EnumerateOptions {
  /// Abort with ResourceExhausted beyond this many tid assignments.
  /// Deprecated in favour of `governor`, which it is implemented on
  /// top of; kept so existing call sites keep their cap.
  uint64_t max_assignments = 1000000;
  bool seminaive = true;
  /// Shared resource governor (deadline, budgets, cancellation). When
  /// set it governs every inner evaluation too, so a Cancel() from
  /// another thread stops a running enumeration within one checkpoint
  /// interval. Not owned; null falls back to max_assignments only.
  ResourceGovernor* governor = nullptr;
};

/// The set of possible answers of a non-deterministic query: one entry
/// per distinct answer relation (tuples in sorted canonical order).
struct AnswerSet {
  std::set<std::vector<Tuple>> answers;
  uint64_t assignments_tried = 0;
  /// False when some ID-group was too large to enumerate: a group of
  /// n >= 21 tuples has n! > 2^64 permutations, its radix saturates to
  /// UINT64_MAX, and the odometer cannot walk past rank 0 for it — so
  /// `answers` covers only a slice of the choice tree instead of all of
  /// it. Check before treating `answers` as the complete extent.
  bool exhaustive = true;

  bool ContainsAnswer(std::vector<Tuple> tuples) const;
};

/// Exhaustively enumerates every answer of `query_pred` that `program`
/// can produce on `database` across *all* ID-function choices — the
/// full extent of the IDLOG query q(r) of Section 3.1. Explores the
/// choice tree depth-first: later ID-relations may depend on earlier
/// choices (their base relations are derived), so the tree can have
/// variable depth per branch.
///
/// Exponential in group sizes (each group of size n contributes n!
/// branches); intended for the small instances used to verify the
/// paper's possible-answer sets (Examples 2, 5, 7) and for property
/// tests, not for production queries.
Result<AnswerSet> EnumerateAnswers(const Program& program,
                                   const Database& database,
                                   const std::string& query_pred,
                                   const EnumerateOptions& options = {});

}  // namespace idlog

#endif  // IDLOG_CORE_ANSWER_ENUMERATOR_H_
