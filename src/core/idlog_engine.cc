#include "core/idlog_engine.h"

#include "analysis/dependency_graph.h"
#include "parser/parser.h"

namespace idlog {

IdlogEngine::IdlogEngine()
    : database_(&symbols_),
      assigner_(std::make_unique<IdentityTidAssigner>()) {}

Status IdlogEngine::LoadProgramText(std::string_view text) {
  IDLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(text, &symbols_));
  return LoadProgram(std::move(program));
}

Status IdlogEngine::LoadProgram(Program program) {
  program_ = std::move(program);
  auto impl = std::make_unique<EngineImpl>(&program_, &database_);
  impl->set_tid_bound_pushdown(tid_bound_pushdown_);
  impl->set_provenance_enabled(provenance_);
  impl->set_use_indexes(use_indexes_);
  impl->set_threads(threads_);
  impl->set_trace_sink(trace_);
  impl->set_profiling_enabled(profiling_);
  impl->set_explain_enabled(explain_);
  impl->set_rewrite_log(rewrite_log_);
  IDLOG_RETURN_NOT_OK(impl->Prepare());
  impl_ = std::move(impl);
  ran_ = false;
  return Status::OK();
}

Status IdlogEngine::AddFact(const std::string& pred, Tuple t) {
  ran_ = false;
  return database_.AddTuple(pred, std::move(t));
}

Status IdlogEngine::AddRow(const std::string& pred,
                           const std::vector<std::string>& fields) {
  ran_ = false;
  return database_.AddRow(pred, fields);
}

void IdlogEngine::SetTidAssigner(std::unique_ptr<TidAssigner> assigner) {
  assigner_ = std::move(assigner);
  ran_ = false;
}

void IdlogEngine::SetSeminaive(bool seminaive) {
  if (seminaive_ != seminaive) ran_ = false;
  seminaive_ = seminaive;
}

void IdlogEngine::SetThreads(int n) {
  if (n < 1) n = 1;
  if (threads_ != n) ran_ = false;
  threads_ = n;
  if (impl_ != nullptr) impl_->set_threads(n);
}

void IdlogEngine::SetTidBoundPushdown(bool enabled) {
  if (tid_bound_pushdown_ != enabled) ran_ = false;
  tid_bound_pushdown_ = enabled;
  if (impl_ != nullptr) impl_->set_tid_bound_pushdown(enabled);
}

void IdlogEngine::SetLimits(const EvalLimits& limits) {
  limits_ = limits;
  ran_ = false;
}

Status IdlogEngine::Run() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (ran_) return Status::OK();
  // Arm per run: the deadline counts from here, and a trip or Cancel()
  // from a previous run does not poison this one.
  governor_.Arm(limits_);
  impl_->set_governor(&governor_);
  last_trip_ = Status::OK();
  Status st = impl_->Evaluate(assigner_.get(), seminaive_);
  if (!st.ok()) {
    if (partial_results_ && st.code() == StatusCode::kResourceExhausted) {
      // Keep the model computed so far queryable; the diagnostic is
      // available via last_trip().
      last_trip_ = std::move(st);
      ran_ = true;
      return Status::OK();
    }
    return st;
  }
  ran_ = true;
  return Status::OK();
}

Result<const Relation*> IdlogEngine::Query(const std::string& pred) {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->RelationOf(pred);
}

Result<const Relation*> IdlogEngine::QueryIdRelation(
    const std::string& pred, const std::vector<int>& group) {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->IdRelationOf(pred, group);
}

Result<Relation> IdlogEngine::QueryPortion(const std::string& pred) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  Program portion;
  portion.predicates = program_.predicates;
  portion.clauses = ProgramPortion(program_, pred);
  if (portion.clauses.empty() && !database_.HasRelation(pred)) {
    return Status::NotFound("no clauses define '" + pred + "'");
  }
  EngineImpl impl(&portion, &database_);
  impl.set_tid_bound_pushdown(tid_bound_pushdown_);
  impl.set_trace_sink(trace_);
  governor_.Arm(limits_);
  impl.set_governor(&governor_);
  IDLOG_RETURN_NOT_OK(impl.Prepare());
  IDLOG_RETURN_NOT_OK(impl.Evaluate(assigner_.get(), seminaive_));
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl.RelationOf(pred));
  return *rel;
}

Result<bool> IdlogEngine::VerifyModel() {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->VerifyModel();
}

void IdlogEngine::SetUseIndexes(bool enabled) {
  if (use_indexes_ != enabled) ran_ = false;
  use_indexes_ = enabled;
  if (impl_ != nullptr) impl_->set_use_indexes(enabled);
}

void IdlogEngine::SetTraceSink(TraceSink* sink) {
  trace_ = sink;
  governor_.set_trace_sink(sink);
  if (impl_ != nullptr) impl_->set_trace_sink(sink);
}

void IdlogEngine::EnableProfiling(bool enabled) {
  if (profiling_ != enabled) ran_ = false;
  profiling_ = enabled;
  if (impl_ != nullptr) impl_->set_profiling_enabled(enabled);
}

const EvalProfile& IdlogEngine::profile() const {
  static const EvalProfile kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->profile();
}

void IdlogEngine::EnableProvenance(bool enabled) {
  if (provenance_ != enabled) ran_ = false;
  provenance_ = enabled;
  if (impl_ != nullptr) impl_->set_provenance_enabled(enabled);
}

Result<std::string> IdlogEngine::Explain(const std::string& pred,
                                         const Tuple& tuple) {
  if (!provenance_) {
    return Status::InvalidArgument(
        "call EnableProvenance(true) before Run() to use Explain()");
  }
  IDLOG_RETURN_NOT_OK(Run());
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl_->RelationOf(pred));
  if (!rel->Contains(tuple)) {
    return Status::NotFound(pred + TupleToString(tuple, symbols_) +
                            " does not hold in the computed model");
  }
  auto is_leaf = [this](const std::string& p, const Tuple& t) {
    Result<const Relation*> stored = database_.Get(p);
    return stored.ok() && (*stored)->Contains(t);
  };
  return ExplainFact(impl_->provenance(), symbols_, pred, tuple, is_leaf);
}

void IdlogEngine::EnableExplain(bool enabled) {
  if (explain_ != enabled) ran_ = false;
  explain_ = enabled;
  if (impl_ != nullptr) impl_->set_explain_enabled(enabled);
}

void IdlogEngine::SetRewriteLog(RewriteLog log) {
  rewrite_log_ = std::move(log);
  if (impl_ != nullptr) impl_->set_rewrite_log(rewrite_log_);
}

Result<std::string> IdlogEngine::ExplainPlan() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  return impl_->ExplainPlanText(/*analyze=*/false);
}

Result<std::string> IdlogEngine::ExplainAnalyze() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  EnableExplain(true);
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->ExplainPlanText(/*analyze=*/true);
}

Result<std::string> IdlogEngine::ExplainPlanJson(bool analyze) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (!analyze) return impl_->ExplainPlanJson(/*analyze=*/false);
  EnableExplain(true);
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->ExplainPlanJson(/*analyze=*/true);
}

const PlanAnalysis& IdlogEngine::plan_analysis() const {
  static const PlanAnalysis kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->plan_analysis();
}

const EvalStats& IdlogEngine::stats() const {
  static const EvalStats kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->stats();
}

Result<const Stratification*> IdlogEngine::stratification() const {
  if (impl_ == nullptr) return Status::InvalidArgument("no program loaded");
  return &impl_->stratification();
}

}  // namespace idlog
