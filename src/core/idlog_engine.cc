#include "core/idlog_engine.h"

#include "analysis/dependency_graph.h"
#include "ast/printer.h"
#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "store/atomic_file.h"

namespace idlog {
namespace {

/// 64-bit FNV-1a over the round-tripped program text: cheap, stable
/// across processes, and exactly as precise as the printer (two
/// programs hash alike iff they print alike).
uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

IdlogEngine::IdlogEngine()
    : database_(&symbols_),
      assigner_(std::make_unique<IdentityTidAssigner>()) {}

Status IdlogEngine::LoadProgramText(std::string_view text) {
  IDLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(text, &symbols_));
  return LoadProgram(std::move(program));
}

Status IdlogEngine::LoadProgram(Program program) {
  program_ = std::move(program);
  program_hash_ = Fnv1a64(ProgramToString(program_, symbols_));
  // Hash 0 marks a cold-start snapshot taken before any program was
  // loaded; it carries no fixpoint progress, so any program may follow.
  if (pending_resume_ != nullptr &&
      pending_resume_->config.program_hash != 0 &&
      pending_resume_->config.program_hash != program_hash_) {
    return Status::InvalidArgument(
        "program does not match the checkpoint being resumed (program "
        "hash mismatch); resume with the same program text the snapshot "
        "was taken under");
  }
  auto impl = std::make_unique<EngineImpl>(&program_, &database_);
  impl->set_tid_bound_pushdown(tid_bound_pushdown_);
  impl->set_provenance_enabled(provenance_);
  impl->set_use_indexes(use_indexes_);
  impl->set_threads(threads_);
  impl->set_delta_partitions(delta_partitions_);
  impl->set_trace_sink(trace_);
  impl->set_profiling_enabled(profiling_);
  impl->set_explain_enabled(explain_);
  impl->set_rewrite_log(rewrite_log_);
  IDLOG_RETURN_NOT_OK(impl->Prepare());
  impl_ = std::move(impl);
  ran_ = false;
  return Status::OK();
}

Status IdlogEngine::AddFact(const std::string& pred, Tuple t) {
  ran_ = false;
  return database_.AddTuple(pred, std::move(t));
}

Status IdlogEngine::AddRow(const std::string& pred,
                           const std::vector<std::string>& fields) {
  ran_ = false;
  return database_.AddRow(pred, fields);
}

void IdlogEngine::SetTidAssigner(std::unique_ptr<TidAssigner> assigner) {
  assigner_ = std::move(assigner);
  ran_ = false;
}

void IdlogEngine::SetSeminaive(bool seminaive) {
  if (seminaive_ != seminaive) ran_ = false;
  seminaive_ = seminaive;
}

void IdlogEngine::SetThreads(int n) {
  if (n < 1) n = 1;
  if (threads_ != n) ran_ = false;
  threads_ = n;
  if (impl_ != nullptr) impl_->set_threads(n);
}

void IdlogEngine::SetDeltaPartitions(int k) {
  if (k < 0) k = 0;
  if (delta_partitions_ != k) ran_ = false;
  delta_partitions_ = k;
  if (impl_ != nullptr) impl_->set_delta_partitions(k);
}

void IdlogEngine::SetTidBoundPushdown(bool enabled) {
  if (tid_bound_pushdown_ != enabled) ran_ = false;
  tid_bound_pushdown_ = enabled;
  if (impl_ != nullptr) impl_->set_tid_bound_pushdown(enabled);
}

void IdlogEngine::SetLimits(const EvalLimits& limits) {
  limits_ = limits;
  ran_ = false;
}

void IdlogEngine::SetCheckpoint(std::string path, uint64_t every_rounds) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every_rounds < 1 ? 1 : every_rounds;
}

SnapshotConfig IdlogEngine::CurrentConfig() const {
  SnapshotConfig config;
  config.program_hash = program_hash_;
  config.seminaive = seminaive_;
  config.tid_bound_pushdown = tid_bound_pushdown_;
  config.use_indexes = use_indexes_;
  if (assigner_ != nullptr) {
    config.assigner_kind = assigner_->kind();
    config.assigner_state = assigner_->SaveState();
  } else {
    config.assigner_kind = "identity";
  }
  return config;
}

std::string IdlogEngine::SerializeCurrentState(
    const SnapshotProgress& progress) const {
  SnapshotView view;
  view.symbols = &symbols_;
  view.database = &database_;
  view.derived = &impl_->derived();
  view.id_relations = &impl_->id_relations();
  view.delta = nullptr;
  view.stats = &impl_->stats();
  view.analysis = impl_->explain_enabled() ? &impl_->plan_analysis() : nullptr;
  view.profile = impl_->profiling_enabled() ? &impl_->profile() : nullptr;
  view.provenance = provenance_ ? &impl_->provenance() : nullptr;
  view.config = CurrentConfig();
  view.progress = progress;
  return SerializeSnapshot(view);
}

Status IdlogEngine::OnCheckpointFrame(
    const FixpointFrame& frame,
    const std::map<std::string, Relation>& delta) {
  IDLOG_FAILPOINT("engine.checkpoint.frame");
  SnapshotView view;
  view.symbols = &symbols_;
  view.database = &database_;
  view.derived = &impl_->derived();
  view.id_relations = &impl_->id_relations();
  view.delta = frame.in_stratum ? &delta : nullptr;
  view.stats = &impl_->stats();
  view.analysis = impl_->explain_enabled() ? &impl_->plan_analysis() : nullptr;
  view.profile = impl_->profiling_enabled() ? &impl_->profile() : nullptr;
  view.provenance = provenance_ ? &impl_->provenance() : nullptr;
  view.config = CurrentConfig();
  view.progress.completed = frame.completed;
  view.progress.stratum = frame.stratum;
  view.progress.round = frame.round;
  view.progress.in_stratum = frame.in_stratum;
  last_frame_ = SerializeSnapshot(view);
  if (++frames_since_write_ >= checkpoint_every_) {
    frames_since_write_ = 0;
    return WriteFileAtomic(checkpoint_path_, last_frame_);
  }
  return Status::OK();
}

Status IdlogEngine::SaveCheckpoint(const std::string& path) {
  // ran_ implies a loaded program; the cold-start branch below handles
  // an engine with no program at all (config hash 0, database only).
  if (ran_ && last_trip_.ok()) {
    SnapshotProgress done;
    done.completed = true;
    done.stratum = impl_->stratification().num_strata;
    return WriteFileAtomic(path, SerializeCurrentState(done));
  }
  if (!last_frame_.empty()) {
    // Last consistent round boundary of the (tripped or in-flight) run.
    return WriteFileAtomic(path, last_frame_);
  }
  if (!ran_) {
    // Cold start: program config + database, no progress. A resume of
    // this snapshot evaluates from scratch against the restored state.
    static const std::map<std::string, Relation> kNoDerived;
    static const std::map<std::pair<std::string, std::vector<int>>, Relation>
        kNoIdRels;
    static const EvalStats kNoStats;
    SnapshotView view;
    view.symbols = &symbols_;
    view.database = &database_;
    view.derived = &kNoDerived;
    view.id_relations = &kNoIdRels;
    view.stats = &kNoStats;
    view.config = CurrentConfig();
    return WriteFileAtomic(path, SerializeSnapshot(view));
  }
  return Status::InvalidArgument(
      "the tripped run was not checkpointing, so no consistent round "
      "frame exists; arm SetCheckpoint() before Run() to make trips "
      "resumable");
}

Status IdlogEngine::RestoreAssigner(const SnapshotConfig& config) {
  if (assigner_ == nullptr || assigner_->kind() != config.assigner_kind) {
    if (config.assigner_kind == "identity") {
      assigner_ = std::make_unique<IdentityTidAssigner>();
    } else if (config.assigner_kind == "random") {
      assigner_ = std::make_unique<RandomTidAssigner>(0);
    } else if (config.assigner_kind == "scripted") {
      assigner_ = std::make_unique<ScriptedTidAssigner>();
    } else {
      return Status::InvalidArgument(
          "snapshot was taken under a custom tid assigner ('" +
          config.assigner_kind +
          "'); install a matching assigner with SetTidAssigner() before "
          "resuming");
    }
  }
  return assigner_->RestoreState(config.assigner_state);
}

Status IdlogEngine::ResumeFromCheckpoint(const std::string& path) {
  if (impl_ != nullptr || symbols_.size() != 0 ||
      !database_.relation_names().empty()) {
    return Status::InvalidArgument(
        "ResumeFromCheckpoint() needs a fresh engine: no program loaded "
        "and an empty database");
  }
  IDLOG_ASSIGN_OR_RETURN(SnapshotData snap, LoadSnapshotFile(path));
  symbols_ = snap.symbols;
  for (const SnapshotData::NamedRelation& nr : snap.edb) {
    IDLOG_RETURN_NOT_OK(database_.CreateRelation(nr.name, nr.relation.type()));
    for (const Tuple& t : nr.relation.tuples()) {
      IDLOG_RETURN_NOT_OK(database_.AddTuple(nr.name, t));
    }
  }
  for (SymbolId id : snap.u_domain) database_.AddDomainConstant(id);
  // Fixpoint-content switches come from the snapshot (they change what
  // is computed); --jobs stays physical and caller-chosen.
  SetSeminaive(snap.config.seminaive);
  SetTidBoundPushdown(snap.config.tid_bound_pushdown);
  SetUseIndexes(snap.config.use_indexes);
  pending_resume_ = std::make_unique<SnapshotData>(std::move(snap));
  ran_ = false;
  return Status::OK();
}

Status IdlogEngine::Run() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (ran_) return Status::OK();
  if (pending_resume_ != nullptr) {
    std::unique_ptr<SnapshotData> snap = std::move(pending_resume_);
    IDLOG_RETURN_NOT_OK(RestoreAssigner(snap->config));
    EvalResumeState state;
    state.derived = std::move(snap->derived);
    state.id_relations = std::move(snap->id_relations);
    state.delta = std::move(snap->delta);
    state.stats = snap->stats;
    state.has_analysis = snap->has_analysis;
    state.analysis = std::move(snap->analysis);
    state.has_profile = snap->has_profile;
    state.profile = std::move(snap->profile);
    state.has_provenance = snap->has_provenance;
    state.provenance = std::move(snap->provenance);
    state.stratum = snap->progress.stratum;
    state.round = snap->progress.round;
    state.in_stratum = snap->progress.in_stratum;
    impl_->InstallResumeState(std::move(state));
    // A completed snapshot resumes at stratum == num_strata, so the
    // Evaluate() below adopts the finished model without doing work.
  }
  if (!checkpoint_path_.empty()) {
    impl_->set_checkpoint_hook(
        [this](const FixpointFrame& frame,
               const std::map<std::string, Relation>& delta) {
          return OnCheckpointFrame(frame, delta);
        });
  } else {
    impl_->set_checkpoint_hook(nullptr);
  }
  last_frame_.clear();
  frames_since_write_ = 0;
  // Arm per run: the deadline counts from here, and a trip or Cancel()
  // from a previous run does not poison this one.
  governor_.Arm(limits_);
  impl_->set_governor(&governor_);
  last_trip_ = Status::OK();
  FlightRecorder::Record(FlightEventKind::kRunStart, "run",
                         static_cast<int64_t>(threads_),
                         static_cast<int64_t>(delta_partitions_));
  Status st = impl_->Evaluate(assigner_.get(), seminaive_);
  if (!st.ok()) {
    FlightRecorder::Record(FlightEventKind::kRunEnd, "failure",
                           static_cast<int64_t>(st.code()));
    DumpFlightRecorder();
    // Durability on the way down: put the last consistent frame (if
    // any) on disk so the run is resumable past this failure.
    Status final_write = Status::OK();
    if (!checkpoint_path_.empty() && !last_frame_.empty()) {
      final_write = WriteFileAtomic(checkpoint_path_, last_frame_);
    }
    if (partial_results_ && st.code() == StatusCode::kResourceExhausted) {
      // Keep the model computed so far queryable; the diagnostic is
      // available via last_trip().
      last_trip_ = std::move(st);
      ran_ = true;
      return final_write;
    }
    return st;
  }
  ran_ = true;
  FlightRecorder::Record(FlightEventKind::kRunEnd, "ok", 0,
                         static_cast<int64_t>(stats().facts_inserted));
  if (!checkpoint_path_.empty()) {
    SnapshotProgress done;
    done.completed = true;
    done.stratum = impl_->stratification().num_strata;
    return WriteFileAtomic(checkpoint_path_, SerializeCurrentState(done));
  }
  return Status::OK();
}

void IdlogEngine::DumpFlightRecorder() const {
  if (flight_dump_path_.empty() || !FlightRecorder::Enabled()) return;
  // Best-effort black box on the failure path: a dump error must not
  // mask the Status the evaluation is unwinding with.
  (void)FlightRecorder::Instance().Dump(flight_dump_path_);
}

Result<const Relation*> IdlogEngine::Query(const std::string& pred) {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->RelationOf(pred);
}

Result<const Relation*> IdlogEngine::QueryIdRelation(
    const std::string& pred, const std::vector<int>& group) {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->IdRelationOf(pred, group);
}

Result<Relation> IdlogEngine::QueryPortion(const std::string& pred) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  Program portion;
  portion.predicates = program_.predicates;
  portion.clauses = ProgramPortion(program_, pred);
  if (portion.clauses.empty() && !database_.HasRelation(pred)) {
    return Status::NotFound("no clauses define '" + pred + "'");
  }
  EngineImpl impl(&portion, &database_);
  impl.set_tid_bound_pushdown(tid_bound_pushdown_);
  impl.set_trace_sink(trace_);
  governor_.Arm(limits_);
  impl.set_governor(&governor_);
  IDLOG_RETURN_NOT_OK(impl.Prepare());
  IDLOG_RETURN_NOT_OK(impl.Evaluate(assigner_.get(), seminaive_));
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl.RelationOf(pred));
  return *rel;
}

Result<bool> IdlogEngine::VerifyModel() {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->VerifyModel();
}

void IdlogEngine::SetUseIndexes(bool enabled) {
  if (use_indexes_ != enabled) ran_ = false;
  use_indexes_ = enabled;
  if (impl_ != nullptr) impl_->set_use_indexes(enabled);
}

void IdlogEngine::SetTraceSink(TraceSink* sink) {
  trace_ = sink;
  governor_.set_trace_sink(sink);
  if (impl_ != nullptr) impl_->set_trace_sink(sink);
}

void IdlogEngine::EnableProfiling(bool enabled) {
  if (profiling_ != enabled) ran_ = false;
  profiling_ = enabled;
  if (impl_ != nullptr) impl_->set_profiling_enabled(enabled);
}

const EvalProfile& IdlogEngine::profile() const {
  static const EvalProfile kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->profile();
}

void IdlogEngine::EnableProvenance(bool enabled) {
  if (provenance_ != enabled) ran_ = false;
  provenance_ = enabled;
  if (impl_ != nullptr) impl_->set_provenance_enabled(enabled);
}

Result<std::string> IdlogEngine::Explain(const std::string& pred,
                                         const Tuple& tuple) {
  if (!provenance_) {
    return Status::InvalidArgument(
        "call EnableProvenance(true) before Run() to use Explain()");
  }
  IDLOG_RETURN_NOT_OK(Run());
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl_->RelationOf(pred));
  if (!rel->Contains(tuple)) {
    return Status::NotFound(pred + TupleToString(tuple, symbols_) +
                            " does not hold in the computed model");
  }
  auto is_leaf = [this](const std::string& p, const Tuple& t) {
    Result<const Relation*> stored = database_.Get(p);
    return stored.ok() && (*stored)->Contains(t);
  };
  return ExplainFact(impl_->provenance(), symbols_, pred, tuple, is_leaf);
}

Result<ProofTree> IdlogEngine::BuildWhy(const std::string& pred,
                                        const Tuple& tuple,
                                        const WhyBudget& budget) {
  if (!provenance_) {
    return Status::InvalidArgument(
        "call EnableProvenance(true) before Run() to use Why()");
  }
  IDLOG_RETURN_NOT_OK(Run());
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl_->RelationOf(pred));
  if (!rel->Contains(tuple)) {
    return Status::NotFound(pred + TupleToString(tuple, symbols_) +
                            " does not hold in the computed model; use "
                            "WhyNot() for absent facts");
  }
  auto is_leaf = [this](const std::string& p, const Tuple& t) {
    Result<const Relation*> stored = database_.Get(p);
    return stored.ok() && (*stored)->Contains(t);
  };
  return BuildProofTree(impl_->provenance(), symbols_, pred, tuple, is_leaf,
                        budget);
}

Result<std::string> IdlogEngine::Why(const std::string& pred,
                                     const Tuple& tuple,
                                     const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(ProofTree tree, BuildWhy(pred, tuple, budget));
  return RenderWhyText(tree);
}

Result<std::string> IdlogEngine::WhyJson(const std::string& pred,
                                         const Tuple& tuple,
                                         const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(ProofTree tree, BuildWhy(pred, tuple, budget));
  return RenderWhyJson(tree);
}

Result<WhyNotReport> IdlogEngine::BuildWhyNotReport(const std::string& pred,
                                                    const Tuple& tuple,
                                                    const WhyBudget& budget) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  IDLOG_RETURN_NOT_OK(Run());
  std::vector<std::string> rule_texts;
  rule_texts.reserve(program_.clauses.size());
  for (const Clause& clause : program_.clauses) {
    rule_texts.push_back(ClauseToString(clause, symbols_));
  }
  WhyNotContext ctx;
  ctx.plans = &impl_->plans();
  ctx.rule_texts = &rule_texts;
  ctx.symbols = &symbols_;
  ctx.full = [this](const std::string& p) -> const Relation* {
    Result<const Relation*> r = impl_->RelationOf(p);
    return r.ok() ? *r : nullptr;
  };
  ctx.id_relation = [this](const std::string& p,
                           const std::vector<int>& g) -> const Relation* {
    Result<const Relation*> r = impl_->IdRelationOf(p, g);
    return r.ok() ? *r : nullptr;
  };
  return BuildWhyNot(ctx, pred, tuple, budget);
}

Result<std::string> IdlogEngine::WhyNot(const std::string& pred,
                                        const Tuple& tuple,
                                        const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(WhyNotReport report,
                         BuildWhyNotReport(pred, tuple, budget));
  return RenderWhyNotText(report);
}

Result<std::string> IdlogEngine::WhyNotJson(const std::string& pred,
                                            const Tuple& tuple,
                                            const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(WhyNotReport report,
                         BuildWhyNotReport(pred, tuple, budget));
  return RenderWhyNotJson(report);
}

void IdlogEngine::EnableExplain(bool enabled) {
  if (explain_ != enabled) ran_ = false;
  explain_ = enabled;
  if (impl_ != nullptr) impl_->set_explain_enabled(enabled);
}

void IdlogEngine::SetRewriteLog(RewriteLog log) {
  rewrite_log_ = std::move(log);
  if (impl_ != nullptr) impl_->set_rewrite_log(rewrite_log_);
}

Result<std::string> IdlogEngine::ExplainPlan() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  return impl_->ExplainPlanText(/*analyze=*/false);
}

Result<std::string> IdlogEngine::ExplainAnalyze() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  EnableExplain(true);
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->ExplainPlanText(/*analyze=*/true);
}

Result<std::string> IdlogEngine::ExplainPlanJson(bool analyze) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (!analyze) return impl_->ExplainPlanJson(/*analyze=*/false);
  EnableExplain(true);
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->ExplainPlanJson(/*analyze=*/true);
}

const PlanAnalysis& IdlogEngine::plan_analysis() const {
  static const PlanAnalysis kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->plan_analysis();
}

const EvalStats& IdlogEngine::stats() const {
  static const EvalStats kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->stats();
}

Result<const Stratification*> IdlogEngine::stratification() const {
  if (impl_ == nullptr) return Status::InvalidArgument("no program loaded");
  return &impl_->stratification();
}

StorageStats IdlogEngine::DbStats() const {
  StorageStatsView view;
  view.database = &database_;
  view.symbols = &symbols_;
  view.governor = &governor_;
  view.assigner = assigner_.get();
  if (impl_ != nullptr) {
    view.derived = &impl_->derived();
    view.id_relations = &impl_->id_relations();
    view.udom = &impl_->udom_relation();
    view.index_caches = &impl_->index_caches();
    view.provenance = &impl_->provenance();
  }
  return CollectStorageStats(view);
}

std::string IdlogEngine::DbStatsText() const { return DbStats().ToTable(); }

std::string IdlogEngine::DbStatsJson() const { return DbStats().ToJson(); }

std::string IdlogEngine::MetricsJson() const {
  MetricsRegistry reg;
  profile().ToMetrics(&reg);
  // Storage/governor gauges the profile cannot see. db.indexes is
  // physical (build scheduling varies with --jobs) — callers comparing
  // runs diff counters, not gauges, exactly because of entries like it.
  const StorageStats db = DbStats();
  reg.SetGauge("totals.memory_bytes",
               static_cast<int64_t>(governor_.memory_charged()));
  reg.SetGauge("db.relations",
               static_cast<int64_t>(db.relations.size()));
  reg.SetGauge("db.id_relations",
               static_cast<int64_t>(db.id_relations.size()));
  reg.SetGauge("db.tuples", static_cast<int64_t>(db.total_tuples()));
  reg.SetGauge("db.approx_bytes",
               static_cast<int64_t>(db.total_approx_bytes()));
  reg.SetGauge("db.indexes", static_cast<int64_t>(db.total_indexes));
  return reg.ToJson();
}

}  // namespace idlog
