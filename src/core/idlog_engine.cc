#include "core/idlog_engine.h"

#include "analysis/dependency_graph.h"
#include "ast/printer.h"
#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "store/atomic_file.h"

namespace idlog {
namespace {

/// 64-bit FNV-1a over the round-tripped program text: cheap, stable
/// across processes, and exactly as precise as the printer (two
/// programs hash alike iff they print alike).
uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

IdlogEngine::IdlogEngine()
    : database_(&symbols_),
      assigner_(std::make_unique<IdentityTidAssigner>()) {}

Status IdlogEngine::LoadProgramText(std::string_view text) {
  IDLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(text, &symbols_));
  return LoadProgram(std::move(program));
}

Status IdlogEngine::LoadProgram(Program program) {
  program_ = std::move(program);
  program_hash_ = Fnv1a64(ProgramToString(program_, symbols_));
  // Hash 0 marks a cold-start snapshot taken before any program was
  // loaded; it carries no fixpoint progress, so any program may follow.
  if (pending_resume_ != nullptr &&
      pending_resume_->config.program_hash != 0 &&
      pending_resume_->config.program_hash != program_hash_) {
    return Status::InvalidArgument(
        "program does not match the checkpoint being resumed (program "
        "hash mismatch); resume with the same program text the snapshot "
        "was taken under");
  }
  auto impl = std::make_unique<EngineImpl>(&program_, &database_);
  impl->set_tid_bound_pushdown(tid_bound_pushdown_);
  impl->set_provenance_enabled(provenance_);
  impl->set_use_indexes(use_indexes_);
  impl->set_threads(threads_);
  impl->set_delta_partitions(delta_partitions_);
  impl->set_trace_sink(trace_);
  impl->set_profiling_enabled(profiling_);
  impl->set_explain_enabled(explain_);
  impl->set_rewrite_log(rewrite_log_);
  IDLOG_RETURN_NOT_OK(impl->Prepare());
  impl_ = std::move(impl);
  ran_ = false;
  return Status::OK();
}

Status IdlogEngine::AddFact(const std::string& pred, Tuple t) {
  ran_ = false;
  return database_.AddTuple(pred, std::move(t));
}

Status IdlogEngine::AddRow(const std::string& pred,
                           const std::vector<std::string>& fields) {
  ran_ = false;
  return database_.AddRow(pred, fields);
}

void IdlogEngine::SetTidAssigner(std::unique_ptr<TidAssigner> assigner) {
  assigner_ = std::move(assigner);
  ran_ = false;
}

void IdlogEngine::SetSeminaive(bool seminaive) {
  if (seminaive_ != seminaive) ran_ = false;
  seminaive_ = seminaive;
}

void IdlogEngine::SetThreads(int n) {
  if (n < 1) n = 1;
  if (threads_ != n) ran_ = false;
  threads_ = n;
  if (impl_ != nullptr) impl_->set_threads(n);
}

void IdlogEngine::SetDeltaPartitions(int k) {
  if (k < 0) k = 0;
  if (delta_partitions_ != k) ran_ = false;
  delta_partitions_ = k;
  if (impl_ != nullptr) impl_->set_delta_partitions(k);
}

void IdlogEngine::SetTidBoundPushdown(bool enabled) {
  if (tid_bound_pushdown_ != enabled) ran_ = false;
  tid_bound_pushdown_ = enabled;
  if (impl_ != nullptr) impl_->set_tid_bound_pushdown(enabled);
}

void IdlogEngine::SetLimits(const EvalLimits& limits) {
  limits_ = limits;
  ran_ = false;
}

void IdlogEngine::SetCheckpoint(std::string path, uint64_t every_rounds) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every_rounds < 1 ? 1 : every_rounds;
}

SnapshotConfig IdlogEngine::CurrentConfig() const {
  SnapshotConfig config;
  config.program_hash = program_hash_;
  config.seminaive = seminaive_;
  config.tid_bound_pushdown = tid_bound_pushdown_;
  config.use_indexes = use_indexes_;
  if (assigner_ != nullptr) {
    config.assigner_kind = assigner_->kind();
    config.assigner_state = assigner_->SaveState();
  } else {
    config.assigner_kind = "identity";
  }
  return config;
}

SnapshotView IdlogEngine::CurrentView(
    const SnapshotProgress& progress) const {
  SnapshotView view;
  view.symbols = &symbols_;
  view.database = &database_;
  view.derived = &impl_->derived();
  view.id_relations = &impl_->id_relations();
  view.delta = nullptr;
  view.stats = &impl_->stats();
  view.analysis = impl_->explain_enabled() ? &impl_->plan_analysis() : nullptr;
  view.profile = impl_->profiling_enabled() ? &impl_->profile() : nullptr;
  view.provenance = provenance_ ? &impl_->provenance() : nullptr;
  view.config = CurrentConfig();
  view.progress = progress;
  return view;
}

std::string IdlogEngine::SerializeCurrentState(
    const SnapshotProgress& progress) const {
  return SerializeSnapshot(CurrentView(progress));
}

Status IdlogEngine::OnCheckpointFrame(
    const FixpointFrame& frame,
    const std::map<std::string, Relation>& delta) {
  IDLOG_FAILPOINT("engine.checkpoint.frame");
  SnapshotView view;
  view.symbols = &symbols_;
  view.database = &database_;
  view.derived = &impl_->derived();
  view.id_relations = &impl_->id_relations();
  view.delta = frame.in_stratum ? &delta : nullptr;
  view.stats = &impl_->stats();
  view.analysis = impl_->explain_enabled() ? &impl_->plan_analysis() : nullptr;
  view.profile = impl_->profiling_enabled() ? &impl_->profile() : nullptr;
  view.provenance = provenance_ ? &impl_->provenance() : nullptr;
  view.config = CurrentConfig();
  view.progress.completed = frame.completed;
  view.progress.stratum = frame.stratum;
  view.progress.round = frame.round;
  view.progress.in_stratum = frame.in_stratum;
  last_frame_ = SerializeSnapshot(view);
  if (++frames_since_write_ >= checkpoint_every_) {
    frames_since_write_ = 0;
    return WriteFileAtomic(checkpoint_path_, last_frame_);
  }
  return Status::OK();
}

Status IdlogEngine::SaveCheckpoint(const std::string& path) {
  // ran_ implies a loaded program; the cold-start branch below handles
  // an engine with no program at all (config hash 0, database only).
  if (ran_ && last_trip_.ok()) {
    SnapshotProgress done;
    done.completed = true;
    done.stratum = impl_->stratification().num_strata;
    return WriteFileAtomic(path, SerializeCurrentState(done));
  }
  if (!last_frame_.empty()) {
    // Last consistent round boundary of the (tripped or in-flight) run.
    return WriteFileAtomic(path, last_frame_);
  }
  if (!ran_) {
    // Cold start: program config + database, no progress. A resume of
    // this snapshot evaluates from scratch against the restored state.
    static const std::map<std::string, Relation> kNoDerived;
    static const std::map<std::pair<std::string, std::vector<int>>, Relation>
        kNoIdRels;
    static const EvalStats kNoStats;
    SnapshotView view;
    view.symbols = &symbols_;
    view.database = &database_;
    view.derived = &kNoDerived;
    view.id_relations = &kNoIdRels;
    view.stats = &kNoStats;
    view.config = CurrentConfig();
    return WriteFileAtomic(path, SerializeSnapshot(view));
  }
  return Status::InvalidArgument(
      "the tripped run was not checkpointing, so no consistent round "
      "frame exists; arm SetCheckpoint() before Run() to make trips "
      "resumable");
}

Status IdlogEngine::RestoreAssigner(const SnapshotConfig& config) {
  if (assigner_ == nullptr || assigner_->kind() != config.assigner_kind) {
    if (config.assigner_kind == "identity") {
      assigner_ = std::make_unique<IdentityTidAssigner>();
    } else if (config.assigner_kind == "random") {
      assigner_ = std::make_unique<RandomTidAssigner>(0);
    } else if (config.assigner_kind == "scripted") {
      assigner_ = std::make_unique<ScriptedTidAssigner>();
    } else {
      return Status::InvalidArgument(
          "snapshot was taken under a custom tid assigner ('" +
          config.assigner_kind +
          "'); install a matching assigner with SetTidAssigner() before "
          "resuming");
    }
  }
  return assigner_->RestoreState(config.assigner_state);
}

Status IdlogEngine::AdoptSnapshot(SnapshotData snap) {
  symbols_ = snap.symbols;
  for (const SnapshotData::NamedRelation& nr : snap.edb) {
    IDLOG_RETURN_NOT_OK(database_.CreateRelation(nr.name, nr.relation.type()));
    for (const Tuple& t : nr.relation.tuples()) {
      IDLOG_RETURN_NOT_OK(database_.AddTuple(nr.name, t));
    }
    // The snapshot's logical counters survive the round trip; the
    // re-insertion loop above advanced them from zero, so restore the
    // recorded values for db-stats equivalence.
    IDLOG_ASSIGN_OR_RETURN(Relation * rel, database_.GetMutable(nr.name));
    rel->RestoreCounters(nr.relation.version(),
                         nr.relation.clear_generation());
  }
  for (SymbolId id : snap.u_domain) database_.AddDomainConstant(id);
  // Fixpoint-content switches come from the snapshot (they change what
  // is computed); --jobs stays physical and caller-chosen.
  SetSeminaive(snap.config.seminaive);
  SetTidBoundPushdown(snap.config.tid_bound_pushdown);
  SetUseIndexes(snap.config.use_indexes);
  pending_resume_ = std::make_unique<SnapshotData>(std::move(snap));
  ran_ = false;
  return Status::OK();
}

Status IdlogEngine::ResumeFromCheckpoint(const std::string& path) {
  if (impl_ != nullptr || symbols_.size() != 0 ||
      !database_.relation_names().empty()) {
    return Status::InvalidArgument(
        "ResumeFromCheckpoint() needs a fresh engine: no program loaded "
        "and an empty database");
  }
  IDLOG_ASSIGN_OR_RETURN(SnapshotData snap, LoadSnapshotFile(path));
  return AdoptSnapshot(std::move(snap));
}

Status IdlogEngine::Run() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (ran_) return Status::OK();
  if (pending_resume_ != nullptr) {
    std::unique_ptr<SnapshotData> snap = std::move(pending_resume_);
    IDLOG_RETURN_NOT_OK(RestoreAssigner(snap->config));
    EvalResumeState state;
    state.derived = std::move(snap->derived);
    state.id_relations = std::move(snap->id_relations);
    state.delta = std::move(snap->delta);
    state.stats = snap->stats;
    state.has_analysis = snap->has_analysis;
    state.analysis = std::move(snap->analysis);
    state.has_profile = snap->has_profile;
    state.profile = std::move(snap->profile);
    state.has_provenance = snap->has_provenance;
    state.provenance = std::move(snap->provenance);
    state.stratum = snap->progress.stratum;
    state.round = snap->progress.round;
    state.in_stratum = snap->progress.in_stratum;
    impl_->InstallResumeState(std::move(state));
    // A completed snapshot resumes at stratum == num_strata, so the
    // Evaluate() below adopts the finished model without doing work.
  }
  if (!checkpoint_path_.empty()) {
    impl_->set_checkpoint_hook(
        [this](const FixpointFrame& frame,
               const std::map<std::string, Relation>& delta) {
          return OnCheckpointFrame(frame, delta);
        });
  } else {
    impl_->set_checkpoint_hook(nullptr);
  }
  last_frame_.clear();
  frames_since_write_ = 0;
  // Arm per run: the deadline counts from here, and a trip or Cancel()
  // from a previous run does not poison this one.
  governor_.Arm(limits_);
  impl_->set_governor(&governor_);
  last_trip_ = Status::OK();
  FlightRecorder::Record(FlightEventKind::kRunStart, "run",
                         static_cast<int64_t>(threads_),
                         static_cast<int64_t>(delta_partitions_));
  Status st = impl_->Evaluate(assigner_.get(), seminaive_);
  if (!st.ok()) {
    FlightRecorder::Record(FlightEventKind::kRunEnd, "failure",
                           static_cast<int64_t>(st.code()));
    DumpFlightRecorder();
    // Durability on the way down: put the last consistent frame (if
    // any) on disk so the run is resumable past this failure.
    Status final_write = Status::OK();
    if (!checkpoint_path_.empty() && !last_frame_.empty()) {
      final_write = WriteFileAtomic(checkpoint_path_, last_frame_);
    }
    if (partial_results_ && st.code() == StatusCode::kResourceExhausted) {
      // Keep the model computed so far queryable; the diagnostic is
      // available via last_trip().
      last_trip_ = std::move(st);
      ran_ = true;
      return final_write;
    }
    return st;
  }
  ran_ = true;
  FlightRecorder::Record(FlightEventKind::kRunEnd, "ok", 0,
                         static_cast<int64_t>(stats().facts_inserted));
  if (!checkpoint_path_.empty()) {
    SnapshotProgress done;
    done.completed = true;
    done.stratum = impl_->stratification().num_strata;
    return WriteFileAtomic(checkpoint_path_, SerializeCurrentState(done));
  }
  return Status::OK();
}

namespace {

/// Session tuples travel through the WAL with symbols as names, so a
/// log outlives any particular symbol-table numbering.
std::vector<WalValue> ToWalValues(const Tuple& t,
                                  const SymbolTable& symbols) {
  std::vector<WalValue> out;
  out.reserve(t.size());
  for (const Value& v : t) {
    if (v.is_symbol()) {
      out.push_back(WalValue::Symbol(symbols.NameOf(v.symbol())));
    } else {
      out.push_back(WalValue::Number(v.number()));
    }
  }
  return out;
}

Tuple FromWalValues(const std::vector<WalValue>& values,
                    SymbolTable* symbols) {
  Tuple t;
  t.reserve(values.size());
  for (const WalValue& v : values) {
    if (v.is_symbol) {
      t.push_back(Value::Symbol(symbols->Intern(v.symbol)));
    } else {
      t.push_back(Value::Number(v.number));
    }
  }
  return t;
}

/// Sort/arity check against an existing relation, done at staging time
/// so nothing invalid is ever appended to the log.
Status CheckTupleType(const std::string& pred, const Tuple& t,
                      const Relation& rel) {
  const RelationType& type = rel.type();
  if (t.size() != type.size()) {
    return Status::TypeError("tuple arity " + std::to_string(t.size()) +
                             " does not match relation '" + pred + "' (" +
                             std::to_string(type.size()) + ")");
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].sort() != type[i]) {
      return Status::TypeError("sort mismatch at position " +
                               std::to_string(i) + " of relation '" + pred +
                               "'");
    }
  }
  return Status::OK();
}

}  // namespace

Status IdlogEngine::AttachWal(const std::string& path,
                              const WalOptions& options) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (wal_ != nullptr) {
    return Status::InvalidArgument("a WAL is already attached");
  }
  IDLOG_RETURN_NOT_OK(Run());
  if (!last_trip_.ok()) {
    return Status::InvalidArgument(
        "cannot start a durable session over a tripped (partial) run");
  }
  wal_path_ = path;
  wal_options_ = options;
  wal_commits_ = 0;
  wal_commits_replayed_ = 0;
  wal_failed_ = false;
  IDLOG_RETURN_NOT_OK(
      WriteSessionSnapshot(/*epoch=*/1, /*offset=*/kWalHeaderSize));
  IDLOG_ASSIGN_OR_RETURN(
      wal_, WriteAheadLog::Create(path, /*epoch=*/1, program_hash_,
                                  options.group_commit_every));
  return Status::OK();
}

Status IdlogEngine::Begin() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "no durable session: AttachWal() or CompleteRecovery() first");
  }
  if (wal_failed_) {
    return Status::Internal(
        "the session's log is in an unknown state after a write failure; "
        "recover from the WAL");
  }
  if (in_txn_) {
    return Status::InvalidArgument("a transaction is already open");
  }
  in_txn_ = true;
  txn_ops_.clear();
  return Status::OK();
}

Status IdlogEngine::Insert(const std::string& pred, Tuple t) {
  if (!in_txn_) {
    return Status::InvalidArgument("no open transaction; Begin() first");
  }
  if (impl_->idb_preds().count(pred) > 0) {
    return Status::InvalidArgument(
        "'" + pred +
        "' is derived by rules; sessions mutate EDB predicates only");
  }
  Result<const Relation*> rel = database_.Get(pred);
  if (rel.ok()) {
    IDLOG_RETURN_NOT_OK(CheckTupleType(pred, t, **rel));
  }
  PendingOp op;
  op.retract = false;
  op.pred = pred;
  op.tuple = std::move(t);
  txn_ops_.push_back(std::move(op));
  return Status::OK();
}

Status IdlogEngine::Retract(const std::string& pred, Tuple t) {
  if (!in_txn_) {
    return Status::InvalidArgument("no open transaction; Begin() first");
  }
  if (impl_->idb_preds().count(pred) > 0) {
    return Status::InvalidArgument(
        "'" + pred +
        "' is derived by rules; sessions mutate EDB predicates only");
  }
  Result<const Relation*> rel = database_.Get(pred);
  if (rel.ok()) {
    IDLOG_RETURN_NOT_OK(CheckTupleType(pred, t, **rel));
  }
  PendingOp op;
  op.retract = true;
  op.pred = pred;
  op.tuple = std::move(t);
  txn_ops_.push_back(std::move(op));
  return Status::OK();
}

Status IdlogEngine::Commit() {
  if (!in_txn_) {
    return Status::InvalidArgument("no open transaction; Begin() first");
  }
  if (wal_failed_) {
    return Status::Internal(
        "the session's log is in an unknown state after a write failure; "
        "recover from the WAL");
  }
  const uint64_t txn_id = wal_commits_ + 1;
  if (!wal_replaying_) {
    // Durability first: the transaction reaches the log (and, per
    // group_commit_every, the disk) before any state changes. A crash
    // after this block replays the transaction; a crash inside it
    // leaves an uncommitted tail the recovery scan drops.
    Status logged = wal_->AppendBegin(txn_id);
    for (const PendingOp& op : txn_ops_) {
      if (!logged.ok()) break;
      std::vector<WalValue> values = ToWalValues(op.tuple, symbols_);
      logged = op.retract ? wal_->AppendRetract(op.pred, values)
                          : wal_->AppendInsert(op.pred, values);
    }
    if (logged.ok()) logged = wal_->AppendCommit(txn_id);
    if (!logged.ok()) {
      wal_failed_ = true;
      return logged;
    }
  }
  Status applied = ApplyCommittedOps();
  if (!applied.ok()) {
    if (!wal_replaying_) {
      // The transaction is durably logged but only partially applied
      // (a governor trip or storage failure mid-apply): the live state
      // no longer matches what replaying the log would rebuild, and an
      // Abort-and-retry would reuse this txn_id for different ops.
      // Latch the session like a log-write failure — recovery replays
      // the durable log into a fresh engine and converges.
      wal_failed_ = true;
    }
    return applied;
  }
  in_txn_ = false;
  txn_ops_.clear();
  ++wal_commits_;
  if (!wal_replaying_ && wal_options_.checkpoint_every_commits > 0 &&
      wal_commits_ % wal_options_.checkpoint_every_commits == 0) {
    return WalCheckpoint();
  }
  return Status::OK();
}

Status IdlogEngine::Abort() {
  if (!in_txn_) {
    return Status::InvalidArgument("no open transaction; Begin() first");
  }
  // Nothing was logged or applied: operations buffer until Commit(), so
  // an abort is a pure in-memory discard and replay never sees it.
  in_txn_ = false;
  txn_ops_.clear();
  return Status::OK();
}

Status IdlogEngine::ApplyCommittedOps() {
  // Apply to the EDB, recording the insertions that are actually new:
  // they are exactly the delta the incremental re-derivation seeds.
  std::map<std::string, Relation> inserted;
  bool any_retract = false;
  for (const PendingOp& op : txn_ops_) {
    if (op.retract) {
      Result<bool> erased = database_.EraseTuple(op.pred, op.tuple);
      if (!erased.ok()) {
        // Retracting from a relation that never existed is a no-op,
        // like retracting an absent tuple.
        if (erased.status().code() == StatusCode::kNotFound) continue;
        return erased.status();
      }
      if (*erased) {
        any_retract = true;
        auto it = inserted.find(op.pred);
        if (it != inserted.end()) it->second.Erase(op.tuple);
      }
    } else {
      Result<const Relation*> rel = database_.Get(op.pred);
      const bool already = rel.ok() && (*rel)->Contains(op.tuple);
      IDLOG_RETURN_NOT_OK(database_.AddTuple(op.pred, Tuple(op.tuple)));
      if (!already) {
        IDLOG_ASSIGN_OR_RETURN(const Relation* now,
                               database_.Get(op.pred));
        Relation& acc =
            inserted.try_emplace(op.pred, Relation(now->type()))
                .first->second;
        acc.Insert(op.tuple);
      }
    }
  }
  last_commit_incremental_ = false;
  if (any_retract) {
    // Retraction is not monotone: recompute the model from the mutated
    // EDB (see ROADMAP item 1 for the planned DRed-style alternative).
    ran_ = false;
    return Run();
  }
  bool effective = false;
  for (const auto& [pred, rel] : inserted) {
    (void)pred;
    if (!rel.empty()) effective = true;
  }
  if (!effective) return ran_ ? Status::OK() : Run();
  if (!ran_) {
    // No model to extend (first evaluation still pending).
    return Run();
  }
  Status st = impl_->EvaluateIncremental(inserted, seminaive_);
  if (st.code() == StatusCode::kUnsupported) {
    ran_ = false;
    return Run();
  }
  if (st.ok()) last_commit_incremental_ = true;
  return st;
}

Status IdlogEngine::WalCheckpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no durable session to checkpoint");
  }
  if (in_txn_) {
    return Status::InvalidArgument(
        "cannot checkpoint inside a transaction");
  }
  if (wal_failed_) {
    return Status::Internal(
        "the session's log is in an unknown state after a write failure; "
        "recover from the WAL");
  }
  IDLOG_RETURN_NOT_OK(Run());
  // Drain the append buffer before taking the covered offset: with
  // group commit > 1 the buffer may hold frames that are not yet on
  // disk, and a snapshot recording a position past the durable log
  // would make a later recovery replay from beyond the truncated file
  // — aliasing the offsets of commits appended after that recovery.
  Status flushed = wal_->Flush();
  if (!flushed.ok()) {
    wal_failed_ = true;
    return flushed;
  }
  // Snapshot first (atomically), then mark and rotate: every crash
  // point leaves either the old pair or the new pair recoverable.
  const uint64_t covered = wal_->offset();
  IDLOG_RETURN_NOT_OK(WriteSessionSnapshot(wal_->epoch(), covered));
  Status st = wal_->AppendCheckpointRef(covered, wal_path_ + ".snap");
  if (st.ok()) st = wal_->Rotate(wal_->epoch() + 1);
  if (!st.ok()) wal_failed_ = true;
  return st;
}

Status IdlogEngine::WriteSessionSnapshot(uint64_t epoch, uint64_t offset) {
  SnapshotProgress done;
  done.completed = true;
  done.stratum = impl_->stratification().num_strata;
  SnapshotView view = CurrentView(done);
  view.wal_pos.present = true;
  view.wal_pos.epoch = epoch;
  view.wal_pos.offset = offset;
  view.wal_pos.commits = wal_commits_;
  return WriteFileAtomic(wal_path_ + ".snap", SerializeSnapshot(view));
}

Status IdlogEngine::PrepareRecovery(const std::string& wal_path) {
  if (impl_ != nullptr || symbols_.size() != 0 ||
      !database_.relation_names().empty()) {
    return Status::InvalidArgument(
        "PrepareRecovery() needs a fresh engine: no program loaded and "
        "an empty database");
  }
  auto rec = std::make_unique<RecoveryState>();
  rec->wal_path = wal_path;
  Result<WalScanResult> scan = ScanWal(wal_path);
  if (scan.ok()) {
    rec->scan = std::move(*scan);
    rec->have_wal = true;
  } else if (scan.status().code() != StatusCode::kNotFound) {
    // Damaged header, future version, unreadable file: refuse loudly —
    // only a missing file is a legitimate cold start.
    return scan.status();
  }
  const std::string snap_path = wal_path + ".snap";
  Result<SnapshotData> snap = LoadSnapshotFile(snap_path);
  if (snap.ok()) {
    if (!snap->wal_pos.present) {
      return Status::InvalidArgument(
          "snapshot at '" + snap_path +
          "' carries no WAL position; it was not written by a durable "
          "session");
    }
    rec->snap_pos = snap->wal_pos;
    rec->have_snapshot = true;
    IDLOG_RETURN_NOT_OK(AdoptSnapshot(std::move(*snap)));
  } else if (snap.status().code() != StatusCode::kNotFound) {
    return snap.status();
  }
  if (rec->have_wal && !rec->have_snapshot) {
    return Status::InvalidArgument(
        "WAL at '" + wal_path + "' has no base snapshot at '" + snap_path +
        "'; the pair is written together — restore the snapshot or "
        "remove the log");
  }
  pending_recovery_ = std::move(rec);
  return Status::OK();
}

Status IdlogEngine::CompleteRecovery(const WalOptions& options) {
  if (pending_recovery_ == nullptr) {
    return Status::InvalidArgument(
        "call PrepareRecovery() and load the program before "
        "CompleteRecovery()");
  }
  if (impl_ == nullptr) {
    return Status::InvalidArgument(
        "load the session's program before CompleteRecovery()");
  }
  std::unique_ptr<RecoveryState> rec = std::move(pending_recovery_);
  if (!rec->have_snapshot) {
    // Nothing durable existed: recovery of a session that never got to
    // disk is a fresh session.
    return AttachWal(rec->wal_path, options);
  }
  uint64_t replay_from = 0;
  if (rec->have_wal) {
    if (rec->scan.program_hash != program_hash_) {
      return Status::InvalidArgument(
          "the WAL at '" + rec->wal_path +
          "' was written under a different program (hash mismatch); "
          "recover with the same program text the session ran");
    }
    if (rec->scan.epoch == rec->snap_pos.epoch) {
      // Same epoch: the snapshot covers the log prefix before its
      // recorded offset.
      replay_from = rec->snap_pos.offset;
    } else if (rec->scan.epoch == rec->snap_pos.epoch + 1) {
      // The crash fell between a checkpoint's rotation and its next
      // snapshot: the rotated log holds only post-snapshot records.
      replay_from = 0;
    } else {
      return Status::InvalidArgument(
          "WAL epoch " + std::to_string(rec->scan.epoch) +
          " does not continue snapshot epoch " +
          std::to_string(rec->snap_pos.epoch) +
          "; the files are from different sessions");
    }
  }
  IDLOG_RETURN_NOT_OK(Run());  // Adopts the snapshot's completed model.
  IDLOG_RETURN_NOT_OK(RechargeGovernor());
  wal_path_ = rec->wal_path;
  wal_options_ = options;
  wal_commits_ = rec->snap_pos.commits;
  wal_commits_replayed_ = 0;
  wal_failed_ = false;
  if (rec->have_wal) {
    if (replay_from > rec->scan.committed_length) {
      // The snapshot claims to cover WAL bytes the on-disk log does not
      // hold (the log was truncated or damaged behind the snapshot's
      // back). The snapshot is self-contained — every commit it counts
      // is folded into its state — so nothing is lost; but the log is
      // about to be truncated to committed_length and new commits will
      // land at offsets below the stale replay point. Clamp, and
      // rewrite the snapshot's WAL position so a second recovery agrees
      // instead of silently skipping those future records.
      replay_from = rec->scan.committed_length;
      IDLOG_RETURN_NOT_OK(
          WriteSessionSnapshot(rec->scan.epoch, replay_from));
    }
    // Truncate the torn tail durably and reopen for append before
    // replaying, so a crash mid-replay leaves a clean committed prefix
    // for the next recovery (which replays the same records again).
    IDLOG_ASSIGN_OR_RETURN(
        wal_, WriteAheadLog::OpenForAppend(rec->wal_path, rec->scan,
                                           options.group_commit_every));
    wal_replaying_ = true;
    Status st = ReplayWal(rec->scan, replay_from);
    wal_replaying_ = false;
    IDLOG_RETURN_NOT_OK(st);
  } else {
    // The crash fell between the snapshot write and the log creation
    // (or rotation): recreate the log at the snapshot's epoch.
    IDLOG_ASSIGN_OR_RETURN(
        wal_,
        WriteAheadLog::Create(rec->wal_path, rec->snap_pos.epoch,
                              program_hash_, options.group_commit_every));
  }
  return Status::OK();
}

Status IdlogEngine::ReplayWal(const WalScanResult& scan,
                              uint64_t replay_from) {
  for (const WalRecord& record : scan.records) {
    if (record.offset < replay_from) continue;
    switch (record.type) {
      case WalRecordType::kBegin:
        IDLOG_RETURN_NOT_OK(Begin());
        break;
      case WalRecordType::kInsert:
        IDLOG_RETURN_NOT_OK(
            Insert(record.pred, FromWalValues(record.values, &symbols_)));
        break;
      case WalRecordType::kRetract:
        IDLOG_RETURN_NOT_OK(
            Retract(record.pred, FromWalValues(record.values, &symbols_)));
        break;
      case WalRecordType::kCommit:
        IDLOG_RETURN_NOT_OK(Commit());
        ++wal_commits_replayed_;
        break;
      case WalRecordType::kCheckpointRef:
        // The snapshot it references is the one being recovered (or an
        // older, superseded one); nothing to apply.
        break;
    }
  }
  if (in_txn_) {
    // Cannot happen: the scanner only returns records up to the last
    // commit boundary. Defensive, so a future scanner bug cannot leave
    // a half-open transaction behind.
    in_txn_ = false;
    txn_ops_.clear();
    return Status::Internal("WAL replay ended inside a transaction");
  }
  return Status::OK();
}

Status IdlogEngine::RechargeGovernor() {
  // Mirror exactly what the uninterrupted run charged: one tuple plus
  // ApproxTupleBytes per derived fact and per materialized ID tuple,
  // plus the provenance arena — so totals.memory_bytes and the dbstats
  // governor block match byte-for-byte after recovery.
  uint64_t tuples = 0;
  uint64_t bytes = 0;
  for (const auto& [name, rel] : impl_->derived()) {
    (void)name;
    tuples += rel.size();
    bytes += rel.size() *
             ApproxTupleBytes(static_cast<size_t>(rel.arity()));
  }
  for (const auto& [key, rel] : impl_->id_relations()) {
    (void)key;
    tuples += rel.size();
    bytes += rel.size() * ApproxTupleBytes(rel.type().size());
  }
  bytes += impl_->provenance().approx_bytes();
  if (tuples == 0 && bytes == 0) return Status::OK();
  return governor_.OnDerived(tuples, bytes);
}

void IdlogEngine::DumpFlightRecorder() const {
  if (flight_dump_path_.empty() || !FlightRecorder::Enabled()) return;
  // Best-effort black box on the failure path: a dump error must not
  // mask the Status the evaluation is unwinding with.
  (void)FlightRecorder::Instance().Dump(flight_dump_path_);
}

Result<const Relation*> IdlogEngine::Query(const std::string& pred) {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->RelationOf(pred);
}

Result<const Relation*> IdlogEngine::QueryIdRelation(
    const std::string& pred, const std::vector<int>& group) {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->IdRelationOf(pred, group);
}

Result<Relation> IdlogEngine::QueryPortion(const std::string& pred) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  Program portion;
  portion.predicates = program_.predicates;
  portion.clauses = ProgramPortion(program_, pred);
  if (portion.clauses.empty() && !database_.HasRelation(pred)) {
    return Status::NotFound("no clauses define '" + pred + "'");
  }
  EngineImpl impl(&portion, &database_);
  impl.set_tid_bound_pushdown(tid_bound_pushdown_);
  impl.set_trace_sink(trace_);
  governor_.Arm(limits_);
  impl.set_governor(&governor_);
  IDLOG_RETURN_NOT_OK(impl.Prepare());
  IDLOG_RETURN_NOT_OK(impl.Evaluate(assigner_.get(), seminaive_));
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl.RelationOf(pred));
  return *rel;
}

Result<bool> IdlogEngine::VerifyModel() {
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->VerifyModel();
}

void IdlogEngine::SetUseIndexes(bool enabled) {
  if (use_indexes_ != enabled) ran_ = false;
  use_indexes_ = enabled;
  if (impl_ != nullptr) impl_->set_use_indexes(enabled);
}

void IdlogEngine::SetTraceSink(TraceSink* sink) {
  trace_ = sink;
  governor_.set_trace_sink(sink);
  if (impl_ != nullptr) impl_->set_trace_sink(sink);
}

void IdlogEngine::EnableProfiling(bool enabled) {
  if (profiling_ != enabled) ran_ = false;
  profiling_ = enabled;
  if (impl_ != nullptr) impl_->set_profiling_enabled(enabled);
}

const EvalProfile& IdlogEngine::profile() const {
  static const EvalProfile kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->profile();
}

void IdlogEngine::EnableProvenance(bool enabled) {
  if (provenance_ != enabled) ran_ = false;
  provenance_ = enabled;
  if (impl_ != nullptr) impl_->set_provenance_enabled(enabled);
}

Result<std::string> IdlogEngine::Explain(const std::string& pred,
                                         const Tuple& tuple) {
  if (!provenance_) {
    return Status::InvalidArgument(
        "call EnableProvenance(true) before Run() to use Explain()");
  }
  IDLOG_RETURN_NOT_OK(Run());
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl_->RelationOf(pred));
  if (!rel->Contains(tuple)) {
    return Status::NotFound(pred + TupleToString(tuple, symbols_) +
                            " does not hold in the computed model");
  }
  auto is_leaf = [this](const std::string& p, const Tuple& t) {
    Result<const Relation*> stored = database_.Get(p);
    return stored.ok() && (*stored)->Contains(t);
  };
  return ExplainFact(impl_->provenance(), symbols_, pred, tuple, is_leaf);
}

Result<ProofTree> IdlogEngine::BuildWhy(const std::string& pred,
                                        const Tuple& tuple,
                                        const WhyBudget& budget) {
  if (!provenance_) {
    return Status::InvalidArgument(
        "call EnableProvenance(true) before Run() to use Why()");
  }
  IDLOG_RETURN_NOT_OK(Run());
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, impl_->RelationOf(pred));
  if (!rel->Contains(tuple)) {
    return Status::NotFound(pred + TupleToString(tuple, symbols_) +
                            " does not hold in the computed model; use "
                            "WhyNot() for absent facts");
  }
  auto is_leaf = [this](const std::string& p, const Tuple& t) {
    Result<const Relation*> stored = database_.Get(p);
    return stored.ok() && (*stored)->Contains(t);
  };
  return BuildProofTree(impl_->provenance(), symbols_, pred, tuple, is_leaf,
                        budget);
}

Result<std::string> IdlogEngine::Why(const std::string& pred,
                                     const Tuple& tuple,
                                     const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(ProofTree tree, BuildWhy(pred, tuple, budget));
  return RenderWhyText(tree);
}

Result<std::string> IdlogEngine::WhyJson(const std::string& pred,
                                         const Tuple& tuple,
                                         const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(ProofTree tree, BuildWhy(pred, tuple, budget));
  return RenderWhyJson(tree);
}

Result<WhyNotReport> IdlogEngine::BuildWhyNotReport(const std::string& pred,
                                                    const Tuple& tuple,
                                                    const WhyBudget& budget) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  IDLOG_RETURN_NOT_OK(Run());
  std::vector<std::string> rule_texts;
  rule_texts.reserve(program_.clauses.size());
  for (const Clause& clause : program_.clauses) {
    rule_texts.push_back(ClauseToString(clause, symbols_));
  }
  WhyNotContext ctx;
  ctx.plans = &impl_->plans();
  ctx.rule_texts = &rule_texts;
  ctx.symbols = &symbols_;
  ctx.full = [this](const std::string& p) -> const Relation* {
    Result<const Relation*> r = impl_->RelationOf(p);
    return r.ok() ? *r : nullptr;
  };
  ctx.id_relation = [this](const std::string& p,
                           const std::vector<int>& g) -> const Relation* {
    Result<const Relation*> r = impl_->IdRelationOf(p, g);
    return r.ok() ? *r : nullptr;
  };
  return BuildWhyNot(ctx, pred, tuple, budget);
}

Result<std::string> IdlogEngine::WhyNot(const std::string& pred,
                                        const Tuple& tuple,
                                        const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(WhyNotReport report,
                         BuildWhyNotReport(pred, tuple, budget));
  return RenderWhyNotText(report);
}

Result<std::string> IdlogEngine::WhyNotJson(const std::string& pred,
                                            const Tuple& tuple,
                                            const WhyBudget& budget) {
  IDLOG_ASSIGN_OR_RETURN(WhyNotReport report,
                         BuildWhyNotReport(pred, tuple, budget));
  return RenderWhyNotJson(report);
}

void IdlogEngine::EnableExplain(bool enabled) {
  if (explain_ != enabled) ran_ = false;
  explain_ = enabled;
  if (impl_ != nullptr) impl_->set_explain_enabled(enabled);
}

void IdlogEngine::SetRewriteLog(RewriteLog log) {
  rewrite_log_ = std::move(log);
  if (impl_ != nullptr) impl_->set_rewrite_log(rewrite_log_);
}

Result<std::string> IdlogEngine::ExplainPlan() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  return impl_->ExplainPlanText(/*analyze=*/false);
}

Result<std::string> IdlogEngine::ExplainAnalyze() {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  EnableExplain(true);
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->ExplainPlanText(/*analyze=*/true);
}

Result<std::string> IdlogEngine::ExplainPlanJson(bool analyze) {
  if (impl_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  if (!analyze) return impl_->ExplainPlanJson(/*analyze=*/false);
  EnableExplain(true);
  IDLOG_RETURN_NOT_OK(Run());
  return impl_->ExplainPlanJson(/*analyze=*/true);
}

const PlanAnalysis& IdlogEngine::plan_analysis() const {
  static const PlanAnalysis kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->plan_analysis();
}

const EvalStats& IdlogEngine::stats() const {
  static const EvalStats kEmpty;
  return impl_ == nullptr ? kEmpty : impl_->stats();
}

Result<const Stratification*> IdlogEngine::stratification() const {
  if (impl_ == nullptr) return Status::InvalidArgument("no program loaded");
  return &impl_->stratification();
}

StorageStats IdlogEngine::DbStats() const {
  StorageStatsView view;
  view.database = &database_;
  view.symbols = &symbols_;
  view.governor = &governor_;
  view.assigner = assigner_.get();
  if (impl_ != nullptr) {
    view.derived = &impl_->derived();
    view.id_relations = &impl_->id_relations();
    view.udom = &impl_->udom_relation();
    view.index_caches = &impl_->index_caches();
    view.provenance = &impl_->provenance();
  }
  return CollectStorageStats(view);
}

std::string IdlogEngine::DbStatsText() const { return DbStats().ToTable(); }

std::string IdlogEngine::DbStatsJson() const { return DbStats().ToJson(); }

std::string IdlogEngine::MetricsJson() const {
  MetricsRegistry reg;
  profile().ToMetrics(&reg);
  // Storage/governor gauges the profile cannot see. db.indexes is
  // physical (build scheduling varies with --jobs) — callers comparing
  // runs diff counters, not gauges, exactly because of entries like it.
  const StorageStats db = DbStats();
  reg.SetGauge("totals.memory_bytes",
               static_cast<int64_t>(governor_.memory_charged()));
  reg.SetGauge("db.relations",
               static_cast<int64_t>(db.relations.size()));
  reg.SetGauge("db.id_relations",
               static_cast<int64_t>(db.id_relations.size()));
  reg.SetGauge("db.tuples", static_cast<int64_t>(db.total_tuples()));
  reg.SetGauge("db.approx_bytes",
               static_cast<int64_t>(db.total_approx_bytes()));
  reg.SetGauge("db.indexes", static_cast<int64_t>(db.total_indexes));
  if (wal_ != nullptr) {
    reg.SetGauge("wal.epoch", static_cast<int64_t>(wal_->epoch()));
    reg.SetGauge("wal.commits", static_cast<int64_t>(wal_commits_));
    reg.SetGauge("wal.bytes", static_cast<int64_t>(wal_->offset()));
  }
  return reg.ToJson();
}

}  // namespace idlog
