#include "core/answer_enumerator.h"

#include <algorithm>

#include "eval/engine_impl.h"
#include "obs/trace.h"
#include "storage/tid_assigner.h"

namespace idlog {

bool AnswerSet::ContainsAnswer(std::vector<Tuple> tuples) const {
  std::sort(tuples.begin(), tuples.end());
  return answers.count(tuples) > 0;
}

Result<AnswerSet> EnumerateAnswers(const Program& program,
                                   const Database& database,
                                   const std::string& query_pred,
                                   const EnumerateOptions& options) {
  EngineImpl engine(&program, &database);
  IDLOG_RETURN_NOT_OK(engine.Prepare());
  TraceSink* trace = nullptr;
  if (options.governor != nullptr) {
    options.governor->set_scope("answer enumeration");
    engine.set_governor(options.governor);
    trace = options.governor->trace_sink();
    engine.set_trace_sink(trace);
  }
  TraceSpan span(trace, "answer enumeration", "enumerate");
  span.AddArg(TraceArg::Str("query", query_pred));

  ScriptedTidAssigner assigner;
  AnswerSet result;

  // `script[i]` is the permutation rank chosen for the i-th ID-group
  // encountered; `radix[i]` its number of permutations. Both describe
  // the current root-to-leaf path of the choice tree. Incrementing the
  // deepest incrementable digit and truncating everything below walks
  // the whole tree even though different prefixes may expose different
  // groups further down.
  std::vector<uint64_t> script;
  std::vector<uint64_t> radix;

  while (true) {
    if (result.assignments_tried >= options.max_assignments) {
      return Status::ResourceExhausted(
          "answer enumeration exceeded max_assignments=" +
          std::to_string(options.max_assignments));
    }
    if (options.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(options.governor->CheckPoint());
    }
    assigner.SetScript(script);
    assigner.ResetRadices();
    IDLOG_RETURN_NOT_OK(engine.Evaluate(&assigner, options.seminaive));
    ++result.assignments_tried;

    Result<const Relation*> rel = engine.RelationOf(query_pred);
    if (!rel.ok()) return rel.status();
    result.answers.insert((*rel)->SortedTuples());

    // Groups discovered beyond the scripted prefix used rank 0.
    for (uint64_t r : assigner.radices()) {
      script.push_back(0);
      radix.push_back(r);
      // A saturated radix (group of >= 21 tuples, n! > 2^64) cannot be
      // stepped: only its rank-0 permutation is ever explored, so the
      // result is a sample of the extent, not the whole extent.
      if (r == UINT64_MAX) result.exhaustive = false;
    }

    // Odometer step with truncation.
    int64_t i = static_cast<int64_t>(script.size()) - 1;
    while (i >= 0 &&
           (radix[static_cast<size_t>(i)] == UINT64_MAX ||
            script[static_cast<size_t>(i)] + 1 >=
                radix[static_cast<size_t>(i)])) {
      --i;
    }
    if (i < 0) break;
    ++script[static_cast<size_t>(i)];
    script.resize(static_cast<size_t>(i) + 1);
    radix.resize(static_cast<size_t>(i) + 1);
  }
  span.AddArg(TraceArg::Num("assignments_tried", result.assignments_tried));
  span.AddArg(TraceArg::Num("distinct_answers", result.answers.size()));
  span.AddArg(TraceArg::Str("exhaustive",
                            result.exhaustive ? "true" : "false"));
  return result;
}

}  // namespace idlog
