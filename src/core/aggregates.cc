#include "core/aggregates.h"

#include <string>

#include "ast/program_builder.h"
#include "common/symbol_table.h"
#include "eval/engine_impl.h"
#include "storage/database.h"
#include "storage/tid_assigner.h"

namespace idlog {

namespace {

/// Shared driver: installs `rel` as relation "r" in a scratch database,
/// builds the program, evaluates with canonical tids and returns the
/// relation for `answer_pred` by value.
Result<Relation> RunAggregateProgram(
    const Relation& rel,
    const std::function<void(ProgramBuilder*)>& build,
    const std::string& answer_pred) {
  SymbolTable symbols;
  Database db(&symbols);
  IDLOG_RETURN_NOT_OK(db.CreateRelation("r", rel.type()));
  IDLOG_ASSIGN_OR_RETURN(Relation * stored, db.GetMutable("r"));
  for (const Tuple& t : rel.tuples()) stored->Insert(t);

  ProgramBuilder builder(&symbols);
  builder.Declare("r", rel.type());
  build(&builder);
  IDLOG_ASSIGN_OR_RETURN(Program program, builder.Build());

  EngineImpl engine(&program, &db);
  IDLOG_RETURN_NOT_OK(engine.Prepare());
  IdentityTidAssigner identity;
  IDLOG_RETURN_NOT_OK(engine.Evaluate(&identity));
  IDLOG_ASSIGN_OR_RETURN(const Relation* answer,
                         engine.RelationOf(answer_pred));
  return *answer;
}

/// Fresh variables X1..Xn for the columns of `rel`.
std::vector<Term> ColumnVars(const Relation& rel) {
  std::vector<Term> vars;
  for (int i = 0; i < rel.arity(); ++i) {
    vars.push_back(Term::Var("X" + std::to_string(i + 1)));
  }
  return vars;
}

}  // namespace

Result<int64_t> CountViaTids(const Relation& rel) {
  if (rel.empty()) return int64_t{0};
  auto build = [&](ProgramBuilder* b) {
    // has(T) :- r[](X1..Xn, T).
    std::vector<Term> id_args = ColumnVars(rel);
    id_args.push_back(b->V("T"));
    b->AddRule(Atom::Ordinary("has", {b->V("T")}),
               {Literal::Pos(Atom::Id("r", {}, id_args))});
    // cnt(M) :- has(T), succ(T, M), not has(M).
    b->AddRule(Atom::Ordinary("cnt", {b->V("M")}),
               {Literal::Pos(Atom::Ordinary("has", {b->V("T")})),
                Literal::Pos(Atom::Builtin(BuiltinKind::kSucc,
                                           {b->V("T"), b->V("M")})),
                Literal::Neg(Atom::Ordinary("has", {b->V("M")}))});
  };
  IDLOG_ASSIGN_OR_RETURN(Relation answer,
                         RunAggregateProgram(rel, build, "cnt"));
  if (answer.size() != 1) {
    return Status::Internal("count program produced " +
                            std::to_string(answer.size()) + " answers");
  }
  return answer.tuples()[0][0].number();
}

Result<Relation> GroupCountViaTids(const Relation& rel,
                                   const std::vector<int>& group_cols) {
  for (int c : group_cols) {
    if (c < 0 || c >= rel.arity()) {
      return Status::InvalidArgument("grouping column out of range");
    }
  }
  RelationType out_type;
  for (int c : group_cols) out_type.push_back(rel.type()[static_cast<size_t>(c)]);
  out_type.push_back(Sort::kI);
  if (rel.empty()) return Relation(out_type);

  auto build = [&](ProgramBuilder* b) {
    // has(K.., T) :- r[g](X1..Xn, T).
    std::vector<Term> id_args = ColumnVars(rel);
    id_args.push_back(b->V("T"));
    std::vector<Term> head;
    for (int c : group_cols) {
      head.push_back(Term::Var("X" + std::to_string(c + 1)));
    }
    std::vector<Term> has_head = head;
    has_head.push_back(b->V("T"));
    b->AddRule(Atom::Ordinary("has", has_head),
               {Literal::Pos(Atom::Id("r", group_cols, id_args))});
    // cnt(K.., M) :- has(K.., T), succ(T, M), not has(K.., M).
    std::vector<Term> cnt_head = head;
    cnt_head.push_back(b->V("M"));
    std::vector<Term> neg_args = head;
    neg_args.push_back(b->V("M"));
    b->AddRule(Atom::Ordinary("cnt", cnt_head),
               {Literal::Pos(Atom::Ordinary("has", has_head)),
                Literal::Pos(Atom::Builtin(BuiltinKind::kSucc,
                                           {b->V("T"), b->V("M")})),
                Literal::Neg(Atom::Ordinary("has", neg_args))});
  };
  return RunAggregateProgram(rel, build, "cnt");
}

namespace {

Result<int64_t> Extremum(const Relation& rel, int col, bool minimum) {
  if (col < 0 || col >= rel.arity()) {
    return Status::InvalidArgument("column out of range");
  }
  if (rel.type()[static_cast<size_t>(col)] != Sort::kI) {
    return Status::InvalidArgument("column is not sort i");
  }
  if (rel.empty()) return Status::NotFound("relation is empty");

  auto build = [&](ProgramBuilder* b) {
    std::vector<Term> vars = ColumnVars(rel);
    Term v = Term::Var("X" + std::to_string(col + 1));
    b->AddRule(Atom::Ordinary("val", {v}),
               {Literal::Pos(Atom::Ordinary("r", vars))});
    // beaten(V) :- val(V), val(W), W < V   (or W > V for max).
    b->AddRule(
        Atom::Ordinary("beaten", {b->V("V")}),
        {Literal::Pos(Atom::Ordinary("val", {b->V("V")})),
         Literal::Pos(Atom::Ordinary("val", {b->V("W")})),
         Literal::Pos(Atom::Builtin(
             minimum ? BuiltinKind::kLt : BuiltinKind::kGt,
             {b->V("W"), b->V("V")}))});
    b->AddRule(Atom::Ordinary("best", {b->V("V")}),
               {Literal::Pos(Atom::Ordinary("val", {b->V("V")})),
                Literal::Neg(Atom::Ordinary("beaten", {b->V("V")}))});
  };
  IDLOG_ASSIGN_OR_RETURN(Relation answer,
                         RunAggregateProgram(rel, build, "best"));
  if (answer.size() != 1) {
    return Status::Internal("extremum program produced " +
                            std::to_string(answer.size()) + " answers");
  }
  return answer.tuples()[0][0].number();
}

}  // namespace

Result<int64_t> MinOfColumn(const Relation& rel, int col) {
  return Extremum(rel, col, /*minimum=*/true);
}

Result<int64_t> MaxOfColumn(const Relation& rel, int col) {
  return Extremum(rel, col, /*minimum=*/false);
}

Result<int64_t> SumViaTids(const Relation& rel, int col) {
  if (col < 0 || col >= rel.arity()) {
    return Status::InvalidArgument("column out of range");
  }
  if (rel.type()[static_cast<size_t>(col)] != Sort::kI) {
    return Status::InvalidArgument("column is not sort i");
  }
  if (rel.empty()) return int64_t{0};

  auto build = [&](ProgramBuilder* b) {
    // item(I, V) :- r[](X1..Xn, I): value of the i-th tuple in tid
    // order. The fold accumulates along succ.
    std::vector<Term> id_args = ColumnVars(rel);
    id_args.push_back(b->V("I"));
    Term v = Term::Var("X" + std::to_string(col + 1));
    b->AddRule(Atom::Ordinary("item", {b->V("I"), v}),
               {Literal::Pos(Atom::Id("r", {}, id_args))});
    b->AddRule(Atom::Ordinary("acc", {b->N(0), b->V("V")}),
               {Literal::Pos(Atom::Ordinary("item", {b->N(0), b->V("V")}))});
    b->AddRule(
        Atom::Ordinary("acc", {b->V("J"), b->V("S2")}),
        {Literal::Pos(Atom::Ordinary("acc", {b->V("I"), b->V("S")})),
         Literal::Pos(
             Atom::Builtin(BuiltinKind::kSucc, {b->V("I"), b->V("J")})),
         Literal::Pos(Atom::Ordinary("item", {b->V("J"), b->V("V")})),
         Literal::Pos(Atom::Builtin(BuiltinKind::kAdd,
                                    {b->V("S"), b->V("V"), b->V("S2")}))});
    // total(S) :- acc(I, S), succ(I, J), not item_at(J).
    b->AddRule(Atom::Ordinary("item_at", {b->V("I")}),
               {Literal::Pos(Atom::Ordinary("item", {b->V("I"), b->V("V")}))});
    b->AddRule(
        Atom::Ordinary("total", {b->V("S")}),
        {Literal::Pos(Atom::Ordinary("acc", {b->V("I"), b->V("S")})),
         Literal::Pos(
             Atom::Builtin(BuiltinKind::kSucc, {b->V("I"), b->V("J")})),
         Literal::Neg(Atom::Ordinary("item_at", {b->V("J")}))});
  };
  IDLOG_ASSIGN_OR_RETURN(Relation answer,
                         RunAggregateProgram(rel, build, "total"));
  if (answer.size() != 1) {
    return Status::Internal("sum program produced " +
                            std::to_string(answer.size()) + " answers");
  }
  return answer.tuples()[0][0].number();
}

}  // namespace idlog
