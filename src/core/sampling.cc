#include "core/sampling.h"

#include "ast/program_builder.h"
#include "common/symbol_table.h"
#include "eval/engine_impl.h"
#include "storage/database.h"
#include "storage/id_relation.h"

namespace idlog {

Result<Relation> SampleKPerGroupWith(const Relation& rel,
                                     const std::vector<int>& group_cols,
                                     int64_t k, TidAssigner* assigner) {
  if (k < 0) return Status::InvalidArgument("sample size must be >= 0");
  // The ID-relation *is* the sampling mechanism: keep tuples whose tid
  // is below k. Build it directly rather than through a full engine run
  // (identical semantics to the IDLOG rule, documented in the header).
  IDLOG_ASSIGN_OR_RETURN(Relation id_rel,
                         BuildIdRelation("sample_input", rel, group_cols,
                                         assigner));
  Relation out(rel.type());
  for (const Tuple& t : id_rel.tuples()) {
    if (t.back().number() < k) {
      out.Insert(Tuple(t.begin(), t.end() - 1));
    }
  }
  return out;
}

Result<Relation> SampleKPerGroup(const Relation& rel,
                                 const std::vector<int>& group_cols,
                                 int64_t k, uint64_t seed) {
  RandomTidAssigner assigner(seed);
  return SampleKPerGroupWith(rel, group_cols, k, &assigner);
}

std::string SamplingProgramText(const std::string& relation_name, int arity,
                                const std::vector<int>& group_cols,
                                int64_t k) {
  std::string head = "sample(";
  std::string body = relation_name + "[";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    if (i > 0) body += ",";
    body += std::to_string(group_cols[i] + 1);
  }
  body += "](";
  for (int i = 0; i < arity; ++i) {
    std::string var = "X" + std::to_string(i + 1);
    if (i > 0) head += ", ";
    head += var;
    body += var + ", ";
  }
  head += ")";
  body += "T)";
  return head + " :- " + body + ", T < " + std::to_string(k) + ".";
}

}  // namespace idlog
