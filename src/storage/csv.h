#ifndef IDLOG_STORAGE_CSV_H_
#define IDLOG_STORAGE_CSV_H_

#include <string>

#include "common/limits.h"
#include "common/status.h"
#include "storage/database.h"

namespace idlog {

/// Upper bound on a single CSV field, enforced by ParseCsvRecord.
/// Fields past this size are almost certainly a missing quote or a
/// corrupt file, and letting them grow unbounded is a memory hazard.
inline constexpr size_t kMaxCsvFieldBytes = 1 << 20;  // 1 MiB

/// Parses one CSV line into fields, leniently: unterminated quotes are
/// closed at end of line, quotes may open mid-field, and every '\r' is
/// dropped. Kept for callers that want best-effort splitting; the
/// loaders below use the strict ParseCsvRecord instead.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Strictly parses one CSV record (RFC-4180 style). Handles
/// double-quoted fields with embedded commas, CRLF line endings (one
/// trailing '\r' is stripped), and doubled quotes ("" escapes a quote).
/// Returns ParseError for:
///  - an unterminated quoted field,
///  - text after a closing quote (`"ab"x`),
///  - a quote opening mid-field (`ab"cd"`),
///  - a stray carriage return outside quotes,
///  - a field longer than kMaxCsvFieldBytes.
Result<std::vector<std::string>> ParseCsvRecord(const std::string& line);

/// Loads `path` into relation `name`: one tuple per non-empty line,
/// fields comma-separated; all-digit fields become sort-i values, the
/// rest are interned as sort-u constants (matching Database::AddRow).
/// With `skip_header`, the first line is dropped.
///
/// Malformed rows (bad quoting, oversized fields, arity mismatch
/// against the relation or earlier rows, out-of-range integers) fail
/// with ParseError naming the offending line; sort mismatches keep
/// their TypeError code, also with the line number.
///
/// With `governor` set, each loaded row charges the tuple and memory
/// budgets, so --max-tuples / --max-memory-mb also cap bulk loads.
Status LoadCsvRelation(Database* database, const std::string& name,
                       const std::string& path, bool skip_header = false,
                       ResourceGovernor* governor = nullptr);

/// Writes `rel` to `path` as CSV (values in canonical sorted order),
/// quoting fields that contain commas or quotes.
Status SaveRelationCsv(const Relation& rel, const SymbolTable& symbols,
                       const std::string& path);

/// Parses CSV content from a string instead of a file (for tests).
Status LoadCsvRelationFromString(Database* database, const std::string& name,
                                 const std::string& content,
                                 bool skip_header = false,
                                 ResourceGovernor* governor = nullptr);

}  // namespace idlog

#endif  // IDLOG_STORAGE_CSV_H_
