#ifndef IDLOG_STORAGE_CSV_H_
#define IDLOG_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace idlog {

/// Parses one CSV line into fields. Handles double-quoted fields with
/// embedded commas and doubled quotes ("" escapes a quote). No embedded
/// newlines.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Loads `path` into relation `name`: one tuple per non-empty line,
/// fields comma-separated; all-digit fields become sort-i values, the
/// rest are interned as sort-u constants (matching Database::AddRow).
/// With `skip_header`, the first line is dropped.
Status LoadCsvRelation(Database* database, const std::string& name,
                       const std::string& path, bool skip_header = false);

/// Writes `rel` to `path` as CSV (values in canonical sorted order),
/// quoting fields that contain commas or quotes.
Status SaveRelationCsv(const Relation& rel, const SymbolTable& symbols,
                       const std::string& path);

/// Parses CSV content from a string instead of a file (for tests).
Status LoadCsvRelationFromString(Database* database, const std::string& name,
                                 const std::string& content,
                                 bool skip_header = false);

}  // namespace idlog

#endif  // IDLOG_STORAGE_CSV_H_
