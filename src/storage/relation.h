#ifndef IDLOG_STORAGE_RELATION_H_
#define IDLOG_STORAGE_RELATION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace idlog {

/// A finite, typed, duplicate-free set of tuples.
///
/// Iteration order is insertion order (with Erase moving the last row
/// into the vacated slot), which makes runs repeatable: the same
/// operation sequence always yields the same order, and the "canonical"
/// tid assignment (IdentityTidAssigner) enumerates group members in
/// this order. No semantic meaning attaches to it — IDLOG queries are
/// generic, so any order yields *a* legal ID-function.
class Relation {
 public:
  Relation() : uid_(NextUid()) {}
  explicit Relation(RelationType type)
      : type_(std::move(type)), uid_(NextUid()) {}

  Relation(const Relation& o)
      : type_(o.type_), rows_(o.rows_), set_(o.set_), version_(o.version_),
        uid_(NextUid()), clear_generation_(o.clear_generation_) {}
  Relation& operator=(const Relation& o) {
    type_ = o.type_;
    rows_ = o.rows_;
    set_ = o.set_;
    version_ = o.version_;
    uid_ = NextUid();  // contents replaced wholesale: new identity
    clear_generation_ = o.clear_generation_;
    return *this;
  }
  Relation(Relation&& o) noexcept
      : type_(std::move(o.type_)), rows_(std::move(o.rows_)),
        set_(std::move(o.set_)), version_(o.version_), uid_(NextUid()),
        clear_generation_(o.clear_generation_) {}
  Relation& operator=(Relation&& o) noexcept {
    type_ = std::move(o.type_);
    rows_ = std::move(o.rows_);
    set_ = std::move(o.set_);
    version_ = o.version_;
    uid_ = NextUid();
    clear_generation_ = o.clear_generation_;
    return *this;
  }

  /// Inserts `t`; returns true if the tuple was new. The tuple arity
  /// must match the relation type (checked; mismatches are dropped and
  /// reported via last_error()).
  bool Insert(Tuple t);

  /// Inserts with sort checking against the relation type.
  Status InsertChecked(Tuple t);

  bool Contains(const Tuple& t) const { return set_.count(t) > 0; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Tuples in insertion order.
  const std::vector<Tuple>& tuples() const { return rows_; }

  const RelationType& type() const { return type_; }
  int arity() const { return static_cast<int>(type_.size()); }

  /// Monotonically increasing change counter (for index invalidation).
  uint64_t version() const { return version_; }

  /// Identity token: unique per logical relation instance; changes when
  /// the relation is wholesale replaced by assignment, so pointer-keyed
  /// index caches can detect that incremental refresh is invalid.
  uint64_t uid() const { return uid_; }

  /// Bumped by every Clear(). Within one uid, rows only grow between
  /// clear generations — an index built at an older generation must
  /// rebuild even if the row count has grown back past what it indexed
  /// (the rows at those positions are different tuples now).
  uint64_t clear_generation() const { return clear_generation_; }

  /// Removes one tuple; returns true if it was present. O(1): the last
  /// row moves into the erased slot (so erasure perturbs iteration
  /// order — deterministically, which is what replay equivalence
  /// needs). Bumps the version *and* the clear generation: erasure
  /// breaks the "rows only grow within a generation" contract that
  /// incremental index refresh relies on, so indexes built earlier must
  /// rebuild from scratch.
  bool Erase(const Tuple& t);

  /// Removes all tuples.
  void Clear();

  /// Overwrites the change counters. Snapshot decode only: a relation
  /// rebuilt from its serialized rows must report the same logical
  /// version / clear generation as the live relation it was cut from,
  /// or recovered db-stats would disagree with an uninterrupted run.
  void RestoreCounters(uint64_t version, uint64_t clear_generation) {
    version_ = version;
    clear_generation_ = clear_generation;
  }

  /// Returns the tuples as a sorted vector (value order) — a canonical
  /// form for set comparison in tests.
  std::vector<Tuple> SortedTuples() const;

  /// Set equality regardless of insertion order.
  bool SetEquals(const Relation& other) const;

 private:
  static uint64_t NextUid();

  RelationType type_;
  std::vector<Tuple> rows_;
  /// Membership plus each tuple's index in rows_, so Erase need not
  /// scan the row vector.
  std::unordered_map<Tuple, size_t, TupleHash> set_;
  uint64_t version_ = 0;
  uint64_t uid_ = 0;
  uint64_t clear_generation_ = 0;
};

/// Projects `t` onto `cols` (0-based), preserving the column order given.
Tuple ProjectTuple(const Tuple& t, const std::vector<int>& cols);

}  // namespace idlog

#endif  // IDLOG_STORAGE_RELATION_H_
