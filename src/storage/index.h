#ifndef IDLOG_STORAGE_INDEX_H_
#define IDLOG_STORAGE_INDEX_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/relation.h"

namespace idlog {

/// A hash index over a column subset of a Relation. Maps a key (the
/// projection of a tuple onto `cols`) to the row positions holding it.
class ColumnIndex {
 public:
  ColumnIndex(const Relation* relation, std::vector<int> cols);

  /// Rebuilds if the relation changed since construction/last refresh.
  void Refresh();

  /// True when the index matches the relation's current contents (same
  /// uid and version), i.e. Lookup() is safe without a Refresh().
  bool fresh() const;

  /// Returns row positions matching `key` (projected values in `cols`
  /// order), or nullptr if none.
  const std::vector<size_t>* Lookup(const Tuple& key) const;

  const std::vector<int>& cols() const { return cols_; }

  /// Storage accounting (obs/dbstats). Entry counts reflect the last
  /// Build/Refresh, like Lookup() results.
  size_t num_keys() const { return buckets_.size(); }
  /// One posting per indexed row.
  size_t num_entries() const { return built_rows_; }
  /// Approximate heap bytes of the bucket map: per key the projected
  /// key tuple plus hash-node and posting-vector overhead, plus 8 bytes
  /// per posting (a row position).
  uint64_t approx_bytes() const {
    return static_cast<uint64_t>(buckets_.size()) *
               (static_cast<uint64_t>(cols_.size()) * 16 + 80) +
           static_cast<uint64_t>(built_rows_) * 8;
  }

 private:
  void Build();

  const Relation* relation_;
  std::vector<int> cols_;
  uint64_t built_version_ = 0;
  uint64_t built_uid_ = 0;
  uint64_t built_clear_generation_ = 0;
  size_t built_rows_ = 0;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets_;
};

/// Caches ColumnIndexes per column subset for one Relation.
class IndexCache {
 public:
  explicit IndexCache(const Relation* relation) : relation_(relation) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns a fresh index on `cols` (built or refreshed on demand).
  /// When `rebuilt` is non-null it is set to true if the call did
  /// physical work — constructed the index or refreshed a stale one —
  /// and left untouched otherwise (callers initialize it false), which
  /// is what backs the index_builds/index_cache_misses counters.
  const ColumnIndex& Get(const std::vector<int>& cols,
                         bool* rebuilt = nullptr);

  /// Read-only lookup for concurrent readers: the index on `cols` if it
  /// exists and is fresh for the relation's current contents, nullptr
  /// otherwise. Never builds or refreshes, so any number of threads may
  /// call it while no thread mutates the cache. Callers falling back on
  /// nullptr must verify key columns themselves.
  const ColumnIndex* FindFresh(const std::vector<int>& cols) const;

  /// The cached indexes, keyed by column subset (obs/dbstats walks
  /// these for per-index entry counts and byte attribution).
  const std::map<std::vector<int>, ColumnIndex>& indexes() const {
    return indexes_;
  }
  size_t size() const { return indexes_.size(); }

 private:
  const Relation* relation_;
  std::map<std::vector<int>, ColumnIndex> indexes_;
};

}  // namespace idlog

#endif  // IDLOG_STORAGE_INDEX_H_
