#ifndef IDLOG_STORAGE_DATABASE_H_
#define IDLOG_STORAGE_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "common/value.h"
#include "storage/relation.h"

namespace idlog {

/// An extensional database: named typed relations over a shared symbol
/// table, plus the explicit uninterpreted domain D of Section 2.1.
///
/// The u-domain is maintained as the set of all sort-u constants in any
/// stored tuple plus any constants registered explicitly (the paper's
/// database is a pair (u-domain=D; r1..rn) where D may exceed the active
/// domain).
class Database {
 public:
  explicit Database(SymbolTable* symbols) : symbols_(symbols) {}

  Database(const Database&) = default;
  Database& operator=(const Database&) = default;

  SymbolTable* symbols() const { return symbols_; }

  /// Creates an empty relation. Error if the name is already taken with
  /// a different type.
  Status CreateRelation(const std::string& name, RelationType type);

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Returns the relation or NotFound.
  Result<const Relation*> Get(const std::string& name) const;
  Result<Relation*> GetMutable(const std::string& name);

  /// Adds a tuple, creating the relation from the tuple's sorts if it
  /// does not exist yet. Sort-u constants are added to the u-domain.
  Status AddTuple(const std::string& name, Tuple t);

  /// Convenience: interns `fields` that look like numbers as sort-i and
  /// the rest as sort-u symbols.
  Status AddRow(const std::string& name, const std::vector<std::string>& fields);

  /// Removes one tuple from an existing relation; true if it was
  /// present. The u-domain is deliberately NOT shrunk: the paper's
  /// database pairs relations with a domain D that may exceed the
  /// active domain, and retractions never retroactively narrow D.
  Result<bool> EraseTuple(const std::string& name, const Tuple& t);

  /// Registers an extra u-domain constant not present in any tuple.
  void AddDomainConstant(SymbolId id) { u_domain_.insert(id); }

  /// The u-domain as a sorted set of symbol ids.
  const std::set<SymbolId>& u_domain() const { return u_domain_; }

  /// Relation names in creation order.
  const std::vector<std::string>& relation_names() const { return names_; }

 private:
  SymbolTable* symbols_;
  std::map<std::string, Relation> relations_;
  std::vector<std::string> names_;
  std::set<SymbolId> u_domain_;
};

}  // namespace idlog

#endif  // IDLOG_STORAGE_DATABASE_H_
