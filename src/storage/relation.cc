#include "storage/relation.h"

#include <algorithm>
#include <atomic>

#include "common/failpoint.h"

namespace idlog {

uint64_t Relation::NextUid() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

bool Relation::Insert(Tuple t) {
  if (t.size() != type_.size()) return false;
  auto [it, inserted] = set_.try_emplace(std::move(t), rows_.size());
  if (inserted) {
    rows_.push_back(it->first);
    ++version_;
  }
  return inserted;
}

Status Relation::InsertChecked(Tuple t) {
  IDLOG_FAILPOINT("storage.relation.insert");
  if (t.size() != type_.size()) {
    return Status::TypeError("tuple arity " + std::to_string(t.size()) +
                             " does not match relation arity " +
                             std::to_string(type_.size()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].sort() != type_[i]) {
      return Status::TypeError("column " + std::to_string(i) +
                               " expects sort " + SortName(type_[i]));
    }
  }
  Insert(std::move(t));
  return Status::OK();
}

bool Relation::Erase(const Tuple& t) {
  auto it = set_.find(t);
  if (it == set_.end()) return false;
  // Swap-and-pop keeps erasure O(1); the order perturbation is
  // deterministic, so replayed and uninterrupted runs still agree.
  const size_t idx = it->second;
  const size_t last = rows_.size() - 1;
  if (idx != last) {
    rows_[idx] = std::move(rows_[last]);
    set_.find(rows_[idx])->second = idx;
  }
  rows_.pop_back();
  set_.erase(it);
  ++version_;
  ++clear_generation_;
  return true;
}

void Relation::Clear() {
  rows_.clear();
  set_.clear();
  ++version_;
  ++clear_generation_;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out = rows_;
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::SetEquals(const Relation& other) const {
  if (size() != other.size()) return false;
  for (const Tuple& t : rows_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

Tuple ProjectTuple(const Tuple& t, const std::vector<int>& cols) {
  Tuple out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(t[static_cast<size_t>(c)]);
  return out;
}

}  // namespace idlog
