#include "storage/tid_assigner.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace idlog {

void IdentityTidAssigner::AssignGroup(const GroupContext& ctx, size_t n,
                                      std::vector<uint32_t>* tids) {
  (void)ctx;
  tids->resize(n);
  std::iota(tids->begin(), tids->end(), 0u);
}

void RandomTidAssigner::AssignGroup(const GroupContext& ctx, size_t n,
                                    std::vector<uint32_t>* tids) {
  (void)ctx;
  tids->resize(n);
  std::iota(tids->begin(), tids->end(), 0u);
  std::shuffle(tids->begin(), tids->end(), rng_);
}

std::string RandomTidAssigner::SaveState() const {
  std::ostringstream out;
  out << rng_;
  return out.str();
}

Status RandomTidAssigner::RestoreState(const std::string& state) {
  std::istringstream in(state);
  in >> rng_;
  if (in.fail()) {
    return Status::InvalidArgument(
        "snapshot carries a malformed random-assigner RNG state");
  }
  return Status::OK();
}

std::string ScriptedTidAssigner::SaveState() const {
  std::ostringstream out;
  out << pos_ << ' ' << script_.size();
  for (uint64_t r : script_) out << ' ' << r;
  out << ' ' << radices_.size();
  for (uint64_t r : radices_) out << ' ' << r;
  return out.str();
}

Status ScriptedTidAssigner::RestoreState(const std::string& state) {
  std::istringstream in(state);
  size_t pos = 0;
  size_t n = 0;
  in >> pos >> n;
  std::vector<uint64_t> script(n);
  for (uint64_t& r : script) in >> r;
  in >> n;
  std::vector<uint64_t> radices(n);
  for (uint64_t& r : radices) in >> r;
  if (in.fail()) {
    return Status::InvalidArgument(
        "snapshot carries a malformed scripted-assigner state");
  }
  pos_ = pos;
  script_ = std::move(script);
  radices_ = std::move(radices);
  return Status::OK();
}

void ScriptedTidAssigner::SetScript(std::vector<uint64_t> ranks) {
  script_ = std::move(ranks);
  pos_ = 0;
}

void ScriptedTidAssigner::AssignGroup(const GroupContext& ctx, size_t n,
                                      std::vector<uint32_t>* tids) {
  (void)ctx;
  uint64_t rank = 0;
  if (pos_ < script_.size()) {
    rank = script_[pos_];
  } else {
    radices_.push_back(SaturatingFactorial(n));
  }
  ++pos_;
  UnrankPermutation(rank, n, tids);
}

uint64_t SaturatingFactorial(size_t n) {
  uint64_t f = 1;
  for (size_t i = 2; i <= n; ++i) {
    if (f > UINT64_MAX / i) return UINT64_MAX;
    f *= i;
  }
  return f;
}

void UnrankPermutation(uint64_t rank, size_t n, std::vector<uint32_t>* perm) {
  perm->resize(n);
  // Factorial number system: digit i (from the most significant) selects
  // among the remaining elements.
  std::vector<uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  std::vector<uint64_t> fact(n, 1);
  for (size_t i = 1; i < n; ++i) {
    uint64_t prev = fact[i - 1];
    fact[i] = (prev > UINT64_MAX / i) ? UINT64_MAX : prev * i;
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t f = fact[n - 1 - i];
    uint64_t digit = (f == 0 || f == UINT64_MAX) ? 0 : rank / f;
    if (digit >= pool.size()) digit = pool.size() - 1;
    if (f != 0 && f != UINT64_MAX) rank %= f;
    (*perm)[i] = pool[static_cast<size_t>(digit)];
    pool.erase(pool.begin() + static_cast<long>(digit));
  }
}

}  // namespace idlog
