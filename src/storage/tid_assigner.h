#ifndef IDLOG_STORAGE_TID_ASSIGNER_H_
#define IDLOG_STORAGE_TID_ASSIGNER_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace idlog {

/// Identifies one grouping request during ID-relation materialization,
/// for assigners that want to key decisions on it.
struct GroupContext {
  const std::string& predicate;      ///< Base predicate name.
  const std::vector<int>& group;     ///< Grouping columns (0-based, sorted).
  const Tuple& key;                  ///< This group's key values.
};

/// Policy object deciding the ID-function of each sub-relation: given
/// the `n` tuples of one group (in canonical relation order), produces a
/// permutation `tids` of {0..n-1}; tuple `i` receives tid `tids[i]`.
///
/// This is the *entire* source of non-determinism in IDLOG: each choice
/// of ID-functions picks one perfect model of the program (Theorem 1).
class TidAssigner {
 public:
  virtual ~TidAssigner() = default;

  virtual void AssignGroup(const GroupContext& ctx, size_t n,
                           std::vector<uint32_t>* tids) = 0;

  /// Checkpoint support. Snapshots record kind() + SaveState() so a
  /// resumed run reconstructs the assigner exactly where it stopped and
  /// draws the same ID-functions for strata not yet materialized (the
  /// tid-stability invariant — already-materialized ID-relations are
  /// serialized outright and never re-drawn). The defaults make a
  /// stateless custom assigner checkpointable for free; a *stateful*
  /// custom assigner must override all three or resumes fail loudly in
  /// RestoreState rather than silently diverging.
  virtual std::string kind() const { return "custom"; }
  virtual std::string SaveState() const { return std::string(); }
  virtual Status RestoreState(const std::string& state) {
    if (!state.empty()) {
      return Status::Unsupported(
          "this TidAssigner does not implement RestoreState but the "
          "snapshot carries assigner state");
    }
    return Status::OK();
  }
};

/// Canonical assignment: tuple i gets tid i. Deterministic and
/// repeatable; the engine's default.
class IdentityTidAssigner : public TidAssigner {
 public:
  void AssignGroup(const GroupContext& ctx, size_t n,
                   std::vector<uint32_t>* tids) override;

  std::string kind() const override { return "identity"; }
};

/// Uniformly random permutation per group, seeded once. Because groups
/// are visited in deterministic order, a fixed seed reproduces a run.
/// This is the policy behind sampling queries (Section 3.3): random
/// tids make `T < k` select a uniform k-subset per group.
class RandomTidAssigner : public TidAssigner {
 public:
  explicit RandomTidAssigner(uint64_t seed) : rng_(seed) {}

  void AssignGroup(const GroupContext& ctx, size_t n,
                   std::vector<uint32_t>* tids) override;

  std::string kind() const override { return "random"; }
  /// The mt19937_64 stream state (std::ostream operator<< format), so a
  /// resumed run continues the same permutation sequence.
  std::string SaveState() const override;
  Status RestoreState(const std::string& state) override;

 private:
  std::mt19937_64 rng_;
};

/// Replays a script of permutation ranks (factorial number system) and
/// records the group sizes it encounters, enabling exhaustive
/// enumeration of all ID-function combinations (AnswerEnumerator).
///
/// When the script runs out, rank 0 (the identity permutation) is used
/// and the group's permutation count n! is appended to `radices` so the
/// driver can extend its odometer.
class ScriptedTidAssigner : public TidAssigner {
 public:
  ScriptedTidAssigner() = default;

  /// Sets the ranks to replay on the next run and rewinds.
  void SetScript(std::vector<uint64_t> ranks);

  void AssignGroup(const GroupContext& ctx, size_t n,
                   std::vector<uint32_t>* tids) override;

  /// Number of permutations (n!) of each group encountered, in
  /// encounter order. Stable across runs for stratified programs with a
  /// fixed database, because group discovery order is deterministic.
  const std::vector<uint64_t>& radices() const { return radices_; }

  /// Clears recorded radices (call before the first discovery run).
  void ResetRadices() { radices_.clear(); }

  std::string kind() const override { return "scripted"; }
  /// Script, replay position and recorded radices, space-separated.
  std::string SaveState() const override;
  Status RestoreState(const std::string& state) override;

 private:
  std::vector<uint64_t> script_;
  size_t pos_ = 0;
  std::vector<uint64_t> radices_;
};

/// Writes the permutation of {0..n-1} with the given rank in the
/// factorial number system (rank 0 = identity) into `perm`.
void UnrankPermutation(uint64_t rank, size_t n, std::vector<uint32_t>* perm);

/// n! with saturation at UINT64_MAX (n >= 21 saturates).
uint64_t SaturatingFactorial(size_t n);

}  // namespace idlog

#endif  // IDLOG_STORAGE_TID_ASSIGNER_H_
