#include "storage/id_relation.h"

#include <map>
#include <unordered_map>

namespace idlog {

Result<Relation> BuildIdRelation(const std::string& predicate,
                                 const Relation& rel,
                                 const std::vector<int>& group,
                                 TidAssigner* assigner, int64_t max_tid,
                                 size_t* num_groups) {
  for (int c : group) {
    if (c < 0 || c >= rel.arity()) {
      return Status::InvalidArgument(
          "grouping column " + std::to_string(c + 1) +
          " out of range for '" + predicate + "' of arity " +
          std::to_string(rel.arity()));
    }
  }

  // Partition rows by group key, preserving first-seen group order and
  // canonical in-group order.
  std::vector<Tuple> keys;
  std::vector<std::vector<size_t>> members;
  std::unordered_map<Tuple, size_t, TupleHash> key_index;
  const auto& rows = rel.tuples();
  for (size_t i = 0; i < rows.size(); ++i) {
    Tuple key = ProjectTuple(rows[i], group);
    auto [it, inserted] = key_index.emplace(std::move(key), keys.size());
    if (inserted) {
      keys.push_back(ProjectTuple(rows[i], group));
      members.emplace_back();
    }
    members[it->second].push_back(i);
  }

  RelationType out_type = rel.type();
  out_type.push_back(Sort::kI);
  Relation out(std::move(out_type));
  if (num_groups != nullptr) *num_groups = keys.size();

  std::vector<uint32_t> tids;
  for (size_t g = 0; g < keys.size(); ++g) {
    GroupContext ctx{predicate, group, keys[g]};
    assigner->AssignGroup(ctx, members[g].size(), &tids);
    if (tids.size() != members[g].size()) {
      return Status::Internal("tid assigner returned wrong-size permutation");
    }
    for (size_t i = 0; i < members[g].size(); ++i) {
      if (max_tid >= 0 && static_cast<int64_t>(tids[i]) >= max_tid) {
        continue;
      }
      Tuple t = rows[members[g][i]];
      t.push_back(Value::Number(tids[i]));
      out.Insert(std::move(t));
    }
  }
  return out;
}

Status ValidateIdRelation(const Relation& base, const Relation& id_rel,
                          const std::vector<int>& group) {
  if (id_rel.arity() != base.arity() + 1) {
    return Status::Internal("ID-relation arity mismatch");
  }
  if (id_rel.size() != base.size()) {
    return Status::Internal("ID-relation cardinality mismatch");
  }
  // Per-group tid multiset must be exactly {0..k-1}; the projection must
  // land in the base relation.
  std::map<Tuple, std::vector<int64_t>> group_tids;
  for (const Tuple& t : id_rel.tuples()) {
    Tuple bare(t.begin(), t.end() - 1);
    if (!base.Contains(bare)) {
      return Status::Internal("ID-relation tuple not present in base");
    }
    Tuple key = ProjectTuple(bare, group);
    group_tids[key].push_back(t.back().number());
  }
  for (auto& [key, tids] : group_tids) {
    std::sort(tids.begin(), tids.end());
    for (size_t i = 0; i < tids.size(); ++i) {
      if (tids[i] != static_cast<int64_t>(i)) {
        return Status::Internal("tids of a group are not {0..k-1}");
      }
    }
  }
  return Status::OK();
}

}  // namespace idlog
