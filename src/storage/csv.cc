#include "storage/csv.h"

#include <fstream>
#include <sstream>

namespace idlog {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

Status LoadFromStream(Database* database, const std::string& name,
                      std::istream& in, bool skip_header,
                      const std::string& what) {
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (skip_header && line_no == 1) continue;
    if (line.empty() || line == "\r") continue;
    Status st = database->AddRow(name, SplitCsvLine(line));
    if (!st.ok()) {
      return Status(st.code(), what + " line " + std::to_string(line_no) +
                                   ": " + st.message());
    }
  }
  return Status::OK();
}

}  // namespace

Status LoadCsvRelation(Database* database, const std::string& name,
                       const std::string& path, bool skip_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  return LoadFromStream(database, name, in, skip_header, path);
}

Status LoadCsvRelationFromString(Database* database, const std::string& name,
                                 const std::string& content,
                                 bool skip_header) {
  std::istringstream in(content);
  return LoadFromStream(database, name, in, skip_header, "<string>");
}

Status SaveRelationCsv(const Relation& rel, const SymbolTable& symbols,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot write CSV file '" + path + "'");
  }
  for (const Tuple& t : rel.SortedTuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ',';
      std::string field = t[i].ToString(symbols);
      if (field.find(',') != std::string::npos ||
          field.find('"') != std::string::npos) {
        std::string quoted = "\"";
        for (char c : field) {
          if (c == '"') quoted += '"';
          quoted += c;
        }
        quoted += '"';
        out << quoted;
      } else {
        out << field;
      }
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace idlog
