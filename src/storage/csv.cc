#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "store/atomic_file.h"

namespace idlog {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::string>> ParseCsvRecord(const std::string& line) {
  // std::getline already consumed the '\n'; strip the '\r' of a CRLF
  // ending here so quoted-field handling below never sees it.
  size_t end = line.size();
  if (end > 0 && line[end - 1] == '\r') --end;

  std::vector<std::string> fields;
  std::string current;
  // Where we are inside the current field: before any content, inside
  // an open quote, or after a closing quote (only ',' may follow).
  enum class Pos { kStart, kUnquoted, kQuoted, kAfterQuote };
  Pos pos = Pos::kStart;
  for (size_t i = 0; i < end; ++i) {
    char c = line[i];
    switch (pos) {
      case Pos::kQuoted:
        if (c == '"') {
          if (i + 1 < end && line[i + 1] == '"') {
            current += '"';
            ++i;
          } else {
            pos = Pos::kAfterQuote;
          }
        } else {
          current += c;
        }
        break;
      case Pos::kAfterQuote:
        if (c != ',') {
          return Status::ParseError(
              "unexpected character after closing quote in CSV field " +
              std::to_string(fields.size() + 1));
        }
        fields.push_back(std::move(current));
        current.clear();
        pos = Pos::kStart;
        break;
      case Pos::kStart:
        if (c == '"') {
          pos = Pos::kQuoted;
          break;
        }
        [[fallthrough]];
      case Pos::kUnquoted:
        if (c == ',') {
          fields.push_back(std::move(current));
          current.clear();
          pos = Pos::kStart;
        } else if (c == '"') {
          return Status::ParseError(
              "quote opens mid-field in CSV field " +
              std::to_string(fields.size() + 1) +
              " (quoted fields must start with '\"')");
        } else if (c == '\r') {
          return Status::ParseError("stray carriage return in CSV field " +
                                    std::to_string(fields.size() + 1));
        } else {
          current += c;
          pos = Pos::kUnquoted;
        }
        break;
    }
    if (current.size() > kMaxCsvFieldBytes) {
      return Status::ParseError(
          "CSV field " + std::to_string(fields.size() + 1) + " exceeds " +
          std::to_string(kMaxCsvFieldBytes) + " bytes");
    }
  }
  if (pos == Pos::kQuoted) {
    return Status::ParseError("unterminated quoted CSV field " +
                              std::to_string(fields.size() + 1));
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

Status LoadFromStream(Database* database, const std::string& name,
                      std::istream& in, bool skip_header,
                      const std::string& what, ResourceGovernor* governor) {
  if (governor != nullptr) governor->set_scope("csv loader");
  // Arity is fixed by the existing relation, or else by the first row.
  size_t expected_arity = 0;
  if (Result<const Relation*> existing = database->Get(name); existing.ok()) {
    expected_arity = (*existing)->type().size();
  }

  std::string line;
  int line_no = 0;
  auto at_line = [&](const Status& st) {
    return Status(st.code(), what + " line " + std::to_string(line_no) +
                                 ": " + st.message());
  };
  while (std::getline(in, line)) {
    ++line_no;
    IDLOG_FAILPOINT("csv.load.row");
    if (skip_header && line_no == 1) continue;
    if (line.empty() || line == "\r") continue;
    Result<std::vector<std::string>> fields = ParseCsvRecord(line);
    if (!fields.ok()) return at_line(fields.status());
    if (expected_arity == 0) {
      expected_arity = fields->size();
    } else if (fields->size() != expected_arity) {
      return at_line(Status::ParseError(
          "row has " + std::to_string(fields->size()) +
          " fields, expected " + std::to_string(expected_arity)));
    }
    if (governor != nullptr) {
      Status st =
          governor->OnDerived(1, ApproxTupleBytes(fields->size()));
      if (!st.ok()) return st;
    }
    Status st = database->AddRow(name, *fields);
    if (!st.ok()) return at_line(st);
  }
  return Status::OK();
}

}  // namespace

Status LoadCsvRelation(Database* database, const std::string& name,
                       const std::string& path, bool skip_header,
                       ResourceGovernor* governor) {
  IDLOG_FAILPOINT("csv.load.open");
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  return LoadFromStream(database, name, in, skip_header, path, governor);
}

Status LoadCsvRelationFromString(Database* database, const std::string& name,
                                 const std::string& content,
                                 bool skip_header,
                                 ResourceGovernor* governor) {
  std::istringstream in(content);
  return LoadFromStream(database, name, in, skip_header, "<string>",
                        governor);
}

Status SaveRelationCsv(const Relation& rel, const SymbolTable& symbols,
                       const std::string& path) {
  // Rendered in memory and written atomically: a crash mid-save leaves
  // either the previous file or the new one, never a torn CSV.
  std::ostringstream out;
  for (const Tuple& t : rel.SortedTuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ',';
      std::string field = t[i].ToString(symbols);
      if (field.find(',') != std::string::npos ||
          field.find('"') != std::string::npos) {
        std::string quoted = "\"";
        for (char c : field) {
          if (c == '"') quoted += '"';
          quoted += c;
        }
        quoted += '"';
        out << quoted;
      } else {
        out << field;
      }
    }
    out << '\n';
  }
  return WriteFileAtomic(path, out.str());
}

}  // namespace idlog
