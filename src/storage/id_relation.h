#ifndef IDLOG_STORAGE_ID_RELATION_H_
#define IDLOG_STORAGE_ID_RELATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/tid_assigner.h"

namespace idlog {

/// Materializes an ID-relation of `rel` on grouping columns `group`
/// (Section 2.1): partitions `rel` into sub-relations sharing the group
/// key, asks `assigner` for an ID-function (a bijection onto {0..k-1})
/// per sub-relation, and returns the (n+1)-ary relation of type
/// `type(rel) . 1` whose tuples are `t . tid`.
///
/// `group` must hold distinct 0-based column positions of `rel`; the
/// empty group makes the whole relation a single sub-relation (the
/// "most primitive" p[] form of footnote 5).
///
/// Groups are visited in first-seen order over `rel`'s canonical tuple
/// order, so a deterministic assigner yields a deterministic result.
///
/// `max_tid >= 0` materializes only the tuples whose tid is below the
/// bound — the paper's footnote 6/7 optimization: a program that only
/// ever constrains the tid (`emp[2](N,D,T), T < 2` or a constant tid)
/// never observes the truncated rest. The ID-functions are still drawn
/// over the full groups, so the result is a prefix of a legal
/// ID-relation.
Result<Relation> BuildIdRelation(const std::string& predicate,
                                 const Relation& rel,
                                 const std::vector<int>& group,
                                 TidAssigner* assigner,
                                 int64_t max_tid = -1,
                                 size_t* num_groups = nullptr);

/// Checks the defining invariant of an ID-relation: projecting away the
/// tid recovers `base` exactly, and within every group the tids are a
/// bijection onto {0..k-1}. Used by tests and the engine's self-checks.
Status ValidateIdRelation(const Relation& base, const Relation& id_rel,
                          const std::vector<int>& group);

}  // namespace idlog

#endif  // IDLOG_STORAGE_ID_RELATION_H_
