#include "storage/index.h"

#include <cstdio>

#include "obs/flight_recorder.h"

namespace idlog {

namespace {

/// Black-box breadcrumb for one physical index build/refresh. The
/// label names the key columns; the payload carries the rows indexed
/// and distinct keys. Physical-only (never part of the --jobs
/// byte-identity contract), like the index_builds counter it mirrors.
void RecordIndexBuildEvent(const ColumnIndex& index) {
  if (!FlightRecorder::Enabled()) return;
  char cols[sizeof(FlightEvent::label)];
  size_t n = 0;
  for (size_t i = 0; i < index.cols().size() && n + 4 < sizeof(cols); ++i) {
    n += static_cast<size_t>(std::snprintf(
        cols + n, sizeof(cols) - n, i == 0 ? "%d" : ",%d",
        index.cols()[i]));
  }
  cols[n < sizeof(cols) ? n : sizeof(cols) - 1] = '\0';
  FlightRecorder::Record(FlightEventKind::kIndexBuild, cols,
                         static_cast<int64_t>(index.num_entries()),
                         static_cast<int64_t>(index.num_keys()));
}

}  // namespace

ColumnIndex::ColumnIndex(const Relation* relation, std::vector<int> cols)
    : relation_(relation), cols_(std::move(cols)) {
  Build();
}

void ColumnIndex::Build() {
  buckets_.clear();
  const auto& rows = relation_->tuples();
  for (size_t i = 0; i < rows.size(); ++i) {
    buckets_[ProjectTuple(rows[i], cols_)].push_back(i);
  }
  built_version_ = relation_->version();
  built_uid_ = relation_->uid();
  built_clear_generation_ = relation_->clear_generation();
  built_rows_ = rows.size();
}

bool ColumnIndex::fresh() const {
  return built_version_ == relation_->version() &&
         built_uid_ == relation_->uid();
}

void ColumnIndex::Refresh() {
  if (fresh()) return;
  // Within one identity (uid) and clear generation, relations only
  // grow; extend incrementally then. A Clear() keeps the uid and may be
  // followed by regrowth past the old row count, so the generation
  // check is what forces the rebuild that drops the stale buckets.
  const auto& rows = relation_->tuples();
  if (built_uid_ == relation_->uid() &&
      built_clear_generation_ == relation_->clear_generation() &&
      rows.size() >= built_rows_) {
    for (size_t i = built_rows_; i < rows.size(); ++i) {
      buckets_[ProjectTuple(rows[i], cols_)].push_back(i);
    }
    built_rows_ = rows.size();
    built_version_ = relation_->version();
  } else {
    Build();
  }
}

const std::vector<size_t>* ColumnIndex::Lookup(const Tuple& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

const ColumnIndex& IndexCache::Get(const std::vector<int>& cols,
                                   bool* rebuilt) {
  auto it = indexes_.find(cols);
  if (it == indexes_.end()) {
    it = indexes_.emplace(cols, ColumnIndex(relation_, cols)).first;
    if (rebuilt != nullptr) *rebuilt = true;
    RecordIndexBuildEvent(it->second);
  } else if (!it->second.fresh()) {
    it->second.Refresh();
    if (rebuilt != nullptr) *rebuilt = true;
    RecordIndexBuildEvent(it->second);
  }
  return it->second;
}

const ColumnIndex* IndexCache::FindFresh(const std::vector<int>& cols) const {
  auto it = indexes_.find(cols);
  if (it == indexes_.end() || !it->second.fresh()) return nullptr;
  return &it->second;
}

}  // namespace idlog
