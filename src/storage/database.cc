#include "storage/database.h"

#include <cctype>

namespace idlog {

Status Database::CreateRelation(const std::string& name, RelationType type) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.type() != type) {
      return Status::TypeError("relation '" + name +
                               "' already exists with a different type");
    }
    return Status::OK();
  }
  relations_.emplace(name, Relation(std::move(type)));
  names_.push_back(name);
  return Status::OK();
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  return static_cast<const Relation*>(&it->second);
}

Result<Relation*> Database::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  return &it->second;
}

Status Database::AddTuple(const std::string& name, Tuple t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    RelationType type;
    type.reserve(t.size());
    for (const Value& v : t) type.push_back(v.sort());
    IDLOG_RETURN_NOT_OK(CreateRelation(name, std::move(type)));
    it = relations_.find(name);
  }
  for (const Value& v : t) {
    if (v.is_symbol()) u_domain_.insert(v.symbol());
  }
  return it->second.InsertChecked(std::move(t));
}

Result<bool> Database::EraseTuple(const std::string& name, const Tuple& t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  return it->second.Erase(t);
}

Status Database::AddRow(const std::string& name,
                        const std::vector<std::string>& fields) {
  Tuple t;
  t.reserve(fields.size());
  for (const std::string& f : fields) {
    bool numeric = !f.empty();
    for (char c : f) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      // std::stoll throws on overflow; reject fields past int64 range
      // (19 significant digits, compared lexicographically at 19).
      size_t nz = f.find_first_not_of('0');
      size_t digits = nz == std::string::npos ? 0 : f.size() - nz;
      if (digits > 19 ||
          (digits == 19 && f.compare(nz, 19, "9223372036854775807") > 0)) {
        return Status::ParseError("integer field '" + f +
                                  "' overflows 64-bit range");
      }
      t.push_back(Value::Number(std::stoll(f)));
    } else {
      t.push_back(Value::Symbol(symbols_->Intern(f)));
    }
  }
  return AddTuple(name, std::move(t));
}

}  // namespace idlog
