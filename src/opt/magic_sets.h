#ifndef IDLOG_OPT_MAGIC_SETS_H_
#define IDLOG_OPT_MAGIC_SETS_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "common/value.h"
#include "obs/explain.h"

namespace idlog {

/// A point query: predicate plus per-argument binding (a constant, or
/// nullopt for a free position). E.g. path(n3, X) is
/// {"path", {Value(n3), nullopt}}.
struct MagicQuery {
  std::string predicate;
  std::vector<std::optional<Value>> bindings;
};

struct MagicResult {
  Program program;
  /// The adorned predicate holding the query's answers (only tuples
  /// matching the bound constants are derived).
  std::string answer_pred;
  /// The seed magic predicate (for inspection).
  std::string seed_pred;
};

/// The classic magic-sets transformation (Bancilhon/Beeri/Ramakrishnan)
/// with a left-to-right sideways-information-passing strategy, for
/// *positive* programs (ordinary atoms and built-ins; negation, ID-
/// literals and choice are Unsupported). Section 3.2's point that
/// IDLOG "can make use of many existing evaluation strategies" is
/// demonstrated by this module: the transform is source-to-source on
/// our AST, and the transformed program runs on the unmodified engine.
///
/// The result restricts bottom-up evaluation to facts relevant to the
/// query's bound constants: magic predicates carry the reachable
/// binding sets, every original rule is guarded by its head's magic
/// atom, and the query's constants seed the magic fixpoint.
/// When `log` is non-null, the transform records the query seed as a
/// program-wide note and a per-clause note for every magic rule and
/// guarded adorned rule it emits (clause indices refer to the returned
/// program).
Result<MagicResult> MagicSetTransform(const Program& program,
                                      const MagicQuery& query,
                                      RewriteLog* log = nullptr);

}  // namespace idlog

#endif  // IDLOG_OPT_MAGIC_SETS_H_
