#ifndef IDLOG_OPT_ID_REWRITE_H_
#define IDLOG_OPT_ID_REWRITE_H_

#include <map>
#include <string>

#include "ast/ast.h"
#include "common/status.h"
#include "obs/explain.h"
#include "opt/adornment.h"

namespace idlog {

/// Step 3 of the Section 4 optimization strategy: for every positive
/// body literal p(Ȳ) over an *input* predicate whose positions
/// {X1..Xn} are occurrence-existential, replace it with the ID-literal
///
///     p[s](Ȳ, 0)        with  s = positions of Ȳ − {X1..Xn},
///
/// so that only one tuple per sub-relation feeds the join — sound
/// because every argument the RBK88 test identifies is ∃-existential
/// (Theorem 4). Literals with no existential position are untouched.
///
/// Returns the rewritten program and the number of literals rewritten.
struct IdRewriteResult {
  Program program;
  int literals_rewritten = 0;
};

/// When `log` is non-null, records one per-clause note per literal
/// turned into an ID-literal (the mapping is 1:1, so indices are shared
/// between input and output program).
Result<IdRewriteResult> RewriteExistentialToId(
    const Program& program, const ExistentialAnalysis& analysis,
    RewriteLog* log = nullptr);

/// The full strategy (steps 1 and 3; step 2's output-schema pruning is
/// intentionally skipped so the query type is preserved): detect
/// existential arguments w.r.t. `output_pred`, push projections through
/// the IDB, re-detect on the projected program, and rewrite input
/// literals to ID-literals. The result is q-equivalent to the input
/// program for q = `output_pred` (modulo the `_x` renaming of projected
/// IDB predicates, reported in `renamed`).
struct OptimizeResult {
  Program program;
  std::map<std::string, std::string> renamed;
  int idb_columns_dropped = 0;
  int literals_rewritten = 0;
};

/// When `log` is non-null, the sub-passes' notes are collected and
/// remapped onto the final cleaned program's clause indices (notes on
/// clauses the cleanup removed are kept program-wide, marked as such) —
/// hand the log to IdlogEngine::SetRewriteLog so EXPLAIN annotates the
/// optimized program with its rewrite history.
Result<OptimizeResult> OptimizeForOutput(const Program& program,
                                         const std::string& output_pred,
                                         RewriteLog* log = nullptr);

}  // namespace idlog

#endif  // IDLOG_OPT_ID_REWRITE_H_
