#include "opt/magic_sets.h"

#include <deque>
#include <map>
#include <set>

#include "analysis/classification.h"
#include "ast/program_builder.h"

namespace idlog {

namespace {

/// An adornment: one char per argument, 'b' (bound) or 'f' (free).
using Adornment = std::string;

std::string AdornedName(const std::string& pred, const Adornment& a) {
  return pred + "__" + a;
}
std::string MagicName(const std::string& pred, const Adornment& a) {
  return "m_" + pred + "__" + a;
}

/// Bound argument terms of `atom` under `adornment`, in order.
std::vector<Term> BoundArgs(const Atom& atom, const Adornment& adornment) {
  std::vector<Term> out;
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == 'b') out.push_back(atom.terms[i]);
  }
  return out;
}

Adornment AtomAdornment(const Atom& atom,
                        const std::set<std::string>& bound_vars) {
  Adornment a;
  for (const Term& t : atom.terms) {
    bool bound = t.is_constant() || bound_vars.count(t.var_name()) > 0;
    a += bound ? 'b' : 'f';
  }
  return a;
}

}  // namespace

Result<MagicResult> MagicSetTransform(const Program& program,
                                      const MagicQuery& query,
                                      RewriteLog* log) {
  // Validate the fragment.
  for (const Clause& clause : program.clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.negated || lit.atom.kind == AtomKind::kId ||
          lit.atom.kind == AtomKind::kChoice) {
        return Status::Unsupported(
            "magic sets are implemented for positive programs "
            "(ordinary atoms and built-ins only)");
      }
    }
  }
  int query_idx = program.FindPredicate(query.predicate);
  if (query_idx < 0) {
    return Status::NotFound("unknown query predicate '" +
                            query.predicate + "'");
  }
  size_t query_arity =
      program.predicates[static_cast<size_t>(query_idx)].type.size();
  if (query.bindings.size() != query_arity) {
    return Status::InvalidArgument("query binding arity mismatch");
  }

  PredicateClassification classes = ClassifyPredicates(program);
  // Group clauses by head predicate.
  std::map<std::string, std::vector<const Clause*>> defining;
  for (const Clause& clause : program.clauses) {
    defining[clause.head.predicate].push_back(&clause);
  }

  MagicResult result;
  Program& out = result.program;

  Adornment query_adornment;
  for (const auto& b : query.bindings) {
    query_adornment += b.has_value() ? 'b' : 'f';
  }
  result.answer_pred = AdornedName(query.predicate, query_adornment);
  result.seed_pred = MagicName(query.predicate, query_adornment);

  // Seed fact: m_q__a(c1..ck).
  {
    Clause seed;
    std::vector<Term> consts;
    for (const auto& b : query.bindings) {
      if (b.has_value()) consts.push_back(Term::Const(*b));
    }
    seed.head = Atom::Ordinary(result.seed_pred, std::move(consts));
    out.clauses.push_back(std::move(seed));
    if (log != nullptr) {
      log->Note("magic-sets", 0,
                "seed fact " + result.seed_pred +
                    " from the query's bound constants");
      log->Note("magic-sets", -1,
                "query " + query.predicate + " adorned " + query_adornment +
                    "; answers in " + result.answer_pred);
    }
  }

  // Worklist over (predicate, adornment).
  std::set<std::pair<std::string, Adornment>> processed;
  std::deque<std::pair<std::string, Adornment>> worklist;
  worklist.push_back({query.predicate, query_adornment});

  while (!worklist.empty()) {
    auto [pred, adornment] = worklist.front();
    worklist.pop_front();
    if (!processed.insert({pred, adornment}).second) continue;

    auto it = defining.find(pred);
    if (it == defining.end()) continue;  // EDB: nothing to rewrite

    for (const Clause* clause : it->second) {
      // Head variables bound by the magic atom.
      std::set<std::string> bound_vars;
      for (size_t i = 0; i < adornment.size(); ++i) {
        const Term& t = clause->head.terms[i];
        if (adornment[i] == 'b' && t.is_variable()) {
          bound_vars.insert(t.var_name());
        }
      }

      Clause rewritten;
      rewritten.head =
          Atom::Ordinary(AdornedName(pred, adornment), clause->head.terms);
      Atom magic_guard = Atom::Ordinary(MagicName(pred, adornment),
                                        BoundArgs(clause->head, adornment));
      rewritten.body.push_back(Literal::Pos(magic_guard));

      // Left-to-right SIP over the body.
      std::vector<Literal> prefix;  // rewritten literals seen so far
      for (const Literal& lit : clause->body) {
        if (lit.atom.kind == AtomKind::kBuiltin) {
          rewritten.body.push_back(lit);
          prefix.push_back(lit);
          for (const Term& t : lit.atom.terms) {
            if (t.is_variable()) bound_vars.insert(t.var_name());
          }
          continue;
        }
        const std::string& body_pred = lit.atom.predicate;
        if (classes.IsOutput(body_pred)) {
          Adornment body_adornment = AtomAdornment(lit.atom, bound_vars);
          // Magic rule: m_body(bound) :- m_head(bound), prefix...
          Clause magic_rule;
          magic_rule.head =
              Atom::Ordinary(MagicName(body_pred, body_adornment),
                             BoundArgs(lit.atom, body_adornment));
          magic_rule.body.push_back(Literal::Pos(magic_guard));
          for (const Literal& p : prefix) magic_rule.body.push_back(p);
          if (log != nullptr) {
            log->Note("magic-sets",
                      static_cast<int>(out.clauses.size()),
                      "magic rule for " + body_pred + "__" +
                          body_adornment + " (left-to-right SIP)");
          }
          out.clauses.push_back(std::move(magic_rule));
          worklist.push_back({body_pred, body_adornment});

          Literal adorned = Literal::Pos(Atom::Ordinary(
              AdornedName(body_pred, body_adornment), lit.atom.terms));
          rewritten.body.push_back(adorned);
          prefix.push_back(adorned);
        } else {
          rewritten.body.push_back(lit);
          prefix.push_back(lit);
        }
        for (const Term& t : lit.atom.terms) {
          if (t.is_variable()) bound_vars.insert(t.var_name());
        }
      }
      if (log != nullptr) {
        log->Note("magic-sets", static_cast<int>(out.clauses.size()),
                  "adorned rule " + AdornedName(pred, adornment) +
                      " guarded by " + MagicName(pred, adornment));
      }
      out.clauses.push_back(std::move(rewritten));
    }
  }

  // Register predicates and infer types.
  for (const Clause& clause : out.clauses) {
    out.GetOrAddPredicate(clause.head.predicate, clause.head.arity());
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind == AtomKind::kOrdinary) {
        out.GetOrAddPredicate(lit.atom.predicate, lit.atom.arity());
      }
    }
  }
  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&out));
  return result;
}

}  // namespace idlog
