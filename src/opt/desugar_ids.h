#ifndef IDLOG_OPT_DESUGAR_IDS_H_
#define IDLOG_OPT_DESUGAR_IDS_H_

#include "ast/ast.h"
#include "common/status.h"
#include "obs/explain.h"

namespace idlog {

/// Footnote 5 of the paper (attributed to Richard Hull): among the
/// ID-predicates, the ungrouped form p[] is the most primitive — every
/// grouped ID-predicate can be defined through it. This transform makes
/// that constructive: each grouped ID-literal p[s](X̄, T) is replaced by
/// a derived predicate whose tid is the *rank* of the tuple's global
/// tid within its group:
///
///   gid(X̄, G)        :- p[](X̄, G).
///   member(K̄, G)     :- gid(X̄, G).               % K̄ = X̄ | s
///   walk(K̄, 0, 0)    :- member(K̄, G).             % start the counter
///   walk(K̄, G1, R1)  :- walk(K̄, G, R), member(K̄, G),
///                        succ(G, G1), succ(R, R1).
///   walk(K̄, G1, R)   :- walk(K̄, G, R), not member(K̄, G),
///                        gid_used(G), succ(G, G1).
///   rank(K̄, G, R)    :- walk(K̄, G, R), member(K̄, G).
///   p_id_s(X̄, T)     :- gid(X̄, G), rank(K̄, G, T).
///
/// Within each group the ranks are a bijection onto {0..k-1}, so the
/// desugared predicate is a legal ID-relation of p on s; and as the
/// global ID-function ranges over all permutations, the induced group
/// rankings cover every combination of group ID-functions — the
/// possible-answer sets of the original and desugared programs are
/// equal (verified by enumeration in desugar_ids_test.cc).
///
/// Ungrouped ID-literals and everything else pass through unchanged.
struct DesugarResult {
  Program program;
  int literals_desugared = 0;
};

/// When `log` is non-null, the transform records one program-wide note
/// per emitted footnote-5 definition block and one per-clause note per
/// rewritten grouped ID-literal (clause indices refer to the returned
/// program).
Result<DesugarResult> DesugarGroupedIds(const Program& program,
                                        RewriteLog* log = nullptr);

}  // namespace idlog

#endif  // IDLOG_OPT_DESUGAR_IDS_H_
