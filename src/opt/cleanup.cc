#include "opt/cleanup.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "ast/printer.h"

namespace idlog {

namespace {

// A syntactic key for literal/clause comparison. The shared symbol
// table makes printing stable within one program.
std::string LiteralKey(const Literal& lit, const SymbolTable& symbols) {
  return LiteralToString(lit, symbols);
}

}  // namespace

Program CleanupProgram(const Program& program, const std::string& output,
                       CleanupStats* stats, RewriteLog* log,
                       std::vector<int>* kept_from) {
  CleanupStats local;
  SymbolTable scratch;  // keys only need to be internally consistent

  Program out;
  out.predicates = program.predicates;

  std::set<std::string> clause_keys;
  std::vector<std::set<std::string>> kept_bodies;  // parallel to clauses
  std::vector<std::string> kept_heads;
  std::vector<int> origin;  // parallel to out.clauses: input index

  for (size_t clause_idx = 0; clause_idx < program.clauses.size();
       ++clause_idx) {
    const Clause& clause = program.clauses[clause_idx];
    // 1. Collapse duplicate literals; detect L together with not L.
    Clause cleaned;
    cleaned.head = clause.head;
    std::set<std::string> body_keys;
    bool contradictory = false;
    for (const Literal& lit : clause.body) {
      std::string key = LiteralKey(lit, scratch);
      if (!body_keys.insert(key).second) {
        ++local.duplicate_literals_removed;
        continue;
      }
      Literal flipped = lit;
      flipped.negated = !flipped.negated;
      if (lit.atom.kind != AtomKind::kChoice &&
          body_keys.count(LiteralKey(flipped, scratch)) > 0) {
        contradictory = true;
        break;
      }
      cleaned.body.push_back(lit);
    }
    if (contradictory) {
      ++local.contradictory_clauses_removed;
      continue;
    }

    // 2. Duplicate clause elimination (order-insensitive bodies).
    std::string head_key = AtomToString(cleaned.head, scratch);
    std::string clause_key = head_key + " :- ";
    for (const std::string& k : body_keys) clause_key += k + ", ";
    if (!clause_keys.insert(clause_key).second) {
      ++local.duplicate_clauses_removed;
      continue;
    }

    // 3. Syntactic subsumption against already-kept clauses with the
    // same head atom.
    bool subsumed = false;
    for (size_t i = 0; i < kept_heads.size(); ++i) {
      if (kept_heads[i] != head_key) continue;
      const std::set<std::string>& other = kept_bodies[i];
      if (std::includes(body_keys.begin(), body_keys.end(), other.begin(),
                        other.end())) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) {
      ++local.subsumed_clauses_removed;
      continue;
    }

    kept_heads.push_back(std::move(head_key));
    kept_bodies.push_back(std::move(body_keys));
    origin.push_back(static_cast<int>(clause_idx));
    out.clauses.push_back(std::move(cleaned));
  }

  // 4. Drop clauses outside P/output.
  if (!output.empty()) {
    size_t before = out.clauses.size();
    Program restricted;
    restricted.predicates = out.predicates;
    DependencyGraph graph(out);
    std::set<std::string> needed = graph.ReachableFrom(output);
    std::vector<int> restricted_origin;
    for (size_t i = 0; i < out.clauses.size(); ++i) {
      Clause& clause = out.clauses[i];
      if (needed.count(clause.head.predicate) > 0) {
        restricted_origin.push_back(origin[i]);
        restricted.clauses.push_back(std::move(clause));
      }
    }
    local.unreachable_clauses_removed =
        static_cast<int>(before - restricted.clauses.size());
    out = std::move(restricted);
    origin = std::move(restricted_origin);
  }

  if (log != nullptr) {
    auto note = [log](int count, const std::string& what) {
      if (count > 0) {
        log->Note("cleanup", -1,
                  std::to_string(count) + " " + what + " removed");
      }
    };
    note(local.duplicate_literals_removed, "duplicate body literal(s)");
    note(local.contradictory_clauses_removed, "contradictory clause(s)");
    note(local.duplicate_clauses_removed, "duplicate clause(s)");
    note(local.subsumed_clauses_removed, "subsumed clause(s)");
    note(local.unreachable_clauses_removed,
         "clause(s) unreachable from '" + output + "'");
  }
  if (kept_from != nullptr) *kept_from = std::move(origin);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace idlog
