#ifndef IDLOG_OPT_PROJECTION_PUSH_H_
#define IDLOG_OPT_PROJECTION_PUSH_H_

#include <map>
#include <string>

#include "ast/ast.h"
#include "common/status.h"
#include "obs/explain.h"
#include "opt/adornment.h"

namespace idlog {

/// Result of pushing projections through the IDB (the RBK88 transform
/// of Example 6): every intensional predicate with existential argument
/// positions is replaced by a narrower predicate with those columns
/// dropped, in heads and bodies alike.
struct ProjectionResult {
  Program program;
  /// original IDB predicate -> projected replacement (only predicates
  /// that actually lost columns appear).
  std::map<std::string, std::string> renamed;
};

/// Applies the projection transform for `analysis` (computed w.r.t. its
/// output predicate). Extensional predicates keep their schema — their
/// redundant columns are handled by RewriteExistentialToId instead.
/// Projected predicates are renamed `<name>_x` to keep the original
/// visible for comparison runs.
/// When `log` is non-null, records one program-wide note per narrowed
/// predicate and one per-clause note per clause whose head or body was
/// rewritten (the mapping is 1:1, so indices are shared between input
/// and output program).
Result<ProjectionResult> PushProjections(const Program& program,
                                         const ExistentialAnalysis& analysis,
                                         RewriteLog* log = nullptr);

}  // namespace idlog

#endif  // IDLOG_OPT_PROJECTION_PUSH_H_
