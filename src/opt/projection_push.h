#ifndef IDLOG_OPT_PROJECTION_PUSH_H_
#define IDLOG_OPT_PROJECTION_PUSH_H_

#include <map>
#include <string>

#include "ast/ast.h"
#include "common/status.h"
#include "opt/adornment.h"

namespace idlog {

/// Result of pushing projections through the IDB (the RBK88 transform
/// of Example 6): every intensional predicate with existential argument
/// positions is replaced by a narrower predicate with those columns
/// dropped, in heads and bodies alike.
struct ProjectionResult {
  Program program;
  /// original IDB predicate -> projected replacement (only predicates
  /// that actually lost columns appear).
  std::map<std::string, std::string> renamed;
};

/// Applies the projection transform for `analysis` (computed w.r.t. its
/// output predicate). Extensional predicates keep their schema — their
/// redundant columns are handled by RewriteExistentialToId instead.
/// Projected predicates are renamed `<name>_x` to keep the original
/// visible for comparison runs.
Result<ProjectionResult> PushProjections(const Program& program,
                                         const ExistentialAnalysis& analysis);

}  // namespace idlog

#endif  // IDLOG_OPT_PROJECTION_PUSH_H_
