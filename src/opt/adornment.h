#ifndef IDLOG_OPT_ADORNMENT_H_
#define IDLOG_OPT_ADORNMENT_H_

#include <set>
#include <string>
#include <utility>

#include "ast/ast.h"

namespace idlog {

/// The argument positions identified as existential w.r.t. one output
/// predicate by the RBK88 adornment test (Section 4). By Theorem 4
/// every position found here is also ∃-existential, so both the
/// projection-pushing transform (Definition 1) and the ID-literal
/// rewrite (Definition 2) are sound on them.
struct ExistentialAnalysis {
  std::string output_pred;
  /// (predicate name, 0-based argument position).
  std::set<std::pair<std::string, int>> positions;

  bool IsExistential(const std::string& pred, int pos) const {
    return positions.count({pred, pos}) > 0;
  }
};

/// Runs the adornment algorithm on the program portion P/q: a greatest
/// fixpoint that keeps (p, j) existential as long as every positive
/// body occurrence of p in P/q carries at position j a variable that
/// occurs nowhere else in the clause except possibly at existential
/// head positions. Predicates that occur negated, under an ID-version
/// or in the head of the output predicate are excluded outright (the
/// sufficient test is only stated for positive occurrences, and the
/// output schema must not change).
///
/// Detection of existential arguments is undecidable in general
/// (Theorem 3 for the ∃ notion, RBK88 for the ∀ notion); this is the
/// sound sufficient test both notions share.
ExistentialAnalysis DetectExistentialArguments(const Program& program,
                                               const std::string& output_pred);

/// The occurrence-level test behind Definitions 1/2: in `clause`, is
/// position `pos` of body literal `literal_index` existential? True iff
/// the term there is a variable occurring exactly once across the body
/// and, in the head, only at positions that `analysis` marks
/// existential. Step 3 of the Section 4 strategy applies this to input
/// predicate literals before rewriting them to ID-literals.
bool OccurrencePositionExistential(const Clause& clause, int literal_index,
                                   int pos,
                                   const ExistentialAnalysis& analysis);

}  // namespace idlog

#endif  // IDLOG_OPT_ADORNMENT_H_
