#include "opt/projection_push.h"

#include <set>
#include <vector>

#include "analysis/classification.h"
#include "ast/program_builder.h"

namespace idlog {

Result<ProjectionResult> PushProjections(const Program& program,
                                         const ExistentialAnalysis& analysis,
                                         RewriteLog* log) {
  PredicateClassification classes = ClassifyPredicates(program);

  // Which IDB predicates lose which columns.
  std::map<std::string, std::set<int>> dropped;
  for (const auto& [pred, pos] : analysis.positions) {
    if (classes.IsOutput(pred)) dropped[pred].insert(pos);
  }

  ProjectionResult result;
  if (dropped.empty()) {
    result.program = program;
    return result;
  }
  for (const auto& [pred, cols] : dropped) {
    result.renamed[pred] = pred + "_x";
    if (log != nullptr) {
      std::string positions;
      for (int c : cols) {
        if (!positions.empty()) positions += ",";
        positions += std::to_string(c);
      }
      log->Note("projection-push", -1,
                pred + " -> " + result.renamed[pred] +
                    " dropping existential columns {" + positions + "}");
    }
  }

  auto rewrite_atom = [&](const Atom& atom) -> Atom {
    if (atom.kind != AtomKind::kOrdinary) return atom;
    auto it = dropped.find(atom.predicate);
    if (it == dropped.end()) return atom;
    std::vector<Term> kept;
    for (int j = 0; j < atom.arity(); ++j) {
      if (it->second.count(j) == 0) {
        kept.push_back(atom.terms[static_cast<size_t>(j)]);
      }
    }
    return Atom::Ordinary(result.renamed[atom.predicate], std::move(kept));
  };

  Program& out = result.program;
  for (const Clause& clause : program.clauses) {
    Clause rewritten;
    bool touched = dropped.count(clause.head.predicate) > 0;
    rewritten.head = rewrite_atom(clause.head);
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind == AtomKind::kOrdinary &&
          dropped.count(lit.atom.predicate) > 0) {
        touched = true;
      }
      if (lit.atom.kind == AtomKind::kOrdinary &&
          dropped.count(lit.atom.predicate) > 0 && lit.negated) {
        // Dropping columns under negation is unsound; the adornment
        // pass disqualifies negated predicates, so reaching this means
        // an inconsistent analysis was supplied.
        return Status::InvalidArgument(
            "existential analysis marks a negated predicate '" +
            lit.atom.predicate + "'");
      }
      rewritten.body.push_back(
          Literal{rewrite_atom(lit.atom), lit.negated});
    }
    if (touched && log != nullptr) {
      log->Note("projection-push", static_cast<int>(out.clauses.size()),
                "narrowed projected predicates in head/body");
    }
    out.clauses.push_back(std::move(rewritten));
  }

  // Rebuild the predicate table from scratch.
  for (const Clause& clause : out.clauses) {
    out.GetOrAddPredicate(clause.head.predicate, clause.head.arity());
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind == AtomKind::kOrdinary) {
        out.GetOrAddPredicate(lit.atom.predicate, lit.atom.arity());
      } else if (lit.atom.kind == AtomKind::kId) {
        out.GetOrAddPredicate(lit.atom.predicate, lit.atom.base_arity());
      }
    }
  }
  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&out));
  return result;
}

}  // namespace idlog
