#ifndef IDLOG_OPT_CLEANUP_H_
#define IDLOG_OPT_CLEANUP_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "obs/explain.h"

namespace idlog {

/// Statistics from one cleanup pass.
struct CleanupStats {
  int duplicate_literals_removed = 0;
  int contradictory_clauses_removed = 0;
  int duplicate_clauses_removed = 0;
  int subsumed_clauses_removed = 0;
  int unreachable_clauses_removed = 0;

  int total() const {
    return duplicate_literals_removed + contradictory_clauses_removed +
           duplicate_clauses_removed + subsumed_clauses_removed +
           unreachable_clauses_removed;
  }
};

/// Rule-level cleanup, standing in for the thesis-only Algorithm D.1
/// the Section 4 strategy invokes as its step 4. Purely syntactic and
/// model-preserving transformations:
///  - duplicate body literals collapse;
///  - clauses whose body contains both L and not L are dropped;
///  - textually duplicate clauses are dropped;
///  - a clause is dropped when another clause with the same head atom
///    has a body that is a subset of its body (syntactic subsumption);
///  - when `output` is non-empty, clauses not related to it (outside
///    the paper's P/q) are dropped.
///
/// Returns the cleaned program; `stats` (optional) reports what fired.
/// When `log` is non-null, one program-wide RewriteNote per non-zero
/// stat summarizes the pass. When `kept_from` is non-null it receives,
/// per output clause, the index of the input clause it came from —
/// callers that chain passes use this to remap earlier per-clause
/// rewrite notes onto the cleaned program.
Program CleanupProgram(const Program& program, const std::string& output = "",
                       CleanupStats* stats = nullptr,
                       RewriteLog* log = nullptr,
                       std::vector<int>* kept_from = nullptr);

}  // namespace idlog

#endif  // IDLOG_OPT_CLEANUP_H_
