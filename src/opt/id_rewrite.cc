#include "opt/id_rewrite.h"

#include <vector>

#include "analysis/classification.h"
#include "ast/program_builder.h"
#include "opt/cleanup.h"
#include "opt/projection_push.h"

namespace idlog {

Result<IdRewriteResult> RewriteExistentialToId(
    const Program& program, const ExistentialAnalysis& analysis) {
  PredicateClassification classes = ClassifyPredicates(program);

  IdRewriteResult result;
  result.program.predicates = program.predicates;

  for (const Clause& clause : program.clauses) {
    Clause rewritten = clause;
    for (size_t l = 0; l < clause.body.size(); ++l) {
      const Literal& lit = clause.body[l];
      if (lit.negated || lit.atom.kind != AtomKind::kOrdinary) continue;
      if (!classes.IsInput(lit.atom.predicate)) continue;

      std::vector<int> group;
      int existential = 0;
      for (int j = 0; j < lit.atom.arity(); ++j) {
        if (OccurrencePositionExistential(clause, static_cast<int>(l), j,
                                          analysis)) {
          ++existential;
        } else {
          group.push_back(j);
        }
      }
      if (existential == 0) continue;

      std::vector<Term> args = lit.atom.terms;
      args.push_back(Term::Number(0));
      rewritten.body[l] =
          Literal::Pos(Atom::Id(lit.atom.predicate, group, std::move(args)));
      ++result.literals_rewritten;
    }
    result.program.clauses.push_back(std::move(rewritten));
  }
  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&result.program));
  return result;
}

Result<OptimizeResult> OptimizeForOutput(const Program& program,
                                         const std::string& output_pred) {
  OptimizeResult out;

  // Step 1: RBK88 adornment + projection pushing through the IDB.
  ExistentialAnalysis analysis =
      DetectExistentialArguments(program, output_pred);
  IDLOG_ASSIGN_OR_RETURN(ProjectionResult projected,
                         PushProjections(program, analysis));
  out.renamed = projected.renamed;
  for (const auto& [pred, pos] : analysis.positions) {
    (void)pos;
    if (out.renamed.count(pred) > 0) ++out.idb_columns_dropped;
  }

  // Step 3: re-detect on the projected program (projection exposes new
  // singleton variables) and rewrite input literals to ID-literals.
  ExistentialAnalysis analysis2 =
      DetectExistentialArguments(projected.program, output_pred);
  IDLOG_ASSIGN_OR_RETURN(
      IdRewriteResult rewritten,
      RewriteExistentialToId(projected.program, analysis2));
  out.literals_rewritten = rewritten.literals_rewritten;

  // Step 4: rule cleanup (the Algorithm D.1 role) restricted to the
  // output's program portion.
  out.program = CleanupProgram(rewritten.program, output_pred);
  return out;
}

}  // namespace idlog
