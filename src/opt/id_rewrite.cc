#include "opt/id_rewrite.h"

#include <vector>

#include "analysis/classification.h"
#include "ast/program_builder.h"
#include "opt/cleanup.h"
#include "opt/projection_push.h"

namespace idlog {

Result<IdRewriteResult> RewriteExistentialToId(
    const Program& program, const ExistentialAnalysis& analysis,
    RewriteLog* log) {
  PredicateClassification classes = ClassifyPredicates(program);

  IdRewriteResult result;
  result.program.predicates = program.predicates;

  for (const Clause& clause : program.clauses) {
    Clause rewritten = clause;
    for (size_t l = 0; l < clause.body.size(); ++l) {
      const Literal& lit = clause.body[l];
      if (lit.negated || lit.atom.kind != AtomKind::kOrdinary) continue;
      if (!classes.IsInput(lit.atom.predicate)) continue;

      std::vector<int> group;
      int existential = 0;
      for (int j = 0; j < lit.atom.arity(); ++j) {
        if (OccurrencePositionExistential(clause, static_cast<int>(l), j,
                                          analysis)) {
          ++existential;
        } else {
          group.push_back(j);
        }
      }
      if (existential == 0) continue;

      std::vector<Term> args = lit.atom.terms;
      args.push_back(Term::Number(0));
      rewritten.body[l] =
          Literal::Pos(Atom::Id(lit.atom.predicate, group, std::move(args)));
      ++result.literals_rewritten;
      if (log != nullptr) {
        std::string cols;
        for (int c : group) {
          if (!cols.empty()) cols += ",";
          cols += std::to_string(c);
        }
        log->Note("id-rewrite",
                  static_cast<int>(result.program.clauses.size()),
                  lit.atom.predicate + " -> " + lit.atom.predicate + "[" +
                      cols + "](.., 0): " + std::to_string(existential) +
                      " existential position(s), one tuple per group "
                      "feeds the join");
      }
    }
    result.program.clauses.push_back(std::move(rewritten));
  }
  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&result.program));
  return result;
}

Result<OptimizeResult> OptimizeForOutput(const Program& program,
                                         const std::string& output_pred,
                                         RewriteLog* log) {
  OptimizeResult out;
  // Projection and ID-rewrite are 1:1 on clauses, so notes from both
  // stages share the pre-cleanup indexing; the cleanup's kept_from map
  // then remaps them onto the final program.
  RewriteLog stage_log;
  RewriteLog* stage = log != nullptr ? &stage_log : nullptr;

  // Step 1: RBK88 adornment + projection pushing through the IDB.
  ExistentialAnalysis analysis =
      DetectExistentialArguments(program, output_pred);
  IDLOG_ASSIGN_OR_RETURN(ProjectionResult projected,
                         PushProjections(program, analysis, stage));
  out.renamed = projected.renamed;
  for (const auto& [pred, pos] : analysis.positions) {
    (void)pos;
    if (out.renamed.count(pred) > 0) ++out.idb_columns_dropped;
  }

  // Step 3: re-detect on the projected program (projection exposes new
  // singleton variables) and rewrite input literals to ID-literals.
  ExistentialAnalysis analysis2 =
      DetectExistentialArguments(projected.program, output_pred);
  IDLOG_ASSIGN_OR_RETURN(
      IdRewriteResult rewritten,
      RewriteExistentialToId(projected.program, analysis2, stage));
  out.literals_rewritten = rewritten.literals_rewritten;

  // Step 4: rule cleanup (the Algorithm D.1 role) restricted to the
  // output's program portion.
  std::vector<int> kept_from;
  out.program = CleanupProgram(rewritten.program, output_pred,
                               /*stats=*/nullptr, stage, &kept_from);

  if (log != nullptr) {
    // Remap the stages' pre-cleanup clause indices onto the final
    // program. Notes on clauses the cleanup dropped stay visible, but
    // program-wide and flagged as removed.
    std::map<int, int> final_index;
    for (size_t i = 0; i < kept_from.size(); ++i) {
      final_index[kept_from[i]] = static_cast<int>(i);
    }
    for (const RewriteNote& note : stage_log.notes()) {
      if (note.clause_index < 0) {
        log->Note(note.pass, -1, note.detail);
        continue;
      }
      auto it = final_index.find(note.clause_index);
      if (it != final_index.end()) {
        log->Note(note.pass, it->second, note.detail);
      } else {
        log->Note(note.pass, -1,
                  note.detail + " (clause later removed by cleanup)");
      }
    }
  }
  return out;
}

}  // namespace idlog
