#include "opt/desugar_ids.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/program_builder.h"

namespace idlog {

namespace {

std::string GroupSuffix(const std::vector<int>& group) {
  std::string s;
  for (int c : group) s += "_" + std::to_string(c + 1);
  return s;
}

/// Emits the footnote 5 definition of `pred` grouped by `group` (both
/// identify the ID-relation), defining `<pred>_id<suffix>` with arity
/// base+1. Fresh variable names are prefixed to avoid capture.
void EmitDefinition(const std::string& pred, int arity,
                    const std::vector<int>& group, Program* out) {
  const std::string sfx = GroupSuffix(group);
  const std::string gid = "gid_" + pred + sfx;
  const std::string member = "member_" + pred + sfx;
  const std::string gid_used = "gidused_" + pred + sfx;
  const std::string walk = "walk_" + pred + sfx;
  const std::string rank = "rank_" + pred + sfx;
  const std::string target = pred + "_id" + sfx;

  auto var = [](const std::string& base, int i) {
    return Term::Var(base + std::to_string(i));
  };
  std::vector<Term> xs;
  for (int i = 0; i < arity; ++i) xs.push_back(var("Dx", i));
  std::vector<Term> ks;
  for (int c : group) ks.push_back(var("Dx", c));
  Term g = Term::Var("Dg");
  Term g1 = Term::Var("Dg1");
  Term r = Term::Var("Dr");
  Term r1 = Term::Var("Dr1");
  Term t = Term::Var("Dt");

  auto add = [out](Atom head, std::vector<Literal> body) {
    out->GetOrAddPredicate(head.predicate, head.arity());
    for (const Literal& lit : body) {
      if (lit.atom.kind == AtomKind::kOrdinary) {
        out->GetOrAddPredicate(lit.atom.predicate, lit.atom.arity());
      } else if (lit.atom.kind == AtomKind::kId) {
        out->GetOrAddPredicate(lit.atom.predicate, lit.atom.base_arity());
      }
    }
    out->clauses.push_back(Clause{std::move(head), std::move(body)});
  };

  // gid(X̄, G) :- p[](X̄, G).
  std::vector<Term> id_args = xs;
  id_args.push_back(g);
  std::vector<Term> gid_args = xs;
  gid_args.push_back(g);
  add(Atom::Ordinary(gid, gid_args),
      {Literal::Pos(Atom::Id(pred, {}, id_args))});

  // member(K̄, G) :- gid(X̄, G).   gid_used(G) :- gid(X̄, G).
  std::vector<Term> member_args = ks;
  member_args.push_back(g);
  add(Atom::Ordinary(member, member_args),
      {Literal::Pos(Atom::Ordinary(gid, gid_args))});
  add(Atom::Ordinary(gid_used, {g}),
      {Literal::Pos(Atom::Ordinary(gid, gid_args))});

  // walk(K̄, 0, 0) :- member(K̄, G).
  std::vector<Term> walk0 = ks;
  walk0.push_back(Term::Number(0));
  walk0.push_back(Term::Number(0));
  add(Atom::Ordinary(walk, walk0),
      {Literal::Pos(Atom::Ordinary(member, member_args))});

  std::vector<Term> walk_args = ks;
  walk_args.push_back(g);
  walk_args.push_back(r);
  // walk(K̄, G1, R1) :- walk(K̄, G, R), member(K̄, G), succ(G, G1),
  //                    succ(R, R1).
  std::vector<Term> walk_adv = ks;
  walk_adv.push_back(g1);
  walk_adv.push_back(r1);
  add(Atom::Ordinary(walk, walk_adv),
      {Literal::Pos(Atom::Ordinary(walk, walk_args)),
       Literal::Pos(Atom::Ordinary(member, member_args)),
       Literal::Pos(Atom::Builtin(BuiltinKind::kSucc, {g, g1})),
       Literal::Pos(Atom::Builtin(BuiltinKind::kSucc, {r, r1}))});
  // walk(K̄, G1, R) :- walk(K̄, G, R), not member(K̄, G), gid_used(G),
  //                   succ(G, G1).
  std::vector<Term> walk_skip = ks;
  walk_skip.push_back(g1);
  walk_skip.push_back(r);
  add(Atom::Ordinary(walk, walk_skip),
      {Literal::Pos(Atom::Ordinary(walk, walk_args)),
       Literal::Neg(Atom::Ordinary(member, member_args)),
       Literal::Pos(Atom::Ordinary(gid_used, {g})),
       Literal::Pos(Atom::Builtin(BuiltinKind::kSucc, {g, g1}))});

  // rank(K̄, G, R) :- walk(K̄, G, R), member(K̄, G).
  std::vector<Term> rank_args = ks;
  rank_args.push_back(g);
  rank_args.push_back(r);
  add(Atom::Ordinary(rank, rank_args),
      {Literal::Pos(Atom::Ordinary(walk, walk_args)),
       Literal::Pos(Atom::Ordinary(member, member_args))});

  // target(X̄, T) :- gid(X̄, G), rank(K̄, G, T).
  std::vector<Term> rank_t = ks;
  rank_t.push_back(g);
  rank_t.push_back(t);
  std::vector<Term> target_args = xs;
  target_args.push_back(t);
  add(Atom::Ordinary(target, target_args),
      {Literal::Pos(Atom::Ordinary(gid, gid_args)),
       Literal::Pos(Atom::Ordinary(rank, rank_t))});
}

}  // namespace

Result<DesugarResult> DesugarGroupedIds(const Program& program,
                                        RewriteLog* log) {
  DesugarResult result;
  result.program.predicates = program.predicates;

  std::set<std::pair<std::string, std::vector<int>>> emitted;
  for (const Clause& clause : program.clauses) {
    Clause rewritten = clause;
    for (Literal& lit : rewritten.body) {
      if (lit.atom.kind != AtomKind::kId || lit.atom.group.empty()) {
        continue;
      }
      const std::string& pred = lit.atom.predicate;
      const std::vector<int> group = lit.atom.group;
      int arity = lit.atom.base_arity();
      const std::string target = pred + "_id" + GroupSuffix(group);
      if (emitted.insert({pred, group}).second) {
        EmitDefinition(pred, arity, group, &result.program);
        if (log != nullptr) {
          log->Note("id-desugar", -1,
                    "emitted footnote-5 definition of " + target +
                        " (7 aux clauses) for grouped ID-relation " + pred);
        }
      }
      // Replace p[s](args, T) with p_id_s(args, T).
      lit.atom = Atom::Ordinary(target, lit.atom.terms);
      ++result.literals_desugared;
      if (log != nullptr) {
        // The rewritten clause is pushed after the aux definitions, so
        // its output index is the current clause count.
        log->Note("id-desugar",
                  static_cast<int>(result.program.clauses.size()),
                  "grouped ID-literal " + pred + " -> " + target);
      }
    }
    result.program.GetOrAddPredicate(rewritten.head.predicate,
                                     rewritten.head.arity());
    result.program.clauses.push_back(std::move(rewritten));
  }
  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&result.program));
  return result;
}

}  // namespace idlog
