#include "opt/adornment.h"

#include <map>
#include <vector>

#include "analysis/dependency_graph.h"

namespace idlog {

namespace {

// Counts occurrences of variable `v` across all body literals of a
// clause (every atom kind, every position).
int CountBodyOccurrences(const Clause& clause, const std::string& v) {
  int count = 0;
  for (const Literal& lit : clause.body) {
    for (const Term& t : lit.atom.terms) {
      if (t.is_variable() && t.var_name() == v) ++count;
    }
  }
  return count;
}

}  // namespace

ExistentialAnalysis DetectExistentialArguments(
    const Program& program, const std::string& output_pred) {
  ExistentialAnalysis analysis;
  analysis.output_pred = output_pred;

  std::vector<Clause> portion = ProgramPortion(program, output_pred);

  // Disqualified predicates: occurring negated or as ID-versions (the
  // test is stated for positive ordinary occurrences), or the output
  // itself (its schema is the query's answer type).
  std::set<std::string> disqualified = {output_pred};
  for (const Clause& clause : portion) {
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind == AtomKind::kId ||
          (lit.atom.kind == AtomKind::kOrdinary && lit.negated)) {
        disqualified.insert(lit.atom.predicate);
      }
    }
  }

  // Candidates: every position of every predicate with a positive
  // ordinary body occurrence in P/q.
  for (const Clause& clause : portion) {
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind != AtomKind::kOrdinary || lit.negated) continue;
      if (disqualified.count(lit.atom.predicate) > 0) continue;
      for (int j = 0; j < lit.atom.arity(); ++j) {
        analysis.positions.insert({lit.atom.predicate, j});
      }
    }
  }

  // Greatest fixpoint: remove (p, j) while some occurrence violates the
  // adornment property.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : portion) {
      for (const Literal& lit : clause.body) {
        if (lit.atom.kind != AtomKind::kOrdinary || lit.negated) continue;
        const std::string& pred = lit.atom.predicate;
        for (int j = 0; j < lit.atom.arity(); ++j) {
          if (!analysis.IsExistential(pred, j)) continue;
          const Term& t = lit.atom.terms[static_cast<size_t>(j)];
          bool ok = false;
          if (t.is_variable()) {
            const std::string& v = t.var_name();
            ok = CountBodyOccurrences(clause, v) == 1;
            if (ok) {
              // Head occurrences allowed only at existential positions
              // of the head predicate.
              for (int k = 0; k < clause.head.arity(); ++k) {
                const Term& h = clause.head.terms[static_cast<size_t>(k)];
                if (h.is_variable() && h.var_name() == v &&
                    !analysis.IsExistential(clause.head.predicate, k)) {
                  ok = false;
                  break;
                }
              }
            }
          }
          if (!ok) {
            analysis.positions.erase({pred, j});
            changed = true;
          }
        }
      }
    }
  }
  return analysis;
}

bool OccurrencePositionExistential(const Clause& clause, int literal_index,
                                   int pos,
                                   const ExistentialAnalysis& analysis) {
  const Literal& lit = clause.body[static_cast<size_t>(literal_index)];
  if (lit.negated || lit.atom.kind != AtomKind::kOrdinary) return false;
  const Term& t = lit.atom.terms[static_cast<size_t>(pos)];
  if (!t.is_variable()) return false;
  const std::string& v = t.var_name();
  if (CountBodyOccurrences(clause, v) != 1) return false;
  for (int k = 0; k < clause.head.arity(); ++k) {
    const Term& h = clause.head.terms[static_cast<size_t>(k)];
    if (h.is_variable() && h.var_name() == v &&
        !analysis.IsExistential(clause.head.predicate, k)) {
      return false;
    }
  }
  return true;
}

}  // namespace idlog
