#ifndef IDLOG_EVAL_ENGINE_IMPL_H_
#define IDLOG_EVAL_ENGINE_IMPL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/stratifier.h"
#include "analysis/tid_bounds.h"
#include "ast/ast.h"
#include "common/limits.h"
#include "common/status.h"
#include "eval/eval_stats.h"
#include "eval/provenance.h"
#include "eval/rule_eval.h"
#include "eval/rule_plan.h"
#include "eval/stratum_eval.h"
#include "exec/thread_pool.h"
#include "obs/explain.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "storage/id_relation.h"
#include "storage/tid_assigner.h"

namespace idlog {

/// A position in the stratified fixpoint at a round boundary, as
/// reported to the checkpoint hook. `in_stratum` distinguishes "resume
/// stratum `stratum` at round `round`+1 with the frame's delta" from
/// "enter stratum `stratum` fresh"; `completed` marks the boundary that
/// finished the last stratum.
struct FixpointFrame {
  int stratum = 0;
  uint64_t round = 0;
  bool in_stratum = false;
  bool completed = false;
};

/// Continuation state decoded from a checkpoint. The maps are adopted
/// wholesale; `stratum`/`round`/`in_stratum` say where Evaluate() picks
/// the fixpoint back up.
struct EvalResumeState {
  std::map<std::string, Relation> derived;
  std::map<std::pair<std::string, std::vector<int>>, Relation> id_relations;
  std::map<std::string, Relation> delta;
  EvalStats stats;
  bool has_analysis = false;
  PlanAnalysis analysis;
  bool has_profile = false;
  EvalProfile profile;
  bool has_provenance = false;
  ProvenanceStore provenance;
  int stratum = 0;
  uint64_t round = 0;
  bool in_stratum = false;
};

/// One prepared evaluation of a stratified IDLOG program against a
/// database: stratification + compiled rule plans, reusable across runs
/// with different tid assigners (each run computes one perfect model).
class EngineImpl {
 public:
  /// `program` and `database` must outlive the engine.
  EngineImpl(const Program* program, const Database* database)
      : program_(program), database_(database) {}

  EngineImpl(const EngineImpl&) = delete;
  EngineImpl& operator=(const EngineImpl&) = delete;

  /// Validates (safety, stratification) and compiles rule plans.
  Status Prepare();

  /// Computes the perfect model under `assigner`'s ID-functions.
  /// Clears previous results first — unless a resume state is pending
  /// (InstallResumeState), in which case it continues the checkpointed
  /// fixpoint from its frame. `seminaive=false` selects the naive
  /// fixpoint (ablation only).
  Status Evaluate(TidAssigner* assigner, bool seminaive = true);

  /// Extends the model of a *completed* Evaluate() in place after new
  /// EDB facts were inserted, without re-running the full fixpoint:
  /// `changed` maps each mutated predicate to a relation holding only
  /// the tuples that are actually new, and every stratum runs a seeded
  /// semi-naive continuation (no round 0) whose first round
  /// differentiates on those deltas. Stats, profile and provenance
  /// accumulate on top of the previous run's; nothing is cleared.
  ///
  /// Returns Unsupported — leaving all state untouched, so the caller
  /// can fall back to a full Evaluate() — when the change cannot be
  /// bolted on monotonically: naive mode, a program that reads the
  /// synthesized `udom` (new constants extend it), or any negation /
  /// ID-relation step over a predicate in the taint closure of
  /// `changed` (ID-relations are materialized from their base's old
  /// contents, and negation makes growth non-monotone).
  Status EvaluateIncremental(const std::map<std::string, Relation>& changed,
                             bool seminaive);

  /// The IDB predicate set of the loaded program (valid after
  /// Prepare()); EDB mutations against these are shadowed by derived
  /// relations, so durable sessions refuse them up front.
  const std::set<std::string>& idb_preds() const { return idb_preds_; }

  /// Adopts checkpointed evaluation state: the derived/ID-relations,
  /// stats and observability counters become current immediately (so a
  /// completed snapshot is queryable without evaluating), and the next
  /// Evaluate() continues from the frame instead of starting over. The
  /// pending continuation is consumed by that Evaluate(); later ones
  /// start fresh as usual.
  void InstallResumeState(EvalResumeState state);

  /// Observes every fixpoint round boundary of Evaluate() with a
  /// consistent frame (the checkpointer). A non-OK return aborts the
  /// run. Null (default) disables.
  using CheckpointHook = std::function<Status(
      const FixpointFrame&, const std::map<std::string, Relation>& delta)>;
  void set_checkpoint_hook(CheckpointHook hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// The evaluated state, for snapshot serialization.
  const std::map<std::string, Relation>& derived() const { return derived_; }
  const std::map<std::pair<std::string, std::vector<int>>, Relation>&
  id_relations() const {
    return id_relations_;
  }

  /// Storage introspection (obs/dbstats): the synthesized u-domain
  /// relation (empty unless the program reads `udom`) and the live
  /// index caches keyed by relation pointer.
  const Relation& udom_relation() const { return udom_; }
  const std::map<const Relation*, std::unique_ptr<IndexCache>>&
  index_caches() const {
    return index_caches_;
  }

  /// The relation of `pred` after Evaluate: derived if IDB, database
  /// contents if EDB, NotFound otherwise. The special predicate `udom`
  /// resolves to the database's u-domain if not stored explicitly.
  Result<const Relation*> RelationOf(const std::string& pred) const;

  /// Materialized ID-relation of (pred, group) from the last run, for
  /// inspection and invariant checks.
  Result<const Relation*> IdRelationOf(const std::string& pred,
                                       const std::vector<int>& group) const;

  /// Verifies that the relations computed by the last Evaluate() form a
  /// fixpoint model: re-runs every rule against the final state (with
  /// the same materialized ID-relations) and checks that nothing new is
  /// derivable. Returns false with no error if a violation is found.
  Result<bool> VerifyModel();

  const EvalStats& stats() const { return stats_; }
  const Stratification& stratification() const { return strat_; }
  bool prepared() const { return prepared_; }

  /// The compiled plans, one per program clause (the WHY NOT walker
  /// unifies a missing tuple against their heads). Requires Prepare().
  const std::vector<RulePlan>& plans() const { return plans_; }

  /// Enables/disables the footnote 6/7 tid-bound pushdown (default on):
  /// ID-relations whose tids are provably bounded materialize only the
  /// needed prefix per group. Call before Evaluate.
  void set_tid_bound_pushdown(bool enabled) {
    tid_bound_pushdown_ = enabled;
  }

  /// The bounds the analysis found (for inspection and tests).
  const std::map<TidBoundKey, int64_t>& tid_bounds() const {
    return tid_bounds_;
  }

  /// Records first derivations during Evaluate (off by default; costs
  /// memory proportional to the number of derived facts).
  void set_provenance_enabled(bool enabled) {
    provenance_enabled_ = enabled;
  }

  /// Ablation: disable index lookups (full scans + filters).
  void set_use_indexes(bool enabled) { use_indexes_ = enabled; }
  const ProvenanceStore& provenance() const { return provenance_; }

  /// Installs the resource governor consulted by Evaluate(): rule
  /// execution checkpoints against it and each stratum labels it with
  /// its index, so trips name where they happened. Not owned; null
  /// disables governance. The caller arms it (the engine never does, so
  /// one governor can span many Evaluate() calls during enumeration).
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }
  ResourceGovernor* governor() const { return governor_; }

  /// Structured trace-event sink observing this engine: Prepare()
  /// records a program-analysis span, Evaluate() records evaluation /
  /// per-stratum / ID-materialization spans and the fixpoint machinery
  /// adds per-round and per-rule spans. Not owned; null (the default)
  /// disables tracing at the cost of one pointer test per rule call.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace_sink() const { return trace_; }

  /// Worker-thread count for the parallel stratum executor (default 1 =
  /// serial fixpoint, no pool). With n >= 2, each fixpoint round's
  /// independent (rule, delta_step) evaluations run concurrently and
  /// are merged deterministically, so results, stats, profiles, traces
  /// and the provenance store stay byte-identical to a serial run.
  void set_threads(int n) { threads_ = n < 1 ? 1 : n; }
  int threads() const { return threads_; }

  /// Delta-partition fan-out for heavy recursive tasks (0 = auto:
  /// match the pool's parallelism). Results are byte-identical for
  /// every value; explicit values exist for the partition sweep tests
  /// and tuning.
  void set_delta_partitions(int k) {
    delta_partitions_ = k < 0 ? 0 : k;
  }
  int delta_partitions() const { return delta_partitions_; }

  /// Enables the per-rule/per-stratum profile (off by default). The
  /// attribution cost is a few clock reads per rule evaluation.
  void set_profiling_enabled(bool enabled) { profiling_ = enabled; }
  bool profiling_enabled() const { return profiling_; }

  /// The profile of the last Evaluate() (empty unless enabled).
  const EvalProfile& profile() const { return profile_; }

  /// Enables EXPLAIN ANALYZE per-step counter collection during
  /// Evaluate() (off by default; same pointer-test contract as the
  /// profile — one branch per rule evaluation, counters per tuple only
  /// when on).
  void set_explain_enabled(bool enabled) { explain_ = enabled; }
  bool explain_enabled() const { return explain_; }

  /// Per-step counters of the last Evaluate() (empty unless enabled).
  const PlanAnalysis& plan_analysis() const { return plan_analysis_; }

  /// Installs rewrite provenance carried in from the opt/ pipeline;
  /// EXPLAIN renders these notes next to the clauses they touched. The
  /// engine appends its own tid-pushdown notes during Prepare().
  void set_rewrite_log(RewriteLog log) { rewrite_log_ = std::move(log); }

  /// Renders the compiled plans as an EXPLAIN document — the aligned
  /// text tree or the deterministic `idlog-explain-v1` JSON. With
  /// `analyze`, per-step runtime counters and per-stratum round sizes
  /// of the last Evaluate() are included (requires explain enabled and
  /// a completed run for meaningful numbers). Requires Prepare().
  Result<std::string> ExplainPlanText(bool analyze) const;
  Result<std::string> ExplainPlanJson(bool analyze) const;

 private:
  Result<std::string> RenderExplain(bool analyze, bool json) const;

  const Relation* FullRelation(const std::string& pred) const;

  const Program* program_;
  const Database* database_;

  bool prepared_ = false;
  bool tid_bound_pushdown_ = true;
  std::map<TidBoundKey, int64_t> tid_bounds_;
  Stratification strat_;
  std::vector<RulePlan> plans_;  ///< One per program clause.
  std::set<std::string> idb_preds_;

  std::map<std::string, Relation> derived_;
  std::map<std::pair<std::string, std::vector<int>>, Relation> id_relations_;
  Relation udom_;  ///< Synthesized u-domain relation.
  bool udom_needed_ = false;

  mutable std::map<const Relation*, std::unique_ptr<IndexCache>>
      index_caches_;
  int threads_ = 1;
  int delta_partitions_ = 0;  ///< 0 = auto (pool parallelism).
  std::unique_ptr<ThreadPool> pool_;  ///< Lazily sized to threads_.
  EvalStats stats_;
  ResourceGovernor* governor_ = nullptr;
  TraceSink* trace_ = nullptr;
  bool profiling_ = false;
  EvalProfile profile_;
  bool explain_ = false;
  PlanAnalysis plan_analysis_;
  RewriteLog rewrite_log_;    ///< From the opt/ pipeline (caller-set).
  RewriteLog pushdown_notes_; ///< The engine's own Prepare()-time notes.
  bool provenance_enabled_ = false;
  bool use_indexes_ = true;
  ProvenanceStore provenance_;
  CheckpointHook checkpoint_hook_;
  /// Pending continuation from InstallResumeState; consumed by the next
  /// Evaluate(). Only the frame coordinates and delta live here — the
  /// bulky state was adopted into the members directly.
  struct PendingResume {
    std::map<std::string, Relation> delta;
    int stratum = 0;
    uint64_t round = 0;
    bool in_stratum = false;
  };
  std::unique_ptr<PendingResume> pending_resume_;
};

}  // namespace idlog

#endif  // IDLOG_EVAL_ENGINE_IMPL_H_
