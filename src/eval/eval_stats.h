#ifndef IDLOG_EVAL_EVAL_STATS_H_
#define IDLOG_EVAL_EVAL_STATS_H_

#include <cstdint>

namespace idlog {

/// Work counters collected during bottom-up evaluation. These back the
/// paper's Section 4 claim that ID-literal rewriting "greatly reduces
/// the number of intermediate redundant tuples": benches report
/// `tuples_considered` with and without the rewrite, independent of
/// machine speed.
struct EvalStats {
  uint64_t tuples_considered = 0;   ///< Candidate tuples enumerated in joins.
  uint64_t facts_derived = 0;       ///< Head instantiations produced.
  /// Of those, new (first derivation). In the stratified fixpoint a
  /// fact counts when its round commits it into the full relation —
  /// the one definition of "new" that is identical for every --jobs
  /// and delta-partition setting; a round that errors out counts
  /// nothing, matching its discarded staging.
  uint64_t facts_inserted = 0;
  uint64_t rule_firings = 0;        ///< Rule evaluation passes.
  uint64_t iterations = 0;          ///< Fixpoint rounds across strata.
  uint64_t strata_evaluated = 0;    ///< Strata entered by the last run.
  uint64_t id_groups_assigned = 0;  ///< Sub-relations given an ID-function.
  uint64_t id_tuples_materialized = 0;
  /// Index effectiveness. `index_probes` counts index Lookup calls — a
  /// logical counter, identical across --jobs settings (parallel rounds
  /// probe the same pre-built indexes serial rounds probe lazily).
  /// `index_builds` and `index_cache_misses` count physical work (an
  /// index constructed or refreshed; a scan that found no fresh cached
  /// index) and, like wall times, may differ between serial and
  /// parallel execution: serial runs build lazily at first use, --jobs
  /// runs build eagerly in the coordinator's pre-build step.
  uint64_t index_probes = 0;
  uint64_t index_builds = 0;
  uint64_t index_cache_misses = 0;
  /// Wall time of the run, monotonic clock. Stamped by the engine when
  /// Evaluate() exits (on every path); inside a run it is 0 except in
  /// the governor's trip snapshot, which fills in the elapsed time at
  /// the moment the budget tripped.
  uint64_t eval_wall_ns = 0;
  /// Provenance store footprint, stamped by the engine at Evaluate()
  /// exit from the (merged) store. Logical quantities: the parallel
  /// merge reproduces the serial store exactly, so all three are
  /// identical across --jobs settings. Zero when provenance is off.
  uint64_t provenance_nodes = 0;     ///< Recorded derivations retained.
  uint64_t provenance_premises = 0;  ///< Total premises across them.
  uint64_t provenance_bytes = 0;     ///< Approximate retained bytes.

  void Reset() { *this = EvalStats(); }

  EvalStats& operator+=(const EvalStats& o) {
    tuples_considered += o.tuples_considered;
    facts_derived += o.facts_derived;
    facts_inserted += o.facts_inserted;
    rule_firings += o.rule_firings;
    iterations += o.iterations;
    strata_evaluated += o.strata_evaluated;
    id_groups_assigned += o.id_groups_assigned;
    id_tuples_materialized += o.id_tuples_materialized;
    index_probes += o.index_probes;
    index_builds += o.index_builds;
    index_cache_misses += o.index_cache_misses;
    eval_wall_ns += o.eval_wall_ns;
    provenance_nodes += o.provenance_nodes;
    provenance_premises += o.provenance_premises;
    provenance_bytes += o.provenance_bytes;
    return *this;
  }
};

}  // namespace idlog

#endif  // IDLOG_EVAL_EVAL_STATS_H_
