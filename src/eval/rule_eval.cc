#include "eval/rule_eval.h"

#include <optional>
#include <vector>

#include "common/failpoint.h"
#include "eval/builtin_eval.h"

namespace idlog {

namespace {

/// Recursive nested-loop executor over the plan steps.
class RuleExecutor {
 public:
  RuleExecutor(const RulePlan& plan, const EvalContext& ctx, int delta_step,
               Relation* out)
      : plan_(plan), ctx_(ctx), delta_step_(delta_step), out_(out),
        slots_(static_cast<size_t>(plan.num_slots)) {
    if (ctx_.provenance != nullptr) {
      premises_.resize(plan.steps.size());
    }
    // EXPLAIN ANALYZE counters: one pointer resolved here, so the
    // disabled path costs nothing per tuple. The buffer (steps+1
    // entries, sized by the engine/driver) is the worker's private one
    // when set, else the shared per-clause slot of the PlanAnalysis.
    if (ctx_.step_stats != nullptr &&
        ctx_.step_stats->steps.size() == plan.steps.size() + 1) {
      sc_ = ctx_.step_stats->steps.data();
    } else if (ctx_.analyze != nullptr && plan.clause_index >= 0 &&
               static_cast<size_t>(plan.clause_index) <
                   ctx_.analyze->rules.size()) {
      auto& steps = ctx_.analyze->rules[static_cast<size_t>(
                                            plan.clause_index)]
                        .steps;
      if (steps.size() == plan.steps.size() + 1) sc_ = steps.data();
    }
  }

  Status Run() {
    // A differentiated rule derives nothing when its delta is empty;
    // bail out before scanning any earlier (possibly large) steps.
    if (delta_step_ >= 0) {
      const PlanStep& step =
          plan_.steps[static_cast<size_t>(delta_step_)];
      const Relation* delta =
          ctx_.delta ? ctx_.delta(step.predicate) : nullptr;
      if (delta == nullptr || delta->empty()) return Status::OK();
    }
    // A partitioned task is one logical rule evaluation split across
    // K executor runs; partition 0 counts the firing for all of them,
    // so the sum over partitions equals an unpartitioned run.
    if (ctx_.stats != nullptr && ctx_.partition_index == 0) {
      ++ctx_.stats->rule_firings;
    }
    return RunStep(0);
  }

 private:
  Value Resolve(const ArgSource& src) const {
    return src.is_slot ? slots_[static_cast<size_t>(src.slot)] : src.constant;
  }

  const IndexCache* CacheFor(const Relation* rel) const {
    auto it = ctx_.index_caches->find(rel);
    if (it == ctx_.index_caches->end()) {
      it = ctx_.index_caches
               ->emplace(rel, std::make_unique<IndexCache>(rel))
               .first;
    }
    return it->second.get();
  }

  Status EmitHead() {
    IDLOG_FAILPOINT("eval.emit.insert");
    // The emit pseudo-step (index steps.size()): rows_in mirrors
    // facts_derived, rows_emitted mirrors facts_inserted.
    StepCounters* emit = sc_ != nullptr ? &sc_[plan_.steps.size()] : nullptr;
    if (emit != nullptr) ++emit->rows_in;
    Tuple t;
    t.reserve(plan_.head_args.size());
    for (const ArgSource& src : plan_.head_args) t.push_back(Resolve(src));
    if (ctx_.stats != nullptr) ++ctx_.stats->facts_derived;
    size_t prov_bytes = 0;
    if (ctx_.provenance != nullptr) {
      // Interned at first emit, not construction: the store's predicate
      // table must hold exactly the predicates with recorded nodes, in
      // first-record order, or the parallel task-order merge (which only
      // sees recorded nodes) would diverge from a serial run. Cached, so
      // later emits stay id-keyed with no string hashing/copies.
      if (head_pred_id_ == ProvenanceStore::kNoPred) {
        const size_t before = ctx_.provenance->approx_bytes();
        head_pred_id_ = ctx_.provenance->InternPredicate(plan_.head_pred);
        // First emit also pays the interning bytes, keeping governor
        // charges equal to the store's approx_bytes growth.
        prov_bytes += ctx_.provenance->approx_bytes() - before;
      }
      const size_t node_bytes = ctx_.provenance->Record(
          head_pred_id_, t, plan_.clause_index, premises_);
      prov_bytes += node_bytes;
      if (node_bytes > 0 && ctx_.prov_order != nullptr) {
        ctx_.prov_order->push_back(cur_delta_row_);
      }
    }
    if (out_->Insert(std::move(t))) {
      if (ctx_.staged_order != nullptr) {
        ctx_.staged_order->push_back(cur_delta_row_);
      }
      // Round tasks stage into a private relation; whether the tuple is
      // new globally is only known at the driver's Commit, which does
      // this accounting (rows_emitted included) there in deterministic
      // task order against the full relation. Provenance bytes are
      // likewise charged when the private store is absorbed.
      if (ctx_.defer_inserts) return Status::OK();
      if (emit != nullptr) ++emit->rows_emitted;
      if (ctx_.stats != nullptr) ++ctx_.stats->facts_inserted;
      if (ctx_.governor != nullptr) {
        return ctx_.governor->OnDerived(
            1, ApproxTupleBytes(plan_.head_args.size()) + prov_bytes);
      }
    }
    return Status::OK();
  }

  /// Partition owner of a delta row: a hash over the join-key columns
  /// (all columns when none were identified) modulo the partition
  /// count. Purely value-based, so it is identical across --jobs and
  /// independent of scheduling.
  int PartitionOf(const Tuple& row) const {
    size_t h;
    if (ctx_.partition_cols != nullptr && !ctx_.partition_cols->empty()) {
      h = ctx_.partition_cols->size();
      for (int col : *ctx_.partition_cols) {
        h = HashCombine(h, row[static_cast<size_t>(col)].Hash());
      }
    } else {
      h = TupleHash{}(row);
    }
    return static_cast<int>(h %
                            static_cast<size_t>(ctx_.partition_count));
  }

  // Verifies kKey positions against `row` (needed when scanning without
  // an index — the ablation path and the parallel worker's fallback
  // when a frozen index is unavailable; index lookups guarantee them).
  bool KeysMatch(const PlanStep& step, const Tuple& row) {
    if (step.key_cols.empty()) return true;
    for (int col : step.key_cols) {
      if (Resolve(step.sources[static_cast<size_t>(col)]) !=
          row[static_cast<size_t>(col)]) {
        return false;
      }
    }
    return true;
  }

  // Applies write/filter argument modes against `row`; returns false on
  // a filter mismatch. kKey positions are guaranteed by the index.
  bool BindRow(const PlanStep& step, const Tuple& row) {
    for (size_t pos = 0; pos < step.modes.size(); ++pos) {
      const ArgSource& src = step.sources[pos];
      switch (step.modes[pos]) {
        case ArgMode::kKey:
          break;
        case ArgMode::kWrite:
          slots_[static_cast<size_t>(src.slot)] = row[pos];
          break;
        case ArgMode::kFilter:
          if (slots_[static_cast<size_t>(src.slot)] != row[pos]) return false;
          break;
      }
    }
    return true;
  }

  Result<const Relation*> ResolveRelation(const PlanStep& step,
                                          bool use_delta) {
    if (step.is_id) {
      return ctx_.id_relation(step.predicate, step.group);
    }
    if (use_delta) {
      return ctx_.delta ? ctx_.delta(step.predicate) : nullptr;
    }
    return ctx_.full(step.predicate);
  }

  Status RunStep(size_t i) {
    if (i == plan_.steps.size()) return EmitHead();
    const PlanStep& step = plan_.steps[i];
    StepCounters* sc = sc_ != nullptr ? &sc_[i] : nullptr;
    // The partitioned step (always step 0, the delta scan) is entered
    // once per partition but represents one logical entry; partition 0
    // counts it, mirroring rule_firings.
    if (sc != nullptr && (i != 0 || ctx_.partition_index == 0)) {
      ++sc->rows_in;
    }

    switch (step.kind) {
      case PlanStep::Kind::kScan: {
        bool use_delta = static_cast<int>(i) == delta_step_;
        IDLOG_ASSIGN_OR_RETURN(const Relation* rel,
                               ResolveRelation(step, use_delta));
        if (rel == nullptr || rel->empty()) return Status::OK();

        // Resolve the index for this scan, if any. Parallel workers may
        // only read the shared cache (the driver pre-built every index
        // the round can touch); if one is somehow missing or stale they
        // fall back to the key-verified full scan below rather than
        // mutate shared state.
        const ColumnIndex* index = nullptr;
        if (ctx_.use_indexes && !step.key_cols.empty()) {
          if (ctx_.parallel_worker) {
            auto it = ctx_.index_caches->find(rel);
            if (it != ctx_.index_caches->end()) {
              index = it->second->FindFresh(step.key_cols);
            }
            if (index == nullptr) {
              if (ctx_.stats != nullptr) ++ctx_.stats->index_cache_misses;
              if (sc != nullptr) ++sc->index_misses;
            } else if (sc != nullptr) {
              ++sc->index_hits;
            }
          } else {
            IDLOG_FAILPOINT("eval.index.build");
            bool rebuilt = false;
            index = &const_cast<IndexCache*>(CacheFor(rel))
                         ->Get(step.key_cols, &rebuilt);
            if (rebuilt) {
              if (ctx_.stats != nullptr) {
                ++ctx_.stats->index_builds;
                ++ctx_.stats->index_cache_misses;
              }
              if (sc != nullptr) ++sc->index_misses;
            } else if (sc != nullptr) {
              ++sc->index_hits;
            }
          }
        }

        if (index == nullptr) {
          // Partitioned delta scan: skip rows another partition owns
          // *before* any counting or governor probing, so each delta
          // row is charged to exactly one partition and counter sums
          // over partitions reproduce the unpartitioned run. The driver
          // only partitions tasks whose delta step is step 0 with no
          // bound keys, which is precisely this loop.
          const bool partitioned =
              use_delta && i == 0 && ctx_.partition_count > 1;
          uint64_t ordinal = 0;
          for (const Tuple& row : rel->tuples()) {
            const uint64_t r = ordinal++;
            if (partitioned) {
              if (PartitionOf(row) != ctx_.partition_index) continue;
              cur_delta_row_ = r;
            }
            if (ctx_.stats != nullptr) ++ctx_.stats->tuples_considered;
            if (sc != nullptr) ++sc->rows_scanned;
            if (ctx_.governor != nullptr) {
              IDLOG_RETURN_NOT_OK(ctx_.governor->CheckPoint());
            }
            if (!KeysMatch(step, row)) continue;
            if (!BindRow(step, row)) continue;
            if (ctx_.provenance != nullptr) RecordScanPremise(i, step, row);
            if (sc != nullptr) ++sc->rows_emitted;
            IDLOG_RETURN_NOT_OK(RunStep(i + 1));
          }
          return Status::OK();
        }

        Tuple key;
        key.reserve(step.key_cols.size());
        for (int col : step.key_cols) {
          key.push_back(Resolve(step.sources[static_cast<size_t>(col)]));
        }
        if (ctx_.stats != nullptr) ++ctx_.stats->index_probes;
        if (sc != nullptr) ++sc->index_probes;
        const std::vector<size_t>* rows = index->Lookup(key);
        if (rows == nullptr) return Status::OK();
        for (size_t r : *rows) {
          if (ctx_.stats != nullptr) ++ctx_.stats->tuples_considered;
          if (sc != nullptr) ++sc->rows_scanned;
          if (ctx_.governor != nullptr) {
            IDLOG_RETURN_NOT_OK(ctx_.governor->CheckPoint());
          }
          const Tuple& row = rel->tuples()[r];
          if (!BindRow(step, row)) continue;
          if (ctx_.provenance != nullptr) RecordScanPremise(i, step, row);
          if (sc != nullptr) ++sc->rows_emitted;
          IDLOG_RETURN_NOT_OK(RunStep(i + 1));
        }
        return Status::OK();
      }

      case PlanStep::Kind::kNegation: {
        IDLOG_ASSIGN_OR_RETURN(const Relation* rel,
                               ResolveRelation(step, /*use_delta=*/false));
        Tuple probe;
        probe.reserve(step.sources.size());
        for (const ArgSource& src : step.sources) probe.push_back(Resolve(src));
        if (ctx_.stats != nullptr) ++ctx_.stats->tuples_considered;
        if (sc != nullptr) ++sc->rows_scanned;
        if (ctx_.governor != nullptr) {
          IDLOG_RETURN_NOT_OK(ctx_.governor->CheckPoint());
        }
        if (rel != nullptr && rel->Contains(probe)) return Status::OK();
        if (ctx_.provenance != nullptr) {
          Premise& p = premises_[i];
          p.kind = Premise::Kind::kNegation;
          p.predicate = step.predicate;
          p.group = step.group;
          p.tuple = std::move(probe);
        }
        if (sc != nullptr) ++sc->rows_emitted;
        return RunStep(i + 1);
      }

      case PlanStep::Kind::kBuiltin: {
        if (step.negated) {
          std::vector<Value> args;
          args.reserve(step.sources.size());
          for (const ArgSource& src : step.sources) {
            args.push_back(Resolve(src));
          }
          if (sc != nullptr) ++sc->rows_scanned;
          if (BuiltinHolds(step.builtin, args)) return Status::OK();
          if (ctx_.provenance != nullptr) {
            RecordBuiltinPremise(i, step, args, /*negated=*/true);
          }
          if (sc != nullptr) ++sc->rows_emitted;
          return RunStep(i + 1);
        }
        std::vector<std::optional<Value>> args(step.sources.size());
        for (size_t pos = 0; pos < step.sources.size(); ++pos) {
          if (step.modes[pos] == ArgMode::kKey) {
            args[pos] = Resolve(step.sources[pos]);
          }
        }
        Status inner = Status::OK();
        Status st = EnumerateBuiltin(
            step.builtin, args, [&](const std::vector<Value>& solution) {
              if (!inner.ok()) return;
              if (sc != nullptr) ++sc->rows_scanned;
              if (ctx_.governor != nullptr) {
                inner = ctx_.governor->CheckPoint();
                if (!inner.ok()) return;
              }
              // Apply writes/filters for unbound positions.
              for (size_t pos = 0; pos < step.modes.size(); ++pos) {
                const ArgSource& src = step.sources[pos];
                if (step.modes[pos] == ArgMode::kWrite) {
                  slots_[static_cast<size_t>(src.slot)] = solution[pos];
                } else if (step.modes[pos] == ArgMode::kFilter) {
                  if (slots_[static_cast<size_t>(src.slot)] !=
                      solution[pos]) {
                    return;
                  }
                }
              }
              if (ctx_.provenance != nullptr) {
                RecordBuiltinPremise(i, step, solution, /*negated=*/false);
              }
              if (sc != nullptr) ++sc->rows_emitted;
              inner = RunStep(i + 1);
            });
        IDLOG_RETURN_NOT_OK(st);
        return inner;
      }
    }
    return Status::Internal("unknown plan step kind");
  }

  void RecordScanPremise(size_t i, const PlanStep& step, const Tuple& row) {
    Premise& p = premises_[i];
    p.kind = step.is_id ? Premise::Kind::kIdFact : Premise::Kind::kFact;
    p.predicate = step.predicate;
    p.group = step.group;
    p.tuple = row;
  }

  void RecordBuiltinPremise(size_t i, const PlanStep& step,
                            const std::vector<Value>& args, bool negated) {
    static const SymbolTable& kEmptySymbols = *new SymbolTable();
    const SymbolTable& symbols =
        ctx_.symbols != nullptr ? *ctx_.symbols : kEmptySymbols;
    Premise& p = premises_[i];
    p.kind = Premise::Kind::kBuiltin;
    std::string text = negated ? "not " : "";
    text += BuiltinName(step.builtin);
    text += "(";
    for (size_t a = 0; a < args.size(); ++a) {
      if (a > 0) text += ", ";
      text += args[a].ToString(symbols);
    }
    text += ")";
    p.builtin_text = std::move(text);
  }

  const RulePlan& plan_;
  const EvalContext& ctx_;
  int delta_step_;
  Relation* out_;
  std::vector<Value> slots_;
  std::vector<Premise> premises_;
  /// Interned head predicate id (valid only when provenance is on).
  ProvenanceStore::PredId head_pred_id_ = ProvenanceStore::kNoPred;
  /// Ordinal of the delta row currently being expanded (partitioned
  /// scans only) — the order tag EmitHead records so the driver can
  /// merge partitions back into serial emission order.
  uint64_t cur_delta_row_ = 0;
  /// EXPLAIN ANALYZE counter array (steps+1 entries, last is the emit
  /// pseudo-step), or null when analysis is off — see the constructor.
  StepCounters* sc_ = nullptr;
};

}  // namespace

Status EvaluateRuleInto(const RulePlan& plan, const EvalContext& ctx,
                        int delta_step, Relation* out) {
  RuleExecutor executor(plan, ctx, delta_step, out);
  return executor.Run();
}

}  // namespace idlog
