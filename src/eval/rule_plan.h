#ifndef IDLOG_EVAL_RULE_PLAN_H_
#define IDLOG_EVAL_RULE_PLAN_H_

#include <string>
#include <vector>

#include "analysis/safety.h"
#include "ast/ast.h"
#include "common/status.h"
#include "common/value.h"

namespace idlog {

/// Where an argument value comes from at runtime.
struct ArgSource {
  bool is_slot = false;
  int slot = -1;      ///< Variable slot when is_slot.
  Value constant;     ///< Constant value otherwise.
};

/// Role of one argument position within a plan step.
enum class ArgMode : uint8_t {
  kKey,     ///< Bound before the step: part of the index key / input.
  kWrite,   ///< First occurrence of an unbound variable: receives a value.
  kFilter,  ///< Repeated unbound variable: must equal the slot just written.
};

/// One body literal compiled into an executable step, in safe order.
struct PlanStep {
  enum class Kind : uint8_t { kScan, kNegation, kBuiltin } kind =
      Kind::kScan;

  // kScan / kNegation --------------------------------------------------
  std::string predicate;       ///< Base predicate name.
  bool is_id = false;          ///< Reads the materialized ID-relation.
  std::vector<int> group;      ///< ID grouping columns (0-based).
  std::vector<int> key_cols;   ///< Column positions in kKey mode.

  // kBuiltin ------------------------------------------------------------
  BuiltinKind builtin = BuiltinKind::kEq;
  bool negated = false;        ///< Negated builtin (fully bound check).

  // Shared --------------------------------------------------------------
  std::vector<ArgMode> modes;      ///< One per argument position.
  std::vector<ArgSource> sources;  ///< Paired with modes.
};

/// A clause compiled for bottom-up evaluation: body steps in a safe
/// order plus the head constructor.
struct RulePlan {
  std::string head_pred;
  std::vector<ArgSource> head_args;
  std::vector<PlanStep> steps;
  int num_slots = 0;
  /// Index of the source clause in its program (provenance labels).
  int clause_index = -1;

  /// Indexes into `steps` of positive non-ID scans (candidates for
  /// semi-naive delta substitution).
  std::vector<int> positive_scan_steps;
};

/// Compiles `clause` using the safe order from ComputeSafeOrder.
/// Rejects choice atoms (translate DATALOG^C programs first).
Result<RulePlan> CompileRule(const Clause& clause);

}  // namespace idlog

#endif  // IDLOG_EVAL_RULE_PLAN_H_
