#include "eval/rule_plan.h"

#include <map>
#include <set>

namespace idlog {

Result<RulePlan> CompileRule(const Clause& clause) {
  IDLOG_ASSIGN_OR_RETURN(SafeOrder order,
                         ComputeSafeOrder(clause, /*allow_choice=*/false));

  RulePlan plan;
  plan.head_pred = clause.head.predicate;

  std::map<std::string, int> slot_of;
  auto slot_for = [&](const std::string& var) {
    auto it = slot_of.find(var);
    if (it != slot_of.end()) return it->second;
    int s = static_cast<int>(slot_of.size());
    slot_of[var] = s;
    return s;
  };

  std::set<std::string> bound;

  for (int body_idx : order.order) {
    const Literal& lit = clause.body[static_cast<size_t>(body_idx)];
    const Atom& atom = lit.atom;
    PlanStep step;

    if (atom.kind == AtomKind::kBuiltin) {
      step.kind = PlanStep::Kind::kBuiltin;
      step.builtin = atom.builtin;
      step.negated = lit.negated;
    } else if (atom.kind == AtomKind::kChoice) {
      return Status::Unsupported(
          "choice atom reached the rule compiler; translate the "
          "DATALOG^C program first");
    } else {
      step.kind = lit.negated ? PlanStep::Kind::kNegation
                              : PlanStep::Kind::kScan;
      step.predicate = atom.predicate;
      step.is_id = atom.kind == AtomKind::kId;
      step.group = atom.group;
    }

    // Classify argument positions. Within one atom, the first occurrence
    // of an unbound variable writes; later occurrences filter.
    std::set<std::string> written_here;
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const Term& t = atom.terms[pos];
      ArgSource src;
      ArgMode mode;
      if (t.is_constant()) {
        src.constant = t.value();
        mode = ArgMode::kKey;
      } else {
        const std::string& v = t.var_name();
        src.is_slot = true;
        src.slot = slot_for(v);
        if (bound.count(v) > 0) {
          mode = ArgMode::kKey;
        } else if (written_here.count(v) > 0) {
          mode = ArgMode::kFilter;
        } else {
          mode = ArgMode::kWrite;
          written_here.insert(v);
        }
      }
      if (mode == ArgMode::kKey &&
          step.kind != PlanStep::Kind::kBuiltin) {
        step.key_cols.push_back(static_cast<int>(pos));
      }
      step.modes.push_back(mode);
      step.sources.push_back(src);
    }

    // Negations and negated builtins never bind; everything else binds
    // its written variables for subsequent steps.
    if (!lit.negated) {
      for (const std::string& v : written_here) bound.insert(v);
    }

    if (step.kind == PlanStep::Kind::kScan && !step.is_id) {
      plan.positive_scan_steps.push_back(static_cast<int>(plan.steps.size()));
    }
    plan.steps.push_back(std::move(step));
  }

  for (const Term& t : clause.head.terms) {
    ArgSource src;
    if (t.is_constant()) {
      src.constant = t.value();
    } else {
      src.is_slot = true;
      auto it = slot_of.find(t.var_name());
      if (it == slot_of.end()) {
        return Status::Internal("unbound head variable survived safety");
      }
      src.slot = it->second;
    }
    plan.head_args.push_back(src);
  }

  plan.num_slots = static_cast<int>(slot_of.size());
  return plan;
}

}  // namespace idlog
