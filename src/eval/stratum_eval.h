#ifndef IDLOG_EVAL_STRATUM_EVAL_H_
#define IDLOG_EVAL_STRATUM_EVAL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/rule_eval.h"
#include "eval/rule_plan.h"
#include "storage/relation.h"

namespace idlog {

/// Evaluates one stratum to its least fixpoint.
///
/// `plans` are the compiled rules whose heads belong to this stratum;
/// `stratum_preds` the predicates defined here (everything else the
/// rules read is complete). `derived` maps IDB predicate names to their
/// relations, which this function extends in place. With
/// `seminaive=false` every rule re-runs in full each round (the naive
/// ablation baseline of bench E4); otherwise rounds after the first use
/// delta differentiation on intra-stratum positive scans.
Status EvaluateStratum(const std::vector<const RulePlan*>& plans,
                       const std::set<std::string>& stratum_preds,
                       const EvalContext& base_ctx,
                       std::map<std::string, Relation>* derived,
                       bool seminaive);

}  // namespace idlog

#endif  // IDLOG_EVAL_STRATUM_EVAL_H_
