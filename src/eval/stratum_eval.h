#ifndef IDLOG_EVAL_STRATUM_EVAL_H_
#define IDLOG_EVAL_STRATUM_EVAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/rule_eval.h"
#include "eval/rule_plan.h"
#include "storage/relation.h"

namespace idlog {

/// Mid-stratum continuation state for checkpoint resume: the last
/// committed round and its post-commit delta, exactly as a
/// RoundBoundaryHook observed them. EvaluateStratum picks up at round
/// `round + 1` and skips the round-0 full evaluation (it already ran
/// before the frame was cut).
struct StratumResume {
  uint64_t round = 0;
  std::map<std::string, Relation> delta;
};

/// Called at every round boundary — after Commit() moved the round's
/// new facts into the full relations and the delta was swapped — the
/// one point where derived relations, deltas and stats are mutually
/// consistent and a checkpoint frame can be cut. `fixpoint` is true on
/// the call that ends the stratum (no new facts, or no recursive rules
/// left to run). A non-OK return aborts the evaluation (a checkpoint
/// that cannot be written is an error the caller must see).
using RoundBoundaryHook = std::function<Status(
    uint64_t round, bool fixpoint,
    const std::map<std::string, Relation>& delta)>;

/// Evaluates one stratum to its least fixpoint.
///
/// `plans` are the compiled rules whose heads belong to this stratum;
/// `stratum_preds` the predicates defined here (everything else the
/// rules read is complete). `derived` maps IDB predicate names to their
/// relations, which this function extends in place. With
/// `seminaive=false` every rule re-runs in full each round (the naive
/// ablation baseline of bench E4); otherwise rounds after the first use
/// delta differentiation on intra-stratum positive scans.
///
/// `resume`, when set, continues a checkpointed fixpoint instead of
/// starting at round 0 (the caller must have restored `derived` to the
/// matching round boundary); it is consumed (the delta is moved out).
/// `on_round`, when set, observes every round boundary.
///
/// `seed_preds`, when set (requires `resume` and semi-naive mode),
/// marks the resume delta as an *incremental seed*: predicates changed
/// outside this stratum (EDB insertions, lower-stratum growth) rather
/// than a checkpointed intra-stratum delta. The first differentiated
/// round then also creates tasks for positive scans over those
/// predicates — they are not in `stratum_preds`, so the normal filter
/// would never touch their deltas — and later rounds narrow back to the
/// intra-stratum filter (external predicates are complete; only this
/// stratum's own growth keeps propagating).
Status EvaluateStratum(const std::vector<const RulePlan*>& plans,
                       const std::set<std::string>& stratum_preds,
                       const EvalContext& base_ctx,
                       std::map<std::string, Relation>* derived,
                       bool seminaive,
                       StratumResume* resume = nullptr,
                       const RoundBoundaryHook& on_round = nullptr,
                       const std::set<std::string>* seed_preds = nullptr);

}  // namespace idlog

#endif  // IDLOG_EVAL_STRATUM_EVAL_H_
