#include "eval/engine_impl.h"

#include <chrono>

#include "analysis/classification.h"
#include "analysis/safety.h"
#include "ast/printer.h"
#include "eval/stratum_eval.h"

namespace idlog {

Status EngineImpl::Prepare() {
  TraceSpan span(trace_, "program analysis", "engine");
  span.AddArg(TraceArg::Num("clauses", program_->clauses.size()));
  IDLOG_RETURN_NOT_OK(CheckProgramSafety(*program_, /*allow_choice=*/false));
  IDLOG_ASSIGN_OR_RETURN(strat_, Stratify(*program_));
  span.AddArg(TraceArg::Int("strata", strat_.num_strata));
  if (trace_ != nullptr) {
    std::string sizes;
    for (const auto& clauses : strat_.clauses_by_stratum) {
      if (!sizes.empty()) sizes += ",";
      sizes += std::to_string(clauses.size());
    }
    trace_->Instant("stratification", "engine",
                    {TraceArg::Int("strata", strat_.num_strata),
                     TraceArg::Str("clauses_per_stratum", sizes)});
  }

  plans_.clear();
  plans_.reserve(program_->clauses.size());
  for (size_t i = 0; i < program_->clauses.size(); ++i) {
    IDLOG_ASSIGN_OR_RETURN(RulePlan plan,
                           CompileRule(program_->clauses[i]));
    plan.clause_index = static_cast<int>(i);
    plans_.push_back(std::move(plan));
  }

  PredicateClassification classes = ClassifyPredicates(*program_);
  idb_preds_ = classes.output;
  tid_bounds_ = ComputeTidBounds(*program_);

  // Rewrite provenance for EXPLAIN: note, per clause, which ID-steps
  // the footnote 6/7 tid-bound pushdown will restrict at
  // materialization time.
  pushdown_notes_.Clear();
  if (tid_bound_pushdown_) {
    for (const RulePlan& plan : plans_) {
      for (const PlanStep& step : plan.steps) {
        if (!step.is_id) continue;
        auto bound =
            tid_bounds_.find(TidBoundKey{step.predicate, step.group});
        if (bound == tid_bounds_.end()) continue;
        std::string cols;
        for (int c : step.group) {
          if (!cols.empty()) cols += ",";
          cols += std::to_string(c);
        }
        pushdown_notes_.Note(
            "tid-pushdown", plan.clause_index,
            "id-relation " + step.predicate + "[" + cols +
                "] materializes only tids <= " +
                std::to_string(bound->second));
      }
    }
  }

  // Does the program read `udom` without defining or storing it?
  udom_needed_ = false;
  for (const Clause& clause : program_->clauses) {
    for (const Literal& lit : clause.body) {
      if ((lit.atom.kind == AtomKind::kOrdinary ||
           lit.atom.kind == AtomKind::kId) &&
          lit.atom.predicate == "udom" && idb_preds_.count("udom") == 0 &&
          !database_->HasRelation("udom")) {
        udom_needed_ = true;
      }
    }
  }

  prepared_ = true;
  return Status::OK();
}

const Relation* EngineImpl::FullRelation(const std::string& pred) const {
  auto it = derived_.find(pred);
  if (it != derived_.end()) return &it->second;
  Result<const Relation*> edb = database_->Get(pred);
  if (edb.ok()) return *edb;
  if (pred == "udom" && udom_needed_) return &udom_;
  return nullptr;
}

void EngineImpl::InstallResumeState(EvalResumeState state) {
  derived_ = std::move(state.derived);
  id_relations_ = std::move(state.id_relations);
  stats_ = state.stats;
  plan_analysis_ =
      state.has_analysis ? std::move(state.analysis) : PlanAnalysis();
  profile_ = state.has_profile ? std::move(state.profile) : EvalProfile();
  index_caches_.clear();
  // A snapshot cut from a provenance-enabled run carries the store;
  // adopting it keeps pre-checkpoint facts explainable after resume.
  if (state.has_provenance) {
    provenance_ = std::move(state.provenance);
  } else {
    provenance_.Clear();
  }
  pending_resume_ = std::make_unique<PendingResume>();
  pending_resume_->delta = std::move(state.delta);
  pending_resume_->stratum = state.stratum;
  pending_resume_->round = state.round;
  pending_resume_->in_stratum = state.in_stratum;
}

Status EngineImpl::Evaluate(TidAssigner* assigner, bool seminaive) {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() the engine before Evaluate()");
  }
  std::unique_ptr<PendingResume> resume = std::move(pending_resume_);
  if (resume == nullptr) {
    derived_.clear();
    id_relations_.clear();
    index_caches_.clear();
    stats_.Reset();
    provenance_.Clear();
    profile_.Clear();
    plan_analysis_.Clear();
  }

  if (explain_ && plan_analysis_.rules.size() != plans_.size()) {
    // One counter slot per plan step plus the emit pseudo-step; the
    // executor checks the size before attaching, so sizing here is what
    // arms collection for this run. A resume whose snapshot carried an
    // analysis of this program keeps the restored counters instead.
    plan_analysis_.rules.assign(plans_.size(), RuleStepStats());
    for (size_t i = 0; i < plans_.size(); ++i) {
      plan_analysis_.rules[i].steps.resize(plans_[i].steps.size() + 1);
    }
  }

  if (profiling_) {
    // Same resume contract as the analysis: a restored profile of the
    // right shape keeps its counters, only the static columns are
    // re-derived (they depend on the program text, not the run).
    if (profile_.rules.size() != plans_.size()) {
      profile_.rules.assign(plans_.size(), RuleProfile());
    }
    for (size_t i = 0; i < plans_.size(); ++i) {
      RuleProfile& rp = profile_.rules[i];
      rp.clause_index = plans_[i].clause_index;
      rp.head_pred = plans_[i].head_pred;
      rp.rule = ClauseToString(program_->clauses[i], *database_->symbols());
    }
    for (int s = 0; s < strat_.num_strata; ++s) {
      for (int clause_idx :
           strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
        profile_.rules[static_cast<size_t>(clause_idx)].stratum = s;
      }
    }
  }

  // Stamps the run's wall time into the stats, the profile and the
  // profile totals on every exit path — trips and errors included, so a
  // partial run still reports how long it ran.
  struct WallStamp {
    EngineImpl* engine;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    ~WallStamp() {
      uint64_t ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      engine->stats_.eval_wall_ns = ns;
      // Provenance footprint: logical quantities of the merged store
      // (identical across --jobs), surfaced as provenance.* metrics.
      engine->stats_.provenance_nodes = engine->provenance_.size();
      engine->stats_.provenance_premises =
          engine->provenance_.num_premises();
      engine->stats_.provenance_bytes = engine->provenance_.approx_bytes();
      if (engine->profiling_) {
        engine->profile_.wall_ns = ns;
        engine->profile_.totals = engine->stats_;
      }
    }
  } wall_stamp{this};
  TraceSpan eval_span(trace_, "evaluate", "engine");
  eval_span.AddArg(TraceArg::Int("strata", strat_.num_strata));
  eval_span.AddArg(TraceArg::Str("mode", seminaive ? "seminaive" : "naive"));

  // The implicit udom(d) facts of the database program (Section 3.1).
  if (udom_needed_) {
    udom_ = Relation(RelationType{Sort::kU});
    for (SymbolId id : database_->u_domain()) {
      udom_.Insert({Value::Symbol(id)});
    }
  }

  // Pre-create IDB relations with their inferred types so that empty
  // results still carry the right schema.
  for (const PredicateInfo& info : program_->predicates) {
    if (idb_preds_.count(info.name) > 0) {
      derived_.emplace(info.name, Relation(info.type));
    }
  }

  EvalContext ctx;
  ctx.full = [this](const std::string& pred) { return FullRelation(pred); };
  ctx.id_relation =
      [this, assigner](const std::string& pred, const std::vector<int>& group)
      -> Result<const Relation*> {
    auto key = std::make_pair(pred, group);
    auto it = id_relations_.find(key);
    if (it != id_relations_.end()) return &it->second;
    TraceSpan id_span(trace_, "id-relation " + pred, "id");
    if (trace_ != nullptr) {
      std::string cols;
      for (int c : group) {
        if (!cols.empty()) cols += ",";
        cols += std::to_string(c);
      }
      id_span.AddArg(TraceArg::Str("group_by", cols));
    }
    // Materialize now: stratification guarantees the base is complete.
    const Relation* base = FullRelation(pred);
    Relation empty_base(RelationType{});
    if (base == nullptr) {
      // Unknown relation: the ID-relation of the empty relation.
      int idx = program_->FindPredicate(pred);
      if (idx >= 0) {
        empty_base = Relation(
            program_->predicates[static_cast<size_t>(idx)].type);
      }
      base = &empty_base;
    }
    int64_t max_tid = -1;
    if (tid_bound_pushdown_) {
      auto bound = tid_bounds_.find(TidBoundKey{pred, group});
      if (bound != tid_bounds_.end()) max_tid = bound->second;
    }
    size_t num_groups = 0;
    IDLOG_ASSIGN_OR_RETURN(
        Relation id_rel,
        BuildIdRelation(pred, *base, group, assigner, max_tid,
                        &num_groups));
    stats_.id_groups_assigned += num_groups;
    stats_.id_tuples_materialized += id_rel.size();
    id_span.AddArg(TraceArg::Num("groups", num_groups));
    id_span.AddArg(TraceArg::Num("tuples", id_rel.size()));
    id_span.AddArg(TraceArg::Int("max_tid", max_tid));
    if (governor_ != nullptr) {
      size_t arity = id_rel.type().size();
      IDLOG_RETURN_NOT_OK(governor_->OnDerived(
          id_rel.size(), id_rel.size() * ApproxTupleBytes(arity)));
    }
    auto [pos, inserted] =
        id_relations_.emplace(std::move(key), std::move(id_rel));
    (void)inserted;
    return &pos->second;
  };
  ctx.index_caches = &index_caches_;
  ctx.stats = &stats_;
  ctx.use_indexes = use_indexes_;
  ctx.governor = governor_;
  ctx.trace = trace_;
  ctx.profile = profiling_ ? &profile_ : nullptr;
  ctx.analyze = explain_ ? &plan_analysis_ : nullptr;
  // Parallel stratum execution. Provenance-enabled runs parallelize
  // too: workers record into private per-task stores that the round
  // merge absorbs in serial task order (see stratum_eval.cc).
  if (threads_ > 1) {
    if (pool_ == nullptr || pool_->size() != threads_) {
      pool_ = std::make_unique<ThreadPool>(threads_);
    }
    ctx.pool = pool_.get();
  } else {
    pool_.reset();
  }
  ctx.delta_partitions = delta_partitions_;
  // A shared governor can outlive this engine (enumerators create
  // stack-local engines against one long-lived governor); the guard
  // withdraws our stats_ pointer and labels on every exit path so a
  // later trip never dereferences a destroyed engine.
  GovernorScope governor_scope(governor_, &stats_, "stratum fixpoint");
  if (provenance_enabled_) {
    ctx.provenance = &provenance_;
    ctx.symbols = database_->symbols();
  }

  const int start_stratum = resume != nullptr ? resume->stratum : 0;
  for (int s = start_stratum; s < strat_.num_strata; ++s) {
    // A mid-stratum resume re-enters the checkpointed stratum: its
    // entry was already counted before the frame was cut, and its
    // pre-checkpoint rounds (0..round) belong to this stratum's profile
    // row even though this Evaluate() did not run them.
    const bool mid_stratum_resume =
        resume != nullptr && resume->in_stratum && s == resume->stratum;
    if (!mid_stratum_resume) ++stats_.strata_evaluated;
    ctx.stratum = s;
    TraceSpan stratum_span(trace_, "stratum " + std::to_string(s),
                           "stratum");
    uint64_t rounds_before = stats_.iterations;
    if (mid_stratum_resume) rounds_before -= resume->round + 1;
    const uint64_t inserted_before = stats_.facts_inserted;
    auto stratum_t0 = std::chrono::steady_clock::now();
    if (governor_ != nullptr) {
      governor_->set_stratum(s);
      IDLOG_RETURN_NOT_OK(governor_->CheckPoint(0));
    }
    // Materialize the ID-relations this stratum reads, in deterministic
    // clause/step order (ScriptedTidAssigner relies on this order).
    for (int clause_idx : strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
      const RulePlan& plan = plans_[static_cast<size_t>(clause_idx)];
      for (const PlanStep& step : plan.steps) {
        if ((step.kind == PlanStep::Kind::kScan ||
             step.kind == PlanStep::Kind::kNegation) &&
            step.is_id) {
          IDLOG_ASSIGN_OR_RETURN(const Relation* ignored,
                                 ctx.id_relation(step.predicate, step.group));
          (void)ignored;
        }
      }
    }

    std::vector<const RulePlan*> stratum_plans;
    std::set<std::string> stratum_preds;
    for (int clause_idx : strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
      stratum_plans.push_back(&plans_[static_cast<size_t>(clause_idx)]);
      stratum_preds.insert(plans_[static_cast<size_t>(clause_idx)].head_pred);
    }
    // The checkpointer sees every round boundary as a resumable frame:
    // mid-stratum boundaries carry (stratum, round, delta); the
    // fixpoint boundary advances to the next stratum (and marks the
    // whole run complete after the last one).
    RoundBoundaryHook on_round = nullptr;
    if (checkpoint_hook_ != nullptr) {
      on_round = [this, s](uint64_t round, bool fixpoint,
                           const std::map<std::string, Relation>& delta)
          -> Status {
        FixpointFrame frame;
        if (fixpoint) {
          frame.stratum = s + 1;
          frame.completed = s + 1 == strat_.num_strata;
        } else {
          frame.stratum = s;
          frame.round = round;
          frame.in_stratum = true;
        }
        static const std::map<std::string, Relation> kNoDelta;
        return checkpoint_hook_(frame, fixpoint ? kNoDelta : delta);
      };
    }

    StratumResume stratum_resume;
    if (mid_stratum_resume) {
      stratum_resume.round = resume->round;
      stratum_resume.delta = std::move(resume->delta);
    }
    Status stratum_status = Status::OK();
    if (!stratum_plans.empty()) {
      stratum_status = EvaluateStratum(
          stratum_plans, stratum_preds, ctx, &derived_, seminaive,
          mid_stratum_resume ? &stratum_resume : nullptr, on_round);
    }
    if (profiling_) {
      StratumProfile sp;
      sp.index = s;
      sp.rules = stratum_plans.size();
      sp.rounds = stats_.iterations - rounds_before;
      sp.wall_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - stratum_t0)
              .count());
      profile_.strata.push_back(sp);
    }
    stratum_span.AddArg(TraceArg::Num("rules", stratum_plans.size()));
    stratum_span.AddArg(
        TraceArg::Num("rounds", stats_.iterations - rounds_before));
    stratum_span.AddArg(
        TraceArg::Num("inserted", stats_.facts_inserted - inserted_before));
    IDLOG_RETURN_NOT_OK(stratum_status);
  }
  return Status::OK();
}

Status EngineImpl::EvaluateIncremental(
    const std::map<std::string, Relation>& changed, bool seminaive) {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() the engine before Evaluate()");
  }
  if (changed.empty()) return Status::OK();
  if (!seminaive) {
    return Status::Unsupported(
        "incremental re-derivation needs the semi-naive fixpoint; naive "
        "mode re-runs rules in full");
  }
  if (udom_needed_) {
    return Status::Unsupported(
        "the program reads the synthesized u-domain, which inserted "
        "constants extend; re-evaluate in full");
  }

  // Taint closure over positive non-ID scans: every predicate whose
  // contents can grow because of `changed`. ID-scans and negations do
  // not propagate here because reading a tainted predicate through
  // either is grounds for refusal below.
  std::set<std::string> tainted;
  for (const auto& [pred, rel] : changed) {
    (void)rel;
    if (idb_preds_.count(pred) > 0) {
      return Status::Unsupported(
          "'" + pred +
          "' is a derived predicate; EDB changes to it are shadowed");
    }
    tainted.insert(pred);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const RulePlan& plan : plans_) {
      if (tainted.count(plan.head_pred) > 0) continue;
      for (int step : plan.positive_scan_steps) {
        if (tainted.count(
                plan.steps[static_cast<size_t>(step)].predicate) > 0) {
          tainted.insert(plan.head_pred);
          grew = true;
          break;
        }
      }
    }
  }
  for (const RulePlan& plan : plans_) {
    for (const PlanStep& step : plan.steps) {
      if (step.kind == PlanStep::Kind::kBuiltin) continue;
      if (tainted.count(step.predicate) == 0) continue;
      if (step.kind == PlanStep::Kind::kNegation) {
        return Status::Unsupported(
            "a rule negates '" + step.predicate +
            "', which the change can grow; growth under negation is not "
            "monotone");
      }
      if (step.is_id) {
        return Status::Unsupported(
            "a rule reads the ID-relation of '" + step.predicate +
            "', which the change can grow; its tid assignment must be "
            "re-materialized");
      }
    }
  }

  struct WallStamp {
    EngineImpl* engine;
    uint64_t base_ns;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    ~WallStamp() {
      uint64_t ns =
          base_ns + static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
      engine->stats_.eval_wall_ns = ns;
      engine->stats_.provenance_nodes = engine->provenance_.size();
      engine->stats_.provenance_premises =
          engine->provenance_.num_premises();
      engine->stats_.provenance_bytes = engine->provenance_.approx_bytes();
      if (engine->profiling_) {
        engine->profile_.wall_ns = ns;
        engine->profile_.totals = engine->stats_;
      }
    }
  } wall_stamp{this, stats_.eval_wall_ns};
  TraceSpan eval_span(trace_, "evaluate incremental", "engine");
  eval_span.AddArg(TraceArg::Num("changed_preds", changed.size()));

  EvalContext ctx;
  ctx.full = [this](const std::string& pred) { return FullRelation(pred); };
  // Lookup-only: a completed run materialized (at each stratum's entry)
  // every ID-relation its plans read, and the refusal above rules out
  // tainted bases, so a miss is a broken invariant rather than work.
  ctx.id_relation = [this](const std::string& pred,
                           const std::vector<int>& group)
      -> Result<const Relation*> {
    auto it = id_relations_.find(std::make_pair(pred, group));
    if (it == id_relations_.end()) {
      return Status::Internal("ID-relation '" + pred +
                              "' missing from the evaluated state");
    }
    return &it->second;
  };
  ctx.index_caches = &index_caches_;
  ctx.stats = &stats_;
  ctx.use_indexes = use_indexes_;
  ctx.governor = governor_;
  ctx.trace = trace_;
  ctx.profile = profiling_ ? &profile_ : nullptr;
  // EXPLAIN ANALYZE counters keep describing the last full run: the
  // per-stratum round log is keyed by stratum index and an incremental
  // pass would append duplicate entries.
  ctx.analyze = nullptr;
  if (threads_ > 1) {
    if (pool_ == nullptr || pool_->size() != threads_) {
      pool_ = std::make_unique<ThreadPool>(threads_);
    }
    ctx.pool = pool_.get();
  } else {
    pool_.reset();
  }
  ctx.delta_partitions = delta_partitions_;
  GovernorScope governor_scope(governor_, &stats_, "incremental fixpoint");
  if (provenance_enabled_) {
    ctx.provenance = &provenance_;
    ctx.symbols = database_->symbols();
  }

  // `seed` accumulates every externally-visible change as strata run:
  // the EDB insertions up front, then each stratum's own growth, so a
  // later stratum differentiates on everything below it at once.
  std::map<std::string, Relation> seed = changed;
  std::set<std::string> seed_preds = tainted;  // includes downstream IDBs
  for (int s = 0; s < strat_.num_strata; ++s) {
    std::vector<const RulePlan*> stratum_plans;
    std::set<std::string> stratum_preds;
    bool touches_seed = false;
    for (int clause_idx : strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
      const RulePlan& plan = plans_[static_cast<size_t>(clause_idx)];
      stratum_plans.push_back(&plan);
      stratum_preds.insert(plan.head_pred);
      for (int step : plan.positive_scan_steps) {
        if (seed.count(plan.steps[static_cast<size_t>(step)].predicate) >
            0) {
          touches_seed = true;
        }
      }
    }
    // A stratum none of whose rules scans a changed predicate derives
    // exactly what it already derived; skip it without charging rounds.
    if (!touches_seed) continue;
    ++stats_.strata_evaluated;
    ctx.stratum = s;
    TraceSpan stratum_span(trace_,
                           "incremental stratum " + std::to_string(s),
                           "stratum");
    uint64_t rounds_before = stats_.iterations;
    const uint64_t inserted_before = stats_.facts_inserted;
    auto stratum_t0 = std::chrono::steady_clock::now();
    if (governor_ != nullptr) {
      governor_->set_stratum(s);
      IDLOG_RETURN_NOT_OK(governor_->CheckPoint(0));
    }
    // Collect this stratum's growth into the seed for the strata above.
    RoundBoundaryHook accumulate =
        [&seed, &seed_preds](uint64_t round, bool fixpoint,
                             const std::map<std::string, Relation>& delta)
        -> Status {
      (void)round;
      (void)fixpoint;
      for (const auto& [pred, rel] : delta) {
        Relation& acc =
            seed.try_emplace(pred, Relation(rel.type())).first->second;
        for (const Tuple& t : rel.tuples()) acc.Insert(t);
        seed_preds.insert(pred);
      }
      return Status::OK();
    };
    StratumResume seeded;
    seeded.round = 0;  // Round 0 is the completed run; start at round 1.
    seeded.delta = seed;
    Status stratum_status =
        EvaluateStratum(stratum_plans, stratum_preds, ctx, &derived_,
                        /*seminaive=*/true, &seeded, accumulate,
                        &seed_preds);
    if (profiling_) {
      // Fold into the stratum's existing profile row (metrics are keyed
      // by stratum index; a duplicate row would collide).
      uint64_t wall = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - stratum_t0)
              .count());
      bool found = false;
      for (StratumProfile& sp : profile_.strata) {
        if (sp.index == s) {
          sp.rounds += stats_.iterations - rounds_before;
          sp.wall_ns += wall;
          found = true;
          break;
        }
      }
      if (!found) {
        StratumProfile sp;
        sp.index = s;
        sp.rules = stratum_plans.size();
        sp.rounds = stats_.iterations - rounds_before;
        sp.wall_ns = wall;
        profile_.strata.push_back(sp);
      }
    }
    stratum_span.AddArg(TraceArg::Num("rules", stratum_plans.size()));
    stratum_span.AddArg(
        TraceArg::Num("rounds", stats_.iterations - rounds_before));
    stratum_span.AddArg(
        TraceArg::Num("inserted", stats_.facts_inserted - inserted_before));
    IDLOG_RETURN_NOT_OK(stratum_status);
  }
  return Status::OK();
}

Result<const Relation*> EngineImpl::RelationOf(const std::string& pred) const {
  const Relation* rel = FullRelation(pred);
  if (rel == nullptr) {
    return Status::NotFound("no relation computed or stored for '" + pred +
                            "'");
  }
  return rel;
}

Result<bool> EngineImpl::VerifyModel() {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() and Evaluate() first");
  }
  EvalContext ctx;
  ctx.full = [this](const std::string& pred) { return FullRelation(pred); };
  ctx.id_relation = [this](const std::string& pred,
                           const std::vector<int>& group)
      -> Result<const Relation*> {
    auto it = id_relations_.find(std::make_pair(pred, group));
    if (it == id_relations_.end()) {
      return Status::Internal("ID-relation '" + pred +
                              "' missing from the evaluated state");
    }
    return &it->second;
  };
  ctx.index_caches = &index_caches_;
  ctx.stats = nullptr;

  for (const RulePlan& plan : plans_) {
    const Relation* current = FullRelation(plan.head_pred);
    if (current == nullptr) return false;
    Relation derived(current->type());
    IDLOG_RETURN_NOT_OK(
        EvaluateRuleInto(plan, ctx, /*delta_step=*/-1, &derived));
    for (const Tuple& t : derived.tuples()) {
      if (!current->Contains(t)) return false;
    }
  }
  return true;
}

Result<std::string> EngineImpl::RenderExplain(bool analyze,
                                              bool json) const {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() the engine before EXPLAIN");
  }
  RewriteLog merged = rewrite_log_;
  merged.Append(pushdown_notes_);

  std::vector<int> stratum_of(plans_.size(), -1);
  for (int s = 0; s < strat_.num_strata; ++s) {
    for (int clause_idx :
         strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
      stratum_of[static_cast<size_t>(clause_idx)] = s;
    }
  }

  ExplainDoc doc;
  doc.use_indexes = use_indexes_;
  doc.rewrites = &merged;
  doc.rules.reserve(plans_.size());
  for (size_t i = 0; i < plans_.size(); ++i) {
    ExplainRule rule;
    rule.clause_index = plans_[i].clause_index;
    rule.stratum = stratum_of[i];
    rule.text = ClauseToString(program_->clauses[i], *database_->symbols());
    rule.plan = &plans_[i];
    doc.rules.push_back(std::move(rule));
  }
  if (analyze) {
    doc.analysis = &plan_analysis_;
    doc.totals = &stats_;
  }
  return json ? RenderExplainJson(doc) : RenderExplainText(doc);
}

Result<std::string> EngineImpl::ExplainPlanText(bool analyze) const {
  return RenderExplain(analyze, /*json=*/false);
}

Result<std::string> EngineImpl::ExplainPlanJson(bool analyze) const {
  return RenderExplain(analyze, /*json=*/true);
}

Result<const Relation*> EngineImpl::IdRelationOf(
    const std::string& pred, const std::vector<int>& group) const {
  auto it = id_relations_.find(std::make_pair(pred, group));
  if (it == id_relations_.end()) {
    return Status::NotFound("ID-relation of '" + pred +
                            "' was not materialized in the last run");
  }
  return &it->second;
}

}  // namespace idlog
