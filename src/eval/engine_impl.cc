#include "eval/engine_impl.h"

#include "analysis/classification.h"
#include "analysis/safety.h"
#include "eval/stratum_eval.h"

namespace idlog {

Status EngineImpl::Prepare() {
  IDLOG_RETURN_NOT_OK(CheckProgramSafety(*program_, /*allow_choice=*/false));
  IDLOG_ASSIGN_OR_RETURN(strat_, Stratify(*program_));

  plans_.clear();
  plans_.reserve(program_->clauses.size());
  for (size_t i = 0; i < program_->clauses.size(); ++i) {
    IDLOG_ASSIGN_OR_RETURN(RulePlan plan,
                           CompileRule(program_->clauses[i]));
    plan.clause_index = static_cast<int>(i);
    plans_.push_back(std::move(plan));
  }

  PredicateClassification classes = ClassifyPredicates(*program_);
  idb_preds_ = classes.output;
  tid_bounds_ = ComputeTidBounds(*program_);

  // Does the program read `udom` without defining or storing it?
  udom_needed_ = false;
  for (const Clause& clause : program_->clauses) {
    for (const Literal& lit : clause.body) {
      if ((lit.atom.kind == AtomKind::kOrdinary ||
           lit.atom.kind == AtomKind::kId) &&
          lit.atom.predicate == "udom" && idb_preds_.count("udom") == 0 &&
          !database_->HasRelation("udom")) {
        udom_needed_ = true;
      }
    }
  }

  prepared_ = true;
  return Status::OK();
}

const Relation* EngineImpl::FullRelation(const std::string& pred) const {
  auto it = derived_.find(pred);
  if (it != derived_.end()) return &it->second;
  Result<const Relation*> edb = database_->Get(pred);
  if (edb.ok()) return *edb;
  if (pred == "udom" && udom_needed_) return &udom_;
  return nullptr;
}

Status EngineImpl::Evaluate(TidAssigner* assigner, bool seminaive) {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() the engine before Evaluate()");
  }
  derived_.clear();
  id_relations_.clear();
  index_caches_.clear();
  stats_.Reset();
  provenance_.Clear();

  // The implicit udom(d) facts of the database program (Section 3.1).
  if (udom_needed_) {
    udom_ = Relation(RelationType{Sort::kU});
    for (SymbolId id : database_->u_domain()) {
      udom_.Insert({Value::Symbol(id)});
    }
  }

  // Pre-create IDB relations with their inferred types so that empty
  // results still carry the right schema.
  for (const PredicateInfo& info : program_->predicates) {
    if (idb_preds_.count(info.name) > 0) {
      derived_.emplace(info.name, Relation(info.type));
    }
  }

  EvalContext ctx;
  ctx.full = [this](const std::string& pred) { return FullRelation(pred); };
  ctx.id_relation =
      [this, assigner](const std::string& pred, const std::vector<int>& group)
      -> Result<const Relation*> {
    auto key = std::make_pair(pred, group);
    auto it = id_relations_.find(key);
    if (it != id_relations_.end()) return &it->second;
    // Materialize now: stratification guarantees the base is complete.
    const Relation* base = FullRelation(pred);
    Relation empty_base(RelationType{});
    if (base == nullptr) {
      // Unknown relation: the ID-relation of the empty relation.
      int idx = program_->FindPredicate(pred);
      if (idx >= 0) {
        empty_base = Relation(
            program_->predicates[static_cast<size_t>(idx)].type);
      }
      base = &empty_base;
    }
    int64_t max_tid = -1;
    if (tid_bound_pushdown_) {
      auto bound = tid_bounds_.find(TidBoundKey{pred, group});
      if (bound != tid_bounds_.end()) max_tid = bound->second;
    }
    size_t num_groups = 0;
    IDLOG_ASSIGN_OR_RETURN(
        Relation id_rel,
        BuildIdRelation(pred, *base, group, assigner, max_tid,
                        &num_groups));
    stats_.id_groups_assigned += num_groups;
    stats_.id_tuples_materialized += id_rel.size();
    if (governor_ != nullptr) {
      size_t arity = id_rel.type().size();
      IDLOG_RETURN_NOT_OK(governor_->OnDerived(
          id_rel.size(), id_rel.size() * ApproxTupleBytes(arity)));
    }
    auto [pos, inserted] =
        id_relations_.emplace(std::move(key), std::move(id_rel));
    (void)inserted;
    return &pos->second;
  };
  ctx.index_caches = &index_caches_;
  ctx.stats = &stats_;
  ctx.use_indexes = use_indexes_;
  ctx.governor = governor_;
  // A shared governor can outlive this engine (enumerators create
  // stack-local engines against one long-lived governor); the guard
  // withdraws our stats_ pointer and labels on every exit path so a
  // later trip never dereferences a destroyed engine.
  GovernorScope governor_scope(governor_, &stats_, "stratum fixpoint");
  if (provenance_enabled_) {
    ctx.provenance = &provenance_;
    ctx.symbols = database_->symbols();
  }

  for (int s = 0; s < strat_.num_strata; ++s) {
    if (governor_ != nullptr) {
      governor_->set_stratum(s);
      IDLOG_RETURN_NOT_OK(governor_->CheckPoint(0));
    }
    // Materialize the ID-relations this stratum reads, in deterministic
    // clause/step order (ScriptedTidAssigner relies on this order).
    for (int clause_idx : strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
      const RulePlan& plan = plans_[static_cast<size_t>(clause_idx)];
      for (const PlanStep& step : plan.steps) {
        if ((step.kind == PlanStep::Kind::kScan ||
             step.kind == PlanStep::Kind::kNegation) &&
            step.is_id) {
          IDLOG_ASSIGN_OR_RETURN(const Relation* ignored,
                                 ctx.id_relation(step.predicate, step.group));
          (void)ignored;
        }
      }
    }

    std::vector<const RulePlan*> stratum_plans;
    std::set<std::string> stratum_preds;
    for (int clause_idx : strat_.clauses_by_stratum[static_cast<size_t>(s)]) {
      stratum_plans.push_back(&plans_[static_cast<size_t>(clause_idx)]);
      stratum_preds.insert(plans_[static_cast<size_t>(clause_idx)].head_pred);
    }
    if (stratum_plans.empty()) continue;
    IDLOG_RETURN_NOT_OK(EvaluateStratum(stratum_plans, stratum_preds, ctx,
                                        &derived_, seminaive));
  }
  return Status::OK();
}

Result<const Relation*> EngineImpl::RelationOf(const std::string& pred) const {
  const Relation* rel = FullRelation(pred);
  if (rel == nullptr) {
    return Status::NotFound("no relation computed or stored for '" + pred +
                            "'");
  }
  return rel;
}

Result<bool> EngineImpl::VerifyModel() {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() and Evaluate() first");
  }
  EvalContext ctx;
  ctx.full = [this](const std::string& pred) { return FullRelation(pred); };
  ctx.id_relation = [this](const std::string& pred,
                           const std::vector<int>& group)
      -> Result<const Relation*> {
    auto it = id_relations_.find(std::make_pair(pred, group));
    if (it == id_relations_.end()) {
      return Status::Internal("ID-relation '" + pred +
                              "' missing from the evaluated state");
    }
    return &it->second;
  };
  ctx.index_caches = &index_caches_;
  ctx.stats = nullptr;

  for (const RulePlan& plan : plans_) {
    const Relation* current = FullRelation(plan.head_pred);
    if (current == nullptr) return false;
    Relation derived(current->type());
    IDLOG_RETURN_NOT_OK(
        EvaluateRuleInto(plan, ctx, /*delta_step=*/-1, &derived));
    for (const Tuple& t : derived.tuples()) {
      if (!current->Contains(t)) return false;
    }
  }
  return true;
}

Result<const Relation*> EngineImpl::IdRelationOf(
    const std::string& pred, const std::vector<int>& group) const {
  auto it = id_relations_.find(std::make_pair(pred, group));
  if (it == id_relations_.end()) {
    return Status::NotFound("ID-relation of '" + pred +
                            "' was not materialized in the last run");
  }
  return &it->second;
}

}  // namespace idlog
