#include "eval/builtin_eval.h"

#include <limits>

namespace idlog {

namespace {

bool BothNumbers(const Value& a, const Value& b) {
  return a.is_number() && b.is_number();
}

}  // namespace

bool BuiltinHolds(BuiltinKind kind, const std::vector<Value>& args) {
  switch (kind) {
    case BuiltinKind::kEq:
      return args[0] == args[1];
    case BuiltinKind::kNe:
      return args[0] != args[1];
    case BuiltinKind::kLt:
      return BothNumbers(args[0], args[1]) && args[0].number() < args[1].number();
    case BuiltinKind::kLe:
      return BothNumbers(args[0], args[1]) && args[0].number() <= args[1].number();
    case BuiltinKind::kGt:
      return BothNumbers(args[0], args[1]) && args[0].number() > args[1].number();
    case BuiltinKind::kGe:
      return BothNumbers(args[0], args[1]) && args[0].number() >= args[1].number();
    case BuiltinKind::kSucc:
      return BothNumbers(args[0], args[1]) &&
             args[0].number() + 1 == args[1].number();
    case BuiltinKind::kAdd:
      return args[0].is_number() && args[1].is_number() &&
             args[2].is_number() &&
             args[0].number() + args[1].number() == args[2].number();
    case BuiltinKind::kSub:
      return args[0].is_number() && args[1].is_number() &&
             args[2].is_number() && args[0].number() >= args[1].number() &&
             args[0].number() - args[1].number() == args[2].number();
    case BuiltinKind::kMul:
      return args[0].is_number() && args[1].is_number() &&
             args[2].is_number() &&
             args[0].number() * args[1].number() == args[2].number();
    case BuiltinKind::kDiv:
      return args[0].is_number() && args[1].is_number() &&
             args[2].is_number() && args[1].number() > 0 &&
             args[0].number() / args[1].number() == args[2].number();
  }
  return false;
}

Status EnumerateBuiltin(BuiltinKind kind,
                        const std::vector<std::optional<Value>>& args,
                        const BuiltinSolutionFn& on_solution) {
  auto bound = [&](size_t i) { return args[i].has_value(); };
  auto num = [&](size_t i) { return args[i]->number(); };
  auto is_nat = [&](size_t i) {
    return args[i]->is_number() && num(i) >= 0;
  };
  auto emit = [&](std::vector<Value> vals) {
    if (BuiltinHolds(kind, vals)) on_solution(vals);
  };

  constexpr int64_t kMax = std::numeric_limits<int64_t>::max() / 2;

  switch (kind) {
    case BuiltinKind::kEq: {
      if (bound(0) && bound(1)) {
        emit({*args[0], *args[1]});
      } else if (bound(0)) {
        on_solution({*args[0], *args[0]});
      } else if (bound(1)) {
        on_solution({*args[1], *args[1]});
      } else {
        return Status::UnsafeProgram("unbound '='");
      }
      return Status::OK();
    }
    case BuiltinKind::kNe:
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe: {
      if (!bound(0) || !bound(1)) {
        return Status::UnsafeProgram("unbound comparison");
      }
      emit({*args[0], *args[1]});
      return Status::OK();
    }
    case BuiltinKind::kSucc: {
      if (bound(0) && bound(1)) {
        emit({*args[0], *args[1]});
      } else if (bound(0)) {
        if (!is_nat(0) || num(0) >= kMax) return Status::OK();
        on_solution({*args[0], Value::Number(num(0) + 1)});
      } else if (bound(1)) {
        if (!args[1]->is_number() || num(1) <= 0) return Status::OK();
        on_solution({Value::Number(num(1) - 1), *args[1]});
      } else {
        return Status::UnsafeProgram("unbound succ");
      }
      return Status::OK();
    }
    case BuiltinKind::kAdd: {
      if (bound(0) && bound(1) && bound(2)) {
        emit({*args[0], *args[1], *args[2]});
      } else if (bound(0) && bound(1)) {
        if (!is_nat(0) || !is_nat(1) || num(0) > kMax - num(1)) {
          return Status::OK();
        }
        on_solution({*args[0], *args[1], Value::Number(num(0) + num(1))});
      } else if (bound(0) && bound(2)) {
        if (!is_nat(0) || !is_nat(2) || num(2) < num(0)) return Status::OK();
        on_solution({*args[0], Value::Number(num(2) - num(0)), *args[2]});
      } else if (bound(1) && bound(2)) {
        if (!is_nat(1) || !is_nat(2) || num(2) < num(1)) return Status::OK();
        on_solution({Value::Number(num(2) - num(1)), *args[1], *args[2]});
      } else if (bound(2)) {
        // The paper's nnb case: finitely many decompositions of C.
        if (!is_nat(2)) return Status::OK();
        for (int64_t a = 0; a <= num(2); ++a) {
          on_solution({Value::Number(a), Value::Number(num(2) - a), *args[2]});
        }
      } else {
        return Status::UnsafeProgram("unsafe '+' binding pattern");
      }
      return Status::OK();
    }
    case BuiltinKind::kSub: {
      // A - B = C over naturals.
      if (bound(0) && bound(1) && bound(2)) {
        emit({*args[0], *args[1], *args[2]});
      } else if (bound(0) && bound(1)) {
        if (!is_nat(0) || !is_nat(1) || num(0) < num(1)) return Status::OK();
        on_solution({*args[0], *args[1], Value::Number(num(0) - num(1))});
      } else if (bound(0) && bound(2)) {
        if (!is_nat(0) || !is_nat(2) || num(0) < num(2)) return Status::OK();
        on_solution({*args[0], Value::Number(num(0) - num(2)), *args[2]});
      } else if (bound(1) && bound(2)) {
        if (!is_nat(1) || !is_nat(2) || num(1) > kMax - num(2)) {
          return Status::OK();
        }
        on_solution({Value::Number(num(1) + num(2)), *args[1], *args[2]});
      } else if (bound(0)) {
        // bnn: B ranges over 0..A.
        if (!is_nat(0)) return Status::OK();
        for (int64_t b = 0; b <= num(0); ++b) {
          on_solution({*args[0], Value::Number(b), Value::Number(num(0) - b)});
        }
      } else {
        return Status::UnsafeProgram("unsafe '-' binding pattern");
      }
      return Status::OK();
    }
    case BuiltinKind::kMul: {
      if (!bound(0) || !bound(1)) {
        return Status::UnsafeProgram("unsafe '*' binding pattern");
      }
      if (bound(2)) {
        emit({*args[0], *args[1], *args[2]});
        return Status::OK();
      }
      if (!is_nat(0) || !is_nat(1)) return Status::OK();
      if (num(0) != 0 && num(1) > kMax / num(0)) return Status::OK();
      on_solution({*args[0], *args[1], Value::Number(num(0) * num(1))});
      return Status::OK();
    }
    case BuiltinKind::kDiv: {
      if (!bound(0) || !bound(1)) {
        return Status::UnsafeProgram("unsafe '/' binding pattern");
      }
      if (bound(2)) {
        emit({*args[0], *args[1], *args[2]});
        return Status::OK();
      }
      if (!is_nat(0) || !args[1]->is_number() || num(1) <= 0) {
        return Status::OK();
      }
      on_solution({*args[0], *args[1], Value::Number(num(0) / num(1))});
      return Status::OK();
    }
  }
  return Status::Internal("unknown builtin");
}

}  // namespace idlog
