#include "eval/stratum_eval.h"

#include <chrono>

namespace idlog {

namespace {

/// EvaluateRuleInto with per-rule attribution: when a profile or trace
/// sink is attached, brackets the call with a monotonic-clock read and
/// an EvalStats snapshot and attributes the deltas to the plan's
/// clause. The counters are deltas of the shared ctx.stats, so summing
/// a column over all rules reproduces the engine total exactly. With
/// both observers null this is a tail call into EvaluateRuleInto.
Status ObservedRuleEval(const RulePlan& plan, const EvalContext& ctx,
                        int delta_step, uint64_t round, Relation* out) {
  if (ctx.profile == nullptr && ctx.trace == nullptr) {
    return EvaluateRuleInto(plan, ctx, delta_step, out);
  }
  const EvalStats before =
      ctx.stats != nullptr ? *ctx.stats : EvalStats();
  uint64_t start_us = ctx.trace != nullptr ? ctx.trace->NowUs() : 0;
  auto t0 = std::chrono::steady_clock::now();
  Status st = EvaluateRuleInto(plan, ctx, delta_step, out);
  uint64_t self_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  EvalStats delta;
  if (ctx.stats != nullptr) {
    delta.tuples_considered =
        ctx.stats->tuples_considered - before.tuples_considered;
    delta.facts_derived = ctx.stats->facts_derived - before.facts_derived;
    delta.facts_inserted =
        ctx.stats->facts_inserted - before.facts_inserted;
    delta.rule_firings = ctx.stats->rule_firings - before.rule_firings;
  }

  if (ctx.profile != nullptr && plan.clause_index >= 0 &&
      static_cast<size_t>(plan.clause_index) < ctx.profile->rules.size()) {
    RuleProfile& rp =
        ctx.profile->rules[static_cast<size_t>(plan.clause_index)];
    ++rp.evals;
    rp.firings += delta.rule_firings;
    rp.tuples_considered += delta.tuples_considered;
    rp.facts_derived += delta.facts_derived;
    rp.facts_inserted += delta.facts_inserted;
    rp.self_ns += self_ns;
  }

  if (ctx.trace != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg::Int("clause", plan.clause_index));
    args.push_back(TraceArg::Int("stratum", ctx.stratum));
    args.push_back(TraceArg::Num("round", round));
    if (delta_step >= 0) {
      const std::string& pred =
          plan.steps[static_cast<size_t>(delta_step)].predicate;
      const Relation* d = ctx.delta ? ctx.delta(pred) : nullptr;
      args.push_back(TraceArg::Str("delta", pred));
      args.push_back(
          TraceArg::Num("delta_size", d != nullptr ? d->size() : 0));
    }
    args.push_back(TraceArg::Num("considered", delta.tuples_considered));
    args.push_back(TraceArg::Num("derived", delta.facts_derived));
    args.push_back(TraceArg::Num("inserted", delta.facts_inserted));
    if (!st.ok()) args.push_back(TraceArg::Str("status", st.ToString()));
    ctx.trace->Complete("rule " + plan.head_pred, "rule", start_us,
                        std::move(args));
  }
  return st;
}

// Moves `staged` facts that are new into their full relations and into
// `next_delta`. Returns true if anything was new.
bool Commit(std::map<std::string, Relation>* staged,
            std::map<std::string, Relation>* derived,
            std::map<std::string, Relation>* next_delta) {
  bool any = false;
  for (auto& [pred, rel] : *staged) {
    Relation& full = (*derived)[pred];
    if (full.arity() == 0 && full.empty() && rel.arity() != 0) {
      full = Relation(rel.type());
    }
    Relation fresh(rel.type());
    for (const Tuple& t : rel.tuples()) {
      if (full.Insert(t)) {
        fresh.Insert(t);
        any = true;
      }
    }
    if (next_delta != nullptr) (*next_delta)[pred] = std::move(fresh);
  }
  return any;
}

}  // namespace

Status EvaluateStratum(const std::vector<const RulePlan*>& plans,
                       const std::set<std::string>& stratum_preds,
                       const EvalContext& base_ctx,
                       std::map<std::string, Relation>* derived,
                       bool seminaive) {
  std::map<std::string, Relation> delta;

  EvalContext ctx = base_ctx;
  ctx.delta = [&delta](const std::string& pred) -> const Relation* {
    auto it = delta.find(pred);
    return it == delta.end() ? nullptr : &it->second;
  };

  // Each round produces fresh delta relations; their index-cache
  // entries must be evicted or the pointer-keyed cache grows with the
  // number of fixpoint rounds (visible on long chains like the E10
  // sum fold).
  auto replace_delta = [&](std::map<std::string, Relation>&& next) {
    if (ctx.index_caches != nullptr) {
      for (auto& [pred, rel] : delta) {
        (void)pred;
        ctx.index_caches->erase(&rel);
      }
    }
    delta = std::move(next);
  };

  auto staging_for = [&](std::map<std::string, Relation>* staged,
                         const RulePlan& plan) -> Relation* {
    auto it = staged->find(plan.head_pred);
    if (it == staged->end()) {
      // Shape the staging relation after the existing full relation.
      const Relation* full = base_ctx.full(plan.head_pred);
      RelationType type =
          full != nullptr
              ? full->type()
              : RelationType(plan.head_args.size(), Sort::kU);
      it = staged->emplace(plan.head_pred, Relation(type)).first;
    }
    return &it->second;
  };

  uint64_t round = 0;
  auto delta_total = [&delta]() {
    uint64_t n = 0;
    for (const auto& [pred, rel] : delta) {
      (void)pred;
      n += rel.size();
    }
    return n;
  };

  // Round 0: all rules over full relations.
  {
    TraceSpan round_span(ctx.trace, "fixpoint round", "fixpoint");
    round_span.AddArg(TraceArg::Int("stratum", ctx.stratum));
    round_span.AddArg(TraceArg::Num("round", round));
    std::map<std::string, Relation> staged;
    for (const RulePlan* plan : plans) {
      IDLOG_RETURN_NOT_OK(
          ObservedRuleEval(*plan, ctx, /*delta_step=*/-1, round,
                           staging_for(&staged, *plan)));
    }
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    std::map<std::string, Relation> next_delta;
    bool any = Commit(&staged, derived, &next_delta);
    replace_delta(std::move(next_delta));
    if (ctx.trace != nullptr) {
      round_span.AddArg(TraceArg::Num("new_facts", delta_total()));
    }
    if (!any) return Status::OK();
  }

  // Later rounds. The loop is unbounded by construction (it stops at
  // the least fixpoint); the governor's iteration cap and deadline are
  // what bound it when a program generates values forever.
  while (true) {
    ++round;
    TraceSpan round_span(ctx.trace, "fixpoint round", "fixpoint");
    round_span.AddArg(TraceArg::Int("stratum", ctx.stratum));
    round_span.AddArg(TraceArg::Num("round", round));
    std::map<std::string, Relation> staged;
    bool fired = false;
    for (const RulePlan* plan : plans) {
      if (seminaive) {
        for (int step : plan->positive_scan_steps) {
          const std::string& pred =
              plan->steps[static_cast<size_t>(step)].predicate;
          if (stratum_preds.count(pred) == 0) continue;
          fired = true;
          IDLOG_RETURN_NOT_OK(ObservedRuleEval(
              *plan, ctx, step, round, staging_for(&staged, *plan)));
        }
      } else {
        // Naive mode: re-run recursive rules in full. Rules with no
        // intra-stratum dependency are complete after round 0.
        bool recursive = false;
        for (int step : plan->positive_scan_steps) {
          if (stratum_preds.count(
                  plan->steps[static_cast<size_t>(step)].predicate) > 0) {
            recursive = true;
            break;
          }
        }
        if (!recursive) continue;
        fired = true;
        IDLOG_RETURN_NOT_OK(ObservedRuleEval(*plan, ctx, /*delta_step=*/-1,
                                             round,
                                             staging_for(&staged, *plan)));
      }
    }
    if (!fired) return Status::OK();
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    std::map<std::string, Relation> next_delta;
    bool any = Commit(&staged, derived, &next_delta);
    replace_delta(std::move(next_delta));
    if (ctx.trace != nullptr) {
      round_span.AddArg(TraceArg::Num("new_facts", delta_total()));
    }
    if (!any) return Status::OK();
  }
}

}  // namespace idlog
