#include "eval/stratum_eval.h"

#include <chrono>
#include <utility>

#include "exec/round_executor.h"
#include "exec/thread_pool.h"

namespace idlog {

namespace {

/// EvaluateRuleInto with per-rule attribution: when a profile or trace
/// sink is attached, brackets the call with a monotonic-clock read and
/// an EvalStats snapshot and attributes the deltas to the plan's
/// clause. The counters are deltas of the shared ctx.stats, so summing
/// a column over all rules reproduces the engine total exactly. With
/// both observers null this is a tail call into EvaluateRuleInto.
Status ObservedRuleEval(const RulePlan& plan, const EvalContext& ctx,
                        int delta_step, uint64_t round, Relation* out) {
  if (ctx.profile == nullptr && ctx.trace == nullptr) {
    return EvaluateRuleInto(plan, ctx, delta_step, out);
  }
  const EvalStats before =
      ctx.stats != nullptr ? *ctx.stats : EvalStats();
  uint64_t start_us = ctx.trace != nullptr ? ctx.trace->NowUs() : 0;
  auto t0 = std::chrono::steady_clock::now();
  Status st = EvaluateRuleInto(plan, ctx, delta_step, out);
  uint64_t self_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  EvalStats delta;
  if (ctx.stats != nullptr) {
    delta.tuples_considered =
        ctx.stats->tuples_considered - before.tuples_considered;
    delta.facts_derived = ctx.stats->facts_derived - before.facts_derived;
    delta.facts_inserted =
        ctx.stats->facts_inserted - before.facts_inserted;
    delta.rule_firings = ctx.stats->rule_firings - before.rule_firings;
  }

  if (ctx.profile != nullptr && plan.clause_index >= 0 &&
      static_cast<size_t>(plan.clause_index) < ctx.profile->rules.size()) {
    RuleProfile& rp =
        ctx.profile->rules[static_cast<size_t>(plan.clause_index)];
    ++rp.evals;
    rp.firings += delta.rule_firings;
    rp.tuples_considered += delta.tuples_considered;
    rp.facts_derived += delta.facts_derived;
    rp.facts_inserted += delta.facts_inserted;
    rp.self_ns += self_ns;
  }

  if (ctx.trace != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg::Int("clause", plan.clause_index));
    args.push_back(TraceArg::Int("stratum", ctx.stratum));
    args.push_back(TraceArg::Num("round", round));
    if (delta_step >= 0) {
      const std::string& pred =
          plan.steps[static_cast<size_t>(delta_step)].predicate;
      const Relation* d = ctx.delta ? ctx.delta(pred) : nullptr;
      args.push_back(TraceArg::Str("delta", pred));
      args.push_back(
          TraceArg::Num("delta_size", d != nullptr ? d->size() : 0));
    }
    args.push_back(TraceArg::Num("considered", delta.tuples_considered));
    args.push_back(TraceArg::Num("derived", delta.facts_derived));
    args.push_back(TraceArg::Num("inserted", delta.facts_inserted));
    if (!st.ok()) args.push_back(TraceArg::Str("status", st.ToString()));
    ctx.trace->Complete("rule " + plan.head_pred, "rule", start_us,
                        std::move(args));
  }
  return st;
}

// Moves `staged` facts that are new into their full relations and into
// `next_delta`. Returns true if anything was new. Predicates with no
// new facts get no next_delta entry at all (rather than an empty one):
// the delta map and the per-round index-cache eviction would otherwise
// grow with predicate count even on rounds where nothing moved.
bool Commit(std::map<std::string, Relation>* staged,
            std::map<std::string, Relation>* derived,
            std::map<std::string, Relation>* next_delta) {
  bool any = false;
  for (auto& [pred, rel] : *staged) {
    Relation& full = (*derived)[pred];
    if (full.arity() == 0 && full.empty() && rel.arity() != 0) {
      full = Relation(rel.type());
    }
    Relation fresh(rel.type());
    for (const Tuple& t : rel.tuples()) {
      if (full.Insert(t)) {
        fresh.Insert(t);
        any = true;
      }
    }
    if (next_delta != nullptr && !fresh.empty()) {
      (*next_delta)[pred] = std::move(fresh);
    }
  }
  return any;
}

}  // namespace

Status EvaluateStratum(const std::vector<const RulePlan*>& plans,
                       const std::set<std::string>& stratum_preds,
                       const EvalContext& base_ctx,
                       std::map<std::string, Relation>* derived,
                       bool seminaive,
                       StratumResume* resume,
                       const RoundBoundaryHook& on_round) {
  std::map<std::string, Relation> delta;
  uint64_t round = 0;
  const bool resuming = resume != nullptr;
  if (resuming) {
    // Continue at the checkpointed boundary: the saved round's delta
    // feeds round+1's differentiated scans, and round 0 (all rules over
    // full relations) already ran before the frame was cut.
    delta = std::move(resume->delta);
    round = resume->round;
  }

  EvalContext ctx = base_ctx;
  ctx.delta = [&delta](const std::string& pred) -> const Relation* {
    auto it = delta.find(pred);
    return it == delta.end() ? nullptr : &it->second;
  };

  // EXPLAIN ANALYZE: record this stratum's per-round delta sizes. The
  // series is a logical quantity (fixpoint contents are deterministic),
  // so it is identical across --jobs settings.
  StratumRoundStats* round_log = nullptr;
  if (ctx.analyze != nullptr) {
    // On resume this stratum's entry already exists (restored from the
    // snapshot with the pre-checkpoint rounds); append to it rather
    // than opening a duplicate.
    if (resuming && !ctx.analyze->strata.empty() &&
        ctx.analyze->strata.back().stratum == ctx.stratum) {
      round_log = &ctx.analyze->strata.back();
    } else {
      ctx.analyze->strata.emplace_back();
      ctx.analyze->strata.back().stratum = ctx.stratum;
      round_log = &ctx.analyze->strata.back();
    }
  }

  // Each round produces fresh delta relations; their index-cache
  // entries must be evicted or the pointer-keyed cache grows with the
  // number of fixpoint rounds (visible on long chains like the E10
  // sum fold).
  auto replace_delta = [&](std::map<std::string, Relation>&& next) {
    if (ctx.index_caches != nullptr) {
      for (auto& [pred, rel] : delta) {
        (void)pred;
        ctx.index_caches->erase(&rel);
      }
    }
    delta = std::move(next);
  };

  // Shape a staging relation after the existing full relation.
  auto staging_type = [&](const RulePlan& plan) -> RelationType {
    const Relation* full = base_ctx.full(plan.head_pred);
    return full != nullptr ? full->type()
                           : RelationType(plan.head_args.size(), Sort::kU);
  };

  auto staging_for = [&](std::map<std::string, Relation>* staged,
                         const RulePlan& plan) -> Relation* {
    auto it = staged->find(plan.head_pred);
    if (it == staged->end()) {
      it = staged->emplace(plan.head_pred, Relation(staging_type(plan)))
               .first;
    }
    return &it->second;
  };

  // Runs one round's (rule, delta_step) tasks into `staged`. The task
  // list is built in the exact order the serial loop evaluates; with a
  // pool installed the evaluations run concurrently into private
  // relations and are merged back in task order, so fixpoint contents,
  // stats, profile columns and trace spans come out identical to the
  // serial path (timing values aside). Provenance runs parallelize the
  // same way: workers record into private per-task stores and the merge
  // absorbs them in task order (first-derivation-wins), reproducing the
  // serial store exactly.
  auto run_round = [&](std::vector<RoundTask>&& tasks, uint64_t round,
                       std::map<std::string, Relation>* staged) -> Status {
    const bool parallel = ctx.pool != nullptr && tasks.size() > 1;
    if (!parallel) {
      for (const RoundTask& task : tasks) {
        IDLOG_RETURN_NOT_OK(ObservedRuleEval(*task.plan, ctx,
                                             task.delta_step, round,
                                             staging_for(staged, *task.plan)));
      }
      return Status::OK();
    }

    for (RoundTask& task : tasks) {
      task.staged = Relation(staging_type(*task.plan));
      if (ctx.analyze != nullptr) {
        task.step_stats.steps.resize(task.plan->steps.size() + 1);
      }
    }
    IDLOG_RETURN_NOT_OK(RunRoundTasks(ctx, ctx.pool, &tasks));

    // Deterministic merge: insert each task's private facts into the
    // shared staging in task order — the same global insertion order
    // the serial loop produces — and only now account staged inserts
    // (stats, governor charges) and attribute profile/trace, exactly
    // as ObservedRuleEval would have.
    for (RoundTask& task : tasks) {
      Relation* out = staging_for(staged, *task.plan);
      Status merge_status = Status::OK();
      uint64_t inserted = 0;
      for (const Tuple& t : task.staged.tuples()) {
        if (out->Insert(t)) {
          ++inserted;
          if (ctx.governor != nullptr && merge_status.ok()) {
            merge_status = ctx.governor->OnDerived(
                1, ApproxTupleBytes(task.plan->head_args.size()));
          }
        }
      }
      task.stats.facts_inserted = inserted;
      if (ctx.stats != nullptr) *ctx.stats += task.stats;

      // Absorb the worker's private derivations, still in task order:
      // first-derivation-wins against everything absorbed so far makes
      // the combined store identical to what the serial loop records.
      // The retained bytes were deferred by the worker and are charged
      // here, like the staged-insert charges above.
      if (ctx.provenance != nullptr) {
        size_t prov_bytes = ctx.provenance->Absorb(&task.prov);
        if (ctx.governor != nullptr && prov_bytes > 0 &&
            merge_status.ok()) {
          merge_status = ctx.governor->OnDerived(0, prov_bytes);
        }
      }

      // Fold the worker's private per-step counters into the shared
      // analysis, in this same deterministic task order. The emit
      // pseudo-step's rows_emitted was deferred to here, exactly like
      // facts_inserted above.
      if (ctx.analyze != nullptr && !task.step_stats.steps.empty() &&
          task.plan->clause_index >= 0 &&
          static_cast<size_t>(task.plan->clause_index) <
              ctx.analyze->rules.size()) {
        auto& dst = ctx.analyze
                        ->rules[static_cast<size_t>(task.plan->clause_index)]
                        .steps;
        const auto& src = task.step_stats.steps;
        if (dst.size() == src.size()) {
          for (size_t k = 0; k < src.size(); ++k) dst[k] += src[k];
          dst.back().rows_emitted += inserted;
        }
      }

      if (ctx.profile != nullptr && task.plan->clause_index >= 0 &&
          static_cast<size_t>(task.plan->clause_index) <
              ctx.profile->rules.size()) {
        RuleProfile& rp =
            ctx.profile->rules[static_cast<size_t>(task.plan->clause_index)];
        ++rp.evals;
        rp.firings += task.stats.rule_firings;
        rp.tuples_considered += task.stats.tuples_considered;
        rp.facts_derived += task.stats.facts_derived;
        rp.facts_inserted += task.stats.facts_inserted;
        rp.self_ns += task.self_ns;
      }

      if (ctx.trace != nullptr) {
        std::vector<TraceArg> args;
        args.push_back(TraceArg::Int("clause", task.plan->clause_index));
        args.push_back(TraceArg::Int("stratum", ctx.stratum));
        args.push_back(TraceArg::Num("round", round));
        if (task.delta_step >= 0) {
          const std::string& pred =
              task.plan->steps[static_cast<size_t>(task.delta_step)]
                  .predicate;
          const Relation* d = ctx.delta ? ctx.delta(pred) : nullptr;
          args.push_back(TraceArg::Str("delta", pred));
          args.push_back(
              TraceArg::Num("delta_size", d != nullptr ? d->size() : 0));
        }
        args.push_back(
            TraceArg::Num("considered", task.stats.tuples_considered));
        args.push_back(TraceArg::Num("derived", task.stats.facts_derived));
        args.push_back(TraceArg::Num("inserted", task.stats.facts_inserted));
        if (!task.status.ok()) {
          args.push_back(TraceArg::Str("status", task.status.ToString()));
        }
        ctx.trace->CompleteWithDuration("rule " + task.plan->head_pred,
                                        "rule", task.start_us,
                                        task.self_ns / 1000,
                                        std::move(args));
      }

      // Stop where the serial loop would have: later tasks ran, but
      // their results and attribution are discarded with the round.
      IDLOG_RETURN_NOT_OK(task.status);
      IDLOG_RETURN_NOT_OK(merge_status);
    }
    return Status::OK();
  };

  auto delta_total = [&delta]() {
    uint64_t n = 0;
    for (const auto& [pred, rel] : delta) {
      (void)pred;
      n += rel.size();
    }
    return n;
  };

  // Round 0: all rules over full relations. A resumed stratum skips it
  // — it ran before the checkpoint frame was cut.
  if (!resuming) {
    TraceSpan round_span(ctx.trace, "fixpoint round", "fixpoint");
    round_span.AddArg(TraceArg::Int("stratum", ctx.stratum));
    round_span.AddArg(TraceArg::Num("round", round));
    std::vector<RoundTask> tasks;
    tasks.reserve(plans.size());
    for (const RulePlan* plan : plans) {
      RoundTask task;
      task.plan = plan;
      task.delta_step = -1;
      tasks.push_back(std::move(task));
    }
    std::map<std::string, Relation> staged;
    IDLOG_RETURN_NOT_OK(run_round(std::move(tasks), round, &staged));
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    std::map<std::string, Relation> next_delta;
    bool any = Commit(&staged, derived, &next_delta);
    replace_delta(std::move(next_delta));
    if (round_log != nullptr) {
      round_log->new_facts_per_round.push_back(delta_total());
    }
    if (ctx.trace != nullptr) {
      round_span.AddArg(TraceArg::Num("new_facts", delta_total()));
    }
    if (on_round != nullptr) {
      IDLOG_RETURN_NOT_OK(on_round(round, !any, delta));
    }
    if (!any) return Status::OK();
  }

  // Later rounds. The loop is unbounded by construction (it stops at
  // the least fixpoint); the governor's iteration cap and deadline are
  // what bound it when a program generates values forever.
  while (true) {
    ++round;
    TraceSpan round_span(ctx.trace, "fixpoint round", "fixpoint");
    round_span.AddArg(TraceArg::Int("stratum", ctx.stratum));
    round_span.AddArg(TraceArg::Num("round", round));
    std::vector<RoundTask> tasks;
    for (const RulePlan* plan : plans) {
      if (seminaive) {
        for (int step : plan->positive_scan_steps) {
          const std::string& pred =
              plan->steps[static_cast<size_t>(step)].predicate;
          if (stratum_preds.count(pred) == 0) continue;
          RoundTask task;
          task.plan = plan;
          task.delta_step = step;
          tasks.push_back(std::move(task));
        }
      } else {
        // Naive mode: re-run recursive rules in full. Rules with no
        // intra-stratum dependency are complete after round 0.
        bool recursive = false;
        for (int step : plan->positive_scan_steps) {
          if (stratum_preds.count(
                  plan->steps[static_cast<size_t>(step)].predicate) > 0) {
            recursive = true;
            break;
          }
        }
        if (!recursive) continue;
        RoundTask task;
        task.plan = plan;
        task.delta_step = -1;
        tasks.push_back(std::move(task));
      }
    }
    if (tasks.empty()) {
      // No recursive rules: the stratum is complete without this round
      // having run. The terminal hook call lets the checkpointer record
      // the stratum as finished.
      if (on_round != nullptr) {
        IDLOG_RETURN_NOT_OK(on_round(round, /*fixpoint=*/true, delta));
      }
      return Status::OK();
    }
    std::map<std::string, Relation> staged;
    IDLOG_RETURN_NOT_OK(run_round(std::move(tasks), round, &staged));
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    std::map<std::string, Relation> next_delta;
    bool any = Commit(&staged, derived, &next_delta);
    replace_delta(std::move(next_delta));
    if (round_log != nullptr) {
      round_log->new_facts_per_round.push_back(delta_total());
    }
    if (ctx.trace != nullptr) {
      round_span.AddArg(TraceArg::Num("new_facts", delta_total()));
    }
    if (on_round != nullptr) {
      IDLOG_RETURN_NOT_OK(on_round(round, !any, delta));
    }
    if (!any) return Status::OK();
  }
}

}  // namespace idlog
