#include "eval/stratum_eval.h"

namespace idlog {

namespace {

// Moves `staged` facts that are new into their full relations and into
// `next_delta`. Returns true if anything was new.
bool Commit(std::map<std::string, Relation>* staged,
            std::map<std::string, Relation>* derived,
            std::map<std::string, Relation>* next_delta) {
  bool any = false;
  for (auto& [pred, rel] : *staged) {
    Relation& full = (*derived)[pred];
    if (full.arity() == 0 && full.empty() && rel.arity() != 0) {
      full = Relation(rel.type());
    }
    Relation fresh(rel.type());
    for (const Tuple& t : rel.tuples()) {
      if (full.Insert(t)) {
        fresh.Insert(t);
        any = true;
      }
    }
    if (next_delta != nullptr) (*next_delta)[pred] = std::move(fresh);
  }
  return any;
}

}  // namespace

Status EvaluateStratum(const std::vector<const RulePlan*>& plans,
                       const std::set<std::string>& stratum_preds,
                       const EvalContext& base_ctx,
                       std::map<std::string, Relation>* derived,
                       bool seminaive) {
  std::map<std::string, Relation> delta;

  EvalContext ctx = base_ctx;
  ctx.delta = [&delta](const std::string& pred) -> const Relation* {
    auto it = delta.find(pred);
    return it == delta.end() ? nullptr : &it->second;
  };

  // Each round produces fresh delta relations; their index-cache
  // entries must be evicted or the pointer-keyed cache grows with the
  // number of fixpoint rounds (visible on long chains like the E10
  // sum fold).
  auto replace_delta = [&](std::map<std::string, Relation>&& next) {
    if (ctx.index_caches != nullptr) {
      for (auto& [pred, rel] : delta) {
        (void)pred;
        ctx.index_caches->erase(&rel);
      }
    }
    delta = std::move(next);
  };

  auto staging_for = [&](std::map<std::string, Relation>* staged,
                         const RulePlan& plan) -> Relation* {
    auto it = staged->find(plan.head_pred);
    if (it == staged->end()) {
      // Shape the staging relation after the existing full relation.
      const Relation* full = base_ctx.full(plan.head_pred);
      RelationType type =
          full != nullptr
              ? full->type()
              : RelationType(plan.head_args.size(), Sort::kU);
      it = staged->emplace(plan.head_pred, Relation(type)).first;
    }
    return &it->second;
  };

  // Round 0: all rules over full relations.
  {
    std::map<std::string, Relation> staged;
    for (const RulePlan* plan : plans) {
      IDLOG_RETURN_NOT_OK(
          EvaluateRuleInto(*plan, ctx, /*delta_step=*/-1,
                           staging_for(&staged, *plan)));
    }
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    std::map<std::string, Relation> next_delta;
    bool any = Commit(&staged, derived, &next_delta);
    replace_delta(std::move(next_delta));
    if (!any) return Status::OK();
  }

  // Later rounds. The loop is unbounded by construction (it stops at
  // the least fixpoint); the governor's iteration cap and deadline are
  // what bound it when a program generates values forever.
  while (true) {
    std::map<std::string, Relation> staged;
    bool fired = false;
    for (const RulePlan* plan : plans) {
      if (seminaive) {
        for (int step : plan->positive_scan_steps) {
          const std::string& pred =
              plan->steps[static_cast<size_t>(step)].predicate;
          if (stratum_preds.count(pred) == 0) continue;
          fired = true;
          IDLOG_RETURN_NOT_OK(EvaluateRuleInto(
              *plan, ctx, step, staging_for(&staged, *plan)));
        }
      } else {
        // Naive mode: re-run recursive rules in full. Rules with no
        // intra-stratum dependency are complete after round 0.
        bool recursive = false;
        for (int step : plan->positive_scan_steps) {
          if (stratum_preds.count(
                  plan->steps[static_cast<size_t>(step)].predicate) > 0) {
            recursive = true;
            break;
          }
        }
        if (!recursive) continue;
        fired = true;
        IDLOG_RETURN_NOT_OK(EvaluateRuleInto(*plan, ctx, /*delta_step=*/-1,
                                             staging_for(&staged, *plan)));
      }
    }
    if (!fired) return Status::OK();
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    std::map<std::string, Relation> next_delta;
    bool any = Commit(&staged, derived, &next_delta);
    replace_delta(std::move(next_delta));
    if (!any) return Status::OK();
  }
}

}  // namespace idlog
