#include "eval/stratum_eval.h"

#include <set>
#include <utility>

#include "exec/round_executor.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"

namespace idlog {

namespace {

/// A delta must have at least this many rows before a task is worth
/// fanning out (below it the per-partition setup outweighs the scan).
constexpr uint64_t kMinPartitionRows = 2;

/// The delta columns a partitioned scan hashes to pick an owner: the
/// columns whose bound value feeds a later step's index key (the join
/// keys), so a partition owns its key range and duplicate head tuples
/// overwhelmingly collide within one partition. Falls back to the whole
/// row (empty result) when the delta scan binds no later key — the
/// ownership contract only needs *some* deterministic column set.
std::vector<int> JoinKeyPartitionCols(const RulePlan& plan) {
  std::set<int> key_slots;
  for (size_t j = 1; j < plan.steps.size(); ++j) {
    const PlanStep& step = plan.steps[j];
    for (int col : step.key_cols) {
      const ArgSource& src = step.sources[static_cast<size_t>(col)];
      if (src.is_slot) key_slots.insert(src.slot);
    }
  }
  const PlanStep& scan = plan.steps[0];
  std::vector<int> cols;
  for (size_t pos = 0; pos < scan.modes.size(); ++pos) {
    if (scan.modes[pos] == ArgMode::kWrite &&
        scan.sources[pos].is_slot &&
        key_slots.count(scan.sources[pos].slot) > 0) {
      cols.push_back(static_cast<int>(pos));
    }
  }
  return cols;
}

}  // namespace

Status EvaluateStratum(const std::vector<const RulePlan*>& plans,
                       const std::set<std::string>& stratum_preds,
                       const EvalContext& base_ctx,
                       std::map<std::string, Relation>* derived,
                       bool seminaive,
                       StratumResume* resume,
                       const RoundBoundaryHook& on_round,
                       const std::set<std::string>* seed_preds) {
  std::map<std::string, Relation> delta;
  uint64_t round = 0;
  const bool resuming = resume != nullptr;
  if (resuming) {
    // Continue at the checkpointed boundary: the saved round's delta
    // feeds round+1's differentiated scans, and round 0 (all rules over
    // full relations) already ran before the frame was cut.
    delta = std::move(resume->delta);
    round = resume->round;
  }
  // An incremental seed widens the *first* differentiated round to the
  // externally-changed predicates; afterwards only intra-stratum deltas
  // exist and the filter narrows back to stratum_preds.
  std::set<std::string> seed_filter;
  bool first_seeded_round = resuming && seed_preds != nullptr;
  if (first_seeded_round) {
    seed_filter = stratum_preds;
    seed_filter.insert(seed_preds->begin(), seed_preds->end());
  }

  EvalContext ctx = base_ctx;
  ctx.delta = [&delta](const std::string& pred) -> const Relation* {
    auto it = delta.find(pred);
    return it == delta.end() ? nullptr : &it->second;
  };

  // EXPLAIN ANALYZE: record this stratum's per-round delta sizes. The
  // series is a logical quantity (fixpoint contents are deterministic),
  // so it is identical across --jobs settings.
  StratumRoundStats* round_log = nullptr;
  if (ctx.analyze != nullptr) {
    // On resume this stratum's entry already exists (restored from the
    // snapshot with the pre-checkpoint rounds); append to it rather
    // than opening a duplicate.
    if (resuming && !ctx.analyze->strata.empty() &&
        ctx.analyze->strata.back().stratum == ctx.stratum) {
      round_log = &ctx.analyze->strata.back();
    } else {
      ctx.analyze->strata.emplace_back();
      ctx.analyze->strata.back().stratum = ctx.stratum;
      round_log = &ctx.analyze->strata.back();
    }
  }

  // Each round produces fresh delta relations; their index-cache
  // entries must be evicted or the pointer-keyed cache grows with the
  // number of fixpoint rounds (visible on long chains like the E10
  // sum fold).
  auto replace_delta = [&](std::map<std::string, Relation>&& next) {
    if (ctx.index_caches != nullptr) {
      for (auto& [pred, rel] : delta) {
        (void)pred;
        ctx.index_caches->erase(&rel);
      }
    }
    delta = std::move(next);
  };

  // Shape a staging relation after the existing full relation.
  auto staging_type = [&](const RulePlan& plan) -> RelationType {
    const Relation* full = base_ctx.full(plan.head_pred);
    return full != nullptr ? full->type()
                           : RelationType(plan.head_args.size(), Sort::kU);
  };

  // Fan-out of one (rule, delta_step) task. Only the heavy shape is
  // eligible: a semi-naive task whose delta scan is the *outermost*
  // plan step with no bound keys — then the serial emission order is
  // ascending delta-row order, which is what the partition merge tags
  // reconstruct, and no earlier step gets re-scanned K times. The
  // resolved K depends only on logical quantities (the configured
  // setting, the pool's configured size and the delta's content), so
  // tasks fan out identically across runs with the same settings.
  auto resolve_fanout = [&](const RulePlan& plan, int delta_step) -> int {
    if (!seminaive || delta_step != 0) return 1;
    const PlanStep& scan = plan.steps[0];
    if (scan.kind != PlanStep::Kind::kScan || scan.is_id ||
        !scan.key_cols.empty()) {
      return 1;
    }
    const Relation* d = ctx.delta(scan.predicate);
    if (d == nullptr || d->size() < kMinPartitionRows) return 1;
    int k = ctx.delta_partitions;
    if (k <= 0) k = ctx.pool != nullptr ? ctx.pool->size() : 1;
    if (k < 1) k = 1;
    if (static_cast<uint64_t>(k) > d->size()) {
      k = static_cast<int>(d->size());
    }
    return k;
  };

  // Runs one round's (rule, delta_step) tasks and commits what they
  // staged. The task list is built in the exact order the serial loop
  // evaluates; the executor runs every task's parts (concurrently when
  // a pool is installed, else in order on this thread) into private
  // relations, and the merge below walks tasks in that same order —
  // partitions K-way-merged back into delta-row order — so fixpoint
  // contents, stats, profile columns, explain counters, trace spans and
  // the provenance store come out identical for every --jobs and
  // partition setting (timing values aside). Commit is where inserts
  // become observable: a staged tuple counts as facts_inserted (and is
  // charged to the governor, and enters the next delta) iff it is new
  // in the full relation — the one definition of "new" that no
  // concatenation order can perturb.
  auto run_round = [&](std::vector<RoundTask>&& tasks, uint64_t round,
                       bool* any_new,
                       std::map<std::string, Relation>* next_delta)
      -> Status {
    for (RoundTask& task : tasks) {
      task.parts.resize(static_cast<size_t>(task.partitions));
      for (size_t p = 0; p < task.parts.size(); ++p) {
        RoundPart& part = task.parts[p];
        part.partition = static_cast<int>(p);
        part.staged = Relation(staging_type(*task.plan));
        if (ctx.analyze != nullptr) {
          part.step_stats.steps.resize(task.plan->steps.size() + 1);
        }
      }
    }
    IDLOG_RETURN_NOT_OK(RunRoundTasks(ctx, ctx.pool, &tasks));

    // Find where the serial loop would have stopped: the first part,
    // in (task, partition) order, with a real error. Abort markers are
    // skipped — the pool claims parts in index order but completes
    // them in any order, so a low-index part can be marked aborted by
    // a higher-index failure.
    size_t fail_task = tasks.size();
    size_t fail_part = 0;
    Status round_error = Status::OK();
    for (size_t ti = 0; ti < tasks.size() && round_error.ok(); ++ti) {
      const std::vector<RoundPart>& parts = tasks[ti].parts;
      for (size_t pi = 0; pi < parts.size(); ++pi) {
        const Status& st = parts[pi].status;
        if (st.ok() || IsRoundAbortMarker(st)) continue;
        round_error = st;
        fail_task = ti;
        fail_part = pi;
        break;
      }
    }
    const bool failed = !round_error.ok();

    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      // Tasks after the failing one ran (or were aborted), but their
      // results and attribution are discarded with the round — the
      // same cutoff a serial run's early return produces.
      if (failed && ti > fail_task) break;
      RoundTask& task = tasks[ti];
      const size_t last_part = (failed && ti == fail_task)
                                   ? fail_part
                                   : task.parts.size() - 1;

      // Fold the parts' private counters into the shared stats; a
      // partitioned task's parts counted disjoint delta slices, so the
      // sum is exactly what one unpartitioned evaluation would count.
      EvalStats task_stats;
      uint64_t task_self_ns = 0;
      for (size_t pi = 0; pi <= last_part; ++pi) {
        task_stats += task.parts[pi].stats;
        task_self_ns += task.parts[pi].self_ns;
      }
      if (ctx.stats != nullptr) *ctx.stats += task_stats;

      // Per-step counters, still in deterministic task order. The emit
      // pseudo-step's rows_emitted is filled from the commit below.
      bool have_analyze_row =
          ctx.analyze != nullptr && task.plan->clause_index >= 0 &&
          static_cast<size_t>(task.plan->clause_index) <
              ctx.analyze->rules.size();
      if (have_analyze_row) {
        auto& dst = ctx.analyze
                        ->rules[static_cast<size_t>(task.plan->clause_index)]
                        .steps;
        for (size_t pi = 0; pi <= last_part; ++pi) {
          const auto& src = task.parts[pi].step_stats.steps;
          if (dst.size() != src.size()) continue;
          for (size_t k = 0; k < src.size(); ++k) dst[k] += src[k];
        }
      }

      // Commit: insert this task's staged tuples into the full
      // relation, in serial emission order (partitions merged by their
      // delta-row tags). Dedup within a part came free from its staged
      // relation; cross-part and cross-task duplicates — and
      // re-derivations from earlier rounds — all fall out of the one
      // Insert against full. Skipped for a failed round: the round's
      // results are discarded, exactly as the serial early return
      // discards its staging.
      uint64_t inserted = 0;
      Status commit_status = Status::OK();
      if (!failed) {
        Relation& full = (*derived)[task.plan->head_pred];
        // The staged relation was typed before this entry existed, so
        // its type is the authoritative shape for a new full relation.
        RelationType type = task.parts[0].staged.type();
        if (full.arity() == 0 && full.empty() && !type.empty()) {
          full = Relation(type);
        }
        Relation* fresh = nullptr;
        auto commit_tuple = [&](const Tuple& t) {
          if (!full.Insert(t)) return;
          ++inserted;
          *any_new = true;
          if (next_delta != nullptr) {
            if (fresh == nullptr) {
              fresh = &next_delta->try_emplace(task.plan->head_pred,
                                               Relation(type))
                           .first->second;
            }
            fresh->Insert(t);
          }
          if (ctx.governor != nullptr && commit_status.ok()) {
            commit_status = ctx.governor->OnDerived(
                1, ApproxTupleBytes(task.plan->head_args.size()));
          }
        };
        if (task.partitions > 1) {
          std::vector<size_t> cur(task.parts.size(), 0);
          while (true) {
            size_t best = task.parts.size();
            uint64_t best_tag = 0;
            for (size_t p = 0; p < task.parts.size(); ++p) {
              const auto& order = task.parts[p].staged_order;
              if (cur[p] >= order.size()) continue;
              // No ties across parts: a delta row has one owner.
              if (best == task.parts.size() || order[cur[p]] < best_tag) {
                best = p;
                best_tag = order[cur[p]];
              }
            }
            if (best == task.parts.size()) break;
            commit_tuple(task.parts[best].staged.tuples()[cur[best]++]);
          }
          // One breadcrumb per K-way partition merge: which head, how
          // wide the fan-out, how many commits survived dedup.
          FlightRecorder::Record(FlightEventKind::kPartitionCommit,
                                 task.plan->head_pred.c_str(),
                                 task.partitions,
                                 static_cast<int64_t>(inserted),
                                 static_cast<int64_t>(round));
        } else {
          for (const Tuple& t : task.parts[0].staged.tuples()) {
            commit_tuple(t);
          }
        }
      }
      if (ctx.stats != nullptr) ctx.stats->facts_inserted += inserted;
      if (have_analyze_row) {
        auto& dst = ctx.analyze
                        ->rules[static_cast<size_t>(task.plan->clause_index)]
                        .steps;
        if (!dst.empty()) dst.back().rows_emitted += inserted;
      }

      // Absorb the parts' private derivations, still in task order
      // (partitions merged by record tag): first-derivation-wins
      // against everything absorbed so far makes the combined store
      // identical to what an unpartitioned serial loop records. The
      // retained bytes were deferred by the parts and are charged
      // here, like the committed-insert charges above.
      if (ctx.provenance != nullptr) {
        size_t prov_bytes = 0;
        if (task.partitions > 1) {
          std::vector<ProvenanceStore*> stores;
          std::vector<const std::vector<uint64_t>*> orders;
          for (size_t pi = 0; pi <= last_part; ++pi) {
            stores.push_back(&task.parts[pi].prov);
            orders.push_back(&task.parts[pi].prov_order);
          }
          prov_bytes = ctx.provenance->AbsorbMerged(stores, orders);
        } else {
          for (size_t pi = 0; pi <= last_part; ++pi) {
            prov_bytes += ctx.provenance->Absorb(&task.parts[pi].prov);
          }
        }
        if (ctx.governor != nullptr && prov_bytes > 0 &&
            commit_status.ok()) {
          commit_status = ctx.governor->OnDerived(0, prov_bytes);
        }
      }

      if (ctx.profile != nullptr && task.plan->clause_index >= 0 &&
          static_cast<size_t>(task.plan->clause_index) <
              ctx.profile->rules.size()) {
        RuleProfile& rp =
            ctx.profile->rules[static_cast<size_t>(task.plan->clause_index)];
        ++rp.evals;
        rp.firings += task_stats.rule_firings;
        rp.tuples_considered += task_stats.tuples_considered;
        rp.facts_derived += task_stats.facts_derived;
        rp.facts_inserted += inserted;
        rp.self_ns += task_self_ns;
      }

      if (ctx.trace != nullptr) {
        std::vector<TraceArg> args;
        args.push_back(TraceArg::Int("clause", task.plan->clause_index));
        args.push_back(TraceArg::Int("stratum", ctx.stratum));
        args.push_back(TraceArg::Num("round", round));
        if (task.delta_step >= 0) {
          const std::string& pred =
              task.plan->steps[static_cast<size_t>(task.delta_step)]
                  .predicate;
          const Relation* d = ctx.delta ? ctx.delta(pred) : nullptr;
          args.push_back(TraceArg::Str("delta", pred));
          args.push_back(
              TraceArg::Num("delta_size", d != nullptr ? d->size() : 0));
          // The partition fanout is deliberately NOT a trace arg: traces
          // are part of the byte-identical --jobs/--partitions contract,
          // and the fanout is physical scheduling detail like thread ids.
        }
        args.push_back(
            TraceArg::Num("considered", task_stats.tuples_considered));
        args.push_back(TraceArg::Num("derived", task_stats.facts_derived));
        args.push_back(TraceArg::Num("inserted", inserted));
        if (failed && ti == fail_task) {
          args.push_back(TraceArg::Str("status", round_error.ToString()));
        }
        ctx.trace->CompleteWithDuration("rule " + task.plan->head_pred,
                                        "rule", task.parts[0].start_us,
                                        task_self_ns / 1000,
                                        std::move(args));
      }

      if (failed && ti == fail_task) return round_error;
      IDLOG_RETURN_NOT_OK(commit_status);
    }
    return round_error;
  };

  auto delta_total = [&delta]() {
    uint64_t n = 0;
    for (const auto& [pred, rel] : delta) {
      (void)pred;
      n += rel.size();
    }
    return n;
  };

  // Round 0: all rules over full relations. A resumed stratum skips it
  // — it ran before the checkpoint frame was cut.
  if (!resuming) {
    TraceSpan round_span(ctx.trace, "fixpoint round", "fixpoint");
    round_span.AddArg(TraceArg::Int("stratum", ctx.stratum));
    round_span.AddArg(TraceArg::Num("round", round));
    std::vector<RoundTask> tasks;
    tasks.reserve(plans.size());
    for (const RulePlan* plan : plans) {
      RoundTask task;
      task.plan = plan;
      task.delta_step = -1;
      tasks.push_back(std::move(task));
    }
    bool any = false;
    std::map<std::string, Relation> next_delta;
    FlightRecorder::Record(FlightEventKind::kRoundStart, "round0",
                           ctx.stratum, static_cast<int64_t>(round),
                           static_cast<int64_t>(tasks.size()));
    IDLOG_RETURN_NOT_OK(
        run_round(std::move(tasks), round, &any, &next_delta));
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    replace_delta(std::move(next_delta));
    if (round_log != nullptr) {
      round_log->new_facts_per_round.push_back(delta_total());
    }
    if (FlightRecorder::Enabled()) {
      FlightRecorder::Record(FlightEventKind::kRoundCommit, "round0",
                             ctx.stratum, static_cast<int64_t>(round),
                             static_cast<int64_t>(delta_total()));
    }
    if (ctx.trace != nullptr) {
      round_span.AddArg(TraceArg::Num("new_facts", delta_total()));
    }
    if (on_round != nullptr) {
      IDLOG_RETURN_NOT_OK(on_round(round, !any, delta));
    }
    if (!any) return Status::OK();
  }

  // Later rounds. The loop is unbounded by construction (it stops at
  // the least fixpoint); the governor's iteration cap and deadline are
  // what bound it when a program generates values forever.
  while (true) {
    ++round;
    TraceSpan round_span(ctx.trace, "fixpoint round", "fixpoint");
    round_span.AddArg(TraceArg::Int("stratum", ctx.stratum));
    round_span.AddArg(TraceArg::Num("round", round));
    const std::set<std::string>& round_filter =
        first_seeded_round ? seed_filter : stratum_preds;
    first_seeded_round = false;
    std::vector<RoundTask> tasks;
    for (const RulePlan* plan : plans) {
      if (seminaive) {
        for (int step : plan->positive_scan_steps) {
          const std::string& pred =
              plan->steps[static_cast<size_t>(step)].predicate;
          if (round_filter.count(pred) == 0) continue;
          RoundTask task;
          task.plan = plan;
          task.delta_step = step;
          task.partitions = resolve_fanout(*plan, step);
          if (task.partitions > 1) {
            task.partition_cols = JoinKeyPartitionCols(*plan);
          }
          tasks.push_back(std::move(task));
        }
      } else {
        // Naive mode: re-run recursive rules in full. Rules with no
        // intra-stratum dependency are complete after round 0.
        bool recursive = false;
        for (int step : plan->positive_scan_steps) {
          if (stratum_preds.count(
                  plan->steps[static_cast<size_t>(step)].predicate) > 0) {
            recursive = true;
            break;
          }
        }
        if (!recursive) continue;
        RoundTask task;
        task.plan = plan;
        task.delta_step = -1;
        tasks.push_back(std::move(task));
      }
    }
    if (tasks.empty()) {
      // No recursive rules: the stratum is complete without this round
      // having run. The terminal hook call lets the checkpointer record
      // the stratum as finished.
      if (on_round != nullptr) {
        IDLOG_RETURN_NOT_OK(on_round(round, /*fixpoint=*/true, delta));
      }
      return Status::OK();
    }
    bool any = false;
    std::map<std::string, Relation> next_delta;
    FlightRecorder::Record(FlightEventKind::kRoundStart, "delta",
                           ctx.stratum, static_cast<int64_t>(round),
                           static_cast<int64_t>(tasks.size()));
    IDLOG_RETURN_NOT_OK(
        run_round(std::move(tasks), round, &any, &next_delta));
    if (ctx.stats != nullptr) ++ctx.stats->iterations;
    if (ctx.governor != nullptr) {
      IDLOG_RETURN_NOT_OK(ctx.governor->OnIteration());
    }
    replace_delta(std::move(next_delta));
    if (round_log != nullptr) {
      round_log->new_facts_per_round.push_back(delta_total());
    }
    if (FlightRecorder::Enabled()) {
      FlightRecorder::Record(FlightEventKind::kRoundCommit, "delta",
                             ctx.stratum, static_cast<int64_t>(round),
                             static_cast<int64_t>(delta_total()));
    }
    if (ctx.trace != nullptr) {
      round_span.AddArg(TraceArg::Num("new_facts", delta_total()));
    }
    if (on_round != nullptr) {
      IDLOG_RETURN_NOT_OK(on_round(round, !any, delta));
    }
    if (!any) return Status::OK();
  }
}

}  // namespace idlog
