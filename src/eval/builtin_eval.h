#ifndef IDLOG_EVAL_BUILTIN_EVAL_H_
#define IDLOG_EVAL_BUILTIN_EVAL_H_

#include <functional>
#include <optional>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "common/value.h"

namespace idlog {

/// Receives one solution: concrete values for *all* builtin arguments.
using BuiltinSolutionFn = std::function<void(const std::vector<Value>&)>;

/// Enumerates the solutions of a built-in given the bound arguments
/// (`args[i]` has a value iff argument i is bound). The bound pattern
/// must be admissible per BuiltinPatternAdmissible; inadmissible
/// patterns return UnsafeProgram (the planner prevents this).
///
/// Arithmetic is over the naturals: solutions with negative components
/// do not exist (e.g. sub(2,5,C) has none) and overflow past int64 cuts
/// off enumeration with ResourceExhausted.
Status EnumerateBuiltin(BuiltinKind kind,
                        const std::vector<std::optional<Value>>& args,
                        const BuiltinSolutionFn& on_solution);

/// Truth of a fully-bound built-in (for negated built-ins and filters).
/// Sort mismatches make eq false / ne true.
bool BuiltinHolds(BuiltinKind kind, const std::vector<Value>& args);

}  // namespace idlog

#endif  // IDLOG_EVAL_BUILTIN_EVAL_H_
