#ifndef IDLOG_EVAL_RULE_EVAL_H_
#define IDLOG_EVAL_RULE_EVAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/limits.h"
#include "common/status.h"
#include "common/symbol_table.h"
#include "eval/eval_stats.h"
#include "eval/provenance.h"
#include "eval/rule_plan.h"
#include "obs/explain.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace idlog {

class ThreadPool;  // exec/thread_pool.h; the context only points at it.

/// Runtime environment a rule executes in. The resolver functions
/// return nullptr for relations that do not exist yet (treated as
/// empty for scans, which makes the rule produce nothing, and as empty
/// for negation, which makes the negation succeed).
struct EvalContext {
  /// Full contents of an ordinary predicate (EDB or IDB).
  std::function<const Relation*(const std::string&)> full;
  /// Delta (facts new in the previous round) of an IDB predicate.
  std::function<const Relation*(const std::string&)> delta;
  /// Materialized ID-relation of (base predicate, grouping columns).
  std::function<Result<const Relation*>(const std::string&,
                                        const std::vector<int>&)>
      id_relation;

  /// Pointer-keyed index caches, owned by the caller and shared across
  /// rule evaluations within one engine run.
  std::map<const Relation*, std::unique_ptr<IndexCache>>* index_caches =
      nullptr;

  EvalStats* stats = nullptr;

  /// Resource budgets (deadline, tuples, memory, iterations) and the
  /// cooperative cancellation token. When set, the executor checkpoints
  /// once per tuple considered and charges every inserted fact, so
  /// runaway joins and non-terminating fixpoints trip instead of
  /// spinning. Null means ungoverned.
  ResourceGovernor* governor = nullptr;

  /// Ablation switch: with false, scans ignore their index keys and
  /// filter full scans instead (bench E4 measures the cost of losing
  /// index nested-loop joins).
  bool use_indexes = true;

  /// Thread pool for the parallel stratum executor (exec/). Null (the
  /// default) keeps the serial fixpoint; when set, EvaluateStratum runs
  /// the independent (rule, delta_step) evaluations of each round
  /// concurrently and merges them deterministically.
  ThreadPool* pool = nullptr;

  /// Set on the context copies handed to pool workers: index access
  /// becomes lookup-only against the pre-built shared caches
  /// (IndexCache::FindFresh; a miss falls back to a key-verified full
  /// scan) so no worker mutates shared state. Serial executions of the
  /// unified task path leave this false and keep the lazy mutable index
  /// builds.
  bool parallel_worker = false;

  /// Set on every context handed to a round task (serial or pooled):
  /// staged-insert accounting (stats->facts_inserted, the emit step's
  /// rows_emitted, governor OnDerived charges, provenance byte charges)
  /// is deferred to the driver's Commit, where "new" means new in the
  /// full relation — the only definition that is invariant across both
  /// --jobs and partition counts. Paths that evaluate rules outside the
  /// stratified fixpoint (grounder, choice, inflationary) leave this
  /// false and keep the immediate staging-new accounting.
  bool defer_inserts = false;

  /// Configured delta-partition fan-out for the stratified fixpoint:
  /// 0 = auto (match the pool's parallelism; 1 without a pool), an
  /// explicit K >= 1 forces K partitions even in serial runs — the
  /// partition sweep tests rely on that to pin partition-count
  /// invariance. EvaluateStratum resolves this per task (only heavy
  /// delta-step-0 tasks are eligible) and clamps to the delta size.
  int delta_partitions = 0;

  /// Delta partitioning as resolved for one executor run (set by the
  /// round executor on part contexts; these describe the slice handed
  /// to one executor run). When partition_count > 1 the delta scan — which
  /// eligibility restricts to plan step 0 — only descends into rows
  /// whose hash over `partition_cols` (all columns when null/empty)
  /// lands on `partition_index`; the ownership test runs before any
  /// per-row counting, so summing counters over all partitions
  /// reproduces an unpartitioned run exactly. Partitions > 0 also
  /// suppress the once-per-evaluation counters (rule_firings, the delta
  /// step's rows_in), which partition 0 counts on behalf of the task.
  int partition_index = 0;
  int partition_count = 1;
  const std::vector<int>* partition_cols = nullptr;

  /// Order tags for partitioned tasks (null when partition_count == 1).
  /// The executor appends the current delta-row ordinal once per staged
  /// tuple that is new in the private staging (`staged_order`) and once
  /// per provenance record actually retained (`prov_order`). Rows are
  /// owned by exactly one partition, so a K-way merge by these tags
  /// reconstructs the serial emission order across partitions — which
  /// is what keeps the committed relation order, the next delta, and
  /// the first-derivation-wins provenance store byte-identical for
  /// every partition count.
  std::vector<uint64_t>* staged_order = nullptr;
  std::vector<uint64_t>* prov_order = nullptr;

  /// Observability (both null by default — the fast path is a pointer
  /// test per *rule evaluation*, never per tuple). `trace` receives one
  /// complete span per rule evaluation and per fixpoint round; `profile`
  /// accumulates per-rule counter deltas and self time, attributed by
  /// clause index. `stats` must be set for attribution to happen.
  TraceSink* trace = nullptr;
  EvalProfile* profile = nullptr;
  /// Stratum currently evaluating (labels trace events; -1 outside).
  int stratum = -1;

  /// EXPLAIN ANALYZE per-step counters (both null by default — the fast
  /// path is one pointer test per rule evaluation, the same contract as
  /// trace/profile). `analyze` is the engine-owned PlanAnalysis, with
  /// one RuleStepStats per clause sized steps+1 (the extra entry is the
  /// emit pseudo-step); the executor attributes by clause index.
  /// Parallel workers instead receive `step_stats` pointing at their
  /// task's private buffer (with `analyze` nulled so no worker touches
  /// shared state) and the driver merges buffers in serial task order —
  /// the emit step's rows_emitted is deferred to that merge, exactly
  /// like EvalStats::facts_inserted. `step_stats` wins over `analyze`.
  PlanAnalysis* analyze = nullptr;
  RuleStepStats* step_stats = nullptr;

  /// When set, the first derivation of every new fact is recorded
  /// (clause index + matched premises). `symbols` is only consulted for
  /// rendering built-in premises and may be null otherwise.
  ProvenanceStore* provenance = nullptr;
  const SymbolTable* symbols = nullptr;
};

/// Evaluates one rule bottom-up, inserting derived head tuples into
/// `out`. If `delta_step >= 0`, that step (which must be a positive
/// non-ID scan) reads the delta relation instead of the full relation —
/// the semi-naive differentiation hook.
Status EvaluateRuleInto(const RulePlan& plan, const EvalContext& ctx,
                        int delta_step, Relation* out);

}  // namespace idlog

#endif  // IDLOG_EVAL_RULE_EVAL_H_
