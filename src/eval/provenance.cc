#include "eval/provenance.h"

#include <functional>
#include <set>

namespace idlog {

void ProvenanceStore::Record(const std::string& pred, const Tuple& tuple,
                             int clause_index,
                             std::vector<Premise> premises) {
  auto key = std::make_pair(pred, tuple);
  if (derivations_.count(key) > 0) return;
  Derivation d;
  d.clause_index = clause_index;
  d.premises = std::move(premises);
  derivations_.emplace(std::move(key), std::move(d));
}

const Derivation* ProvenanceStore::Lookup(const std::string& pred,
                                          const Tuple& tuple) const {
  auto it = derivations_.find(std::make_pair(pred, tuple));
  return it == derivations_.end() ? nullptr : &it->second;
}

namespace {

void ExplainRec(const ProvenanceStore& store, const SymbolTable& symbols,
                const std::string& pred, const Tuple& tuple,
                const std::function<bool(const std::string&,
                                         const Tuple&)>& is_leaf,
                int depth, int max_depth,
                std::set<std::pair<std::string, Tuple>>* on_path,
                std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out += indent + pred + TupleToString(tuple, symbols);

  const Derivation* d = store.Lookup(pred, tuple);
  if (d == nullptr) {
    *out += is_leaf(pred, tuple) ? "   [database fact]\n"
                                 : "   [underivable]\n";
    return;
  }
  auto key = std::make_pair(pred, tuple);
  if (on_path->count(key) > 0) {
    *out += "   [cycle — already being explained]\n";
    return;
  }
  if (depth >= max_depth) {
    *out += "   [... depth limit]\n";
    return;
  }
  *out += "   <= clause #" + std::to_string(d->clause_index) + "\n";
  on_path->insert(key);
  for (const Premise& p : d->premises) {
    std::string child_indent(static_cast<size_t>(depth + 1) * 2, ' ');
    switch (p.kind) {
      case Premise::Kind::kFact:
        ExplainRec(store, symbols, p.predicate, p.tuple, is_leaf, depth + 1,
                   max_depth, on_path, out);
        break;
      case Premise::Kind::kIdFact: {
        *out += child_indent + p.predicate + "[";
        for (size_t i = 0; i < p.group.size(); ++i) {
          if (i > 0) *out += ",";
          *out += std::to_string(p.group[i] + 1);
        }
        *out += "]" + TupleToString(p.tuple, symbols) + "   [tid choice]\n";
        // The underlying tuple (without the tid) may itself be derived.
        Tuple base(p.tuple.begin(), p.tuple.end() - 1);
        if (store.Lookup(p.predicate, base) != nullptr) {
          ExplainRec(store, symbols, p.predicate, base, is_leaf, depth + 2,
                     max_depth, on_path, out);
        }
        break;
      }
      case Premise::Kind::kNegation:
        *out += child_indent + "not " + p.predicate +
                TupleToString(p.tuple, symbols) + "   [absent]\n";
        break;
      case Premise::Kind::kBuiltin:
        *out += child_indent + p.builtin_text + "   [built-in]\n";
        break;
    }
  }
  on_path->erase(key);
}

}  // namespace

std::string ExplainFact(const ProvenanceStore& store,
                        const SymbolTable& symbols, const std::string& pred,
                        const Tuple& tuple,
                        const std::function<bool(const std::string&,
                                                 const Tuple&)>& is_leaf,
                        int max_depth) {
  std::string out;
  std::set<std::pair<std::string, Tuple>> on_path;
  ExplainRec(store, symbols, pred, tuple, is_leaf, 0, max_depth, &on_path,
             &out);
  return out;
}

}  // namespace idlog
