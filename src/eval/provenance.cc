#include "eval/provenance.h"

#include <functional>
#include <set>
#include <utility>

namespace idlog {

namespace {

size_t ApproxPremiseBytes(const Premise& p) {
  return sizeof(Premise) + p.predicate.size() + p.builtin_text.size() +
         p.group.size() * sizeof(int) + p.tuple.size() * sizeof(Value);
}

}  // namespace

void ProvenanceStore::Clear() {
  nodes_.clear();
  premise_arena_.clear();
  pred_names_.clear();
  pred_ids_.clear();
  index_.clear();
  bytes_ = 0;
}

ProvenanceStore::PredId ProvenanceStore::InternPredicate(
    std::string_view pred) {
  auto it = pred_ids_.find(std::string(pred));
  if (it != pred_ids_.end()) return it->second;
  PredId id = static_cast<PredId>(pred_names_.size());
  pred_names_.emplace_back(pred);
  pred_ids_.emplace(pred_names_.back(), id);
  bytes_ += 2 * pred.size() + sizeof(PredId);
  return id;
}

ProvenanceStore::PredId ProvenanceStore::FindPredicate(
    std::string_view pred) const {
  auto it = pred_ids_.find(std::string(pred));
  return it == pred_ids_.end() ? kNoPred : it->second;
}

size_t ProvenanceStore::Record(const std::string& pred, const Tuple& tuple,
                               int clause_index,
                               std::vector<Premise> premises) {
  // Delta over bytes_ rather than the id-keyed Record's return so a
  // first-time predicate's interning bytes are charged too.
  const size_t before = bytes_;
  PredId id = InternPredicate(pred);
  (void)Record(id, tuple, clause_index, std::move(premises));
  return bytes_ - before;
}

size_t ProvenanceStore::Record(PredId pred, const Tuple& tuple,
                               int clause_index,
                               std::vector<Premise> premises) {
  auto [it, inserted] = index_.try_emplace(
      Key(pred, tuple), static_cast<uint32_t>(nodes_.size()));
  if (!inserted) return 0;  // First derivation wins.
  size_t added = sizeof(Node) + 2 * tuple.size() * sizeof(Value);
  Node n;
  n.pred = pred;
  n.deriv.clause_index = clause_index;
  n.deriv.premise_begin = static_cast<uint32_t>(premise_arena_.size());
  n.deriv.premise_count = static_cast<uint32_t>(premises.size());
  n.tuple = tuple;
  for (Premise& p : premises) {
    added += ApproxPremiseBytes(p);
    premise_arena_.push_back(std::move(p));
  }
  nodes_.push_back(std::move(n));
  bytes_ += added;
  return added;
}

const Derivation* ProvenanceStore::Lookup(const std::string& pred,
                                          const Tuple& tuple) const {
  PredId id = FindPredicate(pred);
  if (id == kNoPred) return nullptr;
  return Lookup(id, tuple);
}

const Derivation* ProvenanceStore::Lookup(PredId pred,
                                          const Tuple& tuple) const {
  auto it = index_.find(Key(pred, tuple));
  return it == index_.end() ? nullptr : &nodes_[it->second].deriv;
}

size_t ProvenanceStore::Absorb(ProvenanceStore* other) {
  // Return the exact bytes_ delta (not the sum of Record returns) so
  // predicates interned here for the first time are charged as well.
  const size_t before = bytes_;
  // Memoized remap of the other store's predicate ids into ours.
  std::vector<PredId> remap(other->pred_names_.size(), kNoPred);
  for (Node& n : other->nodes_) {
    PredId& mapped = remap[n.pred];
    if (mapped == kNoPred) {
      mapped = InternPredicate(other->pred_names_[n.pred]);
    }
    std::vector<Premise> premises;
    premises.reserve(n.deriv.premise_count);
    for (uint32_t i = 0; i < n.deriv.premise_count; ++i) {
      premises.push_back(
          std::move(other->premise_arena_[n.deriv.premise_begin + i]));
    }
    (void)Record(mapped, n.tuple, n.deriv.clause_index,
                 std::move(premises));
  }
  other->Clear();
  return bytes_ - before;
}

size_t ProvenanceStore::AbsorbMerged(
    const std::vector<ProvenanceStore*>& parts,
    const std::vector<const std::vector<uint64_t>*>& orders) {
  const size_t before = bytes_;
  std::vector<size_t> cursor(parts.size(), 0);
  std::vector<std::vector<PredId>> remap(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) {
    remap[p].assign(parts[p]->pred_names_.size(), kNoPred);
    if (orders[p]->size() != parts[p]->nodes_.size()) {
      // Tag bookkeeping out of sync — should be unreachable, but a
      // sequential absorb is a safe (order-degraded) fallback.
      for (ProvenanceStore* part : parts) (void)Absorb(part);
      return bytes_ - before;
    }
  }
  while (true) {
    size_t best = parts.size();
    uint64_t best_tag = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      if (cursor[p] >= parts[p]->nodes_.size()) continue;
      uint64_t tag = (*orders[p])[cursor[p]];
      // Ties cannot occur across parts (a delta row has one owner);
      // within a part, tags are non-decreasing by construction.
      if (best == parts.size() || tag < best_tag) {
        best = p;
        best_tag = tag;
      }
    }
    if (best == parts.size()) break;
    ProvenanceStore& src = *parts[best];
    Node& n = src.nodes_[cursor[best]++];
    PredId& mapped = remap[best][n.pred];
    if (mapped == kNoPred) {
      mapped = InternPredicate(src.pred_names_[n.pred]);
    }
    std::vector<Premise> premises;
    premises.reserve(n.deriv.premise_count);
    for (uint32_t i = 0; i < n.deriv.premise_count; ++i) {
      premises.push_back(
          std::move(src.premise_arena_[n.deriv.premise_begin + i]));
    }
    (void)Record(mapped, n.tuple, n.deriv.clause_index,
                 std::move(premises));
  }
  for (ProvenanceStore* part : parts) part->Clear();
  return bytes_ - before;
}

namespace {

void ExplainRec(const ProvenanceStore& store, const SymbolTable& symbols,
                const std::string& pred, const Tuple& tuple,
                const std::function<bool(const std::string&,
                                         const Tuple&)>& is_leaf,
                int depth, int max_depth,
                std::set<std::pair<std::string, Tuple>>* on_path,
                std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out += indent + pred + TupleToString(tuple, symbols);

  const Derivation* d = store.Lookup(pred, tuple);
  if (d == nullptr) {
    *out += is_leaf(pred, tuple) ? "   [database fact]\n"
                                 : "   [underivable]\n";
    return;
  }
  auto key = std::make_pair(pred, tuple);
  if (on_path->count(key) > 0) {
    *out += "   [cycle — already being explained]\n";
    return;
  }
  if (depth >= max_depth) {
    *out += "   [... depth limit]\n";
    return;
  }
  *out += "   <= clause #" + std::to_string(d->clause_index) + "\n";
  on_path->insert(key);
  const Premise* premises = store.premises(*d);
  for (uint32_t pi = 0; pi < d->premise_count; ++pi) {
    const Premise& p = premises[pi];
    std::string child_indent(static_cast<size_t>(depth + 1) * 2, ' ');
    switch (p.kind) {
      case Premise::Kind::kFact:
        ExplainRec(store, symbols, p.predicate, p.tuple, is_leaf, depth + 1,
                   max_depth, on_path, out);
        break;
      case Premise::Kind::kIdFact: {
        *out += child_indent + p.predicate + "[";
        for (size_t i = 0; i < p.group.size(); ++i) {
          if (i > 0) *out += ",";
          *out += std::to_string(p.group[i] + 1);
        }
        *out += "]" + TupleToString(p.tuple, symbols) + "   [tid choice]\n";
        // The underlying tuple (without the tid) may itself be derived.
        Tuple base(p.tuple.begin(), p.tuple.end() - 1);
        if (store.Lookup(p.predicate, base) != nullptr) {
          ExplainRec(store, symbols, p.predicate, base, is_leaf, depth + 2,
                     max_depth, on_path, out);
        }
        break;
      }
      case Premise::Kind::kNegation:
        *out += child_indent + "not " + p.predicate +
                TupleToString(p.tuple, symbols) + "   [absent]\n";
        break;
      case Premise::Kind::kBuiltin:
        *out += child_indent + p.builtin_text + "   [built-in]\n";
        break;
    }
  }
  on_path->erase(key);
}

}  // namespace

std::string ExplainFact(const ProvenanceStore& store,
                        const SymbolTable& symbols, const std::string& pred,
                        const Tuple& tuple,
                        const std::function<bool(const std::string&,
                                                 const Tuple&)>& is_leaf,
                        int max_depth) {
  std::string out;
  std::set<std::pair<std::string, Tuple>> on_path;
  ExplainRec(store, symbols, pred, tuple, is_leaf, 0, max_depth, &on_path,
             &out);
  return out;
}

}  // namespace idlog
