#ifndef IDLOG_EVAL_PROVENANCE_H_
#define IDLOG_EVAL_PROVENANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "common/value.h"

namespace idlog {

/// One premise used by a rule firing.
struct Premise {
  enum class Kind : uint8_t {
    kFact,      ///< Positive ordinary fact (EDB or derived).
    kIdFact,    ///< Tuple of a materialized ID-relation (a leaf: its
                ///< tid comes from the run's ID-function choice).
    kNegation,  ///< A fact whose absence was checked.
    kBuiltin,   ///< A satisfied built-in constraint.
  };
  Kind kind = Kind::kFact;
  std::string predicate;       ///< For kBuiltin: rendered text instead.
  std::vector<int> group;      ///< kIdFact only.
  Tuple tuple;                 ///< Empty for kBuiltin.
  std::string builtin_text;    ///< kBuiltin only.
};

/// The first recorded derivation of a fact: which clause fired, plus a
/// span into the store's shared premise arena. Resolve the span with
/// ProvenanceStore::premises().
struct Derivation {
  int clause_index = -1;
  uint32_t premise_begin = 0;
  uint32_t premise_count = 0;
};

/// Records the first derivation of every fact inserted during a run.
/// Facts present in the database and ID-relation tuples are leaves.
///
/// Layout: derivations live in an append-only arena (one node per
/// fact = clause index + premise span into a shared premise pool),
/// keyed by interned predicate id + tuple, so recording never copies
/// predicate strings per fact and iteration order is recording order —
/// which is what makes parallel-merge output byte-identical to a
/// serial run (see Absorb).
///
/// Not thread-safe; parallel workers record into private stores that
/// the coordinator absorbs in serial task order.
class ProvenanceStore {
 public:
  /// Dense id of a predicate interned by this store. The engine's
  /// SymbolTable interns only data constants, so the store keeps its
  /// own predicate interner.
  using PredId = uint32_t;
  static constexpr PredId kNoPred = UINT32_MAX;

  ProvenanceStore() = default;
  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;
  ProvenanceStore(ProvenanceStore&&) = default;
  ProvenanceStore& operator=(ProvenanceStore&&) = default;

  void Clear();

  /// Returns the id of `pred`, interning it if new.
  PredId InternPredicate(std::string_view pred);
  /// Returns the id of `pred` or kNoPred if it was never interned.
  PredId FindPredicate(std::string_view pred) const;
  /// Spelling of an interned predicate. `id` must be valid.
  const std::string& PredicateName(PredId id) const {
    return pred_names_[id];
  }
  /// Number of distinct predicates interned (stays O(#predicates)
  /// however many facts are recorded — the key holds an id, not a
  /// string copy).
  size_t num_interned_predicates() const { return pred_names_.size(); }

  /// Keeps only the first derivation per (pred, tuple). Returns the
  /// exact growth of approx_bytes() — node bytes plus any predicate
  /// interning (0 for a duplicate of an already-interned predicate) —
  /// so governor charges reconcile byte-for-byte with the store (the
  /// dbstats sum invariant).
  size_t Record(const std::string& pred, const Tuple& tuple,
                int clause_index, std::vector<Premise> premises);
  /// Id-keyed fast path: excludes interning (the caller interned the
  /// id itself and must account that growth via approx_bytes deltas).
  size_t Record(PredId pred, const Tuple& tuple, int clause_index,
                std::vector<Premise> premises);

  /// Returns the derivation or nullptr (leaf / unknown). The pointer
  /// is valid until the next Record/Absorb/Clear.
  const Derivation* Lookup(const std::string& pred,
                           const Tuple& tuple) const;
  const Derivation* Lookup(PredId pred, const Tuple& tuple) const;

  /// Premise span of a recorded derivation (premise_count entries).
  const Premise* premises(const Derivation& d) const {
    return premise_arena_.data() + d.premise_begin;
  }

  /// Adopts `other`'s derivations in `other`'s recording order,
  /// first-derivation-wins against what this store already holds.
  /// Absorbing per-task stores in serial task order therefore yields
  /// the exact store a serial run would have produced. Returns the
  /// exact growth of approx_bytes() (interning included); leaves
  /// `other` cleared.
  size_t Absorb(ProvenanceStore* other);

  /// Adopts the stores of one partitioned task's parts as a single
  /// logical absorb: nodes are replayed in ascending order-tag (the
  /// delta-row ordinal each record was tagged with at evaluation time,
  /// `orders[p]` running parallel to part p's recording order). A delta
  /// row is owned by exactly one partition, so the tags K-way-merge
  /// without ties into the serial recording order — the store ends up
  /// byte-identical for every partition count. `orders[p]` must have
  /// one entry per node of `parts[p]`. Returns the exact growth of
  /// approx_bytes() (interning included); leaves every part cleared.
  size_t AbsorbMerged(
      const std::vector<ProvenanceStore*>& parts,
      const std::vector<const std::vector<uint64_t>*>& orders);

  size_t size() const { return nodes_.size(); }
  /// Total premises across all recorded derivations.
  size_t num_premises() const { return premise_arena_.size(); }
  /// Approximate retained bytes (arena + keys), for governor
  /// accounting and the provenance.bytes gauge.
  size_t approx_bytes() const { return bytes_; }

  /// Read-only view of one recorded derivation, in recording order
  /// (the snapshot writer iterates these; decode replays Record in
  /// the same order, so round-trips preserve the arena byte-for-byte).
  struct NodeView {
    PredId pred;
    const Tuple& tuple;
    int clause_index;
    const Premise* premises;
    uint32_t premise_count;
  };
  NodeView node(size_t i) const {
    const Node& n = nodes_[i];
    return NodeView{n.pred, n.tuple, n.deriv.clause_index,
                    premise_arena_.data() + n.deriv.premise_begin,
                    n.deriv.premise_count};
  }

 private:
  struct Node {
    Derivation deriv;
    PredId pred = kNoPred;
    Tuple tuple;
  };
  using Key = std::pair<PredId, Tuple>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashCombine(TupleHash{}(k.second),
                         static_cast<size_t>(k.first) * 0x9E3779B9u);
    }
  };

  std::vector<Node> nodes_;             ///< Append-only derivation arena.
  std::vector<Premise> premise_arena_;  ///< Concatenated premise spans.
  std::vector<std::string> pred_names_;
  std::unordered_map<std::string, PredId> pred_ids_;
  std::unordered_map<Key, uint32_t, KeyHash> index_;
  size_t bytes_ = 0;
};

/// Renders a derivation tree for `pred(tuple)` as indented text. Leaves
/// are annotated "[database fact]", "[tid choice]", "[absent]" or the
/// built-in constraint; repeated subtrees and depth overruns are
/// elided. Returns NotFound if the fact has no recorded derivation and
/// is not marked as a leaf by the caller's `is_leaf` predicate.
std::string ExplainFact(const ProvenanceStore& store,
                        const SymbolTable& symbols, const std::string& pred,
                        const Tuple& tuple,
                        const std::function<bool(const std::string&,
                                                 const Tuple&)>& is_leaf,
                        int max_depth = 32);

}  // namespace idlog

#endif  // IDLOG_EVAL_PROVENANCE_H_
