#ifndef IDLOG_EVAL_PROVENANCE_H_
#define IDLOG_EVAL_PROVENANCE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "common/value.h"

namespace idlog {

/// One premise used by a rule firing.
struct Premise {
  enum class Kind : uint8_t {
    kFact,      ///< Positive ordinary fact (EDB or derived).
    kIdFact,    ///< Tuple of a materialized ID-relation (a leaf: its
                ///< tid comes from the run's ID-function choice).
    kNegation,  ///< A fact whose absence was checked.
    kBuiltin,   ///< A satisfied built-in constraint.
  };
  Kind kind = Kind::kFact;
  std::string predicate;       ///< For kBuiltin: rendered text instead.
  std::vector<int> group;      ///< kIdFact only.
  Tuple tuple;                 ///< Empty for kBuiltin.
  std::string builtin_text;    ///< kBuiltin only.
};

/// The first recorded derivation of a fact: which clause fired with
/// which premises.
struct Derivation {
  int clause_index = -1;
  std::vector<Premise> premises;
};

/// Records the first derivation of every fact inserted during a run.
/// Facts present in the database and ID-relation tuples are leaves.
class ProvenanceStore {
 public:
  ProvenanceStore() = default;
  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;

  void Clear() { derivations_.clear(); }

  /// Keeps only the first derivation per (pred, tuple).
  void Record(const std::string& pred, const Tuple& tuple,
              int clause_index, std::vector<Premise> premises);

  /// Returns the derivation or nullptr (leaf / unknown).
  const Derivation* Lookup(const std::string& pred,
                           const Tuple& tuple) const;

  size_t size() const { return derivations_.size(); }

 private:
  std::map<std::pair<std::string, Tuple>, Derivation> derivations_;
};

/// Renders a derivation tree for `pred(tuple)` as indented text. Leaves
/// are annotated "[database fact]", "[tid choice]", "[absent]" or the
/// built-in constraint; repeated subtrees and depth overruns are
/// elided. Returns NotFound if the fact has no recorded derivation and
/// is not marked as a leaf by the caller's `is_leaf` predicate.
std::string ExplainFact(const ProvenanceStore& store,
                        const SymbolTable& symbols, const std::string& pred,
                        const Tuple& tuple,
                        const std::function<bool(const std::string&,
                                                 const Tuple&)>& is_leaf,
                        int max_depth = 32);

}  // namespace idlog

#endif  // IDLOG_EVAL_PROVENANCE_H_
