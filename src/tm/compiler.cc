#include "tm/compiler.h"

#include "ast/program_builder.h"

namespace idlog {

namespace {

Term V(const char* name) { return Term::Var(name); }
Term N(int64_t n) { return Term::Number(n); }

Atom A(const char* pred, std::vector<Term> args) {
  return Atom::Ordinary(pred, std::move(args));
}
Literal P(Atom a) { return Literal::Pos(std::move(a)); }
Literal Neg(Atom a) { return Literal::Neg(std::move(a)); }
Literal Succ(Term a, Term b) {
  return Literal::Pos(
      Atom::Builtin(BuiltinKind::kSucc, {std::move(a), std::move(b)}));
}
Literal Lt(Term a, Term b) {
  return Literal::Pos(
      Atom::Builtin(BuiltinKind::kLt, {std::move(a), std::move(b)}));
}

}  // namespace

Status CompiledTm::PopulateDatabase(Database* database) const {
  for (const auto& [pred, tuple] : facts) {
    IDLOG_RETURN_NOT_OK(database->AddTuple(pred, tuple));
  }
  return Status::OK();
}

Result<CompiledTm> CompileTm(const TuringMachine& tm,
                             const std::vector<int>& input_tape,
                             uint64_t step_bound) {
  IDLOG_RETURN_NOT_OK(tm.Validate());
  for (int s : input_tape) {
    if (s < 0 || s >= tm.num_symbols) {
      return Status::InvalidArgument("input symbol out of range");
    }
  }

  CompiledTm out;
  out.step_bound = static_cast<int64_t>(step_bound);
  // The head starts at 0 and can move one cell right per step.
  out.max_pos =
      static_cast<int64_t>(input_tape.size()) + out.step_bound + 1;
  const int branching = tm.MaxBranching();

  // ----- EDB facts ------------------------------------------------------
  auto fact = [&](const char* pred, Tuple t) {
    out.facts.emplace_back(pred, std::move(t));
  };
  fact("steps", {Value::Number(out.step_bound)});
  fact("start", {Value::Number(tm.start_state)});
  fact("head0", {Value::Number(0)});
  for (int q : tm.accepting) fact("accept_state", {Value::Number(q)});
  for (int c = 0; c < branching; ++c) fact("cand", {Value::Number(c)});

  // Full initial tape 0..max_pos, blanks explicit — the simulation then
  // needs no negation over recursive predicates.
  for (int64_t p = 0; p <= out.max_pos; ++p) {
    int sym =
        p < static_cast<int64_t>(input_tape.size())
            ? input_tape[static_cast<size_t>(p)]
            : 0;
    fact("tape0", {Value::Number(p), Value::Number(sym)});
  }

  // Padded transition table: trans(Q, S, C, Q2, S2, D).
  for (const auto& [key, alts] : tm.delta) {
    auto [q, s] = key;
    for (int c = 0; c < branching; ++c) {
      const TmTransition& t = alts[static_cast<size_t>(c) % alts.size()];
      fact("trans",
           {Value::Number(q), Value::Number(s), Value::Number(c),
            Value::Number(t.next_state), Value::Number(t.write_symbol),
            Value::Number(static_cast<int>(t.move))});
    }
  }

  // ----- Program --------------------------------------------------------
  Program& prog = out.program;
  auto rule = [&](Atom head, std::vector<Literal> body) {
    prog.GetOrAddPredicate(head.predicate, head.arity());
    for (const Literal& lit : body) {
      if (lit.atom.kind == AtomKind::kOrdinary) {
        prog.GetOrAddPredicate(lit.atom.predicate, lit.atom.arity());
      } else if (lit.atom.kind == AtomKind::kId) {
        prog.GetOrAddPredicate(lit.atom.predicate, lit.atom.base_arity());
      }
    }
    prog.clauses.push_back(Clause{std::move(head), std::move(body)});
  };

  // time(0..N).
  rule(A("time", {N(0)}), {P(A("steps", {V("B")}))});
  rule(A("time", {V("T2")}),
       {P(A("time", {V("T")})), P(A("steps", {V("B")})),
        Lt(V("T"), V("B")), Succ(V("T"), V("T2"))});

  // One guessed choice index per step.
  rule(A("guess", {V("T"), V("C")}),
       {P(A("time", {V("T")})), P(A("cand", {V("C")}))});
  rule(A("pick", {V("T"), V("C")}),
       {P(Atom::Id("guess", {0}, {V("T"), V("C"), N(0)}))});

  // Initial configuration.
  rule(A("conf", {N(0), V("H"), V("Q")}),
       {P(A("head0", {V("H")})), P(A("start", {V("Q")}))});
  rule(A("tape", {N(0), V("P"), V("S")}),
       {P(A("tape0", {V("P"), V("S")}))});

  // One machine step: fires only below the bound and outside accepting
  // states; accepting states absorb (rewrite same symbol, stay).
  rule(A("step",
         {V("T"), V("P"), V("Q"), V("Q2"), V("S2"), V("D")}),
       {P(A("conf", {V("T"), V("P"), V("Q")})),
        P(A("tape", {V("T"), V("P"), V("S")})),
        P(A("pick", {V("T"), V("C")})),
        P(A("trans",
            {V("Q"), V("S"), V("C"), V("Q2"), V("S2"), V("D")})),
        P(A("steps", {V("B")})), Lt(V("T"), V("B")),
        Neg(A("accept_state", {V("Q")}))});
  rule(A("step", {V("T"), V("P"), V("Q"), V("Q"), V("S"), N(1)}),
       {P(A("conf", {V("T"), V("P"), V("Q")})),
        P(A("tape", {V("T"), V("P"), V("S")})),
        P(A("accept_state", {V("Q")})),
        P(A("steps", {V("B")})), Lt(V("T"), V("B"))});

  // Head movement (left clamps at cell 0).
  rule(A("conf", {V("T2"), V("P2"), V("Q2")}),
       {P(A("step", {V("T"), V("P"), V("Q"), V("Q2"), V("S2"), N(0)})),
        Succ(V("T"), V("T2")), Succ(V("P2"), V("P"))});
  rule(A("conf", {V("T2"), N(0), V("Q2")}),
       {P(A("step", {V("T"), N(0), V("Q"), V("Q2"), V("S2"), N(0)})),
        Succ(V("T"), V("T2"))});
  rule(A("conf", {V("T2"), V("P"), V("Q2")}),
       {P(A("step", {V("T"), V("P"), V("Q"), V("Q2"), V("S2"), N(1)})),
        Succ(V("T"), V("T2"))});
  rule(A("conf", {V("T2"), V("P2"), V("Q2")}),
       {P(A("step", {V("T"), V("P"), V("Q"), V("Q2"), V("S2"), N(2)})),
        Succ(V("T"), V("T2")), Succ(V("P"), V("P2"))});

  // Tape update: the written cell changes, everything else carries over.
  rule(A("tape", {V("T2"), V("P"), V("S2")}),
       {P(A("step", {V("T"), V("P"), V("Q"), V("Q2"), V("S2"), V("D")})),
        Succ(V("T"), V("T2"))});
  rule(A("tape", {V("T2"), V("P2"), V("S")}),
       {P(A("tape", {V("T"), V("P2"), V("S")})),
        P(A("step", {V("T"), V("P"), V("Q"), V("Q2"), V("S2"), V("D")})),
        Literal::Pos(Atom::Builtin(BuiltinKind::kNe, {V("P2"), V("P")})),
        Succ(V("T"), V("T2"))});

  // Acceptance and final tape at exactly time N.
  rule(A("accepts", {}),
       {P(A("conf", {V("T"), V("P"), V("Q")})),
        P(A("steps", {V("T")})), P(A("accept_state", {V("Q")}))});
  rule(A("out_tape", {V("P"), V("S")}),
       {P(A("tape", {V("T"), V("P"), V("S")})),
        P(A("steps", {V("T")}))});

  IDLOG_RETURN_NOT_OK(InferPredicateTypes(&prog));
  return out;
}

}  // namespace idlog
