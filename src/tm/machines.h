#ifndef IDLOG_TM_MACHINES_H_
#define IDLOG_TM_MACHINES_H_

#include "tm/machine.h"

namespace idlog {
namespace machines {

/// A small zoo of machines used by tests, benches and examples.
/// Symbol conventions: 0 = blank; for binary-alphabet machines symbol 1
/// encodes '0' and symbol 2 encodes '1' (matching the tape encoder's
/// kZero/kOne).

/// Deterministic: flips 1<->2 across the input and accepts at the first
/// blank. States: 0 scan, 1 accept.
TuringMachine Flip();

/// Deterministic: accepts iff the number of 2s is even (rejects by
/// sticking on odd parity at the blank). States: 0 even, 1 odd,
/// 2 accept.
TuringMachine EvenParity();

/// Deterministic: binary increment of a most-significant-bit-first
/// number. The head runs to the end of the input, then carries back:
/// trailing 2s ('1') become 1s ('0') until a 1 ('0') or the left wall
/// absorbs the carry. Accepts when the carry resolves; the final tape
/// holds the incremented number (a shifted result 10..0 overflows into
/// cell 0 only when the input is all ones — callers should leave a
/// leading '0'). States: 0 seek-end, 1 carry, 2 accept.
TuringMachine BinaryIncrement();

/// Non-deterministic: accepts iff the input (over {1,2}) contains "2 2"
/// somewhere — by *guessing* the position: in state 0 it may either
/// keep scanning or commit to "the pair starts here". States: 0 scan,
/// 1 expect-second-2, 2 accept.
TuringMachine GuessDoubleOne();

/// Non-deterministic: the branch-at-every-cell machine used by the
/// compiler tests: accepts iff it ever guesses to switch lanes before
/// the blank. States: 0 lane A, 1 lane B, 2 accept.
TuringMachine GuessLaneSwitch();

}  // namespace machines
}  // namespace idlog

#endif  // IDLOG_TM_MACHINES_H_
