#include "tm/machine.h"

#include <algorithm>
#include <queue>

namespace idlog {

namespace {

struct Config {
  int state;
  int64_t head;
  std::vector<int> tape;

  bool operator<(const Config& o) const {
    if (state != o.state) return state < o.state;
    if (head != o.head) return head < o.head;
    return tape < o.tape;
  }
};

int ReadCell(const std::vector<int>& tape, int64_t pos) {
  if (pos < 0 || static_cast<size_t>(pos) >= tape.size()) return 0;
  return tape[static_cast<size_t>(pos)];
}

void WriteCell(std::vector<int>* tape, int64_t pos, int sym) {
  if (static_cast<size_t>(pos) >= tape->size()) {
    tape->resize(static_cast<size_t>(pos) + 1, 0);
  }
  (*tape)[static_cast<size_t>(pos)] = sym;
}

int64_t MovedHead(int64_t head, TmMove move) {
  switch (move) {
    case TmMove::kLeft: return head > 0 ? head - 1 : 0;
    case TmMove::kStay: return head;
    case TmMove::kRight: return head + 1;
  }
  return head;
}

}  // namespace

int TuringMachine::MaxBranching() const {
  int max_branch = 1;
  for (const auto& [key, alts] : delta) {
    (void)key;
    max_branch = std::max(max_branch, static_cast<int>(alts.size()));
  }
  return max_branch;
}

Status TuringMachine::Validate() const {
  if (num_states <= 0) return Status::InvalidArgument("no states");
  if (num_symbols <= 0) return Status::InvalidArgument("no symbols");
  if (start_state < 0 || start_state >= num_states) {
    return Status::InvalidArgument("start state out of range");
  }
  for (int q : accepting) {
    if (q < 0 || q >= num_states) {
      return Status::InvalidArgument("accepting state out of range");
    }
  }
  for (const auto& [key, alts] : delta) {
    auto [q, s] = key;
    if (q < 0 || q >= num_states || s < 0 || s >= num_symbols) {
      return Status::InvalidArgument("transition key out of range");
    }
    if (alts.empty()) {
      return Status::InvalidArgument("empty alternative list");
    }
    for (const TmTransition& t : alts) {
      if (t.next_state < 0 || t.next_state >= num_states ||
          t.write_symbol < 0 || t.write_symbol >= num_symbols) {
        return Status::InvalidArgument("transition target out of range");
      }
    }
  }
  return Status::OK();
}

Result<TmRunResult> RunMachine(const TuringMachine& tm,
                               const std::vector<int>& input_tape,
                               uint64_t max_steps,
                               const std::vector<uint32_t>& choice_script) {
  IDLOG_RETURN_NOT_OK(tm.Validate());
  for (int s : input_tape) {
    if (s < 0 || s >= tm.num_symbols) {
      return Status::InvalidArgument("input symbol out of range");
    }
  }

  TmRunResult result;
  Config c{tm.start_state, 0, input_tape};
  for (uint64_t step = 0; step < max_steps; ++step) {
    if (tm.accepting.count(c.state) > 0) {
      result.accepted = true;
      result.halted = true;
      break;
    }
    auto it = tm.delta.find({c.state, ReadCell(c.tape, c.head)});
    if (it == tm.delta.end()) {
      result.halted = true;
      break;
    }
    uint32_t choice =
        step < choice_script.size() ? choice_script[step] : 0u;
    const TmTransition& t =
        it->second[choice % it->second.size()];
    WriteCell(&c.tape, c.head, t.write_symbol);
    c.head = MovedHead(c.head, t.move);
    c.state = t.next_state;
    ++result.steps_taken;
  }
  if (!result.halted && tm.accepting.count(c.state) > 0) {
    // Accepting exactly at the bound still counts.
    result.accepted = true;
    result.halted = true;
  }
  result.final_state = c.state;
  result.head = c.head;
  result.final_tape = std::move(c.tape);
  return result;
}

Result<bool> AcceptsWithinBound(const TuringMachine& tm,
                                const std::vector<int>& input_tape,
                                uint64_t max_steps, uint64_t max_configs) {
  IDLOG_RETURN_NOT_OK(tm.Validate());
  std::set<Config> seen;
  std::queue<std::pair<Config, uint64_t>> frontier;
  frontier.push({Config{tm.start_state, 0, input_tape}, 0});

  while (!frontier.empty()) {
    auto [c, depth] = frontier.front();
    frontier.pop();
    if (tm.accepting.count(c.state) > 0) return true;
    if (depth >= max_steps) continue;
    if (!seen.insert(c).second) continue;
    if (seen.size() > max_configs) {
      return Status::ResourceExhausted("configuration budget exhausted");
    }
    auto it = tm.delta.find({c.state, ReadCell(c.tape, c.head)});
    if (it == tm.delta.end()) continue;
    for (const TmTransition& t : it->second) {
      Config next = c;
      WriteCell(&next.tape, next.head, t.write_symbol);
      next.head = MovedHead(next.head, t.move);
      next.state = t.next_state;
      frontier.push({std::move(next), depth + 1});
    }
  }
  return false;
}

}  // namespace idlog
