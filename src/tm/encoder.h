#ifndef IDLOG_TM_ENCODER_H_
#define IDLOG_TM_ENCODER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/database.h"

namespace idlog {

/// Tape alphabet used by the Section 3.1 database encoding. Symbol 0 is
/// the blank; the distinguished symbols the paper lists are mapped to
/// small integers.
enum TapeSymbol : int {
  kBlank = 0,
  kZero = 1,      ///< '0'
  kOne = 2,       ///< '1'
  kComma = 3,     ///< ','
  kLParenSym = 4, ///< '('
  kRParenSym = 5, ///< ')'
  kLBrackSym = 6, ///< '['
  kRBrackSym = 7, ///< ']'
};
constexpr int kTapeAlphabetSize = 8;

/// Encodes a database as the ordered-list tape encoding of Section 3.1:
/// relations (in `relation_order`) become bracketed tuple lists
///   [ (c,c) (c,c) ... ] [ ... ]
/// where each uninterpreted constant is the binary spelling of its
/// index in the u-domain enumeration order and each natural number its
/// binary spelling. The machine's genericity requirement — operate
/// independently of the encoding of the constants — corresponds to
/// independence from the chosen enumeration order.
Result<std::vector<int>> EncodeDatabaseToTape(
    const Database& database, const std::vector<std::string>& relation_order);

/// Decodes one bracketed tuple list (as produced above) back into rows
/// of binary-encoded values; each value is returned as its numeric
/// index. Inverse of the encoder for a single relation.
Result<std::vector<std::vector<int64_t>>> DecodeRelationFromTape(
    const std::vector<int>& tape, size_t* cursor);

/// Renders a tape as a printable string ("(10,11)" style) for tests and
/// demos.
std::string TapeToString(const std::vector<int>& tape);

}  // namespace idlog

#endif  // IDLOG_TM_ENCODER_H_
