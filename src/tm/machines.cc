#include "tm/machines.h"

namespace idlog {
namespace machines {

TuringMachine Flip() {
  TuringMachine tm;
  tm.num_states = 2;
  tm.num_symbols = 3;
  tm.start_state = 0;
  tm.accepting = {1};
  tm.delta[{0, 1}] = {{0, 2, TmMove::kRight}};
  tm.delta[{0, 2}] = {{0, 1, TmMove::kRight}};
  tm.delta[{0, 0}] = {{1, 0, TmMove::kStay}};
  return tm;
}

TuringMachine EvenParity() {
  TuringMachine tm;
  tm.num_states = 3;
  tm.num_symbols = 3;
  tm.start_state = 0;
  tm.accepting = {2};
  tm.delta[{0, 1}] = {{0, 1, TmMove::kRight}};
  tm.delta[{0, 2}] = {{1, 2, TmMove::kRight}};
  tm.delta[{1, 1}] = {{1, 1, TmMove::kRight}};
  tm.delta[{1, 2}] = {{0, 2, TmMove::kRight}};
  tm.delta[{0, 0}] = {{2, 0, TmMove::kStay}};
  return tm;
}

TuringMachine BinaryIncrement() {
  TuringMachine tm;
  tm.num_states = 3;
  tm.num_symbols = 3;
  tm.start_state = 0;
  tm.accepting = {2};
  // Seek the end of the number.
  tm.delta[{0, 1}] = {{0, 1, TmMove::kRight}};
  tm.delta[{0, 2}] = {{0, 2, TmMove::kRight}};
  tm.delta[{0, 0}] = {{1, 0, TmMove::kLeft}};
  // Carry: 1 ('0') -> 2 ('1') done; 2 ('1') -> 1 ('0') keep carrying.
  tm.delta[{1, 1}] = {{2, 2, TmMove::kStay}};
  tm.delta[{1, 2}] = {{1, 1, TmMove::kLeft}};
  // Carrying past the left end onto blank: write '1'.
  tm.delta[{1, 0}] = {{2, 2, TmMove::kStay}};
  return tm;
}

TuringMachine GuessDoubleOne() {
  TuringMachine tm;
  tm.num_states = 3;
  tm.num_symbols = 3;
  tm.start_state = 0;
  tm.accepting = {2};
  // Scanning: on '1' keep going; on '2' either keep going or commit.
  tm.delta[{0, 1}] = {{0, 1, TmMove::kRight}};
  tm.delta[{0, 2}] = {{0, 2, TmMove::kRight}, {1, 2, TmMove::kRight}};
  // Committed: the very next cell must be '2'.
  tm.delta[{1, 2}] = {{2, 2, TmMove::kStay}};
  // 1 on '1' or blank: stuck (this guess fails). 0 on blank: stuck.
  return tm;
}

TuringMachine GuessLaneSwitch() {
  TuringMachine tm;
  tm.num_states = 3;
  tm.num_symbols = 2;
  tm.start_state = 0;
  tm.accepting = {2};
  tm.delta[{0, 1}] = {{0, 1, TmMove::kRight}, {1, 1, TmMove::kRight}};
  tm.delta[{1, 1}] = {{1, 1, TmMove::kRight}};
  tm.delta[{1, 0}] = {{2, 0, TmMove::kStay}};
  return tm;
}

}  // namespace machines
}  // namespace idlog
