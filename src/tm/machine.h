#ifndef IDLOG_TM_MACHINE_H_
#define IDLOG_TM_MACHINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"

namespace idlog {

/// Head movement of a transition.
enum class TmMove : int { kLeft = 0, kStay = 1, kRight = 2 };

struct TmTransition {
  int next_state = 0;
  int write_symbol = 0;
  TmMove move = TmMove::kStay;
};

/// A non-deterministic Turing machine over a semi-infinite tape
/// [0, inf); symbol 0 is the blank. Moving left at cell 0 stays put.
/// A configuration whose state is accepting halts and accepts; a
/// configuration with no applicable transition halts and rejects.
///
/// This is the concrete stand-in for the paper's generic (domain)
/// Turing machines [HS89]: genericity is obtained by feeding it
/// encodings produced by EncodeDatabaseToTape, which depend only on the
/// *order* assigned to the domain, never on the constants themselves.
struct TuringMachine {
  int num_states = 0;
  int num_symbols = 1;  ///< Tape alphabet size; symbols are 0..n-1.
  int start_state = 0;
  std::set<int> accepting;
  /// (state, read symbol) -> alternatives. Missing key = stuck.
  std::map<std::pair<int, int>, std::vector<TmTransition>> delta;

  /// Largest number of alternatives of any (state, symbol) pair.
  int MaxBranching() const;

  Status Validate() const;
};

struct TmRunResult {
  bool accepted = false;
  bool halted = false;      ///< False if the step bound cut the run.
  uint64_t steps_taken = 0;
  int final_state = 0;
  int64_t head = 0;
  std::vector<int> final_tape;  ///< Cells 0..max written position.
};

/// Runs one branch of the machine for at most `max_steps` steps. At a
/// branching point with k alternatives and script entry c, alternative
/// c % k is taken (the same padding convention the IDLOG compiler
/// uses); an exhausted script takes alternative 0.
Result<TmRunResult> RunMachine(const TuringMachine& tm,
                               const std::vector<int>& input_tape,
                               uint64_t max_steps,
                               const std::vector<uint32_t>& choice_script = {});

/// True iff some branch accepts within `max_steps` steps (breadth-first
/// search over configurations, capped at `max_configs` distinct ones).
Result<bool> AcceptsWithinBound(const TuringMachine& tm,
                                const std::vector<int>& input_tape,
                                uint64_t max_steps,
                                uint64_t max_configs = 1000000);

}  // namespace idlog

#endif  // IDLOG_TM_MACHINE_H_
