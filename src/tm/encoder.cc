#include "tm/encoder.h"

#include <algorithm>
#include <map>

namespace idlog {

namespace {

void AppendBinary(int64_t value, std::vector<int>* tape) {
  if (value == 0) {
    tape->push_back(kZero);
    return;
  }
  std::vector<int> bits;
  while (value > 0) {
    bits.push_back((value & 1) != 0 ? kOne : kZero);
    value >>= 1;
  }
  std::reverse(bits.begin(), bits.end());
  tape->insert(tape->end(), bits.begin(), bits.end());
}

}  // namespace

Result<std::vector<int>> EncodeDatabaseToTape(
    const Database& database,
    const std::vector<std::string>& relation_order) {
  // Enumerate the u-domain: index of each symbol in sorted id order.
  std::map<SymbolId, int64_t> domain_index;
  for (SymbolId id : database.u_domain()) {
    int64_t idx = static_cast<int64_t>(domain_index.size());
    domain_index[id] = idx;
  }

  std::vector<int> tape;
  for (const std::string& name : relation_order) {
    IDLOG_ASSIGN_OR_RETURN(const Relation* rel, database.Get(name));
    tape.push_back(kLBrackSym);
    for (const Tuple& t : rel->SortedTuples()) {
      tape.push_back(kLParenSym);
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) tape.push_back(kComma);
        if (t[i].is_number()) {
          AppendBinary(t[i].number(), &tape);
        } else {
          auto it = domain_index.find(t[i].symbol());
          if (it == domain_index.end()) {
            return Status::Internal("symbol missing from u-domain");
          }
          AppendBinary(it->second, &tape);
        }
      }
      tape.push_back(kRParenSym);
    }
    tape.push_back(kRBrackSym);
  }
  return tape;
}

Result<std::vector<std::vector<int64_t>>> DecodeRelationFromTape(
    const std::vector<int>& tape, size_t* cursor) {
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " at tape position " +
                                   std::to_string(*cursor));
  };
  if (*cursor >= tape.size() || tape[*cursor] != kLBrackSym) {
    return error("expected '['");
  }
  ++*cursor;

  std::vector<std::vector<int64_t>> rows;
  while (*cursor < tape.size() && tape[*cursor] == kLParenSym) {
    ++*cursor;
    std::vector<int64_t> row;
    int64_t value = 0;
    bool saw_digit = false;
    while (*cursor < tape.size()) {
      int sym = tape[*cursor];
      if (sym == kZero || sym == kOne) {
        value = value * 2 + (sym == kOne ? 1 : 0);
        saw_digit = true;
        ++*cursor;
      } else if (sym == kComma) {
        if (!saw_digit) return error("empty field");
        row.push_back(value);
        value = 0;
        saw_digit = false;
        ++*cursor;
      } else if (sym == kRParenSym) {
        if (!saw_digit) return error("empty field");
        row.push_back(value);
        ++*cursor;
        break;
      } else {
        return error("unexpected symbol inside tuple");
      }
    }
    rows.push_back(std::move(row));
  }
  if (*cursor >= tape.size() || tape[*cursor] != kRBrackSym) {
    return error("expected ']'");
  }
  ++*cursor;
  return rows;
}

std::string TapeToString(const std::vector<int>& tape) {
  std::string out;
  for (int sym : tape) {
    switch (sym) {
      case kBlank: out += '_'; break;
      case kZero: out += '0'; break;
      case kOne: out += '1'; break;
      case kComma: out += ','; break;
      case kLParenSym: out += '('; break;
      case kRParenSym: out += ')'; break;
      case kLBrackSym: out += '['; break;
      case kRBrackSym: out += ']'; break;
      default: out += '?'; break;
    }
  }
  return out;
}

}  // namespace idlog
