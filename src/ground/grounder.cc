#include "ground/grounder.h"

#include <algorithm>

#include "eval/builtin_eval.h"
#include "obs/trace.h"

namespace idlog {

namespace {

// Collects the clause's variables in first-occurrence order.
std::vector<std::string> ClauseVariables(const DisjunctiveClause& clause) {
  std::vector<std::string> vars;
  std::set<std::string> seen;
  auto visit = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable() && seen.insert(t.var_name()).second) {
        vars.push_back(t.var_name());
      }
    }
  };
  for (const Atom& a : clause.head) visit(a);
  for (const Literal& l : clause.body) visit(l.atom);
  return vars;
}

GroundAtom Instantiate(const Atom& atom,
                       const std::map<std::string, Value>& binding) {
  GroundAtom out;
  out.predicate = atom.predicate;
  for (const Term& t : atom.terms) {
    out.args.push_back(t.is_constant() ? t.value()
                                       : binding.at(t.var_name()));
  }
  return out;
}

}  // namespace

Result<DisjunctiveProgram> DisjunctiveFromProgram(const Program& program) {
  DisjunctiveProgram out;
  for (const Clause& clause : program.clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.atom.kind == AtomKind::kId ||
          lit.atom.kind == AtomKind::kChoice) {
        return Status::InvalidArgument(
            "ID-atoms and choice are not part of the disjunctive/stable "
            "baselines");
      }
    }
    DisjunctiveClause dc;
    dc.head.push_back(clause.head);
    dc.body = clause.body;
    out.clauses.push_back(std::move(dc));
  }
  return out;
}

Result<GroundProgram> GroundDisjunctive(const DisjunctiveProgram& program,
                                        const Database& database,
                                        uint64_t max_instantiations,
                                        ResourceGovernor* governor) {
  // Legacy cap as a governor-derived budget when no governor is given.
  ResourceGovernor local;
  ArmLegacyTupleCap(&local, max_instantiations);
  ResourceGovernor* gov = governor != nullptr ? governor : &local;
  gov->set_scope("grounder");
  TraceSpan span(gov->trace_sink(), "ground program", "ground");
  span.AddArg(TraceArg::Num("clauses", program.clauses.size()));
  // Universe: u-domain symbols plus every numeric constant in data or
  // program (by value).
  std::vector<Value> u_values;
  for (SymbolId id : database.u_domain()) {
    u_values.push_back(Value::Symbol(id));
  }
  std::set<int64_t> numbers;
  for (const std::string& name : database.relation_names()) {
    const Relation* rel = *database.Get(name);
    for (const Tuple& t : rel->tuples()) {
      for (const Value& v : t) {
        if (v.is_number()) numbers.insert(v.number());
      }
    }
  }
  std::set<SymbolId> program_symbols;
  for (const DisjunctiveClause& clause : program.clauses) {
    auto visit = [&](const Atom& atom) {
      for (const Term& t : atom.terms) {
        if (t.is_constant()) {
          if (t.value().is_number()) {
            numbers.insert(t.value().number());
          } else if (program_symbols.insert(t.value().symbol()).second) {
            u_values.push_back(t.value());
          }
        }
      }
    };
    for (const Atom& a : clause.head) visit(a);
    for (const Literal& l : clause.body) visit(l.atom);
  }
  // Drop duplicates with the database domain.
  std::sort(u_values.begin(), u_values.end());
  u_values.erase(std::unique(u_values.begin(), u_values.end()),
                 u_values.end());
  std::vector<Value> universe = u_values;
  for (int64_t n : numbers) universe.push_back(Value::Number(n));
  span.AddArg(TraceArg::Num("universe", universe.size()));

  GroundProgram out;
  for (const std::string& name : database.relation_names()) {
    const Relation* rel = *database.Get(name);
    for (const Tuple& t : rel->tuples()) {
      GroundAtom atom{name, t};
      out.base.insert(atom);
      // EDB tuples become disjunction-free facts.
      GroundClause fact;
      fact.head.push_back(std::move(atom));
      out.clauses.push_back(std::move(fact));
    }
  }

  for (const DisjunctiveClause& clause : program.clauses) {
    std::vector<std::string> vars = ClauseVariables(clause);
    std::map<std::string, Value> binding;

    // Depth-first over variable assignments.
    std::vector<size_t> cursor(vars.size(), 0);
    size_t depth = 0;
    while (true) {
      IDLOG_RETURN_NOT_OK(gov->CheckPoint());
      if (depth == vars.size()) {
        IDLOG_RETURN_NOT_OK(gov->OnDerived(1, 0));
        // Evaluate built-ins; keep the instantiation if none refutes.
        bool alive = true;
        GroundClause ground;
        for (const Literal& lit : clause.body) {
          if (lit.atom.kind == AtomKind::kBuiltin) {
            std::vector<Value> args;
            for (const Term& t : lit.atom.terms) {
              args.push_back(t.is_constant() ? t.value()
                                             : binding.at(t.var_name()));
            }
            if (BuiltinHolds(lit.atom.builtin, args) == lit.negated) {
              alive = false;
              break;
            }
            continue;
          }
          GroundAtom atom = Instantiate(lit.atom, binding);
          if (lit.negated) {
            ground.negative.push_back(std::move(atom));
          } else {
            ground.positive.push_back(std::move(atom));
          }
        }
        if (alive) {
          for (const Atom& h : clause.head) {
            GroundAtom atom = Instantiate(h, binding);
            out.base.insert(atom);
            ground.head.push_back(std::move(atom));
          }
          size_t atoms = ground.head.size() + ground.positive.size() +
                         ground.negative.size();
          IDLOG_RETURN_NOT_OK(
              gov->OnDerived(0, atoms * ApproxTupleBytes(2)));
          out.clauses.push_back(std::move(ground));
        }
        if (vars.empty()) break;
        --depth;  // backtrack
        ++cursor[depth];
      } else if (cursor[depth] >= universe.size()) {
        if (depth == 0) break;
        cursor[depth] = 0;
        --depth;
        ++cursor[depth];
      } else {
        binding[vars[depth]] = universe[cursor[depth]];
        ++depth;
        if (depth < vars.size()) cursor[depth] = 0;
      }
    }
  }
  span.AddArg(TraceArg::Num("ground_clauses", out.clauses.size()));
  span.AddArg(TraceArg::Num("base_atoms", out.base.size()));
  return out;
}

}  // namespace idlog
