#ifndef IDLOG_GROUND_GROUNDER_H_
#define IDLOG_GROUND_GROUNDER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/limits.h"
#include "common/status.h"
#include "storage/database.h"

namespace idlog {

/// A ground atom in flat form: predicate plus constant arguments.
struct GroundAtom {
  std::string predicate;
  Tuple args;

  bool operator<(const GroundAtom& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return args < o.args;
  }
  bool operator==(const GroundAtom& o) const {
    return predicate == o.predicate && args == o.args;
  }
};

/// One ground clause: disjunctive head (>= 1 atoms), positive body,
/// negative body. Built-ins are evaluated away during grounding.
struct GroundClause {
  std::vector<GroundAtom> head;
  std::vector<GroundAtom> positive;
  std::vector<GroundAtom> negative;
};

struct GroundProgram {
  std::vector<GroundClause> clauses;
  /// Every atom that can appear in a model: EDB facts + head atoms.
  std::set<GroundAtom> base;
};

/// Grounds `program` (DisjunctiveClause/DisjunctiveProgram are defined
/// in ast/ast.h; parse the surface syntax `a(X) | b(X) :- c(X).` with
/// ParseDisjunctiveProgram) against the active domain of `database` plus the
/// constants appearing in the program. Variable instantiation ranges
/// over the u-domain for sort-u positions and over the numeric
/// constants present for sort-i positions (so programs must be
/// range-restricted over finite data; built-ins are checked per
/// instantiation, not used as generators). Clauses whose body is
/// refuted by a built-in are dropped; satisfied built-ins disappear.
///
/// Resource governance: with `governor` set, every instantiation
/// checkpoints against it (deadline, cancellation) and every emitted
/// ground clause charges the tuple/memory budgets; `max_instantiations`
/// is then ignored. Without a governor the deprecated
/// `max_instantiations` cap still applies, implemented as a local
/// governor tuple budget (ResourceExhausted on overflow either way).
Result<GroundProgram> GroundDisjunctive(const DisjunctiveProgram& program,
                                        const Database& database,
                                        uint64_t max_instantiations = 1000000,
                                        ResourceGovernor* governor = nullptr);

/// Convenience: converts a plain single-head Program (ordinary atoms,
/// negation, built-ins) into a DisjunctiveProgram.
Result<DisjunctiveProgram> DisjunctiveFromProgram(const Program& program);

}  // namespace idlog

#endif  // IDLOG_GROUND_GROUNDER_H_
