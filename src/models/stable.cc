#include "models/stable.h"

#include <algorithm>

#include "obs/trace.h"

namespace idlog {

AtomSet LeastModel(const GroundProgram& ground) {
  AtomSet model;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GroundClause& clause : ground.clauses) {
      if (clause.head.size() != 1) continue;
      bool body_holds = true;
      for (const GroundAtom& a : clause.positive) {
        if (model.count(a) == 0) {
          body_holds = false;
          break;
        }
      }
      if (!body_holds) continue;
      if (model.insert(clause.head[0]).second) changed = true;
    }
  }
  return model;
}

Result<std::vector<AtomSet>> StableModels(const GroundProgram& ground,
                                          int max_candidate_atoms,
                                          ResourceGovernor* governor) {
  if (governor != nullptr) governor->set_scope("stable-model search");
  TraceSpan span(
      governor != nullptr ? governor->trace_sink() : nullptr,
      "stable-model search", "models");
  span.AddArg(TraceArg::Num("ground_clauses", ground.clauses.size()));
  // Facts (no body, single head) are in every model; candidates are the
  // remaining head atoms.
  AtomSet facts;
  std::set<GroundAtom> candidate_set;
  for (const GroundClause& clause : ground.clauses) {
    if (clause.head.size() != 1) {
      return Status::InvalidArgument(
          "stable models are implemented for single-head programs");
    }
    if (clause.positive.empty() && clause.negative.empty()) {
      facts.insert(clause.head[0]);
    } else {
      candidate_set.insert(clause.head[0]);
    }
  }
  for (const GroundAtom& f : facts) candidate_set.erase(f);
  std::vector<GroundAtom> candidates(candidate_set.begin(),
                                     candidate_set.end());
  if (static_cast<int>(candidates.size()) > max_candidate_atoms) {
    return Status::ResourceExhausted(
        "too many candidate atoms for brute-force stable-model "
        "enumeration (" +
        std::to_string(candidates.size()) + ")");
  }

  std::vector<AtomSet> stable;
  const uint64_t combos = 1ull << candidates.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    if (governor != nullptr) {
      IDLOG_RETURN_NOT_OK(
          governor->CheckPoint(1 + ground.clauses.size()));
    }
    AtomSet m = facts;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((mask >> i) & 1) m.insert(candidates[i]);
    }
    // Gelfond–Lifschitz reduct w.r.t. m.
    GroundProgram reduct;
    for (const GroundClause& clause : ground.clauses) {
      bool blocked = false;
      for (const GroundAtom& n : clause.negative) {
        if (m.count(n) > 0) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      GroundClause stripped;
      stripped.head = clause.head;
      stripped.positive = clause.positive;
      reduct.clauses.push_back(std::move(stripped));
    }
    if (LeastModel(reduct) == m) stable.push_back(std::move(m));
  }
  span.AddArg(TraceArg::Num("candidates", candidates.size()));
  span.AddArg(TraceArg::Num("stable_models", stable.size()));
  return stable;
}

}  // namespace idlog
