#ifndef IDLOG_MODELS_DISJUNCTIVE_H_
#define IDLOG_MODELS_DISJUNCTIVE_H_

#include <set>
#include <vector>

#include "common/limits.h"
#include "common/status.h"
#include "ground/grounder.h"

namespace idlog {

/// A model: the set of ground atoms it makes true.
using AtomSet = std::set<GroundAtom>;

/// Minimal-model semantics of DATALOG^∨ (Section 3.2, first paragraph):
/// disjunctions in clause heads, positive bodies. Enumerates all
/// minimal models of the ground program by branching on unsatisfied
/// disjunctive heads and filtering non-minimal results (every minimal
/// model is reachable by some branch).
///
/// Bodies with negation are rejected — the paper's DATALOG^∨ baseline
/// point is about disjunction; its negation-bearing extension would
/// need perfect models, which the stable-model module covers for the
/// single-head case.
///
/// `max_states` caps the branch exploration (deprecated shim — a
/// governor tuple budget when `governor` is null; ignored otherwise).
/// With a governor, each explored state charges the budgets and
/// checkpoints the deadline/cancellation token.
Result<std::vector<AtomSet>> MinimalModels(const GroundProgram& ground,
                                           uint64_t max_states = 100000,
                                           ResourceGovernor* governor =
                                               nullptr);

/// Projects the answers for `predicate` out of each model, as sorted
/// tuple lists (the possible-answer set format of AnswerSet).
std::set<std::vector<Tuple>> ProjectAnswers(
    const std::vector<AtomSet>& models, const std::string& predicate);

}  // namespace idlog

#endif  // IDLOG_MODELS_DISJUNCTIVE_H_
