#include "models/disjunctive.h"

#include <algorithm>

#include "obs/trace.h"

namespace idlog {

namespace {

bool Contains(const AtomSet& model, const GroundAtom& atom) {
  return model.count(atom) > 0;
}

// First clause whose body holds in `model` but whose head is entirely
// false; nullptr if the model satisfies the program.
const GroundClause* FindViolated(const GroundProgram& ground,
                                 const AtomSet& model) {
  for (const GroundClause& clause : ground.clauses) {
    bool body_holds = true;
    for (const GroundAtom& a : clause.positive) {
      if (!Contains(model, a)) {
        body_holds = false;
        break;
      }
    }
    if (!body_holds) continue;
    bool head_holds = false;
    for (const GroundAtom& h : clause.head) {
      if (Contains(model, h)) {
        head_holds = true;
        break;
      }
    }
    if (!head_holds) return &clause;
  }
  return nullptr;
}

}  // namespace

Result<std::vector<AtomSet>> MinimalModels(const GroundProgram& ground,
                                           uint64_t max_states,
                                           ResourceGovernor* governor) {
  for (const GroundClause& clause : ground.clauses) {
    if (!clause.negative.empty()) {
      return Status::Unsupported(
          "MinimalModels handles positive disjunctive programs; use the "
          "stable-model module for negation");
    }
  }

  // Legacy max_states as a governor tuple budget: one "tuple" per
  // distinct explored candidate model.
  ResourceGovernor local;
  ArmLegacyTupleCap(&local, max_states);
  ResourceGovernor* gov = governor != nullptr ? governor : &local;
  gov->set_scope("minimal-model search");
  TraceSpan span(gov->trace_sink(), "minimal-model search", "models");
  span.AddArg(TraceArg::Num("ground_clauses", ground.clauses.size()));

  std::set<AtomSet> visited;
  std::set<AtomSet> models;
  std::vector<AtomSet> stack = {AtomSet{}};

  while (!stack.empty()) {
    AtomSet state = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(state).second) continue;
    IDLOG_RETURN_NOT_OK(gov->OnDerived(1, state.size() * 64));
    IDLOG_RETURN_NOT_OK(gov->CheckPoint(ground.clauses.size()));
    const GroundClause* violated = FindViolated(ground, state);
    if (violated == nullptr) {
      models.insert(std::move(state));
      continue;
    }
    for (const GroundAtom& h : violated->head) {
      AtomSet next = state;
      next.insert(h);
      if (visited.count(next) == 0) stack.push_back(std::move(next));
    }
  }

  // Keep only minimal models.
  std::vector<AtomSet> result;
  for (const AtomSet& m : models) {
    bool minimal = true;
    for (const AtomSet& other : models) {
      if (&other == &m || other.size() >= m.size()) continue;
      if (std::includes(m.begin(), m.end(), other.begin(), other.end())) {
        minimal = false;
        break;
      }
    }
    if (minimal) result.push_back(m);
  }
  span.AddArg(TraceArg::Num("candidates_explored", visited.size()));
  span.AddArg(TraceArg::Num("minimal_models", result.size()));
  return result;
}

std::set<std::vector<Tuple>> ProjectAnswers(
    const std::vector<AtomSet>& models, const std::string& predicate) {
  std::set<std::vector<Tuple>> out;
  for (const AtomSet& model : models) {
    std::vector<Tuple> answer;
    for (const GroundAtom& atom : model) {
      if (atom.predicate == predicate) answer.push_back(atom.args);
    }
    std::sort(answer.begin(), answer.end());
    out.insert(std::move(answer));
  }
  return out;
}

}  // namespace idlog
