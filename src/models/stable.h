#ifndef IDLOG_MODELS_STABLE_H_
#define IDLOG_MODELS_STABLE_H_

#include <vector>

#include "common/limits.h"
#include "common/status.h"
#include "ground/grounder.h"
#include "models/disjunctive.h"

namespace idlog {

/// Stable-model semantics [GL88] for single-head ground programs with
/// negation (the [SZ90] baseline of Section 3.2): M is stable iff M is
/// the least model of the Gelfond–Lifschitz reduct of the program
/// w.r.t. M. Enumerated by brute force over subsets of the derivable
/// (non-fact head) atoms, so intended for the small instances of tests
/// and benches — the paper's point is that every such query is *also*
/// definable in stratified IDLOG (Theorem 6), which the tests verify by
/// comparing possible-answer sets.
///
/// Fails with InvalidArgument on disjunctive heads, and with
/// ResourceExhausted when there are more than `max_candidate_atoms`
/// derivable atoms (2^n candidate sets). With `governor` set, the
/// candidate sweep additionally checkpoints per candidate, so
/// deadlines and cancellation interrupt the 2^n loop.
Result<std::vector<AtomSet>> StableModels(const GroundProgram& ground,
                                          int max_candidate_atoms = 20,
                                          ResourceGovernor* governor =
                                              nullptr);

/// The least model of a negation-free single-head ground program
/// (iterated immediate consequence); exposed for tests.
AtomSet LeastModel(const GroundProgram& ground);

}  // namespace idlog

#endif  // IDLOG_MODELS_STABLE_H_
