#ifndef IDLOG_AST_AST_H_
#define IDLOG_AST_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "common/value.h"

namespace idlog {

/// A term: either a variable (identified by spelling, scoped to its
/// clause) or a two-sorted constant.
class Term {
 public:
  enum class Kind : uint8_t { kVariable, kConstant };

  static Term Var(std::string name) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.var_name_ = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.value_ = v;
    return t;
  }
  static Term Number(int64_t n) { return Const(Value::Number(n)); }
  static Term Symbol(SymbolId id) { return Const(Value::Symbol(id)); }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }

  /// Variable spelling; only meaningful when is_variable().
  const std::string& var_name() const { return var_name_; }
  /// Constant payload; only meaningful when is_constant().
  Value value() const { return value_; }

  bool operator==(const Term& o) const {
    if (kind_ != o.kind_) return false;
    return is_variable() ? var_name_ == o.var_name_ : value_ == o.value_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

 private:
  Kind kind_ = Kind::kConstant;
  std::string var_name_;
  Value value_;
};

/// Built-in arithmetic/comparison predicates with fixed meaning
/// (Section 2.2 fixes succ; +, -, *, / and comparisons are defined over
/// sort i; eq/ne also apply to sort u).
enum class BuiltinKind : uint8_t {
  kSucc,  ///< succ(A, B) iff B = A + 1.
  kAdd,   ///< add(A, B, C) iff A + B = C.
  kSub,   ///< sub(A, B, C) iff A - B = C (natural subtraction, A >= B).
  kMul,   ///< mul(A, B, C) iff A * B = C.
  kDiv,   ///< div(A, B, C) iff floor(A / B) = C, B > 0.
  kLt,    ///< A < B (sort i).
  kLe,    ///< A <= B (sort i).
  kGt,    ///< A > B (sort i).
  kGe,    ///< A >= B (sort i).
  kEq,    ///< A = B (either sort).
  kNe,    ///< A != B (either sort).
};

/// Returns the surface spelling ("succ", "+", "<", ...).
const char* BuiltinName(BuiltinKind kind);
/// Number of arguments the builtin takes.
int BuiltinArity(BuiltinKind kind);

/// The flavour of an atom.
enum class AtomKind : uint8_t {
  kOrdinary,  ///< p(t1..tn) over an ordinary predicate.
  kId,        ///< p[s](t1..tn, tid): ID-version of p grouped by s.
  kBuiltin,   ///< Arithmetic / comparison.
  kChoice,    ///< choice((X...),(Y...)) — DATALOG^C extension only.
};

/// An atom. One struct covers all four kinds; the active fields depend
/// on `kind`:
///  - kOrdinary: predicate, terms.
///  - kId:       predicate (the *base* predicate), group (0-based sorted
///               column positions of the grouping set s), terms — arity
///               of the base predicate plus one trailing tid term.
///  - kBuiltin:  builtin, terms.
///  - kChoice:   terms, with the first `choice_split` terms forming the
///               domain part X and the rest the range part Y.
struct Atom {
  AtomKind kind = AtomKind::kOrdinary;
  std::string predicate;
  std::vector<int> group;
  BuiltinKind builtin = BuiltinKind::kEq;
  std::vector<Term> terms;
  int choice_split = 0;

  static Atom Ordinary(std::string pred, std::vector<Term> args);
  static Atom Id(std::string base_pred, std::vector<int> group0,
                 std::vector<Term> args_and_tid);
  static Atom Builtin(BuiltinKind kind, std::vector<Term> args);
  static Atom Choice(std::vector<Term> domain, std::vector<Term> range);

  /// Number of argument terms.
  int arity() const { return static_cast<int>(terms.size()); }

  /// For kId atoms: arity of the underlying base predicate.
  int base_arity() const { return arity() - 1; }

  bool operator==(const Atom& o) const;
};

/// A literal: an atom or its negation.
struct Literal {
  Atom atom;
  bool negated = false;

  static Literal Pos(Atom a) { return Literal{std::move(a), false}; }
  static Literal Neg(Atom a) { return Literal{std::move(a), true}; }

  bool operator==(const Literal& o) const {
    return negated == o.negated && atom == o.atom;
  }
};

/// A clause `head :- body.` The head must be an ordinary atom whose
/// predicate is neither a built-in nor an ID-predicate (Section 2.2).
/// A clause with an empty body and a ground head is a fact.
struct Clause {
  Atom head;
  std::vector<Literal> body;

  bool is_fact() const { return body.empty(); }
};

/// A clause with a disjunctive head — the DATALOG^∨ fragment of
/// Section 3.2 (consumed by the grounder / minimal-model baseline, not
/// by the IDLOG engine).
struct DisjunctiveClause {
  std::vector<Atom> head;  ///< One or more kOrdinary atoms.
  std::vector<Literal> body;
};

struct DisjunctiveProgram {
  std::vector<DisjunctiveClause> clauses;
};

/// Declared or inferred signature of a predicate.
struct PredicateInfo {
  std::string name;
  RelationType type;  ///< Column sorts.
  bool declared = false;
};

/// A parsed IDLOG (or DATALOG^C) program: clauses plus the predicate
/// signature table. Constants of sort u are interned in an external
/// SymbolTable shared with the database the program runs against.
struct Program {
  std::vector<Clause> clauses;
  std::vector<PredicateInfo> predicates;

  /// Returns the index into `predicates` for `name`, or -1.
  int FindPredicate(const std::string& name) const;

  /// Returns signature for `name`, registering it with `arity` unknown-
  /// sort columns if new. Sorts default to kU until refined.
  PredicateInfo& GetOrAddPredicate(const std::string& name, int arity);

  /// True if any clause contains a choice atom (DATALOG^C program).
  bool UsesChoice() const;
  /// True if any clause contains an ID-atom.
  bool UsesIdPredicates() const;
};

}  // namespace idlog

#endif  // IDLOG_AST_AST_H_
