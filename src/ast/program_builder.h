#ifndef IDLOG_AST_PROGRAM_BUILDER_H_
#define IDLOG_AST_PROGRAM_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "common/symbol_table.h"

namespace idlog {

/// Infers the column sorts (u vs i) of every predicate in `program` from
/// constants, built-in argument positions and variable sharing, by a
/// fixpoint over all clauses. Columns left unconstrained default to
/// sort u. Returns TypeError on a sort conflict.
Status InferPredicateTypes(Program* program);

/// Convenience builder for constructing programs in C++ (used by the
/// Turing-machine compiler, the DATALOG^C translator and tests). Interns
/// sort-u constants into the SymbolTable supplied at construction.
///
///   ProgramBuilder b(&symbols);
///   b.AddRule(Atom::Ordinary("all_depts", {b.V("D")}),
///             {Literal::Pos(Atom::Id("emp", {1}, {b.V("N"), b.V("D"),
///                                                 b.N(0)}))});
///   Result<Program> p = b.Build();
class ProgramBuilder {
 public:
  explicit ProgramBuilder(SymbolTable* symbols) : symbols_(symbols) {}

  ProgramBuilder(const ProgramBuilder&) = delete;
  ProgramBuilder& operator=(const ProgramBuilder&) = delete;

  /// Term helpers: variable, number constant, interned symbol constant.
  Term V(const std::string& name) const { return Term::Var(name); }
  Term N(int64_t n) const { return Term::Number(n); }
  Term S(const std::string& name) { return Term::Symbol(symbols_->Intern(name)); }

  /// Adds `head :- body.`
  ProgramBuilder& AddRule(Atom head, std::vector<Literal> body);

  /// Adds a ground fact clause `pred(values).`
  ProgramBuilder& AddFact(const std::string& pred, std::vector<Term> args);

  /// Declares a predicate signature explicitly (otherwise inferred).
  ProgramBuilder& Declare(const std::string& pred, const RelationType& type);

  /// Finalizes: runs type inference and returns the program.
  Result<Program> Build();

  /// Access to the program under construction (for advanced callers).
  Program& program() { return program_; }

 private:
  SymbolTable* symbols_;
  Program program_;
};

}  // namespace idlog

#endif  // IDLOG_AST_PROGRAM_BUILDER_H_
