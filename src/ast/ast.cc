#include "ast/ast.h"

#include <algorithm>

namespace idlog {

const char* BuiltinName(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::kSucc: return "succ";
    case BuiltinKind::kAdd: return "+";
    case BuiltinKind::kSub: return "-";
    case BuiltinKind::kMul: return "*";
    case BuiltinKind::kDiv: return "/";
    case BuiltinKind::kLt: return "<";
    case BuiltinKind::kLe: return "<=";
    case BuiltinKind::kGt: return ">";
    case BuiltinKind::kGe: return ">=";
    case BuiltinKind::kEq: return "=";
    case BuiltinKind::kNe: return "!=";
  }
  return "?";
}

int BuiltinArity(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::kSucc:
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
    case BuiltinKind::kEq:
    case BuiltinKind::kNe:
      return 2;
    case BuiltinKind::kAdd:
    case BuiltinKind::kSub:
    case BuiltinKind::kMul:
    case BuiltinKind::kDiv:
      return 3;
  }
  return 0;
}

Atom Atom::Ordinary(std::string pred, std::vector<Term> args) {
  Atom a;
  a.kind = AtomKind::kOrdinary;
  a.predicate = std::move(pred);
  a.terms = std::move(args);
  return a;
}

Atom Atom::Id(std::string base_pred, std::vector<int> group0,
              std::vector<Term> args_and_tid) {
  Atom a;
  a.kind = AtomKind::kId;
  a.predicate = std::move(base_pred);
  std::sort(group0.begin(), group0.end());
  group0.erase(std::unique(group0.begin(), group0.end()), group0.end());
  a.group = std::move(group0);
  a.terms = std::move(args_and_tid);
  return a;
}

Atom Atom::Builtin(BuiltinKind kind, std::vector<Term> args) {
  Atom a;
  a.kind = AtomKind::kBuiltin;
  a.builtin = kind;
  a.terms = std::move(args);
  return a;
}

Atom Atom::Choice(std::vector<Term> domain, std::vector<Term> range) {
  Atom a;
  a.kind = AtomKind::kChoice;
  a.choice_split = static_cast<int>(domain.size());
  a.terms = std::move(domain);
  a.terms.insert(a.terms.end(), range.begin(), range.end());
  return a;
}

bool Atom::operator==(const Atom& o) const {
  return kind == o.kind && predicate == o.predicate && group == o.group &&
         (kind != AtomKind::kBuiltin || builtin == o.builtin) &&
         choice_split == o.choice_split && terms == o.terms;
}

int Program::FindPredicate(const std::string& name) const {
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (predicates[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

PredicateInfo& Program::GetOrAddPredicate(const std::string& name, int arity) {
  int idx = FindPredicate(name);
  if (idx >= 0) return predicates[idx];
  PredicateInfo info;
  info.name = name;
  info.type.assign(static_cast<size_t>(arity), Sort::kU);
  predicates.push_back(std::move(info));
  return predicates.back();
}

bool Program::UsesChoice() const {
  for (const Clause& c : clauses) {
    for (const Literal& l : c.body) {
      if (l.atom.kind == AtomKind::kChoice) return true;
    }
  }
  return false;
}

bool Program::UsesIdPredicates() const {
  for (const Clause& c : clauses) {
    for (const Literal& l : c.body) {
      if (l.atom.kind == AtomKind::kId) return true;
    }
  }
  return false;
}

}  // namespace idlog
