#include "ast/program_builder.h"

#include <map>
#include <optional>

namespace idlog {

namespace {

// Tri-state column/variable sort during inference.
enum class SortState : uint8_t { kUnknown, kU, kI };

SortState FromSort(Sort s) {
  return s == Sort::kU ? SortState::kU : SortState::kI;
}

// Meets two sort states; returns nullopt on conflict.
std::optional<SortState> Meet(SortState a, SortState b) {
  if (a == SortState::kUnknown) return b;
  if (b == SortState::kUnknown) return a;
  if (a == b) return a;
  return std::nullopt;
}

// Fixed sorts of builtin argument positions; kUnknown means polymorphic
// (eq/ne compare within either sort).
SortState BuiltinArgSort(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::kEq:
    case BuiltinKind::kNe:
      return SortState::kUnknown;
    default:
      return SortState::kI;
  }
}

struct InferenceState {
  // predicate index -> per-column state.
  std::vector<std::vector<SortState>> columns;
  bool changed = false;
  Status error;

  bool MeetInto(SortState* slot, SortState incoming,
                const std::string& where) {
    auto met = Meet(*slot, incoming);
    if (!met.has_value()) {
      if (error.ok()) {
        error = Status::TypeError("sort conflict (u vs i) at " + where);
      }
      return false;
    }
    if (*met != *slot) {
      *slot = *met;
      changed = true;
    }
    return true;
  }
};

}  // namespace

Status InferPredicateTypes(Program* program) {
  InferenceState st;
  st.columns.resize(program->predicates.size());
  for (size_t p = 0; p < program->predicates.size(); ++p) {
    const PredicateInfo& info = program->predicates[p];
    st.columns[p].assign(info.type.size(), SortState::kUnknown);
    if (info.declared) {
      for (size_t c = 0; c < info.type.size(); ++c) {
        st.columns[p][c] = FromSort(info.type[c]);
      }
    }
  }

  auto pred_index = [&](const std::string& name) {
    return program->FindPredicate(name);
  };

  // Fixpoint: clause-local variable sorts exchange information with the
  // global per-predicate column sorts. Convergence is detected on the
  // global column states only — clause-local variable slots are rebuilt
  // every round and must not count as change.
  std::vector<std::vector<SortState>> snapshot;
  do {
    snapshot = st.columns;
    st.changed = false;
    for (const Clause& clause : program->clauses) {
      std::map<std::string, SortState> vars;
      // Several passes per clause so information can flow both ways
      // between literals through shared variables.
      for (int pass = 0; pass < 2; ++pass) {
        auto visit_position = [&](const Term& term, SortState* column_slot,
                                  const std::string& where) {
          if (term.is_constant()) {
            if (column_slot != nullptr) {
              st.MeetInto(column_slot, FromSort(term.value().sort()), where);
            }
            return;
          }
          SortState& var_slot = vars[term.var_name()];
          if (column_slot != nullptr) {
            st.MeetInto(&var_slot, *column_slot, where);
            st.MeetInto(column_slot, var_slot, where);
          }
        };
        auto visit_fixed = [&](const Term& term, SortState fixed,
                               const std::string& where) {
          if (term.is_constant()) {
            SortState slot = FromSort(term.value().sort());
            st.MeetInto(&slot, fixed, where);
            return;
          }
          SortState& var_slot = vars[term.var_name()];
          st.MeetInto(&var_slot, fixed, where);
        };

        auto visit_atom = [&](const Atom& atom) {
          switch (atom.kind) {
            case AtomKind::kOrdinary: {
              int p = pred_index(atom.predicate);
              if (p < 0) return;
              for (int c = 0; c < atom.arity(); ++c) {
                visit_position(atom.terms[c], &st.columns[p][c],
                               atom.predicate);
              }
              break;
            }
            case AtomKind::kId: {
              int p = pred_index(atom.predicate);
              for (int c = 0; c < atom.base_arity(); ++c) {
                visit_position(atom.terms[c],
                               p >= 0 ? &st.columns[p][c] : nullptr,
                               atom.predicate);
              }
              // Trailing tid argument is always sort i.
              visit_fixed(atom.terms.back(), SortState::kI,
                          atom.predicate + "[tid]");
              break;
            }
            case AtomKind::kBuiltin: {
              SortState fixed = BuiltinArgSort(atom.builtin);
              if (fixed == SortState::kI) {
                for (const Term& t : atom.terms) {
                  visit_fixed(t, SortState::kI, BuiltinName(atom.builtin));
                }
              } else {
                // eq/ne: both sides share a sort.
                const Term& a = atom.terms[0];
                const Term& b = atom.terms[1];
                SortState sa = a.is_constant() ? FromSort(a.value().sort())
                                               : vars[a.var_name()];
                SortState sb = b.is_constant() ? FromSort(b.value().sort())
                                               : vars[b.var_name()];
                auto met = Meet(sa, sb);
                if (!met.has_value()) {
                  if (st.error.ok()) {
                    st.error = Status::TypeError(
                        "sort conflict across (in)equality");
                  }
                  return;
                }
                if (a.is_variable()) {
                  st.MeetInto(&vars[a.var_name()], *met, "=");
                }
                if (b.is_variable()) {
                  st.MeetInto(&vars[b.var_name()], *met, "=");
                }
              }
              break;
            }
            case AtomKind::kChoice:
              // Choice arguments take their sorts from the other literals
              // the variables appear in; nothing fixed here.
              break;
          }
        };

        visit_atom(clause.head);
        for (const Literal& lit : clause.body) visit_atom(lit.atom);
      }
    }
    if (!st.error.ok()) return st.error;
  } while (st.columns != snapshot);

  // Write back; unconstrained columns default to sort u.
  for (size_t p = 0; p < program->predicates.size(); ++p) {
    PredicateInfo& info = program->predicates[p];
    for (size_t c = 0; c < info.type.size(); ++c) {
      info.type[c] =
          st.columns[p][c] == SortState::kI ? Sort::kI : Sort::kU;
    }
  }
  return Status::OK();
}

ProgramBuilder& ProgramBuilder::AddRule(Atom head, std::vector<Literal> body) {
  program_.GetOrAddPredicate(head.predicate, head.arity());
  for (const Literal& lit : body) {
    if (lit.atom.kind == AtomKind::kOrdinary) {
      program_.GetOrAddPredicate(lit.atom.predicate, lit.atom.arity());
    } else if (lit.atom.kind == AtomKind::kId) {
      program_.GetOrAddPredicate(lit.atom.predicate, lit.atom.base_arity());
    }
  }
  program_.clauses.push_back(Clause{std::move(head), std::move(body)});
  return *this;
}

ProgramBuilder& ProgramBuilder::AddFact(const std::string& pred,
                                        std::vector<Term> args) {
  return AddRule(Atom::Ordinary(pred, std::move(args)), {});
}

ProgramBuilder& ProgramBuilder::Declare(const std::string& pred,
                                        const RelationType& type) {
  PredicateInfo& info =
      program_.GetOrAddPredicate(pred, static_cast<int>(type.size()));
  info.type = type;
  info.declared = true;
  return *this;
}

Result<Program> ProgramBuilder::Build() {
  Status st = InferPredicateTypes(&program_);
  if (!st.ok()) return st;
  return program_;
}

}  // namespace idlog
