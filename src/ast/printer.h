#ifndef IDLOG_AST_PRINTER_H_
#define IDLOG_AST_PRINTER_H_

#include <string>

#include "ast/ast.h"

namespace idlog {

/// Renders AST nodes back into the surface syntax accepted by the
/// parser (round-trippable for ordinary, ID, builtin and choice atoms).
/// `symbols` resolves the spellings of interned sort-u constants.
std::string TermToString(const Term& term, const SymbolTable& symbols);
std::string AtomToString(const Atom& atom, const SymbolTable& symbols);
std::string LiteralToString(const Literal& lit, const SymbolTable& symbols);
std::string ClauseToString(const Clause& clause, const SymbolTable& symbols);
std::string ProgramToString(const Program& program,
                            const SymbolTable& symbols);

}  // namespace idlog

#endif  // IDLOG_AST_PRINTER_H_
