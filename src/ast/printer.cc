#include "ast/printer.h"

namespace idlog {

namespace {

bool NeedsQuoting(const std::string& s) {
  if (s.empty()) return true;
  if (!(s[0] >= 'a' && s[0] <= 'z')) return true;
  for (char c : s) {
    bool ident = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_';
    if (!ident) return true;
  }
  return false;
}

void AppendTermList(const std::vector<Term>& terms, size_t begin, size_t end,
                    const SymbolTable& symbols, std::string* out) {
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out->append(", ");
    out->append(TermToString(terms[i], symbols));
  }
}

}  // namespace

std::string TermToString(const Term& term, const SymbolTable& symbols) {
  if (term.is_variable()) return term.var_name();
  Value v = term.value();
  if (v.is_number()) return std::to_string(v.number());
  std::string name = v.ToString(symbols);
  if (NeedsQuoting(name)) return "\"" + name + "\"";
  return name;
}

std::string AtomToString(const Atom& atom, const SymbolTable& symbols) {
  std::string out;
  switch (atom.kind) {
    case AtomKind::kOrdinary:
      out = atom.predicate + "(";
      AppendTermList(atom.terms, 0, atom.terms.size(), symbols, &out);
      out += ")";
      break;
    case AtomKind::kId: {
      out = atom.predicate + "[";
      for (size_t i = 0; i < atom.group.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(atom.group[i] + 1);  // surface syntax: 1-based
      }
      out += "](";
      AppendTermList(atom.terms, 0, atom.terms.size(), symbols, &out);
      out += ")";
      break;
    }
    case AtomKind::kBuiltin: {
      // Comparisons print infix, arithmetic as the `C = A op B` sugar,
      // succ in prefix form — all re-parseable.
      BuiltinKind k = atom.builtin;
      if (k == BuiltinKind::kSucc) {
        out = "succ(";
        AppendTermList(atom.terms, 0, atom.terms.size(), symbols, &out);
        out += ")";
      } else if (BuiltinArity(k) == 3) {
        out = TermToString(atom.terms[2], symbols);
        out += " = ";
        out += TermToString(atom.terms[0], symbols);
        out += " ";
        out += BuiltinName(k);
        out += " ";
        out += TermToString(atom.terms[1], symbols);
      } else {
        out = TermToString(atom.terms[0], symbols);
        out += " ";
        out += BuiltinName(k);
        out += " ";
        out += TermToString(atom.terms[1], symbols);
      }
      break;
    }
    case AtomKind::kChoice: {
      out = "choice((";
      AppendTermList(atom.terms, 0, static_cast<size_t>(atom.choice_split),
                     symbols, &out);
      out += "), (";
      AppendTermList(atom.terms, static_cast<size_t>(atom.choice_split),
                     atom.terms.size(), symbols, &out);
      out += "))";
      break;
    }
  }
  return out;
}

std::string LiteralToString(const Literal& lit, const SymbolTable& symbols) {
  std::string out = AtomToString(lit.atom, symbols);
  if (lit.negated) return "not " + out;
  return out;
}

std::string ClauseToString(const Clause& clause, const SymbolTable& symbols) {
  std::string out = AtomToString(clause.head, symbols);
  if (!clause.body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += LiteralToString(clause.body[i], symbols);
    }
  }
  out += ".";
  return out;
}

std::string ProgramToString(const Program& program,
                            const SymbolTable& symbols) {
  std::string out;
  for (const Clause& c : program.clauses) {
    out += ClauseToString(c, symbols);
    out += "\n";
  }
  return out;
}

}  // namespace idlog
