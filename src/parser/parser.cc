#include "parser/parser.h"

#include <optional>

#include "ast/program_builder.h"
#include "parser/lexer.h"

namespace idlog {

namespace {

// Builtin prefix spellings reserved as predicate names.
std::optional<BuiltinKind> PrefixBuiltin(const std::string& name) {
  if (name == "succ") return BuiltinKind::kSucc;
  if (name == "add") return BuiltinKind::kAdd;
  if (name == "sub") return BuiltinKind::kSub;
  if (name == "mul") return BuiltinKind::kMul;
  if (name == "div") return BuiltinKind::kDiv;
  return std::nullopt;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols,
         bool disjunctive = false)
      : tokens_(std::move(tokens)), symbols_(symbols),
        disjunctive_(disjunctive) {}

  Result<Program> Parse() {
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kDecl)) {
        IDLOG_RETURN_NOT_OK(ParseDeclaration());
      } else {
        IDLOG_RETURN_NOT_OK(ParseClause());
      }
    }
    IDLOG_RETURN_NOT_OK(InferPredicateTypes(&program_));
    return std::move(program_);
  }

  Result<DisjunctiveProgram> ParseDisjunctive() {
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kDecl)) {
        IDLOG_RETURN_NOT_OK(ParseDeclaration());
      } else {
        IDLOG_RETURN_NOT_OK(ParseClause());
      }
    }
    return std::move(disjunctive_program_);
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  const Token& Next() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Cur().line) +
                              ", column " + std::to_string(Cur().column));
  }

  // Nesting-depth guard for the recursive-descent productions. Today's
  // grammar nests only a few levels, but hostile or generated input
  // must fail with ParseError rather than exhaust the C++ stack, and
  // the guard keeps that property as the grammar grows.
  static constexpr int kMaxParseDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : p(p) { ++p->depth_; }
    ~DepthGuard() { --p->depth_; }
    Parser* p;
  };
  Status CheckDepth() const {
    if (depth_ > kMaxParseDepth) {
      return Status::ParseError("nesting exceeds maximum parse depth (" +
                                std::to_string(kMaxParseDepth) +
                                ") at line " + std::to_string(Cur().line));
    }
    return Status::OK();
  }

  Status Expect(TokenKind k, const char* what) {
    if (!At(k)) return Error(std::string("expected ") + what);
    Next();
    return Status::OK();
  }

  Status ParseDeclaration() {
    Next();  // .decl
    if (!At(TokenKind::kIdent)) return Error("expected predicate name");
    std::string name = Next().text;
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    RelationType type;
    while (true) {
      if (!At(TokenKind::kIdent) ||
          (Cur().text != "u" && Cur().text != "i")) {
        return Error("expected sort 'u' or 'i'");
      }
      type.push_back(Next().text == "i" ? Sort::kI : Sort::kU);
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
    IDLOG_RETURN_NOT_OK(
        CheckArity(name, static_cast<int>(type.size())));
    PredicateInfo& info =
        program_.GetOrAddPredicate(name, static_cast<int>(type.size()));
    info.type = type;
    info.declared = true;
    return Status::OK();
  }

  Status CheckArity(const std::string& pred, int arity) {
    int idx = program_.FindPredicate(pred);
    if (idx >= 0 &&
        static_cast<int>(program_.predicates[idx].type.size()) != arity) {
      return Error("predicate '" + pred + "' used with arity " +
                   std::to_string(arity) + " but previously had arity " +
                   std::to_string(program_.predicates[idx].type.size()));
    }
    return Status::OK();
  }

  Status ParseClause() {
    DepthGuard depth(this);
    IDLOG_RETURN_NOT_OK(CheckDepth());
    anon_counter_ = 0;
    IDLOG_ASSIGN_OR_RETURN(Atom head, ParseHeadAtom());
    std::vector<Atom> extra_heads;
    while (At(TokenKind::kPipe)) {
      if (!disjunctive_) {
        return Error(
            "disjunctive heads need ParseDisjunctiveProgram (DATALOG^v)");
      }
      Next();
      IDLOG_ASSIGN_OR_RETURN(Atom another, ParseHeadAtom());
      extra_heads.push_back(std::move(another));
    }
    Clause clause;
    clause.head = std::move(head);
    if (At(TokenKind::kImplies)) {
      Next();
      while (true) {
        IDLOG_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        clause.body.push_back(std::move(lit));
        if (At(TokenKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
    }
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
    if (clause.body.empty() && extra_heads.empty()) {
      for (const Term& t : clause.head.terms) {
        if (t.is_variable()) {
          return Error("fact '" + clause.head.predicate +
                       "' contains a variable");
        }
      }
    }
    if (disjunctive_) {
      for (const Literal& lit : clause.body) {
        if (lit.atom.kind == AtomKind::kId ||
            lit.atom.kind == AtomKind::kChoice) {
          return Error(
              "ID-atoms and choice are not part of DATALOG^v");
        }
      }
      DisjunctiveClause dc;
      dc.head.push_back(std::move(clause.head));
      for (Atom& a : extra_heads) dc.head.push_back(std::move(a));
      dc.body = std::move(clause.body);
      disjunctive_program_.clauses.push_back(std::move(dc));
      return Status::OK();
    }
    program_.clauses.push_back(std::move(clause));
    return Status::OK();
  }

  Result<Atom> ParseHeadAtom() {
    if (!At(TokenKind::kIdent)) return Error("expected clause head");
    if (PrefixBuiltin(Cur().text).has_value()) {
      return Error("head predicate '" + Cur().text +
                   "' is a reserved built-in");
    }
    if (Cur().text == "choice") {
      return Error("'choice' cannot appear in a clause head");
    }
    std::string name = Next().text;
    if (At(TokenKind::kLBracket)) {
      return Error("ID-predicates cannot appear in a clause head");
    }
    IDLOG_ASSIGN_OR_RETURN(std::vector<Term> args, ParseOptionalArgs());
    IDLOG_RETURN_NOT_OK(CheckArity(name, static_cast<int>(args.size())));
    program_.GetOrAddPredicate(name, static_cast<int>(args.size()));
    return Atom::Ordinary(std::move(name), std::move(args));
  }

  Result<Literal> ParseLiteral() {
    DepthGuard depth(this);
    IDLOG_RETURN_NOT_OK(CheckDepth());
    bool negated = false;
    if (At(TokenKind::kNot)) {
      Next();
      negated = true;
    }
    IDLOG_ASSIGN_OR_RETURN(Atom atom, ParseBodyAtom());
    if (negated && atom.kind == AtomKind::kChoice) {
      return Error("'choice' cannot be negated");
    }
    return Literal{std::move(atom), negated};
  }

  Result<Atom> ParseBodyAtom() {
    DepthGuard depth(this);
    IDLOG_RETURN_NOT_OK(CheckDepth());
    // Identifier followed by '(' or '[' is a predicate atom (or builtin
    // prefix form, or choice); anything else starts a builtin expression.
    if (At(TokenKind::kIdent)) {
      const Token& ident = Cur();
      TokenKind after = tokens_[pos_ + 1].kind;
      if (ident.text == "choice" && after == TokenKind::kLParen) {
        return ParseChoiceAtom();
      }
      if (auto builtin = PrefixBuiltin(ident.text);
          builtin.has_value() && after == TokenKind::kLParen) {
        Next();
        IDLOG_ASSIGN_OR_RETURN(std::vector<Term> args, ParseParenTerms());
        if (static_cast<int>(args.size()) != BuiltinArity(*builtin)) {
          return Error(std::string("builtin '") + BuiltinName(*builtin) +
                       "' takes " + std::to_string(BuiltinArity(*builtin)) +
                       " arguments");
        }
        return Atom::Builtin(*builtin, std::move(args));
      }
      if (after == TokenKind::kLParen || after == TokenKind::kLBracket) {
        return ParsePredicateAtom();
      }
      // Arity-0 predicate or a u-constant starting a comparison. If the
      // next token is a relational operator, treat as term.
      if (IsRelop(after)) return ParseBuiltinExpr();
      return ParsePredicateAtom();
    }
    return ParseBuiltinExpr();
  }

  static bool IsRelop(TokenKind k) {
    switch (k) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  Result<Atom> ParsePredicateAtom() {
    std::string name = Next().text;
    std::vector<int> group;
    bool is_id = false;
    if (At(TokenKind::kLBracket)) {
      Next();
      is_id = true;
      while (!At(TokenKind::kRBracket)) {
        if (!At(TokenKind::kNumber)) {
          return Error("expected 1-based column number in grouping set");
        }
        int64_t v = Next().number;
        if (v < 1) return Error("grouping columns are 1-based");
        group.push_back(static_cast<int>(v - 1));
        if (At(TokenKind::kComma)) Next();
      }
      Next();  // ]
    }
    IDLOG_ASSIGN_OR_RETURN(std::vector<Term> args, ParseOptionalArgs());
    if (is_id) {
      if (args.empty()) {
        return Error("ID-atom '" + name + "' needs at least a tid argument");
      }
      int base_arity = static_cast<int>(args.size()) - 1;
      IDLOG_RETURN_NOT_OK(CheckArity(name, base_arity));
      program_.GetOrAddPredicate(name, base_arity);
      for (int c : group) {
        if (c >= base_arity) {
          return Error("grouping column " + std::to_string(c + 1) +
                       " exceeds arity of '" + name + "'");
        }
      }
      return Atom::Id(std::move(name), std::move(group), std::move(args));
    }
    IDLOG_RETURN_NOT_OK(CheckArity(name, static_cast<int>(args.size())));
    program_.GetOrAddPredicate(name, static_cast<int>(args.size()));
    return Atom::Ordinary(std::move(name), std::move(args));
  }

  Result<Atom> ParseChoiceAtom() {
    Next();  // choice
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    IDLOG_ASSIGN_OR_RETURN(std::vector<Term> domain, ParseParenTerms());
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
    IDLOG_ASSIGN_OR_RETURN(std::vector<Term> range, ParseParenTerms());
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    if (range.empty()) return Error("choice range must be non-empty");
    return Atom::Choice(std::move(domain), std::move(range));
  }

  Result<Atom> ParseBuiltinExpr() {
    DepthGuard depth(this);
    IDLOG_RETURN_NOT_OK(CheckDepth());
    IDLOG_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (!IsRelop(Cur().kind)) return Error("expected comparison operator");
    TokenKind op = Next().kind;
    IDLOG_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    // Sugar: `C = A + B` (and -, *, /) becomes add(A, B, C) etc.
    if (op == TokenKind::kEq &&
        (At(TokenKind::kPlus) || At(TokenKind::kMinus) ||
         At(TokenKind::kStar) || At(TokenKind::kSlash))) {
      TokenKind arith = Next().kind;
      IDLOG_ASSIGN_OR_RETURN(Term rhs2, ParseTerm());
      BuiltinKind kind;
      switch (arith) {
        case TokenKind::kPlus: kind = BuiltinKind::kAdd; break;
        case TokenKind::kMinus: kind = BuiltinKind::kSub; break;
        case TokenKind::kStar: kind = BuiltinKind::kMul; break;
        default: kind = BuiltinKind::kDiv; break;
      }
      return Atom::Builtin(kind, {std::move(rhs), std::move(rhs2),
                                  std::move(lhs)});
    }
    BuiltinKind kind;
    switch (op) {
      case TokenKind::kEq: kind = BuiltinKind::kEq; break;
      case TokenKind::kNe: kind = BuiltinKind::kNe; break;
      case TokenKind::kLt: kind = BuiltinKind::kLt; break;
      case TokenKind::kLe: kind = BuiltinKind::kLe; break;
      case TokenKind::kGt: kind = BuiltinKind::kGt; break;
      default: kind = BuiltinKind::kGe; break;
    }
    return Atom::Builtin(kind, {std::move(lhs), std::move(rhs)});
  }

  Result<std::vector<Term>> ParseOptionalArgs() {
    if (!At(TokenKind::kLParen)) return std::vector<Term>{};
    return ParseParenTerms();
  }

  Result<std::vector<Term>> ParseParenTerms() {
    DepthGuard depth(this);
    IDLOG_RETURN_NOT_OK(CheckDepth());
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::vector<Term> terms;
    if (At(TokenKind::kRParen)) {
      Next();
      return terms;
    }
    while (true) {
      IDLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
      terms.push_back(std::move(t));
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    IDLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return terms;
  }

  Result<Term> ParseTerm() {
    DepthGuard depth(this);
    IDLOG_RETURN_NOT_OK(CheckDepth());
    switch (Cur().kind) {
      case TokenKind::kVariable: {
        std::string name = Next().text;
        if (name == "_") {
          name = "_Anon" + std::to_string(anon_counter_++);
        }
        return Term::Var(std::move(name));
      }
      case TokenKind::kNumber:
        return Term::Number(Next().number);
      case TokenKind::kIdent:
      case TokenKind::kString:
        return Term::Symbol(symbols_->Intern(Next().text));
      default:
        return Error("expected a term");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolTable* symbols_;
  bool disjunctive_ = false;
  Program program_;
  DisjunctiveProgram disjunctive_program_;
  int anon_counter_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols) {
  IDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), symbols);
  return parser.Parse();
}

Result<DisjunctiveProgram> ParseDisjunctiveProgram(std::string_view text,
                                                   SymbolTable* symbols) {
  IDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), symbols, /*disjunctive=*/true);
  return parser.ParseDisjunctive();
}

}  // namespace idlog
