#ifndef IDLOG_PARSER_PARSER_H_
#define IDLOG_PARSER_PARSER_H_

#include <string_view>

#include "ast/ast.h"
#include "common/status.h"
#include "common/symbol_table.h"

namespace idlog {

/// Parses IDLOG program text into a Program, interning sort-u constants
/// into `symbols`. The accepted surface syntax:
///
///   % comment                          // comment
///   .decl emp(u, u, i).                declares column sorts (optional)
///   emp("ann", sales).                 fact (strings / lowercase = u-consts)
///   all_depts(D) :- emp[2](N, D, 0).   ID-literal: emp grouped by column 2
///   two(N) :- emp[2](N, D, T), T < 2.  comparisons are infix
///   p(X, M) :- q(X, N), succ(N, M).    succ / add / sub / mul / div builtins
///   r(X, S) :- q(X, N), S = N + 3.     infix arithmetic sugar for add(N,3,S)
///   man(X) :- person(X), not woman(X). stratified negation
///   one(N) :- emp(N, D), choice((D), (N)).   DATALOG^C choice extension
///
/// Variables start uppercase or '_' ('_' alone is an anonymous variable);
/// predicates and u-constants start lowercase; arity-0 atoms may omit
/// parentheses. Checks arity consistency and head-form restrictions
/// (Section 2.2: heads are ordinary atoms, never succ/equality/ID) and
/// runs sort inference before returning.
Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols);

/// Parses the DATALOG^∨ fragment (Section 3.2): like ParseProgram but
/// heads may be disjunctions joined with '|':
///
///   man(X) | woman(X) :- person(X).
///
/// ID-atoms and choice are rejected (they are not part of that
/// language); facts and single-head rules are allowed. The result feeds
/// GroundDisjunctive / MinimalModels / StableModels.
Result<DisjunctiveProgram> ParseDisjunctiveProgram(std::string_view text,
                                                   SymbolTable* symbols);

}  // namespace idlog

#endif  // IDLOG_PARSER_PARSER_H_
