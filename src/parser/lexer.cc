#include "parser/lexer.h"

#include <cctype>

namespace idlog {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  size_t i = 0;
  const size_t n = text.size();

  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              ", column " + std::to_string(col));
  };
  auto push = [&](TokenKind kind, std::string tok_text = "",
                  int64_t number = 0) {
    out.push_back(Token{kind, std::move(tok_text), number, line, col});
  };
  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%' || (c == '/' && i + 1 < n && text[i + 1] == '/')) {
      while (i < n && text[i] != '\n') advance(1);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      int64_t v = 0;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
        v = v * 10 + (text[j] - '0');
        ++j;
      }
      push(TokenKind::kNumber, std::string(text.substr(i, j - i)), v);
      advance(j - i);
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      std::string s;
      while (j < n && text[j] != '"') {
        if (text[j] == '\n') return error("unterminated string literal");
        s += text[j];
        ++j;
      }
      if (j >= n) return error("unterminated string literal");
      push(TokenKind::kString, std::move(s));
      advance(j + 1 - i);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      std::string word(text.substr(i, j - i));
      if (word == "not") {
        push(TokenKind::kNot, word);
      } else if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        push(TokenKind::kVariable, word);
      } else {
        push(TokenKind::kIdent, word);
      }
      advance(j - i);
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen); advance(1); continue;
      case ')': push(TokenKind::kRParen); advance(1); continue;
      case '[': push(TokenKind::kLBracket); advance(1); continue;
      case ']': push(TokenKind::kRBracket); advance(1); continue;
      case ',': push(TokenKind::kComma); advance(1); continue;
      case '+': push(TokenKind::kPlus); advance(1); continue;
      case '-': push(TokenKind::kMinus); advance(1); continue;
      case '*': push(TokenKind::kStar); advance(1); continue;
      case '|': push(TokenKind::kPipe); advance(1); continue;
      case '/': push(TokenKind::kSlash); advance(1); continue;
      case '=': push(TokenKind::kEq); advance(1); continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe);
          advance(2);
          continue;
        }
        return error("unexpected '!'");
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe);
          advance(2);
        } else {
          push(TokenKind::kLt);
          advance(1);
        }
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe);
          advance(2);
        } else {
          push(TokenKind::kGt);
          advance(1);
        }
        continue;
      case ':':
        if (i + 1 < n && text[i + 1] == '-') {
          push(TokenKind::kImplies);
          advance(2);
          continue;
        }
        return error("unexpected ':'");
      case '.': {
        // ".decl" directive vs clause terminator.
        if (i + 4 < n && text.substr(i + 1, 4) == "decl" &&
            (i + 5 >= n || !IsIdentChar(text[i + 5]))) {
          push(TokenKind::kDecl, ".decl");
          advance(5);
          continue;
        }
        push(TokenKind::kDot);
        advance(1);
        continue;
      }
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEof);
  return out;
}

}  // namespace idlog
