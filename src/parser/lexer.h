#ifndef IDLOG_PARSER_LEXER_H_
#define IDLOG_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace idlog {

enum class TokenKind : uint8_t {
  kIdent,      ///< lowercase-initial identifier (predicate / u-constant).
  kVariable,   ///< uppercase- or '_'-initial identifier.
  kNumber,     ///< non-negative integer literal.
  kString,     ///< double-quoted u-constant.
  kLParen,     ///< (
  kRParen,     ///< )
  kLBracket,   ///< [
  kRBracket,   ///< ]
  kComma,      ///< ,
  kDot,        ///< .
  kImplies,    ///< :-
  kNot,        ///< not
  kEq,         ///< =
  kNe,         ///< !=
  kLt,         ///< <
  kLe,         ///< <=
  kGt,         ///< >
  kGe,         ///< >=
  kPlus,       ///< +
  kMinus,      ///< -
  kStar,       ///< *
  kSlash,      ///< /
  kPipe,       ///< | (disjunctive heads; DATALOG^∨ front end only)
  kDecl,       ///< .decl directive keyword
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< Identifier / string / number spelling.
  int64_t number = 0; ///< Valid for kNumber.
  int line = 0;
  int column = 0;
};

/// Tokenizes IDLOG program text. Comments run from '%' or "//" to end of
/// line. Returns ParseError with line/column info on bad input.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace idlog

#endif  // IDLOG_PARSER_LEXER_H_
