#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "store/atomic_file.h"

namespace idlog {

namespace {

/// Upper bound on one record's framed length: a frame claiming more is
/// a lying length field (torn tail), not a real record.
constexpr uint64_t kMaxRecordLen = 1ull << 28;

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "' failed: " + std::strerror(errno);
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValues(std::string* out, const std::vector<WalValue>& values) {
  PutU32(out, static_cast<uint32_t>(values.size()));
  for (const WalValue& v : values) {
    PutU8(out, v.is_symbol ? 1 : 0);
    if (v.is_symbol) {
      PutStr(out, v.symbol);
    } else {
      PutU64(out, static_cast<uint64_t>(v.number));
    }
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return r;
}

uint64_t ReadU64(const char* p) {
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return r;
}

/// Bounds-checked reader over one record payload. Unlike the snapshot
/// reader this one reports failure as a plain bool: inside the scan a
/// malformed payload means "torn tail here", not an error to surface.
struct PayloadReader {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool U8(uint8_t* v) {
    if (size - pos < 1) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (size - pos < 4) return false;
    *v = ReadU32(data + pos);
    pos += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (size - pos < 8) return false;
    *v = ReadU64(data + pos);
    pos += 8;
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (size - pos < len) return false;
    s->assign(data + pos, len);
    pos += len;
    return true;
  }
  bool AtEnd() const { return pos == size; }
};

/// Decodes one record payload; false on any malformation (truncated
/// field, unknown type or value tag, trailing bytes).
bool DecodePayload(WalRecordType type, const char* payload, size_t len,
                   WalRecord* out) {
  PayloadReader r{payload, len};
  out->type = type;
  switch (type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
      if (!r.U64(&out->txn_id)) return false;
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kRetract: {
      if (!r.Str(&out->pred)) return false;
      uint32_t arity = 0;
      if (!r.U32(&arity)) return false;
      // Every value occupies at least two payload bytes (tag + body),
      // so an arity larger than the remaining bytes could encode is a
      // lie — reject it *before* reserving, or a crafted CRC-valid
      // frame could force a multi-GB allocation instead of reading as
      // a torn tail.
      if (arity > (r.size - r.pos) / 2) return false;
      out->values.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        uint8_t tag = 0;
        if (!r.U8(&tag)) return false;
        if (tag == 0) {
          uint64_t n = 0;
          if (!r.U64(&n)) return false;
          out->values.push_back(WalValue::Number(static_cast<int64_t>(n)));
        } else if (tag == 1) {
          std::string name;
          if (!r.Str(&name)) return false;
          out->values.push_back(WalValue::Symbol(std::move(name)));
        } else {
          return false;
        }
      }
      break;
    }
    case WalRecordType::kCheckpointRef:
      if (!r.U64(&out->covered_offset)) return false;
      if (!r.Str(&out->snapshot_path)) return false;
      break;
    default:
      return false;
  }
  return r.AtEnd();
}

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  switch (record.type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
      PutU64(&payload, record.txn_id);
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kRetract:
      PutStr(&payload, record.pred);
      PutValues(&payload, record.values);
      break;
    case WalRecordType::kCheckpointRef:
      PutU64(&payload, record.covered_offset);
      PutStr(&payload, record.snapshot_path);
      break;
  }
  return payload;
}

std::string FrameRecord(WalRecordType type, const std::string& payload) {
  std::string body;
  body.reserve(1 + payload.size());
  PutU8(&body, static_cast<uint8_t>(type));
  body.append(payload);
  std::string out;
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, Crc32(body));
  out.append(body);
  return out;
}

Status WriteAll(int fd, const char* p, size_t left,
                const std::string& path) {
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kBegin: return "BEGIN";
    case WalRecordType::kInsert: return "INSERT";
    case WalRecordType::kRetract: return "RETRACT";
    case WalRecordType::kCommit: return "COMMIT";
    case WalRecordType::kCheckpointRef: return "CHECKPOINT-REF";
  }
  return "?";
}

std::string SerializeWalHeader(uint64_t epoch, uint64_t program_hash) {
  std::string out;
  out.append(kWalMagic, sizeof(kWalMagic));
  PutU32(&out, kWalVersion);
  PutU64(&out, epoch);
  PutU64(&out, program_hash);
  PutU32(&out, Crc32(out));
  return out;
}

std::string SerializeWalRecord(const WalRecord& record) {
  return FrameRecord(record.type, EncodePayload(record));
}

Result<WalScanResult> ScanWal(const std::string& path) {
  std::string bytes;
  IDLOG_RETURN_NOT_OK(ReadFileToString(path, &bytes));

  // The header is written atomically (WriteFileAtomic), so a short or
  // damaged header cannot be a crash artifact — refuse loudly instead
  // of "recovering" over what may be someone else's file.
  if (bytes.size() < kWalHeaderSize) {
    return Status::InvalidArgument(
        "'" + path + "' is not an idlog WAL: file is " +
        std::to_string(bytes.size()) + " bytes, smaller than the " +
        std::to_string(kWalHeaderSize) + "-byte header (headers are "
        "written atomically, so this is corruption, not a torn tail)");
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an idlog WAL (bad magic)");
  }
  uint32_t version = ReadU32(bytes.data() + 8);
  if (version != kWalVersion) {
    return Status::Unsupported(
        "'" + path + "' is idlog-wal-v" + std::to_string(version) +
        "; this build reads idlog-wal-v" + std::to_string(kWalVersion) +
        " only");
  }
  uint32_t stored_crc = ReadU32(bytes.data() + 28);
  if (Crc32(std::string_view(bytes.data(), 28)) != stored_crc) {
    return Status::InvalidArgument("'" + path +
                                   "' WAL header fails its CRC");
  }

  WalScanResult scan;
  scan.epoch = ReadU64(bytes.data() + 12);
  scan.program_hash = ReadU64(bytes.data() + 20);
  scan.file_size = bytes.size();

  std::vector<WalRecord> records;
  size_t pos = kWalHeaderSize;
  bool in_txn = false;
  bool torn = false;
  while (pos < bytes.size()) {
    IDLOG_FAILPOINT("wal.replay.decode");
    if (bytes.size() - pos < 8) {
      torn = true;
      break;
    }
    uint32_t len = ReadU32(bytes.data() + pos);
    uint32_t crc = ReadU32(bytes.data() + pos + 4);
    if (len < 1 || len > kMaxRecordLen || bytes.size() - pos - 8 < len) {
      torn = true;
      break;
    }
    std::string_view body(bytes.data() + pos + 8, len);
    if (Crc32(body) != crc) {
      torn = true;
      break;
    }
    WalRecord record;
    record.offset = pos;
    uint8_t type = static_cast<uint8_t>(body[0]);
    if (!DecodePayload(static_cast<WalRecordType>(type), body.data() + 1,
                       len - 1, &record)) {
      torn = true;
      break;
    }
    // Structural discipline our writer always obeys; a violation means
    // the frame happened to checksum but is not a real tail.
    switch (record.type) {
      case WalRecordType::kBegin:
        if (in_txn) torn = true;
        in_txn = true;
        break;
      case WalRecordType::kInsert:
      case WalRecordType::kRetract:
        if (!in_txn) torn = true;
        break;
      case WalRecordType::kCommit:
        if (!in_txn) torn = true;
        in_txn = false;
        break;
      case WalRecordType::kCheckpointRef:
        if (in_txn) torn = true;
        break;
    }
    if (torn) break;
    pos += 8 + len;
    FlightRecorder::Record(FlightEventKind::kWalReplay,
                           WalRecordTypeName(record.type),
                           static_cast<int64_t>(record.offset),
                           static_cast<int64_t>(record.txn_id));
    records.push_back(std::move(record));
    if (!in_txn) scan.committed_length = pos;
  }

  // Keep only records inside the committed prefix: a trailing
  // BEGIN..(no COMMIT) is semantically absent and gets truncated along
  // with any torn frame.
  for (WalRecord& r : records) {
    if (r.offset < scan.committed_length) {
      scan.records.push_back(std::move(r));
    } else {
      ++scan.records_dropped;
    }
  }
  scan.tail_truncated = torn || scan.committed_length < bytes.size();
  return scan;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    const std::string& path, uint64_t epoch, uint64_t program_hash,
    uint64_t group_commit_every) {
  IDLOG_RETURN_NOT_OK(
      WriteFileAtomic(path, SerializeWalHeader(epoch, program_hash)));
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return Status::Internal(Errno("open", path));
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, epoch, program_hash, kWalHeaderSize,
                        group_commit_every));
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenForAppend(
    const std::string& path, const WalScanResult& scan,
    uint64_t group_commit_every) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::Internal(Errno("open", path));
  if (::ftruncate(fd, static_cast<off_t>(scan.committed_length)) != 0) {
    Status st = Status::Internal(Errno("ftruncate", path));
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status st = Status::Internal(Errno("lseek", path));
    ::close(fd);
    return st;
  }
  // Make the truncation itself durable: a torn tail must not resurface
  // after the next crash, interleaved with freshly appended records.
  if (::fsync(fd) != 0) {
    Status st = Status::Internal(Errno("fsync", path));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, scan.epoch, scan.program_hash,
                        scan.committed_length, group_commit_every));
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    (void)Flush();
    (void)::close(fd_);
  }
}

Status WriteAheadLog::AppendRecord(WalRecordType type,
                                   const std::string& payload,
                                   int64_t detail) {
  if (fd_ < 0) {
    return Status::Internal("WAL '" + path_ + "' is closed");
  }
  IDLOG_FAILPOINT("wal.append");
  std::string frame = FrameRecord(type, payload);
  pending_.append(frame);
  ++pending_records_;
  bytes_appended_ += frame.size();
  FlightRecorder::Record(FlightEventKind::kWalAppend,
                         WalRecordTypeName(type),
                         static_cast<int64_t>(payload.size()), detail);
  return Status::OK();
}

Status WriteAheadLog::AppendBegin(uint64_t txn_id) {
  std::string payload;
  PutU64(&payload, txn_id);
  return AppendRecord(WalRecordType::kBegin, payload,
                      static_cast<int64_t>(txn_id));
}

Status WriteAheadLog::AppendInsert(const std::string& pred,
                                   const std::vector<WalValue>& values) {
  std::string payload;
  PutStr(&payload, pred);
  PutValues(&payload, values);
  return AppendRecord(WalRecordType::kInsert, payload, 0);
}

Status WriteAheadLog::AppendRetract(const std::string& pred,
                                    const std::vector<WalValue>& values) {
  std::string payload;
  PutStr(&payload, pred);
  PutValues(&payload, values);
  return AppendRecord(WalRecordType::kRetract, payload, 0);
}

Status WriteAheadLog::AppendCommit(uint64_t txn_id) {
  IDLOG_FAILPOINT("wal.commit");
  std::string payload;
  PutU64(&payload, txn_id);
  IDLOG_RETURN_NOT_OK(AppendRecord(WalRecordType::kCommit, payload,
                                   static_cast<int64_t>(txn_id)));
  ++commits_appended_;
  if (++pending_commits_ >= group_commit_every_) {
    return Flush();
  }
  return Status::OK();
}

Status WriteAheadLog::AppendCheckpointRef(uint64_t covered_offset,
                                          const std::string& snapshot_path) {
  std::string payload;
  PutU64(&payload, covered_offset);
  PutStr(&payload, snapshot_path);
  IDLOG_RETURN_NOT_OK(AppendRecord(WalRecordType::kCheckpointRef, payload,
                                   static_cast<int64_t>(covered_offset)));
  return Flush();
}

Status WriteAheadLog::Flush() {
  // A failed flush may have written its frames without fsyncing them;
  // retrying would append the same frames a second time and recovery
  // would replay the duplicate. Once a flush fails the log is
  // write-poisoned for its remaining lifetime (the destructor's
  // best-effort flush included).
  if (write_failed_) {
    return Status::Internal("WAL '" + path_ +
                            "': an earlier flush failed after bytes may "
                            "have reached the file; refusing to write "
                            "again (recover from the on-disk log)");
  }
  if (pending_.empty()) return Status::OK();
  if (fd_ < 0) {
    return Status::Internal("WAL '" + path_ + "' is closed");
  }
  Status wst = WriteAll(fd_, pending_.data(), pending_.size(), path_);
  if (wst.ok()) {
    wst = [&]() -> Status {
      IDLOG_FAILPOINT("wal.fsync");
      if (::fsync(fd_) != 0) {
        return Status::Internal(Errno("fsync", path_));
      }
      return Status::OK();
    }();
  }
  if (!wst.ok()) {
    write_failed_ = true;
    return wst;
  }
  durable_size_ += pending_.size();
  uint64_t group = pending_records_;
  pending_.clear();
  pending_records_ = 0;
  pending_commits_ = 0;
  FlightRecorder::Record(FlightEventKind::kWalFsync, "commit",
                         static_cast<int64_t>(group),
                         static_cast<int64_t>(durable_size_));
  return Status::OK();
}

Status WriteAheadLog::Rotate(uint64_t new_epoch) {
  IDLOG_RETURN_NOT_OK(Flush());
  IDLOG_FAILPOINT("wal.rotate");
  uint64_t retired = durable_size_;
  // The fresh header lands via rename, so at every instant the path
  // holds either the full old log or a pristine new-epoch one.
  IDLOG_RETURN_NOT_OK(
      WriteFileAtomic(path_, SerializeWalHeader(new_epoch, program_hash_)));
  int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return Status::Internal(Errno("open", path_));
  if (fd_ >= 0) (void)::close(fd_);
  fd_ = fd;
  epoch_ = new_epoch;
  durable_size_ = kWalHeaderSize;
  FlightRecorder::Record(FlightEventKind::kWalRotate, "rotate",
                         static_cast<int64_t>(new_epoch),
                         static_cast<int64_t>(retired));
  return Status::OK();
}

Status WriteAheadLog::Close() {
  if (fd_ < 0) return Status::OK();
  Status st = Flush();
  if (::close(fd_) != 0 && st.ok()) {
    st = Status::Internal(Errno("close", path_));
  }
  fd_ = -1;
  return st;
}

}  // namespace idlog
