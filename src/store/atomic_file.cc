#include "store/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace idlog {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "' failed: " + std::strerror(errno);
}

/// The containing directory of `path` ("." for a bare filename).
std::string DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  // The temporary lives in the target's directory so the rename below
  // cannot cross filesystems; the pid keeps concurrent processes from
  // clobbering each other's temporaries, and the process-wide counter
  // keeps concurrent *threads* of this process apart (a pid-only suffix
  // let two threads writing the same path truncate each other's
  // temporary mid-write).
  static std::atomic<uint64_t> write_seq{0};
  const std::string tmp =
      path + "." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(write_seq.fetch_add(1, std::memory_order_relaxed)) +
      ".tmp";
  auto fail = [&tmp](Status st) {
    ::unlink(tmp.c_str());
    return st;
  };

  IDLOG_FAILPOINT("store.write.open");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp));

  Status st = Status::OK();
  if (Failpoints::AnyArmed()) {
    st = Failpoints::Instance().OnHit("store.write.data");
  }
  if (st.ok()) st = WriteAll(fd, data, tmp);
  if (st.ok() && Failpoints::AnyArmed()) {
    st = Failpoints::Instance().OnHit("store.write.fsync");
  }
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::Internal(Errno("fsync", tmp));
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::Internal(Errno("close", tmp));
  }
  if (!st.ok()) return fail(std::move(st));

  if (Failpoints::AnyArmed()) {
    st = Failpoints::Instance().OnHit("store.write.rename");
    if (!st.ok()) return fail(std::move(st));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(Status::Internal(Errno("rename", tmp)));
  }

  // Persist the directory entry; without this a crash can lose the
  // rename itself even though both file versions were durable.
  int dirfd = ::open(DirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    (void)::close(dirfd);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  IDLOG_FAILPOINT("store.read.open");
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // Only a genuinely missing file is NotFound — callers use that to
    // mean "cold start, nothing durable yet". Any other open failure
    // (EACCES, EIO, ELOOP, ...) means the file may exist but cannot be
    // trusted to be absent, so it must surface as an error, not as an
    // invitation to start over and clobber it.
    if (errno == ENOENT) {
      return Status::NotFound("cannot open '" + path + "': " +
                              std::strerror(ENOENT));
    }
    return Status::Internal(Errno("open", path));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Internal(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const uint32_t* table = [] {
    uint32_t* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace idlog
