#include "store/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace idlog {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "' failed: " + std::strerror(errno);
}

/// The containing directory of `path` ("." for a bare filename).
std::string DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  // The temporary lives in the target's directory so the rename below
  // cannot cross filesystems; the pid keeps concurrent processes from
  // clobbering each other's temporaries.
  const std::string tmp =
      path + "." + std::to_string(static_cast<long>(::getpid())) + ".tmp";
  auto fail = [&tmp](Status st) {
    ::unlink(tmp.c_str());
    return st;
  };

  IDLOG_FAILPOINT("store.write.open");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp));

  Status st = Status::OK();
  if (Failpoints::AnyArmed()) {
    st = Failpoints::Instance().OnHit("store.write.data");
  }
  if (st.ok()) st = WriteAll(fd, data, tmp);
  if (st.ok() && Failpoints::AnyArmed()) {
    st = Failpoints::Instance().OnHit("store.write.fsync");
  }
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::Internal(Errno("fsync", tmp));
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::Internal(Errno("close", tmp));
  }
  if (!st.ok()) return fail(std::move(st));

  if (Failpoints::AnyArmed()) {
    st = Failpoints::Instance().OnHit("store.write.rename");
    if (!st.ok()) return fail(std::move(st));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(Status::Internal(Errno("rename", tmp)));
  }

  // Persist the directory entry; without this a crash can lose the
  // rename itself even though both file versions were durable.
  int dirfd = ::open(DirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    (void)::close(dirfd);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  IDLOG_FAILPOINT("store.read.open");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Internal("read of '" + path + "' failed");
  *out = buf.str();
  return Status::OK();
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const uint32_t* table = [] {
    uint32_t* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace idlog
