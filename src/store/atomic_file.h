#ifndef IDLOG_STORE_ATOMIC_FILE_H_
#define IDLOG_STORE_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace idlog {

/// Writes `data` to `path` atomically: the bytes go to a temporary file
/// in the same directory, are fsynced, and the temporary is renamed
/// over `path` (then the directory entry is fsynced). A reader — or a
/// crash at any instant — therefore sees either the previous complete
/// file or the new complete file, never a torn prefix. Every snapshot,
/// metrics/explain/trace JSON and CSV export goes through here.
///
/// On any failure the temporary is removed and `path` is untouched.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Reads the whole of `path` into `out`. NotFound only when the file
/// does not exist (ENOENT); any other open or read failure (EACCES,
/// EIO, ...) is Internal, so callers can tell "nothing durable yet"
/// from "durable state present but unreadable".
Status ReadFileToString(const std::string& path, std::string* out);

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`, seeded with
/// `seed` so checksums can be chained across buffers. Self-contained —
/// no zlib dependency.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace idlog

#endif  // IDLOG_STORE_ATOMIC_FILE_H_
