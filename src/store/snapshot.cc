#include "store/snapshot.h"

#include <cstring>

#include "store/atomic_file.h"
#include "common/failpoint.h"
#include "obs/flight_recorder.h"

namespace idlog {

namespace {

// Section tags, in required file order.
constexpr uint32_t kSectionEnd = 0;
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionSymbols = 2;
constexpr uint32_t kSectionDatabase = 3;
constexpr uint32_t kSectionDerived = 4;
constexpr uint32_t kSectionIdRels = 5;
constexpr uint32_t kSectionDelta = 6;
constexpr uint32_t kSectionAnalysis = 7;
constexpr uint32_t kSectionProfile = 8;
constexpr uint32_t kSectionDeriv = 9;
constexpr uint32_t kSectionWalPos = 10;

const char* SectionName(uint32_t tag) {
  switch (tag) {
    case kSectionEnd: return "END";
    case kSectionMeta: return "META";
    case kSectionSymbols: return "SYMBOLS";
    case kSectionDatabase: return "DATABASE";
    case kSectionDerived: return "DERIVED";
    case kSectionIdRels: return "IDRELS";
    case kSectionDelta: return "DELTA";
    case kSectionAnalysis: return "ANALYSIS";
    case kSectionProfile: return "PROFILE";
    case kSectionDeriv: return "DERIV";
    case kSectionWalPos: return "WALPOS";
    default: return "?";
  }
}

// ---- encoding -------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutTuple(std::string* out, const Tuple& t) {
  for (const Value& v : t) {
    PutU8(out, static_cast<uint8_t>(v.sort()));
    PutU64(out, v.is_symbol() ? static_cast<uint64_t>(v.symbol())
                              : static_cast<uint64_t>(v.number()));
  }
}

void PutRelation(std::string* out, const Relation& rel) {
  const RelationType& type = rel.type();
  PutU32(out, static_cast<uint32_t>(type.size()));
  for (Sort s : type) PutU8(out, static_cast<uint8_t>(s));
  // Insertion order, deliberately: canonical tid assignment and index
  // bucket order both follow it, so a resumed run must reproduce it.
  PutU64(out, rel.size());
  for (const Tuple& t : rel.tuples()) PutTuple(out, t);
  // Logical change counters: db-stats reports them, so a recovered run
  // must see the same values an uninterrupted one would.
  PutU64(out, rel.version());
  PutU64(out, rel.clear_generation());
}

void PutStats(std::string* out, const EvalStats& s) {
  PutU64(out, s.tuples_considered);
  PutU64(out, s.facts_derived);
  PutU64(out, s.facts_inserted);
  PutU64(out, s.rule_firings);
  PutU64(out, s.iterations);
  PutU64(out, s.strata_evaluated);
  PutU64(out, s.id_groups_assigned);
  PutU64(out, s.id_tuples_materialized);
  PutU64(out, s.index_probes);
  PutU64(out, s.index_builds);
  PutU64(out, s.index_cache_misses);
  PutU64(out, s.eval_wall_ns);
  PutU64(out, s.provenance_nodes);
  PutU64(out, s.provenance_premises);
  PutU64(out, s.provenance_bytes);
}

void PutSection(std::string* out, uint32_t tag, const std::string& payload) {
  std::string header;
  PutU32(&header, tag);
  PutU64(&header, payload.size());
  uint32_t crc = Crc32(header);
  crc = Crc32(payload, crc);
  out->append(header);
  out->append(payload);
  PutU32(out, crc);
  // Black-box breadcrumb per serialized section: a crash between here
  // and the atomic rename shows exactly which sections were composed.
  FlightRecorder::Record(FlightEventKind::kCheckpointSection,
                         SectionName(tag),
                         static_cast<int64_t>(payload.size()),
                         static_cast<int64_t>(crc));
}

// ---- decoding -------------------------------------------------------

/// Bounds-checked little-endian reader over one section payload (or the
/// file header). Every primitive read returns a Status so a truncated
/// or lying length field surfaces as a clean error, never a wild read.
struct Reader {
  std::string_view data;
  size_t pos = 0;
  std::string where;  ///< Section name, for error messages.

  Status Need(size_t n) {
    if (data.size() - pos < n) {
      return Status::InvalidArgument("snapshot corrupt: section " + where +
                                     " ends mid-field");
    }
    return Status::OK();
  }
  bool AtEnd() const { return pos == data.size(); }

  Status U8(uint8_t* v) {
    IDLOG_RETURN_NOT_OK(Need(1));
    *v = static_cast<uint8_t>(data[pos++]);
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    IDLOG_RETURN_NOT_OK(Need(4));
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    *v = r;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    IDLOG_RETURN_NOT_OK(Need(8));
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    *v = r;
    return Status::OK();
  }
  Status I32(int32_t* v) {
    uint32_t u = 0;
    IDLOG_RETURN_NOT_OK(U32(&u));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }
  Status Str(std::string* s) {
    uint32_t len = 0;
    IDLOG_RETURN_NOT_OK(U32(&len));
    IDLOG_RETURN_NOT_OK(Need(len));
    s->assign(data.substr(pos, len));
    pos += len;
    return Status::OK();
  }
};

Status ReadStats(Reader* r, EvalStats* s) {
  IDLOG_RETURN_NOT_OK(r->U64(&s->tuples_considered));
  IDLOG_RETURN_NOT_OK(r->U64(&s->facts_derived));
  IDLOG_RETURN_NOT_OK(r->U64(&s->facts_inserted));
  IDLOG_RETURN_NOT_OK(r->U64(&s->rule_firings));
  IDLOG_RETURN_NOT_OK(r->U64(&s->iterations));
  IDLOG_RETURN_NOT_OK(r->U64(&s->strata_evaluated));
  IDLOG_RETURN_NOT_OK(r->U64(&s->id_groups_assigned));
  IDLOG_RETURN_NOT_OK(r->U64(&s->id_tuples_materialized));
  IDLOG_RETURN_NOT_OK(r->U64(&s->index_probes));
  IDLOG_RETURN_NOT_OK(r->U64(&s->index_builds));
  IDLOG_RETURN_NOT_OK(r->U64(&s->index_cache_misses));
  IDLOG_RETURN_NOT_OK(r->U64(&s->eval_wall_ns));
  IDLOG_RETURN_NOT_OK(r->U64(&s->provenance_nodes));
  IDLOG_RETURN_NOT_OK(r->U64(&s->provenance_premises));
  IDLOG_RETURN_NOT_OK(r->U64(&s->provenance_bytes));
  return Status::OK();
}

Status ReadRelation(Reader* r, size_t num_symbols, bool with_counters,
                    Relation* out) {
  uint32_t arity = 0;
  IDLOG_RETURN_NOT_OK(r->U32(&arity));
  RelationType type;
  type.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    uint8_t sort = 0;
    IDLOG_RETURN_NOT_OK(r->U8(&sort));
    if (sort > 1) {
      return Status::InvalidArgument(
          "snapshot corrupt: section " + r->where + " has invalid sort " +
          std::to_string(sort));
    }
    type.push_back(static_cast<Sort>(sort));
  }
  uint64_t nrows = 0;
  IDLOG_RETURN_NOT_OK(r->U64(&nrows));
  *out = Relation(type);
  for (uint64_t row = 0; row < nrows; ++row) {
    Tuple t;
    t.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      uint8_t sort = 0;
      uint64_t payload = 0;
      IDLOG_RETURN_NOT_OK(r->U8(&sort));
      IDLOG_RETURN_NOT_OK(r->U64(&payload));
      if (sort != static_cast<uint8_t>(type[i])) {
        return Status::InvalidArgument("snapshot corrupt: section " +
                                       r->where +
                                       " tuple sort disagrees with type");
      }
      if (type[i] == Sort::kU) {
        if (payload >= num_symbols) {
          return Status::InvalidArgument(
              "snapshot corrupt: section " + r->where + " references " +
              "symbol id " + std::to_string(payload) + " beyond the " +
              std::to_string(num_symbols) + " interned symbols");
        }
        t.push_back(Value::Symbol(static_cast<SymbolId>(payload)));
      } else {
        t.push_back(Value::Number(static_cast<int64_t>(payload)));
      }
    }
    if (!out->Insert(std::move(t))) {
      return Status::InvalidArgument("snapshot corrupt: section " +
                                     r->where + " contains duplicate tuples");
    }
  }
  if (with_counters) {
    uint64_t version = 0;
    uint64_t clear_generation = 0;
    IDLOG_RETURN_NOT_OK(r->U64(&version));
    IDLOG_RETURN_NOT_OK(r->U64(&clear_generation));
    if (version < nrows) {
      return Status::InvalidArgument(
          "snapshot corrupt: section " + r->where + " claims version " +
          std::to_string(version) + " below its own row count " +
          std::to_string(nrows));
    }
    out->RestoreCounters(version, clear_generation);
  }
  // Without stored counters (v1) the relation keeps what the inserts
  // above produced: version == row count, clear generation 0 — exactly
  // what a v1-era decode reported.
  return Status::OK();
}

/// Reads `count` values of the DERIV section's self-describing tuple
/// encoding (sort byte + payload each, same as relation rows but with
/// no relation type to check against).
Status ReadValues(Reader* r, size_t num_symbols, uint32_t count,
                  Tuple* out) {
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t sort = 0;
    uint64_t payload = 0;
    IDLOG_RETURN_NOT_OK(r->U8(&sort));
    IDLOG_RETURN_NOT_OK(r->U64(&payload));
    if (sort > 1) {
      return Status::InvalidArgument(
          "snapshot corrupt: section " + r->where + " has invalid sort " +
          std::to_string(sort));
    }
    if (static_cast<Sort>(sort) == Sort::kU) {
      if (payload >= num_symbols) {
        return Status::InvalidArgument(
            "snapshot corrupt: section " + r->where + " references " +
            "symbol id " + std::to_string(payload) + " beyond the " +
            std::to_string(num_symbols) + " interned symbols");
      }
      out->push_back(Value::Symbol(static_cast<SymbolId>(payload)));
    } else {
      out->push_back(Value::Number(static_cast<int64_t>(payload)));
    }
  }
  return Status::OK();
}

Status ExpectConsumed(const Reader& r) {
  if (!r.AtEnd()) {
    return Status::InvalidArgument("snapshot corrupt: section " + r.where +
                                   " has " +
                                   std::to_string(r.data.size() - r.pos) +
                                   " trailing bytes");
  }
  return Status::OK();
}

// ---- semantic invariants -------------------------------------------

Status CheckInvariants(const SnapshotData& snap) {
  // Delta tuples were committed: each must already be present in its
  // derived relation (Commit inserts into the full relation first).
  for (const auto& [pred, delta_rel] : snap.delta) {
    auto it = snap.derived.find(pred);
    if (it == snap.derived.end()) {
      return Status::InvalidArgument(
          "snapshot fails invariant: delta relation '" + pred +
          "' has no derived relation");
    }
    for (const Tuple& t : delta_rel.tuples()) {
      if (!it->second.Contains(t)) {
        return Status::InvalidArgument(
            "snapshot fails invariant: delta tuple of '" + pred +
            "' missing from its derived relation");
      }
    }
  }
  // ID-relation tuples project (tid removed) onto their base relation.
  // The materialization may be a prefix (tid-bound pushdown), so subset
  // is the right check, not equality.
  for (const auto& [key, id_rel] : snap.id_relations) {
    const std::string& pred = key.first;
    const Relation* base = nullptr;
    auto derived_it = snap.derived.find(pred);
    if (derived_it != snap.derived.end()) {
      base = &derived_it->second;
    } else {
      for (const auto& named : snap.edb) {
        if (named.name == pred) {
          base = &named.relation;
          break;
        }
      }
    }
    if (base == nullptr) continue;  // Empty-base ID-relation.
    if (id_rel.arity() != base->arity() + 1) {
      return Status::InvalidArgument(
          "snapshot fails invariant: ID-relation of '" + pred +
          "' has arity " + std::to_string(id_rel.arity()) +
          ", base has " + std::to_string(base->arity()));
    }
    for (const Tuple& t : id_rel.tuples()) {
      Tuple projected(t.begin(), t.end() - 1);
      if (!base->Contains(projected)) {
        return Status::InvalidArgument(
            "snapshot fails invariant: ID-relation tuple of '" + pred +
            "' projects to a tuple outside its base relation");
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::string SerializeSnapshot(const SnapshotView& view) {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&out, kSnapshotVersion);

  {
    std::string meta;
    PutU64(&meta, view.config.program_hash);
    PutU8(&meta, view.config.seminaive ? 1 : 0);
    PutU8(&meta, view.config.tid_bound_pushdown ? 1 : 0);
    PutU8(&meta, view.config.use_indexes ? 1 : 0);
    PutU8(&meta, view.progress.completed ? 1 : 0);
    PutI32(&meta, view.progress.stratum);
    PutU64(&meta, view.progress.round);
    PutU8(&meta, view.progress.in_stratum ? 1 : 0);
    PutStats(&meta, view.stats != nullptr ? *view.stats : EvalStats());
    PutStr(&meta, view.config.assigner_kind);
    PutStr(&meta, view.config.assigner_state);
    PutSection(&out, kSectionMeta, meta);
  }

  {
    std::string syms;
    PutU64(&syms, view.symbols->size());
    for (SymbolId id = 0; id < view.symbols->size(); ++id) {
      PutStr(&syms, view.symbols->NameOf(id));
    }
    PutSection(&out, kSectionSymbols, syms);
  }

  {
    std::string db;
    const std::vector<std::string>& names = view.database->relation_names();
    PutU32(&db, static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) {
      PutStr(&db, name);
      PutRelation(&db, *view.database->Get(name).ValueOrDie());
    }
    PutU64(&db, view.database->u_domain().size());
    for (SymbolId id : view.database->u_domain()) PutU32(&db, id);
    PutSection(&out, kSectionDatabase, db);
  }

  {
    std::string der;
    PutU32(&der, static_cast<uint32_t>(view.derived->size()));
    for (const auto& [name, rel] : *view.derived) {
      PutStr(&der, name);
      PutRelation(&der, rel);
    }
    PutSection(&out, kSectionDerived, der);
  }

  {
    std::string ids;
    PutU32(&ids, static_cast<uint32_t>(view.id_relations->size()));
    for (const auto& [key, rel] : *view.id_relations) {
      PutStr(&ids, key.first);
      PutU32(&ids, static_cast<uint32_t>(key.second.size()));
      for (int col : key.second) PutI32(&ids, col);
      PutRelation(&ids, rel);
    }
    PutSection(&out, kSectionIdRels, ids);
  }

  {
    std::string delta;
    size_t n = view.delta != nullptr ? view.delta->size() : 0;
    PutU32(&delta, static_cast<uint32_t>(n));
    if (view.delta != nullptr) {
      for (const auto& [name, rel] : *view.delta) {
        PutStr(&delta, name);
        PutRelation(&delta, rel);
      }
    }
    PutSection(&out, kSectionDelta, delta);
  }

  {
    std::string ana;
    PutU8(&ana, view.analysis != nullptr ? 1 : 0);
    if (view.analysis != nullptr) {
      PutU32(&ana, static_cast<uint32_t>(view.analysis->rules.size()));
      for (const RuleStepStats& rule : view.analysis->rules) {
        PutU32(&ana, static_cast<uint32_t>(rule.steps.size()));
        for (const StepCounters& c : rule.steps) {
          PutU64(&ana, c.rows_in);
          PutU64(&ana, c.rows_scanned);
          PutU64(&ana, c.index_probes);
          PutU64(&ana, c.index_hits);
          PutU64(&ana, c.index_misses);
          PutU64(&ana, c.rows_emitted);
        }
      }
      PutU32(&ana, static_cast<uint32_t>(view.analysis->strata.size()));
      for (const StratumRoundStats& s : view.analysis->strata) {
        PutI32(&ana, s.stratum);
        PutU64(&ana, s.new_facts_per_round.size());
        for (uint64_t n : s.new_facts_per_round) PutU64(&ana, n);
      }
    }
    PutSection(&out, kSectionAnalysis, ana);
  }

  {
    std::string prof;
    PutU8(&prof, view.profile != nullptr ? 1 : 0);
    if (view.profile != nullptr) {
      PutU32(&prof, static_cast<uint32_t>(view.profile->rules.size()));
      for (const RuleProfile& rp : view.profile->rules) {
        PutI32(&prof, rp.clause_index);
        PutStr(&prof, rp.head_pred);
        PutStr(&prof, rp.rule);
        PutI32(&prof, rp.stratum);
        PutU64(&prof, rp.evals);
        PutU64(&prof, rp.firings);
        PutU64(&prof, rp.tuples_considered);
        PutU64(&prof, rp.facts_derived);
        PutU64(&prof, rp.facts_inserted);
        PutU64(&prof, rp.self_ns);
      }
      PutU32(&prof, static_cast<uint32_t>(view.profile->strata.size()));
      for (const StratumProfile& sp : view.profile->strata) {
        PutI32(&prof, sp.index);
        PutU64(&prof, sp.rules);
        PutU64(&prof, sp.rounds);
        PutU64(&prof, sp.wall_ns);
      }
      PutStats(&prof, view.profile->totals);
      PutU64(&prof, view.profile->wall_ns);
    }
    PutSection(&out, kSectionProfile, prof);
  }

  {
    // Derivations in recording order: the predicate interner table,
    // then one node per recorded fact with its premises inline. Decode
    // replays Record() in the same order, so a round-trip reproduces
    // the store (and thus proof trees) byte-for-byte.
    std::string der;
    PutU8(&der, view.provenance != nullptr ? 1 : 0);
    if (view.provenance != nullptr) {
      const ProvenanceStore& store = *view.provenance;
      PutU64(&der, store.num_interned_predicates());
      for (size_t i = 0; i < store.num_interned_predicates(); ++i) {
        PutStr(&der, store.PredicateName(
                         static_cast<ProvenanceStore::PredId>(i)));
      }
      PutU64(&der, store.size());
      for (size_t i = 0; i < store.size(); ++i) {
        ProvenanceStore::NodeView n = store.node(i);
        PutU32(&der, n.pred);
        PutU32(&der, static_cast<uint32_t>(n.tuple.size()));
        PutTuple(&der, n.tuple);
        PutI32(&der, n.clause_index);
        PutU32(&der, n.premise_count);
        for (uint32_t pi = 0; pi < n.premise_count; ++pi) {
          const Premise& p = n.premises[pi];
          PutU8(&der, static_cast<uint8_t>(p.kind));
          PutStr(&der, p.predicate);
          PutU32(&der, static_cast<uint32_t>(p.group.size()));
          for (int col : p.group) PutI32(&der, col);
          PutU32(&der, static_cast<uint32_t>(p.tuple.size()));
          PutTuple(&der, p.tuple);
          PutStr(&der, p.builtin_text);
        }
      }
    }
    PutSection(&out, kSectionDeriv, der);
  }

  {
    std::string wal;
    PutU8(&wal, view.wal_pos.present ? 1 : 0);
    PutU64(&wal, view.wal_pos.epoch);
    PutU64(&wal, view.wal_pos.offset);
    PutU64(&wal, view.wal_pos.commits);
    PutSection(&out, kSectionWalPos, wal);
  }

  PutSection(&out, kSectionEnd, std::string());
  return out;
}

Result<SnapshotData> ParseSnapshot(std::string_view bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::InvalidArgument(
        "not an idlog snapshot (bad or missing magic)");
  }
  size_t pos = sizeof(kSnapshotMagic);
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i]))
               << (8 * i);
  }
  pos += 4;
  if (version != kSnapshotVersion && version != 1) {
    return Status::Unsupported(
        "snapshot version " + std::to_string(version) +
        "; this build reads idlog-snap-v2 (and the older v1) only");
  }
  // v1 files predate the per-relation counters and the WALPOS section;
  // both default (counters to what re-insertion produces, WAL position
  // to absent), so old checkpoints stay resumable.
  const bool with_counters = version >= 2;
  const uint32_t last_section =
      version >= 2 ? kSectionWalPos : kSectionDeriv;

  SnapshotData snap;
  uint32_t expected_tag = kSectionMeta;
  bool saw_end = false;
  while (!saw_end) {
    if (bytes.size() - pos < 12) {
      return Status::InvalidArgument(
          "snapshot truncated: section header cut short at byte " +
          std::to_string(pos));
    }
    std::string_view header = bytes.substr(pos, 12);
    uint32_t tag = 0;
    uint64_t len = 0;
    for (int i = 0; i < 4; ++i) {
      tag |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
             << (8 * i);
    }
    for (int i = 0; i < 8; ++i) {
      len |= static_cast<uint64_t>(static_cast<uint8_t>(header[4 + i]))
             << (8 * i);
    }
    if (bytes.size() - pos - 12 < len ||
        bytes.size() - pos - 12 - len < 4) {
      return Status::InvalidArgument(
          "snapshot truncated: section " + std::string(SectionName(tag)) +
          " claims " + std::to_string(len) + " bytes past end of file");
    }
    std::string_view payload = bytes.substr(pos + 12, len);
    uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>(
                        bytes[pos + 12 + len + i]))
                    << (8 * i);
    }
    uint32_t crc = Crc32(header);
    crc = Crc32(payload, crc);
    if (crc != stored_crc) {
      return Status::InvalidArgument(
          "snapshot corrupt: CRC mismatch in section " +
          std::string(SectionName(tag)));
    }
    pos += 12 + len + 4;

    if (tag == kSectionEnd) {
      if (expected_tag <= last_section) {
        return Status::InvalidArgument(
            "snapshot corrupt: END before section " +
            std::string(SectionName(expected_tag)));
      }
      saw_end = true;
      break;
    }
    if (tag != expected_tag) {
      return Status::InvalidArgument(
          "snapshot corrupt: expected section " +
          std::string(SectionName(expected_tag)) + ", found " +
          std::string(SectionName(tag)));
    }
    ++expected_tag;

    Reader r{payload, 0, SectionName(tag)};
    switch (tag) {
      case kSectionMeta: {
        uint8_t flag = 0;
        IDLOG_RETURN_NOT_OK(r.U64(&snap.config.program_hash));
        IDLOG_RETURN_NOT_OK(r.U8(&flag));
        snap.config.seminaive = flag != 0;
        IDLOG_RETURN_NOT_OK(r.U8(&flag));
        snap.config.tid_bound_pushdown = flag != 0;
        IDLOG_RETURN_NOT_OK(r.U8(&flag));
        snap.config.use_indexes = flag != 0;
        IDLOG_RETURN_NOT_OK(r.U8(&flag));
        snap.progress.completed = flag != 0;
        int32_t stratum = 0;
        IDLOG_RETURN_NOT_OK(r.I32(&stratum));
        snap.progress.stratum = stratum;
        IDLOG_RETURN_NOT_OK(r.U64(&snap.progress.round));
        IDLOG_RETURN_NOT_OK(r.U8(&flag));
        snap.progress.in_stratum = flag != 0;
        IDLOG_RETURN_NOT_OK(ReadStats(&r, &snap.stats));
        IDLOG_RETURN_NOT_OK(r.Str(&snap.config.assigner_kind));
        IDLOG_RETURN_NOT_OK(r.Str(&snap.config.assigner_state));
        break;
      }
      case kSectionSymbols: {
        uint64_t count = 0;
        IDLOG_RETURN_NOT_OK(r.U64(&count));
        for (uint64_t i = 0; i < count; ++i) {
          std::string name;
          IDLOG_RETURN_NOT_OK(r.Str(&name));
          SymbolId id = snap.symbols.Intern(name);
          if (id != i) {
            return Status::InvalidArgument(
                "snapshot corrupt: SYMBOLS table repeats '" + name + "'");
          }
        }
        break;
      }
      case kSectionDatabase: {
        uint32_t nrel = 0;
        IDLOG_RETURN_NOT_OK(r.U32(&nrel));
        for (uint32_t i = 0; i < nrel; ++i) {
          SnapshotData::NamedRelation named;
          IDLOG_RETURN_NOT_OK(r.Str(&named.name));
          IDLOG_RETURN_NOT_OK(
              ReadRelation(&r, snap.symbols.size(), with_counters,
                           &named.relation));
          snap.edb.push_back(std::move(named));
        }
        uint64_t ndom = 0;
        IDLOG_RETURN_NOT_OK(r.U64(&ndom));
        for (uint64_t i = 0; i < ndom; ++i) {
          uint32_t id = 0;
          IDLOG_RETURN_NOT_OK(r.U32(&id));
          if (id >= snap.symbols.size()) {
            return Status::InvalidArgument(
                "snapshot corrupt: u-domain id " + std::to_string(id) +
                " beyond the symbol table");
          }
          snap.u_domain.push_back(id);
        }
        break;
      }
      case kSectionDerived:
      case kSectionDelta: {
        auto* target =
            tag == kSectionDerived ? &snap.derived : &snap.delta;
        uint32_t nrel = 0;
        IDLOG_RETURN_NOT_OK(r.U32(&nrel));
        for (uint32_t i = 0; i < nrel; ++i) {
          std::string name;
          IDLOG_RETURN_NOT_OK(r.Str(&name));
          Relation rel;
          IDLOG_RETURN_NOT_OK(
              ReadRelation(&r, snap.symbols.size(), with_counters, &rel));
          if (!target->emplace(name, std::move(rel)).second) {
            return Status::InvalidArgument(
                "snapshot corrupt: relation '" + name + "' appears twice");
          }
        }
        break;
      }
      case kSectionIdRels: {
        uint32_t n = 0;
        IDLOG_RETURN_NOT_OK(r.U32(&n));
        for (uint32_t i = 0; i < n; ++i) {
          std::string pred;
          IDLOG_RETURN_NOT_OK(r.Str(&pred));
          uint32_t ngroup = 0;
          IDLOG_RETURN_NOT_OK(r.U32(&ngroup));
          std::vector<int> group;
          for (uint32_t g = 0; g < ngroup; ++g) {
            int32_t col = 0;
            IDLOG_RETURN_NOT_OK(r.I32(&col));
            group.push_back(col);
          }
          Relation rel;
          IDLOG_RETURN_NOT_OK(
              ReadRelation(&r, snap.symbols.size(), with_counters, &rel));
          snap.id_relations.emplace(
              std::make_pair(std::move(pred), std::move(group)),
              std::move(rel));
        }
        break;
      }
      case kSectionAnalysis: {
        uint8_t present = 0;
        IDLOG_RETURN_NOT_OK(r.U8(&present));
        snap.has_analysis = present != 0;
        if (snap.has_analysis) {
          uint32_t nrules = 0;
          IDLOG_RETURN_NOT_OK(r.U32(&nrules));
          snap.analysis.rules.resize(nrules);
          for (uint32_t i = 0; i < nrules; ++i) {
            uint32_t nsteps = 0;
            IDLOG_RETURN_NOT_OK(r.U32(&nsteps));
            snap.analysis.rules[i].steps.resize(nsteps);
            for (StepCounters& c : snap.analysis.rules[i].steps) {
              IDLOG_RETURN_NOT_OK(r.U64(&c.rows_in));
              IDLOG_RETURN_NOT_OK(r.U64(&c.rows_scanned));
              IDLOG_RETURN_NOT_OK(r.U64(&c.index_probes));
              IDLOG_RETURN_NOT_OK(r.U64(&c.index_hits));
              IDLOG_RETURN_NOT_OK(r.U64(&c.index_misses));
              IDLOG_RETURN_NOT_OK(r.U64(&c.rows_emitted));
            }
          }
          uint32_t nstrata = 0;
          IDLOG_RETURN_NOT_OK(r.U32(&nstrata));
          snap.analysis.strata.resize(nstrata);
          for (StratumRoundStats& s : snap.analysis.strata) {
            IDLOG_RETURN_NOT_OK(r.I32(&s.stratum));
            uint64_t nrounds = 0;
            IDLOG_RETURN_NOT_OK(r.U64(&nrounds));
            s.new_facts_per_round.resize(nrounds);
            for (uint64_t& v : s.new_facts_per_round) {
              IDLOG_RETURN_NOT_OK(r.U64(&v));
            }
          }
        }
        break;
      }
      case kSectionProfile: {
        uint8_t present = 0;
        IDLOG_RETURN_NOT_OK(r.U8(&present));
        snap.has_profile = present != 0;
        if (snap.has_profile) {
          uint32_t nrules = 0;
          IDLOG_RETURN_NOT_OK(r.U32(&nrules));
          snap.profile.rules.resize(nrules);
          for (RuleProfile& rp : snap.profile.rules) {
            IDLOG_RETURN_NOT_OK(r.I32(&rp.clause_index));
            IDLOG_RETURN_NOT_OK(r.Str(&rp.head_pred));
            IDLOG_RETURN_NOT_OK(r.Str(&rp.rule));
            IDLOG_RETURN_NOT_OK(r.I32(&rp.stratum));
            IDLOG_RETURN_NOT_OK(r.U64(&rp.evals));
            IDLOG_RETURN_NOT_OK(r.U64(&rp.firings));
            IDLOG_RETURN_NOT_OK(r.U64(&rp.tuples_considered));
            IDLOG_RETURN_NOT_OK(r.U64(&rp.facts_derived));
            IDLOG_RETURN_NOT_OK(r.U64(&rp.facts_inserted));
            IDLOG_RETURN_NOT_OK(r.U64(&rp.self_ns));
          }
          uint32_t nstrata = 0;
          IDLOG_RETURN_NOT_OK(r.U32(&nstrata));
          snap.profile.strata.resize(nstrata);
          for (StratumProfile& sp : snap.profile.strata) {
            IDLOG_RETURN_NOT_OK(r.I32(&sp.index));
            IDLOG_RETURN_NOT_OK(r.U64(&sp.rules));
            IDLOG_RETURN_NOT_OK(r.U64(&sp.rounds));
            IDLOG_RETURN_NOT_OK(r.U64(&sp.wall_ns));
          }
          IDLOG_RETURN_NOT_OK(ReadStats(&r, &snap.profile.totals));
          IDLOG_RETURN_NOT_OK(r.U64(&snap.profile.wall_ns));
        }
        break;
      }
      case kSectionDeriv: {
        uint8_t present = 0;
        IDLOG_RETURN_NOT_OK(r.U8(&present));
        snap.has_provenance = present != 0;
        if (snap.has_provenance) {
          uint64_t npreds = 0;
          IDLOG_RETURN_NOT_OK(r.U64(&npreds));
          // Re-intern the table in file order: ids 0..n-1 come back
          // exactly as saved (a predicate may be interned without any
          // node, e.g. the head of a rule that never fired).
          for (uint64_t i = 0; i < npreds; ++i) {
            std::string name;
            IDLOG_RETURN_NOT_OK(r.Str(&name));
            if (snap.provenance.InternPredicate(name) != i) {
              return Status::InvalidArgument(
                  "snapshot corrupt: DERIV predicate table repeats '" +
                  name + "'");
            }
          }
          uint64_t nnodes = 0;
          IDLOG_RETURN_NOT_OK(r.U64(&nnodes));
          for (uint64_t i = 0; i < nnodes; ++i) {
            uint32_t pred_id = 0;
            IDLOG_RETURN_NOT_OK(r.U32(&pred_id));
            if (pred_id >= npreds) {
              return Status::InvalidArgument(
                  "snapshot corrupt: DERIV node references predicate id " +
                  std::to_string(pred_id) + " beyond the " +
                  std::to_string(npreds) + " interned predicates");
            }
            uint32_t tuple_size = 0;
            IDLOG_RETURN_NOT_OK(r.U32(&tuple_size));
            Tuple tuple;
            IDLOG_RETURN_NOT_OK(
                ReadValues(&r, snap.symbols.size(), tuple_size, &tuple));
            int32_t clause_index = 0;
            IDLOG_RETURN_NOT_OK(r.I32(&clause_index));
            uint32_t npremises = 0;
            IDLOG_RETURN_NOT_OK(r.U32(&npremises));
            std::vector<Premise> premises;
            premises.reserve(npremises);
            for (uint32_t pi = 0; pi < npremises; ++pi) {
              uint8_t kind = 0;
              IDLOG_RETURN_NOT_OK(r.U8(&kind));
              if (kind > static_cast<uint8_t>(Premise::Kind::kBuiltin)) {
                return Status::InvalidArgument(
                    "snapshot corrupt: DERIV premise has invalid kind " +
                    std::to_string(kind));
              }
              Premise p;
              p.kind = static_cast<Premise::Kind>(kind);
              IDLOG_RETURN_NOT_OK(r.Str(&p.predicate));
              uint32_t ngroup = 0;
              IDLOG_RETURN_NOT_OK(r.U32(&ngroup));
              p.group.reserve(ngroup);
              for (uint32_t g = 0; g < ngroup; ++g) {
                int32_t col = 0;
                IDLOG_RETURN_NOT_OK(r.I32(&col));
                p.group.push_back(col);
              }
              uint32_t ptuple_size = 0;
              IDLOG_RETURN_NOT_OK(r.U32(&ptuple_size));
              IDLOG_RETURN_NOT_OK(ReadValues(&r, snap.symbols.size(),
                                             ptuple_size, &p.tuple));
              IDLOG_RETURN_NOT_OK(r.Str(&p.builtin_text));
              premises.push_back(std::move(p));
            }
            // Replaying Record in node order reproduces the original
            // arena layout exactly.
            snap.provenance.Record(
                static_cast<ProvenanceStore::PredId>(pred_id), tuple,
                clause_index, std::move(premises));
          }
        }
        break;
      }
      case kSectionWalPos: {
        uint8_t present = 0;
        IDLOG_RETURN_NOT_OK(r.U8(&present));
        snap.wal_pos.present = present != 0;
        IDLOG_RETURN_NOT_OK(r.U64(&snap.wal_pos.epoch));
        IDLOG_RETURN_NOT_OK(r.U64(&snap.wal_pos.offset));
        IDLOG_RETURN_NOT_OK(r.U64(&snap.wal_pos.commits));
        break;
      }
      default:
        return Status::InvalidArgument(
            "snapshot corrupt: unknown section tag " + std::to_string(tag));
    }
    IDLOG_RETURN_NOT_OK(ExpectConsumed(r));
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument(
        "snapshot corrupt: " + std::to_string(bytes.size() - pos) +
        " trailing bytes after END section");
  }
  IDLOG_RETURN_NOT_OK(CheckInvariants(snap));
  return snap;
}

Result<SnapshotData> LoadSnapshotFile(const std::string& path) {
  std::string bytes;
  IDLOG_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  IDLOG_FAILPOINT("store.read.header");
  Result<SnapshotData> snap = ParseSnapshot(bytes);
  if (!snap.ok()) {
    return Status(snap.status().code(),
                  "'" + path + "': " + snap.status().message());
  }
  IDLOG_FAILPOINT("store.read.section");
  return snap;
}

Status ValidateSnapshotFile(const std::string& path) {
  return LoadSnapshotFile(path).status();
}

}  // namespace idlog
