#ifndef IDLOG_STORE_SNAPSHOT_H_
#define IDLOG_STORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "common/value.h"
#include "eval/eval_stats.h"
#include "eval/provenance.h"
#include "obs/explain.h"
#include "obs/profile.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace idlog {

/// The `idlog-snap-v2` binary checkpoint format.
///
/// Layout: an 8-byte magic ("IDLGSNAP"), a little-endian u32 version,
/// then a sequence of sections `[tag u32][len u64][payload][crc32]`
/// where the CRC covers tag, length and payload, closed by an END
/// section (tag 0, empty). Sections appear in a fixed order (META,
/// SYMBOLS, DATABASE, DERIVED, IDRELS, DELTA, ANALYSIS, PROFILE, DERIV,
/// WALPOS, END);
/// any reordering, truncation, bit flip or trailing garbage is rejected
/// with a precise error naming the damage. Snapshot files are written
/// only through WriteFileAtomic, so a crash mid-write can never leave a
/// torn file at the target path. DERIV carries the provenance store
/// (absent unless provenance was enabled), so a resumed run can still
/// explain facts derived before the crash. WALPOS records how far into
/// a write-ahead log (store/wal.h) this snapshot's state reaches, so
/// recovery replays only the WAL tail beyond it.
///
/// v2 over v1: each serialized relation additionally carries its
/// logical version and clear-generation counters (db-stats fields that
/// must survive a round trip), and the WALPOS section exists. The
/// reader still accepts v1 files — the counters default to what
/// re-inserting the rows produces and the WAL position reads as absent
/// — so checkpoints written by v1 builds stay resumable; the writer
/// emits v2 only.
constexpr char kSnapshotMagic[8] = {'I', 'D', 'L', 'G',
                                    'S', 'N', 'A', 'P'};
constexpr uint32_t kSnapshotVersion = 2;

/// Run configuration captured at save time. A resumed run adopts these
/// (they change fixpoint *content*, unlike --jobs which is physical),
/// and the program hash guards against resuming under a different
/// program, whose plans the saved progress would be meaningless for.
struct SnapshotConfig {
  uint64_t program_hash = 0;
  bool seminaive = true;
  bool tid_bound_pushdown = true;
  bool use_indexes = true;
  std::string assigner_kind;   ///< TidAssigner::kind() at save time.
  std::string assigner_state;  ///< TidAssigner::SaveState() at save time.
};

/// How much of a write-ahead log the snapshot's state already covers.
/// Absent (present=false) for plain checkpoint/resume snapshots that
/// have no WAL attached.
struct SnapshotWalPosition {
  bool present = false;
  uint64_t epoch = 0;    ///< WAL header epoch the offset refers to.
  uint64_t offset = 0;   ///< Byte offset: records before it are covered.
  uint64_t commits = 0;  ///< Committed transactions folded into the state.
};

/// Where in the stratified fixpoint the snapshot was taken. Frames are
/// only ever cut at round boundaries (after a round's Commit), the one
/// point where derived relations, deltas and stats are all consistent.
struct SnapshotProgress {
  bool completed = false;  ///< The run finished; nothing left to resume.
  int stratum = 0;         ///< Stratum to (re-)enter on resume.
  uint64_t round = 0;      ///< Last committed round within it.
  bool in_stratum = false; ///< True: resume mid-stratum with `delta`.
};

/// Borrowed engine state to serialize (the engine's own maps; nothing
/// is copied). Null observability pointers serialize as absent.
struct SnapshotView {
  const SymbolTable* symbols = nullptr;
  const Database* database = nullptr;
  const std::map<std::string, Relation>* derived = nullptr;
  const std::map<std::pair<std::string, std::vector<int>>, Relation>*
      id_relations = nullptr;
  const std::map<std::string, Relation>* delta = nullptr;  ///< May be null.
  const EvalStats* stats = nullptr;
  const PlanAnalysis* analysis = nullptr;  ///< May be null.
  const EvalProfile* profile = nullptr;    ///< May be null.
  const ProvenanceStore* provenance = nullptr;  ///< May be null.
  SnapshotConfig config;
  SnapshotProgress progress;
  SnapshotWalPosition wal_pos;
};

/// A fully decoded snapshot, owning its state.
struct SnapshotData {
  struct NamedRelation {
    std::string name;
    Relation relation;
  };

  SymbolTable symbols;
  std::vector<NamedRelation> edb;      ///< In database creation order.
  std::vector<SymbolId> u_domain;      ///< Includes tuple-less extras.
  std::map<std::string, Relation> derived;
  std::map<std::pair<std::string, std::vector<int>>, Relation> id_relations;
  std::map<std::string, Relation> delta;
  EvalStats stats;
  bool has_analysis = false;
  PlanAnalysis analysis;
  bool has_profile = false;
  EvalProfile profile;
  bool has_provenance = false;
  ProvenanceStore provenance;
  SnapshotConfig config;
  SnapshotProgress progress;
  SnapshotWalPosition wal_pos;
};

/// Serializes `view` into an idlog-snap-v2 byte string.
std::string SerializeSnapshot(const SnapshotView& view);

/// Decodes a snapshot byte string, checking magic, version, section
/// framing and CRCs, plus semantic invariants (symbol ids in range,
/// delta tuples committed in their derived relations, ID-relation
/// tuples consistent with their bases).
Result<SnapshotData> ParseSnapshot(std::string_view bytes);

/// Reads and decodes the snapshot at `path`.
Result<SnapshotData> LoadSnapshotFile(const std::string& path);

/// Structural + invariant check of the file at `path` without keeping
/// the decoded state (the fault-injection sweep's "no torn snapshot"
/// assertion).
Status ValidateSnapshotFile(const std::string& path);

}  // namespace idlog

#endif  // IDLOG_STORE_SNAPSHOT_H_
