#ifndef IDLOG_STORE_WAL_H_
#define IDLOG_STORE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace idlog {

/// The `idlog-wal-v1` write-ahead log format.
///
/// Layout: a fixed 32-byte header — magic "IDLGWAL1", a little-endian
/// u32 version, a u64 epoch, a u64 program hash, and a CRC-32 of the
/// preceding 28 bytes — followed by a stream of length-prefixed
/// records `[len u32][crc u32][type u8][payload]`, where `len` counts
/// the type byte plus payload and the CRC covers them both.
///
/// The header is only ever written through WriteFileAtomic, so it can
/// never be torn; records are appended with plain write+fsync, so a
/// crash can leave a torn *tail*, which the scanner detects (short
/// frame, lying length, CRC mismatch, malformed payload) and truncates
/// at the last committed transaction boundary. Nothing before that
/// boundary is ever rewritten.
///
/// Record types:
///   BEGIN          {txn_id u64}
///   INSERT         {pred str}{tuple}
///   RETRACT        {pred str}{tuple}
///   COMMIT         {txn_id u64}
///   CHECKPOINT-REF {covered_offset u64}{snapshot_path str}
///
/// Tuples are self-describing: a u32 arity, then per value a u8 sort
/// tag (0 = number, payload i64; 1 = symbol, payload a u32-length
/// string). Symbols travel as *names*, not interned ids, so replay
/// re-interns them and a WAL outlives any particular symbol-table
/// numbering.
///
/// Deliberately absent: timestamps, hostnames, pids. A WAL's bytes are
/// a pure function of the operation stream, which is what makes
/// "recovered run == uninterrupted run" a byte-level statement.
constexpr char kWalMagic[8] = {'I', 'D', 'L', 'G', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalVersion = 1;
constexpr uint64_t kWalHeaderSize = 32;

/// One value of a logged tuple, symbol carried by name.
struct WalValue {
  bool is_symbol = false;
  int64_t number = 0;
  std::string symbol;

  static WalValue Number(int64_t n) {
    WalValue v;
    v.number = n;
    return v;
  }
  static WalValue Symbol(std::string name) {
    WalValue v;
    v.is_symbol = true;
    v.symbol = std::move(name);
    return v;
  }
};

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kInsert = 2,
  kRetract = 3,
  kCommit = 4,
  kCheckpointRef = 5,
};

/// Stable name of a record type ("BEGIN", "INSERT", ...).
const char* WalRecordTypeName(WalRecordType type);

/// One decoded record, tagged with its file offset.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t offset = 0;             ///< File offset of the length prefix.
  uint64_t txn_id = 0;             ///< BEGIN / COMMIT.
  std::string pred;                ///< INSERT / RETRACT.
  std::vector<WalValue> values;    ///< INSERT / RETRACT.
  uint64_t covered_offset = 0;     ///< CHECKPOINT-REF.
  std::string snapshot_path;       ///< CHECKPOINT-REF.
};

/// Result of scanning a WAL file for recovery.
struct WalScanResult {
  uint64_t epoch = 0;
  uint64_t program_hash = 0;
  uint64_t file_size = 0;
  /// Byte offset just past the last record that closed a committed
  /// transaction (COMMIT, or a top-level CHECKPOINT-REF); recovery
  /// truncates the file here before reopening it for append.
  uint64_t committed_length = kWalHeaderSize;
  /// Records up to committed_length, in file order.
  std::vector<WalRecord> records;
  /// Valid records past the last commit boundary that were dropped
  /// (an unterminated trailing transaction).
  uint64_t records_dropped = 0;
  /// True when bytes past committed_length existed (torn tail and/or
  /// an unterminated transaction).
  bool tail_truncated = false;
};

/// Scans the WAL at `path`: validates the header, decodes records
/// sequentially, stops at the first torn/corrupt frame, and reports
/// the last committed-transaction boundary. Errors:
///   NotFound         — no file at `path` (cold start).
///   InvalidArgument  — not a WAL, damaged header, or a file shorter
///                      than the (atomically written) header: that is
///                      corruption, never a crash artifact.
///   Unsupported      — a future format version.
///   Internal         — unreadable file (EACCES/EIO — NOT a cold
///                      start) or an injected fault.
/// A torn tail is NOT an error: the scan succeeds and reports the
/// usable prefix.
Result<WalScanResult> ScanWal(const std::string& path);

/// Append handle to a WAL file. Records accumulate in a buffer;
/// AppendCommit flushes (write + fsync) once `group_commit_every`
/// commit marks are pending, so with the default of 1 every commit is
/// durable before AppendCommit returns.
class WriteAheadLog {
 public:
  /// Creates a fresh WAL at `path` (header written atomically,
  /// clobbering any previous file) and opens it for append.
  static Result<std::unique_ptr<WriteAheadLog>> Create(
      const std::string& path, uint64_t epoch, uint64_t program_hash,
      uint64_t group_commit_every = 1);

  /// Reopens an existing WAL for append after a scan: truncates the
  /// file to `committed_length` (dropping any torn tail) and positions
  /// writes at the end.
  static Result<std::unique_ptr<WriteAheadLog>> OpenForAppend(
      const std::string& path, const WalScanResult& scan,
      uint64_t group_commit_every = 1);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  Status AppendBegin(uint64_t txn_id);
  Status AppendInsert(const std::string& pred,
                      const std::vector<WalValue>& values);
  Status AppendRetract(const std::string& pred,
                       const std::vector<WalValue>& values);
  /// Appends the commit mark and flushes the pending group when due.
  Status AppendCommit(uint64_t txn_id);
  /// Appends a checkpoint reference and always flushes.
  Status AppendCheckpointRef(uint64_t covered_offset,
                             const std::string& snapshot_path);

  /// Writes any buffered records and fsyncs. Idempotent. A failed
  /// flush may have put bytes in the file without making them durable;
  /// the log refuses every later write (a retry would duplicate the
  /// frames) — recovery from the on-disk state is the only way forward.
  Status Flush();

  /// Flushes, then atomically replaces the file with a fresh header
  /// carrying `new_epoch` and reopens it for append. Used after a
  /// checkpoint snapshot has made the old records redundant.
  Status Rotate(uint64_t new_epoch);

  /// Flushes and closes the descriptor. Further appends are an error.
  Status Close();

  uint64_t epoch() const { return epoch_; }
  /// Logical end of the log: durable bytes plus buffered bytes.
  uint64_t offset() const { return durable_size_ + pending_.size(); }
  uint64_t commits_appended() const { return commits_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  WriteAheadLog(std::string path, int fd, uint64_t epoch,
                uint64_t program_hash, uint64_t durable_size,
                uint64_t group_commit_every)
      : path_(std::move(path)), fd_(fd), epoch_(epoch),
        program_hash_(program_hash), durable_size_(durable_size),
        group_commit_every_(group_commit_every == 0 ? 1
                                                    : group_commit_every) {}

  Status AppendRecord(WalRecordType type, const std::string& payload,
                      int64_t detail);

  std::string path_;
  int fd_ = -1;
  uint64_t epoch_ = 0;
  uint64_t program_hash_ = 0;
  uint64_t durable_size_ = kWalHeaderSize;
  uint64_t group_commit_every_ = 1;
  std::string pending_;
  uint64_t pending_commits_ = 0;
  uint64_t pending_records_ = 0;
  bool write_failed_ = false;
  uint64_t commits_appended_ = 0;
  uint64_t bytes_appended_ = 0;
};

/// Serializes a WAL header (32 bytes) for `epoch` and `program_hash`.
/// Exposed for tests that need to craft damaged files.
std::string SerializeWalHeader(uint64_t epoch, uint64_t program_hash);

/// Serializes one framed record. Exposed for tests.
std::string SerializeWalRecord(const WalRecord& record);

}  // namespace idlog

#endif  // IDLOG_STORE_WAL_H_
