// EXPLAIN / EXPLAIN ANALYZE: the static plan tree must describe every
// compiled rule (steps, key columns, ArgModes, delta candidates) with
// its rewrite history, and the ANALYZE counters must reconcile exactly
// with the PR 2 per-rule profile — the emit pseudo-step's rows_emitted
// IS facts_inserted, its rows_in IS facts_derived, and step 0's rows_in
// IS the rule's firing count. The idlog-explain-v1 JSON document holds
// only logical counters and is byte-identical across --jobs settings.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/idlog_engine.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "opt/adornment.h"
#include "opt/cleanup.h"
#include "opt/desugar_ids.h"
#include "opt/id_rewrite.h"
#include "opt/magic_sets.h"
#include "opt/projection_push.h"
#include "parser/parser.h"
#include "test_util.h"

namespace idlog {
namespace {

Program MustParse(const std::string& text, SymbolTable* s) {
  auto p = ParseProgram(text, s);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).ValueOrDie();
}

// The company example from the paper (a representative per department,
// plus a join over the choice): three strata, a negation, an ID-literal
// and a recursive-free join — every step kind EXPLAIN renders.
void LoadCompany(IdlogEngine* engine) {
  for (const char* row : {"ann sales", "bob sales", "cal dev", "dee dev",
                          "eva ops", "fay ops", "gil sales"}) {
    std::string r = row;
    size_t sp = r.find(' ');
    ASSERT_TRUE(
        engine->AddRow("emp", {r.substr(0, sp), r.substr(sp + 1)}).ok());
  }
  ASSERT_TRUE(engine
                  ->LoadProgramText(
                      "reps(N, D) :- emp[1](N, D, 0)."
                      "others(N) :- emp(N, D), not emp[1](N, D, 0)."
                      "pair(A, B) :- reps(A, D), reps(B, D), A < B.")
                  .ok());
}

// --------------------------------------------------------------------
// Static EXPLAIN.

TEST(ExplainPlan, RendersEveryRuleWithoutEvaluating) {
  IdlogEngine engine;
  LoadCompany(&engine);
  auto text = engine.ExplainPlan();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Header counts rules and strata; every clause appears with its plan.
  EXPECT_NE(text->find("EXPLAIN (3 rules"), std::string::npos) << *text;
  EXPECT_NE(text->find("reps(N, D)"), std::string::npos);
  EXPECT_NE(text->find("others(N)"), std::string::npos);
  EXPECT_NE(text->find("scan"), std::string::npos);
  EXPECT_NE(text->find("negation"), std::string::npos);
  EXPECT_NE(text->find("emit"), std::string::npos);
  // Static EXPLAIN never runs the fixpoint.
  EXPECT_EQ(engine.stats().rule_firings, 0u);
}

TEST(ExplainPlan, ShowsIndexChoiceAndDeltaCandidates) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText("path(X, Y) :- edge(X, Y)."
                                   "path(X, Z) :- path(X, Y), edge(Y, Z).")
                  .ok());
  auto text = engine.ExplainPlan();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // The recursive join binds edge's first column through an index.
  EXPECT_NE(text->find("index("), std::string::npos) << *text;
  // Recursive rules list their delta-substitution candidates.
  EXPECT_NE(text->find("delta"), std::string::npos) << *text;
}

TEST(ExplainPlan, TidPushdownNotesSurface) {
  IdlogEngine engine;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.AddRow("emp", {"p" + std::to_string(i), "d"}).ok());
  }
  // N < 2 bounds the ID-literal's tid, so Prepare's pushdown annotates
  // the plan even though no opt/ pass ran.
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "two(N) :- emp[1](N, D, T), T < 2.")
                  .ok());
  auto text = engine.ExplainPlan();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("tid-pushdown"), std::string::npos) << *text;
}

TEST(ExplainPlan, EngineRewriteLogIsRenderedWithThePlan) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("e", {"a", "b"}).ok());
  RewriteLog log;
  log.Note("magic-sets", -1, "query seed covers e(a, _)");
  engine.SetRewriteLog(log);
  ASSERT_TRUE(engine.LoadProgramText("p(X) :- e(X, Y).").ok());
  auto text = engine.ExplainPlan();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("magic-sets"), std::string::npos) << *text;
  EXPECT_NE(text->find("query seed covers"), std::string::npos) << *text;
}

// --------------------------------------------------------------------
// EXPLAIN ANALYZE counters and the profile sum invariant.

TEST(ExplainAnalyze, CountersReconcileWithProfile) {
  IdlogEngine engine;
  engine.EnableExplain(true);
  engine.EnableProfiling(true);
  LoadCompany(&engine);
  ASSERT_TRUE(engine.Run().ok());

  const PlanAnalysis& analysis = engine.plan_analysis();
  const EvalProfile& profile = engine.profile();
  ASSERT_EQ(analysis.rules.size(), profile.rules.size());
  ASSERT_FALSE(analysis.rules.empty());

  uint64_t total_probes = 0;
  for (size_t i = 0; i < analysis.rules.size(); ++i) {
    const std::vector<StepCounters>& steps = analysis.rules[i].steps;
    const RuleProfile& rp = profile.rules[i];
    ASSERT_FALSE(steps.empty()) << "rule " << i;
    // The emit pseudo-step bridges to the profile columns exactly.
    EXPECT_EQ(steps.back().rows_emitted, rp.facts_inserted) << "rule " << i;
    EXPECT_EQ(steps.back().rows_in, rp.facts_derived) << "rule " << i;
    // Step 0 is entered once per firing (a non-empty-delta evaluation).
    EXPECT_EQ(steps.front().rows_in, rp.firings) << "rule " << i;
    // Counters are monotone through the pipeline: a step can only pass
    // on bindings it actually enumerated.
    for (const StepCounters& sc : steps) {
      EXPECT_LE(sc.rows_emitted, sc.rows_scanned + sc.rows_in);
      total_probes += sc.index_probes;
    }
  }
  EXPECT_EQ(total_probes, engine.stats().index_probes);

  // Every stratum reports its per-round delta sizes, ending at the
  // fixpoint (strata evaluated in parallel batches still log rounds).
  ASSERT_FALSE(analysis.strata.empty());
  uint64_t rounds = 0;
  for (const StratumRoundStats& s : analysis.strata) {
    rounds += s.new_facts_per_round.size();
  }
  EXPECT_GT(rounds, 0u);
}

TEST(ExplainAnalyze, DisabledLeavesNoAnalysisAndCountsNothing) {
  IdlogEngine engine;
  LoadCompany(&engine);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.plan_analysis().rules.empty());
  EXPECT_TRUE(engine.plan_analysis().strata.empty());
}

TEST(ExplainAnalyze, TextIncludesCountersAndRounds) {
  IdlogEngine engine;
  LoadCompany(&engine);
  auto text = engine.ExplainAnalyze();  // enables + runs by itself
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("EXPLAIN ANALYZE"), std::string::npos) << *text;
  EXPECT_NE(text->find("rows_in"), std::string::npos) << *text;
  EXPECT_NE(text->find("fixpoint rounds"), std::string::npos) << *text;
  EXPECT_NE(text->find("totals:"), std::string::npos) << *text;
}

// --------------------------------------------------------------------
// The idlog-explain-v1 JSON document.

TEST(ExplainJson, ValidatesAndCarriesTheSchemaTag) {
  IdlogEngine engine;
  LoadCompany(&engine);
  auto json = engine.ExplainPlanJson(/*analyze=*/true);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  Status valid = ValidateJson(*json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json->find("\"idlog-explain-v1\""), std::string::npos);
  EXPECT_NE(json->find("\"rows_scanned\""), std::string::npos);
  // Physical cache counters (index_hits/misses/builds) may differ
  // between serial and parallel runs, so — like timings — they are
  // text-only and never enter the deterministic document.
  EXPECT_EQ(json->find("\"index_hits\""), std::string::npos);
  EXPECT_EQ(json->find("\"index_misses\""), std::string::npos);
  EXPECT_EQ(json->find("\"index_builds\""), std::string::npos);
  EXPECT_EQ(json->find("_ns\""), std::string::npos);
}

TEST(ExplainJson, StaticDocumentValidatesWithoutRunning) {
  IdlogEngine engine;
  LoadCompany(&engine);
  auto json = engine.ExplainPlanJson(/*analyze=*/false);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(ValidateJson(*json).ok());
  EXPECT_NE(json->find("\"analyze\":false"), std::string::npos);
  EXPECT_EQ(engine.stats().rule_firings, 0u);
}

TEST(ExplainJson, ByteIdenticalAcrossJobs) {
  std::string serial_doc, parallel_doc;
  for (int threads : {1, 4}) {
    IdlogEngine engine;
    engine.SetThreads(threads);
    LoadCompany(&engine);
    auto json = engine.ExplainPlanJson(/*analyze=*/true);
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    (threads == 1 ? serial_doc : parallel_doc) = *json;
  }
  EXPECT_EQ(serial_doc, parallel_doc);
}

TEST(ExplainJson, RecursiveProgramIdenticalAcrossJobs) {
  std::string docs[2];
  for (int t = 0; t < 2; ++t) {
    IdlogEngine engine;
    engine.SetThreads(t == 0 ? 1 : 4);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(engine.AddRow("edge", {"n" + std::to_string(i),
                                         "n" + std::to_string((i + 1) % 10)})
                      .ok());
    }
    ASSERT_TRUE(engine
                    .LoadProgramText(
                        "path(X, Y) :- edge(X, Y)."
                        "path(X, Z) :- path(X, Y), edge(Y, Z)."
                        "sink(X) :- edge(X, Y), not edge(Y, X).")
                    .ok());
    auto json = engine.ExplainPlanJson(/*analyze=*/true);
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    docs[t] = *json;
  }
  EXPECT_EQ(docs[0], docs[1]);
}

// --------------------------------------------------------------------
// Metrics integration: the new executor counters report through
// --metrics-json alongside the PR 2 totals.

TEST(ExplainMetrics, IndexCountersAppearInMetricsJson) {
  IdlogEngine engine;
  engine.EnableProfiling(true);
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText("path(X, Y) :- edge(X, Y)."
                                   "path(X, Z) :- path(X, Y), edge(Y, Z).")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  std::string json = engine.profile().ToMetricsJson();
  EXPECT_TRUE(ValidateJson(json).ok());
  EXPECT_NE(json.find("totals.index_probes"), std::string::npos);
  EXPECT_NE(json.find("totals.index_builds"), std::string::npos);
  EXPECT_NE(json.find("totals.index_cache_misses"), std::string::npos);
  EXPECT_GT(engine.stats().index_probes, 0u);
}

// --------------------------------------------------------------------
// RewriteLog threading through every opt/ pass.

TEST(RewriteLogThreading, DesugarNotesDefinitionsAndRewrites) {
  SymbolTable s;
  Program p = MustParse("q(N) :- emp[1](N, D, 0).", &s);
  RewriteLog log;
  auto result = DesugarGroupedIds(p, &log);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->literals_desugared, 1);
  bool program_wide = false, per_clause = false;
  for (const RewriteNote& n : log.notes()) {
    EXPECT_EQ(n.pass, "id-desugar");
    if (n.clause_index < 0) program_wide = true;
    if (n.clause_index >= 0) {
      per_clause = true;
      EXPECT_LT(n.clause_index,
                static_cast<int>(result->program.clauses.size()));
    }
  }
  EXPECT_TRUE(program_wide);  // the footnote-5 definition block
  EXPECT_TRUE(per_clause);    // the rewritten literal
}

TEST(RewriteLogThreading, MagicSetsNotesSeedAndGuardedRules) {
  IdlogEngine scratch;  // only for its symbol table
  SymbolTable& s = scratch.symbols();
  Program p = MustParse(
      "path(X, Y) :- edge(X, Y)."
      "path(X, Z) :- path(X, Y), edge(Y, Z).",
      &s);
  MagicQuery query;
  query.predicate = "path";
  query.bindings = {Value::Symbol(s.Intern("a")), std::nullopt};
  RewriteLog log;
  auto result = MagicSetTransform(p, query, &log);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(log.empty());
  int in_range = 0;
  for (const RewriteNote& n : log.notes()) {
    EXPECT_EQ(n.pass, "magic-sets");
    if (n.clause_index >= 0) {
      EXPECT_LT(n.clause_index,
                static_cast<int>(result->program.clauses.size()));
      ++in_range;
    }
  }
  EXPECT_GT(in_range, 0);
}

TEST(RewriteLogThreading, ProjectionAndIdRewriteNoteTouchedClauses) {
  SymbolTable s;
  // Z is existential in q: projection narrows r, id-rewrite groups e.
  Program p = MustParse(
      "q(X) :- r(X, Z)."
      "r(X, Z) :- e(X, Z).",
      &s);
  ExistentialAnalysis analysis = DetectExistentialArguments(p, "q");
  RewriteLog log;
  auto projected = PushProjections(p, analysis, &log);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  ASSERT_FALSE(log.empty());
  for (const RewriteNote& n : log.notes()) {
    EXPECT_EQ(n.pass, "projection-push");
  }

  ExistentialAnalysis analysis2 =
      DetectExistentialArguments(projected->program, "q");
  RewriteLog log2;
  auto rewritten =
      RewriteExistentialToId(projected->program, analysis2, &log2);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  if (rewritten->literals_rewritten > 0) {
    EXPECT_FALSE(log2.empty());
    for (const RewriteNote& n : log2.notes()) {
      EXPECT_EQ(n.pass, "id-rewrite");
    }
  }
}

TEST(RewriteLogThreading, CleanupNotesWhatItRemovedAndMapsKeptClauses) {
  SymbolTable s;
  Program p = MustParse(
      "q(X) :- e(X, Y), e(X, Y)."  // duplicate literal
      "q(X) :- e(X, Y), e(X, Y)."  // duplicate clause
      "r(X) :- e(X, Y).",          // unreachable from q
      &s);
  RewriteLog log;
  std::vector<int> kept_from;
  Program cleaned = CleanupProgram(p, "q", nullptr, &log, &kept_from);
  EXPECT_EQ(cleaned.clauses.size(), 1u);
  ASSERT_EQ(kept_from.size(), cleaned.clauses.size());
  EXPECT_EQ(kept_from[0], 0);  // the surviving clause came from input 0
  ASSERT_FALSE(log.empty());
  bool saw_duplicate_note = false;
  for (const RewriteNote& n : log.notes()) {
    EXPECT_EQ(n.pass, "cleanup");
    EXPECT_EQ(n.clause_index, -1);  // cleanup notes are program-wide
    if (n.detail.find("duplicate") != std::string::npos) {
      saw_duplicate_note = true;
    }
  }
  EXPECT_TRUE(saw_duplicate_note);
}

TEST(RewriteLogThreading, OptimizeForOutputRemapsThroughCleanup) {
  SymbolTable s;
  // The dead clause "r(X) :- dead(X)." is removed by cleanup's
  // reachability restriction; projection touches r in the live clause.
  Program p = MustParse(
      "q(X) :- r(X, Z)."
      "r(X, Z) :- e(X, Z)."
      "dead(X) :- unrelated(X, Y).",
      &s);
  RewriteLog log;
  auto result = OptimizeForOutput(p, "q", &log);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const RewriteNote& n : log.notes()) {
    // Remapped indices must refer to the *final* program.
    EXPECT_LT(n.clause_index,
              static_cast<int>(result->program.clauses.size()));
  }
}

}  // namespace
}  // namespace idlog
