// Durable update sessions: Begin/Insert/Retract/Commit/Abort semantics,
// incremental re-derivation of committed insertions (asserted via round
// counters on a transitive-closure workload), the full-re-run fallbacks
// (retraction, negation, ID-relations, naive mode), and the protocol
// errors the session API refuses.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/idlog_engine.h"
#include "store/wal.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::Dump;
using testing_util::T;

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("idlog_session_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

constexpr const char* kTcProgram =
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Z) :- edge(X, Y), path(Y, Z).\n";

/// A chain a0 -> a1 -> ... -> a{n}: the full fixpoint needs ~n rounds.
void AddChain(IdlogEngine* engine, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(engine
                    ->AddRow("edge", {"a" + std::to_string(i),
                                      "a" + std::to_string(i + 1)})
                    .ok());
  }
}

std::string QueryDump(IdlogEngine* engine, const std::string& pred) {
  auto rel = engine->Query(pred);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  return rel.ok() ? Dump(**rel, engine->symbols()) : std::string();
}

TEST(Session, LifecycleAndProtocolErrors) {
  ScratchDir scratch("protocol");
  IdlogEngine engine;

  // No program yet.
  EXPECT_FALSE(engine.AttachWal(scratch.Path("s.wal")).ok());
  // No WAL yet.
  EXPECT_FALSE(engine.Begin().ok());

  AddChain(&engine, 3);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());
  EXPECT_TRUE(engine.wal_attached());
  // Double attach.
  EXPECT_FALSE(engine.AttachWal(scratch.Path("other.wal")).ok());

  // Operations need an open transaction; Begin twice is an error.
  EXPECT_FALSE(engine.Insert("edge", T(&engine.symbols(), {"x", "y"})).ok());
  EXPECT_FALSE(engine.Commit().ok());
  EXPECT_FALSE(engine.Abort().ok());
  ASSERT_TRUE(engine.Begin().ok());
  EXPECT_TRUE(engine.in_transaction());
  EXPECT_FALSE(engine.Begin().ok());

  // IDB predicates are refused: their contents belong to the rules.
  Status idb = engine.Insert("path", T(&engine.symbols(), {"x", "y"}));
  EXPECT_FALSE(idb.ok());
  EXPECT_NE(idb.message().find("derived by rules"), std::string::npos);

  // Sort/arity mismatches are refused at staging time.
  EXPECT_EQ(engine.Insert("edge", T(&engine.symbols(), {"x"})).code(),
            StatusCode::kTypeError);
  EXPECT_EQ(
      engine.Insert("edge", {Value::Number(1), Value::Number(2)}).code(),
      StatusCode::kTypeError);

  ASSERT_TRUE(engine.Abort().ok());
  EXPECT_FALSE(engine.in_transaction());
}

TEST(Session, InsertCommitExtendsTheModelIncrementally) {
  ScratchDir scratch("incremental");
  constexpr int kChain = 12;

  IdlogEngine engine;
  AddChain(&engine, kChain);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());
  const uint64_t full_rounds = engine.stats().iterations;
  ASSERT_GE(full_rounds, static_cast<uint64_t>(kChain) - 1);

  // Prepend an edge: the delta machinery joins the one new edge against
  // the existing closure, so the whole commit costs a handful of rounds
  // where the full fixpoint needed ~kChain.
  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"z", "a0"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.last_commit_incremental());
  EXPECT_EQ(engine.wal_commits(), 1u);
  const uint64_t incremental_rounds =
      engine.stats().iterations - full_rounds;
  EXPECT_GE(incremental_rounds, 1u);
  EXPECT_LT(incremental_rounds, full_rounds / 2)
      << "incremental commit re-ran a full-sized fixpoint";

  // The extended model matches a from-scratch evaluation of the same
  // EDB exactly.
  IdlogEngine fresh;
  AddChain(&fresh, kChain);
  ASSERT_TRUE(fresh.AddRow("edge", {"z", "a0"}).ok());
  ASSERT_TRUE(fresh.LoadProgramText(kTcProgram).ok());
  EXPECT_EQ(QueryDump(&engine, "path"), QueryDump(&fresh, "path"));

  // A duplicate insertion commits durably but changes nothing and runs
  // no fixpoint rounds.
  const uint64_t before = engine.stats().iterations;
  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"z", "a0"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.stats().iterations, before);
  EXPECT_EQ(engine.wal_commits(), 2u);
}

TEST(Session, MultiFactCommitAndNewPredicates) {
  ScratchDir scratch("multi");
  IdlogEngine engine;
  AddChain(&engine, 4);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"b0", "b1"})).ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"b1", "a0"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.last_commit_incremental());

  IdlogEngine fresh;
  AddChain(&fresh, 4);
  ASSERT_TRUE(fresh.AddRow("edge", {"b0", "b1"}).ok());
  ASSERT_TRUE(fresh.AddRow("edge", {"b1", "a0"}).ok());
  ASSERT_TRUE(fresh.LoadProgramText(kTcProgram).ok());
  EXPECT_EQ(QueryDump(&engine, "path"), QueryDump(&fresh, "path"));
}

TEST(Session, RetractionRecomputesFromTheEdb) {
  ScratchDir scratch("retract");
  IdlogEngine engine;
  AddChain(&engine, 5);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Retract("edge", T(&engine.symbols(), {"a2", "a3"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.last_commit_incremental());

  IdlogEngine fresh;
  AddChain(&fresh, 5);
  SymbolTable* symbols = &fresh.symbols();
  ASSERT_TRUE(fresh.database().EraseTuple("edge", T(symbols, {"a2", "a3"}))
                  .ok());
  ASSERT_TRUE(fresh.LoadProgramText(kTcProgram).ok());
  EXPECT_EQ(QueryDump(&engine, "path"), QueryDump(&fresh, "path"));

  // Retracting an absent tuple is a durable no-op commit.
  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Retract("edge", T(&engine.symbols(), {"nope", "nope"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.wal_commits(), 2u);
}

TEST(Session, NegationFallsBackToAFullRun) {
  ScratchDir scratch("negation");
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("node", {"a"}).ok());
  ASSERT_TRUE(engine.AddRow("node", {"b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "reach(Y) :- edge(X, Y).\n"
                      "isolated(X) :- node(X), not reach(X).\n")
                  .ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());
  EXPECT_EQ(QueryDump(&engine, "isolated"), "(a)\n");

  // edge feeds reach, which is negated: the commit must recompute in
  // full (monotone delta rules cannot shrink `isolated`).
  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"b", "a"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.last_commit_incremental());
  EXPECT_EQ(QueryDump(&engine, "isolated"), "");
}

TEST(Session, IdLiteralFallsBackToAFullRun) {
  ScratchDir scratch("idlit");
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(
      engine.LoadProgramText("tag(N, D, I) :- emp[2](N, D, I).\n").ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("emp", T(&engine.symbols(), {"cal", "dev"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.last_commit_incremental());

  IdlogEngine fresh;
  ASSERT_TRUE(fresh.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(fresh.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(fresh.AddRow("emp", {"cal", "dev"}).ok());
  ASSERT_TRUE(
      fresh.LoadProgramText("tag(N, D, I) :- emp[2](N, D, I).\n").ok());
  EXPECT_EQ(QueryDump(&engine, "tag"), QueryDump(&fresh, "tag"));
}

TEST(Session, NaiveModeFallsBackToAFullRun) {
  ScratchDir scratch("naive");
  IdlogEngine engine;
  engine.SetSeminaive(false);
  AddChain(&engine, 4);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"z", "a0"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.last_commit_incremental());

  IdlogEngine fresh;
  AddChain(&fresh, 4);
  ASSERT_TRUE(fresh.AddRow("edge", {"z", "a0"}).ok());
  ASSERT_TRUE(fresh.LoadProgramText(kTcProgram).ok());
  EXPECT_EQ(QueryDump(&engine, "path"), QueryDump(&fresh, "path"));
}

TEST(Session, AbortDiscardsWithoutLogging) {
  ScratchDir scratch("abort");
  IdlogEngine engine;
  AddChain(&engine, 3);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  std::string wal_path = scratch.Path("s.wal");
  ASSERT_TRUE(engine.AttachWal(wal_path).ok());
  const std::string before = QueryDump(&engine, "path");

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"x", "y"})).ok());
  ASSERT_TRUE(engine.Abort().ok());
  EXPECT_EQ(QueryDump(&engine, "path"), before);
  EXPECT_EQ(engine.wal_commits(), 0u);

  auto scan = ScanWal(wal_path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 0u);
}

TEST(Session, LogWriteFailurePoisonsTheSession) {
  ScratchDir scratch("poison");
  IdlogEngine engine;
  AddChain(&engine, 3);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.AttachWal(scratch.Path("s.wal")).ok());
  const std::string before = QueryDump(&engine, "path");

  Failpoints::Instance().Reset();
  ASSERT_TRUE(Failpoints::Instance().ArmFromSpec("wal.append:1").ok());
  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"x", "y"})).ok());
  Status commit = engine.Commit();
  EXPECT_FALSE(commit.ok());
  Failpoints::Instance().Reset();

  // Durability failed before anything applied: the model is unchanged
  // and the session refuses further work until recovery.
  EXPECT_EQ(QueryDump(&engine, "path"), before);
  Status next = engine.Begin();
  EXPECT_FALSE(next.ok());
  EXPECT_NE(next.message().find("recover"), std::string::npos);
}

TEST(Session, ApplyFailureAfterDurableCommitPoisonsTheSession) {
  // The mirror image of a log-write failure: the commit IS durably
  // logged, but applying it to the in-memory store fails partway. The
  // session must latch — further commits would diverge from the log —
  // and recovery must replay the logged commit successfully.
  ScratchDir scratch("apply_poison");
  std::string wal_path = scratch.Path("s.wal");
  {
    IdlogEngine engine;
    AddChain(&engine, 3);
    ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
    ASSERT_TRUE(engine.AttachWal(wal_path).ok());

    ASSERT_TRUE(engine.Begin().ok());
    ASSERT_TRUE(
        engine.Insert("edge", T(&engine.symbols(), {"x", "y"})).ok());
    Failpoints::Instance().Reset();
    ASSERT_TRUE(
        Failpoints::Instance().ArmFromSpec("storage.relation.insert:1").ok());
    Status commit = engine.Commit();
    EXPECT_FALSE(commit.ok());
    Failpoints::Instance().Reset();

    // The commit reached the log before the apply broke.
    auto scan = ScanWal(wal_path);
    ASSERT_TRUE(scan.ok());
    uint64_t logged_commits = 0;
    for (const WalRecord& r : scan->records) {
      if (r.type == WalRecordType::kCommit) ++logged_commits;
    }
    EXPECT_EQ(logged_commits, 1u);

    // In-memory state is now untrusted: the session refuses further
    // work until recovery, exactly like a log-write failure.
    Status next = engine.Begin();
    EXPECT_FALSE(next.ok());
    EXPECT_NE(next.message().find("recover"), std::string::npos);
  }

  // Recovery replays the durably-logged commit (the failpoint is gone)
  // and the fact is present.
  IdlogEngine fresh;
  ASSERT_TRUE(fresh.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(fresh.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(fresh.CompleteRecovery().ok());
  EXPECT_EQ(fresh.wal_commits(), 1u);
  EXPECT_NE(QueryDump(&fresh, "path").find("x, y"),
            std::string::npos);
}

TEST(Session, CheckpointRotatesAndCommitsContinue) {
  ScratchDir scratch("checkpoint");
  IdlogEngine engine;
  AddChain(&engine, 3);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  std::string wal_path = scratch.Path("s.wal");
  ASSERT_TRUE(engine.AttachWal(wal_path).ok());

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"z", "a0"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  ASSERT_TRUE(engine.WalCheckpoint().ok());

  auto scan = ScanWal(wal_path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->epoch, 2u);  // rotated
  EXPECT_EQ(scan->records.size(), 0u);
  auto snap = LoadSnapshotFile(wal_path + ".snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->wal_pos.present);
  EXPECT_EQ(snap->wal_pos.commits, 1u);

  ASSERT_TRUE(engine.Begin().ok());
  ASSERT_TRUE(
      engine.Insert("edge", T(&engine.symbols(), {"z2", "z"})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.wal_commits(), 2u);
}

TEST(Session, AutoCheckpointEveryNCommits) {
  ScratchDir scratch("autockpt");
  IdlogEngine engine;
  AddChain(&engine, 3);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  IdlogEngine::WalOptions options;
  options.checkpoint_every_commits = 2;
  std::string wal_path = scratch.Path("s.wal");
  ASSERT_TRUE(engine.AttachWal(wal_path, options).ok());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Begin().ok());
    ASSERT_TRUE(engine
                    .Insert("edge", T(&engine.symbols(),
                                      {"n" + std::to_string(i),
                                       "n" + std::to_string(i + 1)}))
                    .ok());
    ASSERT_TRUE(engine.Commit().ok());
  }
  // Two auto-checkpoints: epoch 1 -> 2 -> 3, log freshly rotated.
  auto scan = ScanWal(wal_path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->epoch, 3u);
  EXPECT_EQ(scan->records.size(), 0u);
  auto snap = LoadSnapshotFile(wal_path + ".snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->wal_pos.commits, 4u);
}

}  // namespace
}  // namespace idlog
