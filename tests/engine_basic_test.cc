#include <gtest/gtest.h>

#include "core/idlog_engine.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::Rows;

TEST(EngineBasic, FactsAndSimpleRule) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(
      engine.LoadProgramText("path(X, Y) :- edge(X, Y).").ok());
  auto result = engine.Query("path");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->size(), 2u);
}

TEST(EngineBasic, TransitiveClosure) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"c", "d"}).ok());
  Status st = engine.LoadProgramText(
      "path(X, Y) :- edge(X, Y)."
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto result = engine.Query("path");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->size(), 6u);
}

TEST(EngineBasic, StratifiedNegation) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("person", {"a"}).ok());
  ASSERT_TRUE(engine.AddRow("person", {"b"}).ok());
  ASSERT_TRUE(engine.AddRow("likes_tea", {"a"}).ok());
  Status st = engine.LoadProgramText(
      "coffee(X) :- person(X), not likes_tea(X).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto result = engine.Query("coffee");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Rows(**result, engine.symbols()),
            std::vector<std::string>{"(b)"});
}

TEST(EngineBasic, ArithmeticAndComparison) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("val", {"x", "3"}).ok());
  ASSERT_TRUE(engine.AddRow("val", {"y", "10"}).ok());
  Status st = engine.LoadProgramText(
      "bumped(X, M) :- val(X, N), M = N + 1."
      "small(X) :- val(X, N), N < 5.");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto bumped = engine.Query("bumped");
  ASSERT_TRUE(bumped.ok()) << bumped.status().ToString();
  EXPECT_EQ(Rows(**bumped, engine.symbols()),
            (std::vector<std::string>{"(x, 4)", "(y, 11)"}));
  auto small = engine.Query("small");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(Rows(**small, engine.symbols()),
            std::vector<std::string>{"(x)"});
}

TEST(EngineBasic, IdLiteralPicksOnePerGroup) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"cal", "dev"}).ok());
  Status st = engine.LoadProgramText(
      "one_per_dept(N, D) :- emp[2](N, D, 0).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto result = engine.Query("one_per_dept");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Exactly one employee per department, whichever got tid 0.
  EXPECT_EQ((*result)->size(), 2u);
}

}  // namespace
}  // namespace idlog
