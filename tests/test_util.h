#ifndef IDLOG_TESTS_TEST_UTIL_H_
#define IDLOG_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/symbol_table.h"
#include "common/value.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace idlog {
namespace testing_util {

/// Builds a tuple from string fields: all-digit fields become numbers,
/// everything else is interned as a sort-u symbol.
Tuple T(SymbolTable* symbols, const std::vector<std::string>& fields);

/// Renders a relation as a sorted multi-line string for comparisons.
std::string Dump(const Relation& rel, const SymbolTable& symbols);

/// Returns the tuples of `rel` rendered "(a, b)" style, sorted.
std::vector<std::string> Rows(const Relation& rel,
                              const SymbolTable& symbols);

}  // namespace testing_util
}  // namespace idlog

#endif  // IDLOG_TESTS_TEST_UTIL_H_
