#ifndef IDLOG_TESTS_TEST_UTIL_H_
#define IDLOG_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/symbol_table.h"
#include "common/value.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace idlog {
namespace testing_util {

/// Builds a tuple from string fields: all-digit fields become numbers,
/// everything else is interned as a sort-u symbol.
Tuple T(SymbolTable* symbols, const std::vector<std::string>& fields);

/// Renders a relation as a sorted multi-line string for comparisons.
std::string Dump(const Relation& rel, const SymbolTable& symbols);

/// Returns the tuples of `rel` rendered "(a, b)" style, sorted.
std::vector<std::string> Rows(const Relation& rel,
                              const SymbolTable& symbols);

/// Randomized corpus generator shared by the parallel-equivalence and
/// checkpoint-resume tests: layered stratified programs with recursion,
/// negation and ID-literals (a compact cousin of fuzz_test's generator,
/// biased toward multi-rule strata so the parallel path engages).
class CorpusGenerator {
 public:
  explicit CorpusGenerator(uint64_t seed) : rng_(seed) {}

  /// Generates one program; queries() names the layer predicates.
  std::string Generate();

  const std::vector<std::string>& queries() const { return queries_; }

 private:
  std::string BaseRule(
      const std::string& head, int arity,
      const std::vector<std::pair<std::string, int>>& lower);

  std::mt19937_64 rng_;
  std::vector<std::string> queries_;
};

/// The matching EDB for corpus seed `seed`: rows over e0/2 and e1/1.
std::vector<std::vector<std::string>> CorpusEdb(uint64_t seed);

}  // namespace testing_util
}  // namespace idlog

#endif  // IDLOG_TESTS_TEST_UTIL_H_
