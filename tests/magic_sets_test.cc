#include <gtest/gtest.h>

#include <random>

#include "core/idlog_engine.h"
#include "opt/magic_sets.h"
#include "parser/parser.h"
#include "test_util.h"

namespace idlog {
namespace {

Program MustParse(const std::string& text, SymbolTable* s) {
  auto p = ParseProgram(text, s);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).ValueOrDie();
}

const char* kTc =
    "path(X, Y) :- edge(X, Y)."
    "path(X, Z) :- path(X, Y), edge(Y, Z).";

// Runs a program against a database, returns the relation dump.
Result<Relation> RunOn(const Program& program, IdlogEngine* engine,
                       const std::string& pred) {
  IDLOG_RETURN_NOT_OK(engine->LoadProgram(program));
  IDLOG_ASSIGN_OR_RETURN(const Relation* rel, engine->Query(pred));
  return *rel;
}

TEST(MagicSets, PointQueryOnTransitiveClosure) {
  IdlogEngine engine;
  for (const auto& [a, b] :
       std::vector<std::pair<const char*, const char*>>{
           {"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "y"}, {"y", "z"}}) {
    ASSERT_TRUE(engine.AddRow("edge", {a, b}).ok());
  }
  Program tc = MustParse(kTc, &engine.symbols());

  MagicQuery query;
  query.predicate = "path";
  query.bindings = {Value::Symbol(engine.symbols().Intern("a")),
                    std::nullopt};
  auto magic = MagicSetTransform(tc, query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();

  auto answers = RunOn(magic->program, &engine, magic->answer_pred);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // path(a, _) = b, c, d — and nothing from the x/y/z component.
  EXPECT_EQ(answers->size(), 3u);
  uint64_t magic_work = engine.stats().tuples_considered;

  // Full evaluation derives the whole closure (9 paths, both
  // components).
  auto full = RunOn(tc, &engine, "path");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 9u);
  // The magic run does strictly less join work than the full run plus
  // final filtering.
  EXPECT_LT(magic_work, engine.stats().tuples_considered * 2);
}

// Property: on random graphs and random source constants, magic answers
// equal the full answers filtered to the query constants.
class MagicEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MagicEquivalence, MatchesFilteredFullEvaluation) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  std::mt19937_64 rng(seed);
  IdlogEngine engine;
  std::uniform_int_distribution<int> node(0, 7);
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(engine
                    .AddRow("edge", {"n" + std::to_string(node(rng)),
                                     "n" + std::to_string(node(rng))})
                    .ok());
  }
  Program tc = MustParse(kTc, &engine.symbols());
  std::string source = "n" + std::to_string(node(rng));

  MagicQuery query;
  query.predicate = "path";
  query.bindings = {Value::Symbol(engine.symbols().Intern(source)),
                    std::nullopt};
  auto magic = MagicSetTransform(tc, query);
  ASSERT_TRUE(magic.ok());

  auto magic_answers = RunOn(magic->program, &engine, magic->answer_pred);
  ASSERT_TRUE(magic_answers.ok()) << magic_answers.status().ToString();

  auto full = RunOn(tc, &engine, "path");
  ASSERT_TRUE(full.ok());
  Relation filtered(full->type());
  Value src = Value::Symbol(engine.symbols().Intern(source));
  for (const Tuple& t : full->tuples()) {
    if (t[0] == src) filtered.Insert(t);
  }
  EXPECT_TRUE(magic_answers->SetEquals(filtered))
      << "seed " << seed << " source " << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicEquivalence, ::testing::Range(0, 20));

TEST(MagicSets, BoundSecondArgument) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  Program tc = MustParse(kTc, &engine.symbols());
  MagicQuery query;
  query.predicate = "path";
  query.bindings = {std::nullopt,
                    Value::Symbol(engine.symbols().Intern("c"))};
  auto magic = MagicSetTransform(tc, query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  auto answers = RunOn(magic->program, &engine, magic->answer_pred);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // a->c and b->c
}

TEST(MagicSets, AllFreeQueryDegeneratesToFull) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  Program tc = MustParse(kTc, &engine.symbols());
  MagicQuery query;
  query.predicate = "path";
  query.bindings = {std::nullopt, std::nullopt};
  auto magic = MagicSetTransform(tc, query);
  ASSERT_TRUE(magic.ok());
  auto answers = RunOn(magic->program, &engine, magic->answer_pred);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);
}

TEST(MagicSets, BuiltinsPassThrough) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("score", {"a", "3"}).ok());
  ASSERT_TRUE(engine.AddRow("score", {"b", "9"}).ok());
  Program p = MustParse(
      "good(X, N) :- score(X, N), N < 5."
      "verdict(X, M) :- good(X, N), M = N + 1.",
      &engine.symbols());
  MagicQuery query;
  query.predicate = "verdict";
  query.bindings = {Value::Symbol(engine.symbols().Intern("a")),
                    std::nullopt};
  auto magic = MagicSetTransform(p, query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  auto answers = RunOn(magic->program, &engine, magic->answer_pred);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 1u);
}

TEST(MagicSets, RejectsNegationAndIdAtoms) {
  SymbolTable s;
  Program with_neg = MustParse("q(X) :- r(X), not t(X).", &s);
  MagicQuery query{"q", {std::nullopt}};
  EXPECT_EQ(MagicSetTransform(with_neg, query).status().code(),
            StatusCode::kUnsupported);
  Program with_id = MustParse("q(X) :- r[1](X, 0).", &s);
  EXPECT_EQ(MagicSetTransform(with_id, query).status().code(),
            StatusCode::kUnsupported);
}

TEST(MagicSets, UnknownQueryPredicate) {
  SymbolTable s;
  Program p = MustParse("q(X) :- r(X).", &s);
  MagicQuery query{"ghost", {std::nullopt}};
  EXPECT_EQ(MagicSetTransform(p, query).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace idlog
