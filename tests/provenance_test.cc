#include <gtest/gtest.h>

#include "core/idlog_engine.h"
#include "eval/provenance.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::T;

TEST(ProvenanceStore, PredicateKeysAreInternedIds) {
  // Recording N facts of one predicate must intern the name once; the
  // index key holds a PredId, not a string copy per fact.
  ProvenanceStore store;
  for (int i = 0; i < 500; ++i) {
    store.Record("p", {Value::Number(i)}, 0, {});
  }
  EXPECT_EQ(store.size(), 500u);
  EXPECT_EQ(store.num_interned_predicates(), 1u);
  // And the bytes accounting reflects one name, not five hundred: the
  // retained footprint stays well under what per-key string copies of
  // even a short name would cost.
  EXPECT_LT(store.approx_bytes(), 500 * sizeof(Tuple) * 4);
}

TEST(ProvenanceStore, FirstDerivationWinsAndAbsorbKeepsOrder) {
  ProvenanceStore a;
  a.Record("p", {Value::Number(1)}, /*clause_index=*/0, {});
  a.Record("p", {Value::Number(1)}, /*clause_index=*/7, {});  // dup
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.Lookup("p", {Value::Number(1)})->clause_index, 0);

  // Absorb replays the other store's recording order first-wins, so a
  // serial-order absorb of per-task stores reproduces the serial store.
  ProvenanceStore b;
  b.Record("p", {Value::Number(1)}, /*clause_index=*/9, {});  // loses
  b.Record("p", {Value::Number(2)}, /*clause_index=*/3, {});
  a.Absorb(&b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(a.Lookup("p", {Value::Number(1)})->clause_index, 0);
  EXPECT_EQ(a.Lookup("p", {Value::Number(2)})->clause_index, 3);
  EXPECT_EQ(a.node(1).clause_index, 3);  // arena order = recording order
}

TEST(Provenance, ExplainBaseFactViaRule) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- edge(X, Y).").ok());
  auto text = engine.Explain("p", T(&engine.symbols(), {"a", "b"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("p(a, b)"), std::string::npos) << *text;
  EXPECT_NE(text->find("clause #0"), std::string::npos) << *text;
  EXPECT_NE(text->find("edge(a, b)"), std::string::npos) << *text;
  EXPECT_NE(text->find("[database fact]"), std::string::npos) << *text;
}

TEST(Provenance, RecursiveDerivationChains) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"c", "d"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "path(X, Y) :- edge(X, Y)."
                      "path(X, Z) :- path(X, Y), edge(Y, Z).")
                  .ok());
  auto text = engine.Explain("path", T(&engine.symbols(), {"a", "d"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // The chain unwinds down to base edges.
  EXPECT_NE(text->find("path(a, d)"), std::string::npos);
  EXPECT_NE(text->find("path(a, c)"), std::string::npos);
  EXPECT_NE(text->find("path(a, b)"), std::string::npos);
  EXPECT_NE(text->find("edge(c, d)"), std::string::npos);
}

TEST(Provenance, TidChoicesAppearAsLeaves) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("rep(N) :- emp[2](N, D, 0).").ok());
  ASSERT_TRUE(engine.Run().ok());
  auto rep = engine.Query("rep");
  ASSERT_TRUE(rep.ok());
  ASSERT_EQ((*rep)->size(), 1u);
  auto text = engine.Explain("rep", (*rep)->tuples()[0]);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[tid choice]"), std::string::npos) << *text;
  EXPECT_NE(text->find("emp[2]"), std::string::npos) << *text;
}

TEST(Provenance, NegationAndBuiltinsAnnotated) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("v", {"x", "3"}).ok());
  ASSERT_TRUE(
      engine.LoadProgramText(
          "q(X, M) :- v(X, N), M = N + 1, not blocked(X).").ok());
  auto text = engine.Explain("q", T(&engine.symbols(), {"x", "4"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[built-in]"), std::string::npos) << *text;
  EXPECT_NE(text->find("+(3, 1, 4)"), std::string::npos) << *text;
  EXPECT_NE(text->find("not blocked(x)"), std::string::npos) << *text;
  EXPECT_NE(text->find("[absent]"), std::string::npos) << *text;
}

TEST(Provenance, DisabledByDefault) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("e", {"a"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("q(X) :- e(X).").ok());
  auto text = engine.Explain("q", T(&engine.symbols(), {"a"}));
  EXPECT_EQ(text.status().code(), StatusCode::kInvalidArgument);
}

TEST(Provenance, MissingFactIsNotFound) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("e", {"a"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("q(X) :- e(X).").ok());
  auto text = engine.Explain("q", T(&engine.symbols(), {"zzz"}));
  EXPECT_EQ(text.status().code(), StatusCode::kNotFound);
}

TEST(Provenance, DerivedIdBaseExpandsFurther) {
  // The tuple under an ID-literal may itself be derived; the
  // explanation should continue into it.
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("person", {"a"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "guess(X, yes) :- person(X)."
                      "guess(X, no) :- person(X)."
                      "picked(X, W) :- guess[1](X, W, 0).")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  auto picked = engine.Query("picked");
  ASSERT_TRUE(picked.ok());
  ASSERT_EQ((*picked)->size(), 1u);
  auto text = engine.Explain("picked", (*picked)->tuples()[0]);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[tid choice]"), std::string::npos) << *text;
  // The guess fact itself is explained via its clause and person(a).
  EXPECT_NE(text->find("person(a)"), std::string::npos) << *text;
}

TEST(Provenance, EveryDerivedFactIsExplainable) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "a"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "path(X, Y) :- edge(X, Y)."
                      "path(X, Z) :- path(X, Y), edge(Y, Z).")
                  .ok());
  auto path = engine.Query("path");
  ASSERT_TRUE(path.ok());
  for (const Tuple& t : (*path)->tuples()) {
    auto text = engine.Explain("path", t);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_EQ(text->find("[underivable]"), std::string::npos) << *text;
  }
}

}  // namespace
}  // namespace idlog
