#include "test_util.h"

#include <algorithm>
#include <cctype>

namespace idlog {
namespace testing_util {

Tuple T(SymbolTable* symbols, const std::vector<std::string>& fields) {
  Tuple t;
  for (const std::string& f : fields) {
    bool numeric = !f.empty();
    for (char c : f) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      t.push_back(Value::Number(std::stoll(f)));
    } else {
      t.push_back(Value::Symbol(symbols->Intern(f)));
    }
  }
  return t;
}

std::vector<std::string> Rows(const Relation& rel,
                              const SymbolTable& symbols) {
  std::vector<std::string> rows;
  for (const Tuple& t : rel.SortedTuples()) {
    rows.push_back(TupleToString(t, symbols));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string Dump(const Relation& rel, const SymbolTable& symbols) {
  std::string out;
  for (const std::string& row : Rows(rel, symbols)) {
    out += row;
    out += "\n";
  }
  return out;
}

}  // namespace testing_util
}  // namespace idlog
