#include "test_util.h"

#include <algorithm>
#include <cctype>

namespace idlog {
namespace testing_util {

Tuple T(SymbolTable* symbols, const std::vector<std::string>& fields) {
  Tuple t;
  for (const std::string& f : fields) {
    bool numeric = !f.empty();
    for (char c : f) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      t.push_back(Value::Number(std::stoll(f)));
    } else {
      t.push_back(Value::Symbol(symbols->Intern(f)));
    }
  }
  return t;
}

std::vector<std::string> Rows(const Relation& rel,
                              const SymbolTable& symbols) {
  std::vector<std::string> rows;
  for (const Tuple& t : rel.SortedTuples()) {
    rows.push_back(TupleToString(t, symbols));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string Dump(const Relation& rel, const SymbolTable& symbols) {
  std::string out;
  for (const std::string& row : Rows(rel, symbols)) {
    out += row;
    out += "\n";
  }
  return out;
}

std::string CorpusGenerator::Generate() {
  std::string text;
  std::vector<std::pair<std::string, int>> lower = {{"e0", 2}, {"e1", 1}};
  int layers = 2 + static_cast<int>(rng_() % 3);
  for (int layer = 0; layer < layers; ++layer) {
    std::string p = "p" + std::to_string(layer);
    std::string q = "q" + std::to_string(layer);
    int arity = 2;
    // Negation (and ID-literals, whose base must be complete before
    // the stratum) may only reach strictly lower layers — predicates
    // added for *this* layer share p's stratum.
    const std::vector<std::pair<std::string, int>> strictly_lower = lower;
    // Base rules (1-2) from lower layers.
    int bases = 1 + static_cast<int>(rng_() % 2);
    for (int b = 0; b < bases; ++b) {
      text += BaseRule(p, arity, lower);
    }
    switch (rng_() % 3) {
      case 0:  // direct recursion
        text += p + "(X, Z) :- " + p + "(X, Y), e0(Y, Z).\n";
        break;
      case 1:  // mutual recursion: p and q share a stratum
        text += q + "(X, Y) :- " + p + "(X, Y).\n";
        text += p + "(X, Z) :- " + q + "(X, Y), e0(Y, Z).\n";
        lower.push_back({q, arity});
        break;
      default:  // non-recursive layer
        break;
    }
    // Optional negation of a lower-layer predicate.
    if (layer > 0 && rng_() % 2 == 0) {
      auto [neg, neg_arity] =
          strictly_lower[rng_() % strictly_lower.size()];
      if (neg_arity == 2) {
        text += p + "(X, X) :- e1(X), not " + neg + "(X, X).\n";
      } else {
        text += p + "(X, X) :- e1(X), not " + neg + "(X).\n";
      }
    }
    // Optional ID-literal over a lower-layer predicate.
    if (rng_() % 3 == 0) {
      auto [base, base_arity] =
          strictly_lower[rng_() % strictly_lower.size()];
      if (base_arity == 2) {
        text += p + "(A, B) :- " + base + "[1](A, B, 0).\n";
      }
    }
    lower.push_back({p, arity});
    queries_.push_back(p);
  }
  return text;
}

std::string CorpusGenerator::BaseRule(
    const std::string& head, int arity,
    const std::vector<std::pair<std::string, int>>& lower) {
  auto [b, b_arity] = lower[rng_() % lower.size()];
  if (b_arity == 2) {
    return head + "(X, Y) :- " + b + "(X, Y).\n";
  }
  (void)arity;
  return head + "(X, X) :- " + b + "(X).\n";
}

std::vector<std::vector<std::string>> CorpusEdb(uint64_t seed) {
  std::vector<std::vector<std::string>> edb;
  std::mt19937_64 rng(seed * 31 + 7);
  for (int i = 0; i < 14; ++i) {
    edb.push_back({"e0", "c" + std::to_string(rng() % 6),
                   "c" + std::to_string(rng() % 6)});
  }
  for (int i = 0; i < 5; ++i) {
    edb.push_back({"e1", "c" + std::to_string(rng() % 6)});
  }
  return edb;
}

}  // namespace testing_util
}  // namespace idlog
