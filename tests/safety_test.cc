#include <gtest/gtest.h>

#include "analysis/safety.h"
#include "parser/parser.h"

namespace idlog {
namespace {

Status CheckText(const std::string& text, bool allow_choice = false) {
  SymbolTable s;
  auto p = ParseProgram(text, &s);
  if (!p.ok()) return p.status();
  return CheckProgramSafety(*p, allow_choice);
}

TEST(Safety, RangeRestrictedRuleIsSafe) {
  EXPECT_TRUE(CheckText("q(X, Y) :- r(X), s(Y).").ok());
}

TEST(Safety, UnboundHeadVariableRejected) {
  Status st = CheckText("q(X, Y) :- r(X).");
  EXPECT_EQ(st.code(), StatusCode::kUnsafeProgram);
}

TEST(Safety, HeadVarBoundOnlyByNegationRejected) {
  Status st = CheckText("q(Y) :- r(X), not s(Y).");
  EXPECT_EQ(st.code(), StatusCode::kUnsafeProgram);
}

TEST(Safety, NegationVariableMustBeBound) {
  EXPECT_TRUE(CheckText("q(X) :- r(X), not s(X).").ok());
  EXPECT_EQ(CheckText("q(X) :- r(X), not s(Y).").code(),
            StatusCode::kUnsafeProgram);
}

// The paper's Section 2.2 example: with q(a, 1),
//   p1(X, N) :- q(X, N), add(N, L, M)   -- infinitely many (L, M): unsafe
//   p2(X, N) :- q(X, N), add(L, M, N)   -- finitely many: safe (nnb)
TEST(Safety, PaperArithmeticSafetyExample) {
  EXPECT_EQ(CheckText("p1(X, N) :- q(X, N), add(N, L, M).").code(),
            StatusCode::kUnsafeProgram);
  EXPECT_TRUE(CheckText("p2(X, N) :- q(X, N), add(L, M, N).").ok());
}

TEST(Safety, AddBindingPatterns) {
  std::vector<bool> bbb = {true, true, true};
  std::vector<bool> bbn = {true, true, false};
  std::vector<bool> bnb = {true, false, true};
  std::vector<bool> nbb = {false, true, true};
  std::vector<bool> nnb = {false, false, true};
  std::vector<bool> bnn = {true, false, false};
  std::vector<bool> nnn = {false, false, false};
  EXPECT_TRUE(BuiltinPatternAdmissible(BuiltinKind::kAdd, bbb));
  EXPECT_TRUE(BuiltinPatternAdmissible(BuiltinKind::kAdd, bbn));
  EXPECT_TRUE(BuiltinPatternAdmissible(BuiltinKind::kAdd, bnb));
  EXPECT_TRUE(BuiltinPatternAdmissible(BuiltinKind::kAdd, nbb));
  EXPECT_TRUE(BuiltinPatternAdmissible(BuiltinKind::kAdd, nnb));
  EXPECT_FALSE(BuiltinPatternAdmissible(BuiltinKind::kAdd, bnn));
  EXPECT_FALSE(BuiltinPatternAdmissible(BuiltinKind::kAdd, nnn));
}

TEST(Safety, MulRequiresBothFactors) {
  EXPECT_TRUE(
      BuiltinPatternAdmissible(BuiltinKind::kMul, {true, true, false}));
  // C-driven generation would be unsafe when a factor can be 0.
  EXPECT_FALSE(
      BuiltinPatternAdmissible(BuiltinKind::kMul, {false, false, true}));
  EXPECT_FALSE(
      BuiltinPatternAdmissible(BuiltinKind::kMul, {true, false, true}));
}

TEST(Safety, SubPatterns) {
  // A alone is enough: B ranges over 0..A.
  EXPECT_TRUE(
      BuiltinPatternAdmissible(BuiltinKind::kSub, {true, false, false}));
  EXPECT_TRUE(
      BuiltinPatternAdmissible(BuiltinKind::kSub, {false, true, true}));
  EXPECT_FALSE(
      BuiltinPatternAdmissible(BuiltinKind::kSub, {false, true, false}));
}

TEST(Safety, SuccEitherSide) {
  EXPECT_TRUE(
      BuiltinPatternAdmissible(BuiltinKind::kSucc, {true, false}));
  EXPECT_TRUE(
      BuiltinPatternAdmissible(BuiltinKind::kSucc, {false, true}));
  EXPECT_FALSE(
      BuiltinPatternAdmissible(BuiltinKind::kSucc, {false, false}));
}

TEST(Safety, ComparisonsNeedBothBound) {
  EXPECT_EQ(CheckText("q(X) :- r(X), X < Y.").code(),
            StatusCode::kUnsafeProgram);
  EXPECT_TRUE(CheckText("q(X) :- r(X), s(Y), X < Y.").ok());
}

TEST(Safety, EqualityBindsEitherDirection) {
  EXPECT_TRUE(CheckText("q(Y) :- r(X), Y = X.").ok());
  EXPECT_TRUE(CheckText("q(X) :- r(X), X = Y, s(Y).").ok());
  EXPECT_EQ(CheckText("q(X) :- r(X), Y = Z.").code(),
            StatusCode::kUnsafeProgram);
}

TEST(Safety, InequalityNeedsBothBound) {
  EXPECT_EQ(CheckText("q(X) :- r(X), X != Y.").code(),
            StatusCode::kUnsafeProgram);
}

TEST(Safety, OrderReordersGenerators) {
  // The builtin appears before its inputs are bound; a safe order must
  // move the relation scan first.
  SymbolTable s;
  auto p = ParseProgram("q(M) :- M = N + 1, r(N).", &s);
  ASSERT_TRUE(p.ok());
  auto order = ComputeSafeOrder(p->clauses[0], false);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  EXPECT_EQ(order->order, (std::vector<int>{1, 0}));
}

TEST(Safety, NegationRunsAsEarlyAsPossible) {
  SymbolTable s;
  auto p = ParseProgram("q(X, Y) :- r(X), s(Y), not t(X).", &s);
  ASSERT_TRUE(p.ok());
  auto order = ComputeSafeOrder(p->clauses[0], false);
  ASSERT_TRUE(order.ok());
  // After r binds X, the negation (filter) should run before s.
  EXPECT_EQ(order->order, (std::vector<int>{0, 2, 1}));
}

TEST(Safety, IdLiteralBindsItsVariables) {
  EXPECT_TRUE(CheckText("q(N, T) :- emp[2](N, D, T), T < 2.").ok());
}

TEST(Safety, NegatedIdLiteralNeedsBoundArgs) {
  EXPECT_TRUE(
      CheckText("q(N) :- emp(N, D), not emp[2](N, D, 0).").ok());
  EXPECT_EQ(CheckText("q(N) :- e(N), not emp[2](N, D, 0).").code(),
            StatusCode::kUnsafeProgram);
}

TEST(Safety, ChoiceOnlyWithPermission) {
  const char* text = "q(N) :- emp(N, D), choice((D), (N)).";
  EXPECT_EQ(CheckText(text, false).code(), StatusCode::kUnsupported);
  EXPECT_TRUE(CheckText(text, true).ok());
}

TEST(Safety, ChoiceVariablesMustBeBound) {
  EXPECT_EQ(CheckText("q(N) :- e(N), choice((D), (N)).", true).code(),
            StatusCode::kUnsafeProgram);
}

TEST(Safety, NegatedBuiltinNeedsAllBound) {
  EXPECT_TRUE(CheckText("q(X) :- r(X, Y), not X = Y.").ok());
  EXPECT_EQ(CheckText("q(X) :- r(X), not X = Y.").code(),
            StatusCode::kUnsafeProgram);
}

}  // namespace
}  // namespace idlog
