// Answer-level explanation: WHY proof trees over the provenance store
// and WHY NOT rule-walks over the computed model. Covers every
// Premise::Kind in a proof, every WhyNotFailure::Class, budget
// truncation, strict-JSON well-formedness of both idlog-why-v1 modes,
// and byte-equality of all four renderings across --jobs.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/idlog_engine.h"
#include "obs/json.h"
#include "obs/why.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::T;

// One rule touching all four premise kinds: an ordinary fact, a
// built-in, a negation and an ID-literal, plus a derived interior node
// above it.
void LoadAllKinds(IdlogEngine* engine) {
  ASSERT_TRUE(engine->AddRow("v", {"x", "3"}).ok());
  ASSERT_TRUE(engine->AddRow("item", {"x"}).ok());
  ASSERT_TRUE(engine
                  ->LoadProgramText(
                      "q(X, M) :- v(X, N), M = N + 1, not blocked(X), "
                      "item[1](X, 0)."
                      "r(X, M) :- q(X, M).")
                  .ok());
}

TEST(Why, ProofTreeCoversEveryPremiseKind) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  LoadAllKinds(&engine);
  auto text = engine.Why("r", T(&engine.symbols(), {"x", "4"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("WHY r(x, 4)"), std::string::npos) << *text;
  EXPECT_NE(text->find("<= clause #1"), std::string::npos) << *text;
  EXPECT_NE(text->find("q(x, 4)   <= clause #0"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("[database fact]"), std::string::npos) << *text;
  EXPECT_NE(text->find("[built-in]"), std::string::npos) << *text;
  EXPECT_NE(text->find("not blocked(x)"), std::string::npos) << *text;
  EXPECT_NE(text->find("[absent]"), std::string::npos) << *text;
  EXPECT_NE(text->find("item[1](x, 0)"), std::string::npos) << *text;
  EXPECT_NE(text->find("[tid choice]"), std::string::npos) << *text;
}

TEST(Why, JsonIsStrictAndTagged) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  LoadAllKinds(&engine);
  auto doc = engine.WhyJson("r", T(&engine.symbols(), {"x", "4"}));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Status v = ValidateJson(*doc);
  EXPECT_TRUE(v.ok()) << v.ToString() << "\n" << *doc;
  EXPECT_NE(doc->find("\"schema\":\"idlog-why-v1\""), std::string::npos);
  EXPECT_NE(doc->find("\"mode\":\"why\""), std::string::npos);
  EXPECT_NE(doc->find("\"kind\":\"tid-choice\""), std::string::npos);
  EXPECT_NE(doc->find("\"kind\":\"negation\""), std::string::npos);
  EXPECT_NE(doc->find("\"kind\":\"builtin\""), std::string::npos);
  EXPECT_NE(doc->find("\"kind\":\"database-fact\""), std::string::npos);
}

TEST(Why, RequiresProvenanceAndPresence) {
  IdlogEngine off;
  ASSERT_TRUE(off.AddRow("e", {"a"}).ok());
  ASSERT_TRUE(off.LoadProgramText("p(X) :- e(X).").ok());
  EXPECT_EQ(off.Why("p", T(&off.symbols(), {"a"})).status().code(),
            StatusCode::kInvalidArgument);

  IdlogEngine on;
  on.EnableProvenance(true);
  ASSERT_TRUE(on.AddRow("e", {"a"}).ok());
  ASSERT_TRUE(on.LoadProgramText("p(X) :- e(X).").ok());
  auto absent = on.Why("p", T(&on.symbols(), {"zzz"}));
  EXPECT_EQ(absent.status().code(), StatusCode::kNotFound);
  // The error points at the WHY NOT side of the API.
  EXPECT_NE(absent.status().ToString().find("WhyNot"), std::string::npos)
      << absent.status().ToString();
}

TEST(Why, DepthBudgetTruncatesAndReportsNumbers) {
  IdlogEngine engine;
  engine.EnableProvenance(true);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(engine
                    .AddRow("edge", {"n" + std::to_string(i),
                                     "n" + std::to_string(i + 1)})
                    .ok());
  }
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "path(X, Y) :- edge(X, Y)."
                      "path(X, Z) :- path(X, Y), edge(Y, Z).")
                  .ok());
  WhyBudget tight;
  tight.max_depth = 3;
  auto text = engine.Why("path", T(&engine.symbols(), {"n0", "n12"}),
                         tight);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[... depth limit (3)]"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("(truncated at depth 3 / 512 nodes)"),
            std::string::npos)
      << *text;

  WhyBudget few;
  few.max_nodes = 4;
  auto doc = engine.WhyJson("path", T(&engine.symbols(), {"n0", "n12"}),
                            few);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(ValidateJson(*doc).ok()) << *doc;
  EXPECT_NE(doc->find("\"truncated\":true"), std::string::npos) << *doc;
  EXPECT_NE(doc->find("\"max_nodes\":4"), std::string::npos) << *doc;
}

TEST(WhyNot, MissingSubgoalRecursesIntoGroundPremise) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "hop(X) :- edge(X, Y)."
                      "far(X) :- hop(X), hop2(X)."
                      "hop2(X) :- edge2(X).")
                  .ok());
  auto text = engine.WhyNot("far", T(&engine.symbols(), {"a"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("WHY NOT far(a)"), std::string::npos) << *text;
  EXPECT_NE(text->find("does not hold"), std::string::npos) << *text;
  EXPECT_NE(text->find("first failing premise: hop2(a)"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("[missing subgoal]"), std::string::npos) << *text;
  // The ground missing premise is analyzed one level deeper: hop2's own
  // first failing premise is the ground edge2(a), which nothing derives
  // or stores.
  EXPECT_NE(text->find("hop2(a)   does not hold"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("edge2(a)"), std::string::npos) << *text;
  EXPECT_NE(
      text->find("[no rule derives this predicate and it is not stored]"),
      std::string::npos)
      << *text;
}

TEST(WhyNot, BlockedNegation) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("p", {"a"}).ok());
  ASSERT_TRUE(engine.AddRow("m", {"a"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("solo(X) :- p(X), not m(X).").ok());
  auto text = engine.WhyNot("solo", T(&engine.symbols(), {"a"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("first failing premise: not m(a)"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("[blocked: fact is present]"), std::string::npos)
      << *text;
}

TEST(WhyNot, FailedBuiltin) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("v", {"x", "3"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("big(X) :- v(X, N), N > 10.").ok());
  auto text = engine.WhyNot("big", T(&engine.symbols(), {"x"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[built-in unsatisfied]"), std::string::npos)
      << *text;
}

TEST(WhyNot, TidMismatchNamesTheChosenTid) {
  IdlogEngine engine;
  // Without tid-bound pushdown the full id-relation materializes, so
  // the analysis can name the tid the model actually chose for bob.
  engine.SetTidBoundPushdown(false);
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("rep(N) :- emp[2](N, D, 0).").ok());
  ASSERT_TRUE(engine.Run().ok());
  // The identity assigner numbers (ann, sales) as tid 0 within the
  // sales group, so rep(bob) fails only on its tid.
  auto text = engine.WhyNot("rep", T(&engine.symbols(), {"bob"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[tid mismatch]"), std::string::npos) << *text;
  EXPECT_NE(text->find("(the model chose tid 1)"), std::string::npos)
      << *text;

  auto doc = engine.WhyNotJson("rep", T(&engine.symbols(), {"bob"}));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(ValidateJson(*doc).ok()) << *doc;
  EXPECT_NE(doc->find("\"class\":\"tid-mismatch\""), std::string::npos)
      << *doc;
  EXPECT_NE(doc->find("\"chosen_tid\":\"1\""), std::string::npos) << *doc;
}

TEST(WhyNot, TidMismatchSurvivesTidBoundPushdown) {
  // Pushdown materializes only the tids the rule can use, so the row
  // carrying bob's actual tid is elided; the base relation still
  // witnesses that only the tid choice is to blame.
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("rep(N) :- emp[2](N, D, 0).").ok());
  ASSERT_TRUE(engine.Run().ok());
  auto text = engine.WhyNot("rep", T(&engine.symbols(), {"bob"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[tid mismatch]"), std::string::npos) << *text;
  EXPECT_NE(text->find("unmaterialized tid"), std::string::npos) << *text;
  auto doc = engine.WhyNotJson("rep", T(&engine.symbols(), {"bob"}));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(ValidateJson(*doc).ok()) << *doc;
  EXPECT_NE(doc->find("\"class\":\"tid-mismatch\""), std::string::npos)
      << *doc;
  EXPECT_EQ(doc->find("chosen_tid"), std::string::npos) << *doc;
}

TEST(WhyNot, PresentFactReportsHolds) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("e", {"a"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("p(X) :- e(X).").ok());
  auto text = engine.WhyNot("p", T(&engine.symbols(), {"a"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("holds in the computed model"), std::string::npos)
      << *text;
}

TEST(WhyNot, JsonIsStrictAndTagged) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "hop(X) :- edge(X, Y)."
                      "far(X) :- hop(X), hop2(X)."
                      "hop2(X) :- edge2(X, Y).")
                  .ok());
  auto doc = engine.WhyNotJson("far", T(&engine.symbols(), {"a"}));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Status v = ValidateJson(*doc);
  EXPECT_TRUE(v.ok()) << v.ToString() << "\n" << *doc;
  EXPECT_NE(doc->find("\"schema\":\"idlog-why-v1\""), std::string::npos);
  EXPECT_NE(doc->find("\"mode\":\"why-not\""), std::string::npos);
  EXPECT_NE(doc->find("\"class\":\"missing-subgoal\""),
            std::string::npos)
      << *doc;
}

TEST(WhyNot, CycleAndBudgetStayBounded) {
  IdlogEngine engine;
  // Mutual recursion with no base case: the analysis must cut the
  // a-derives-b-derives-a loop instead of spinning.
  ASSERT_TRUE(engine.AddRow("seed", {"s"}).ok());
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "a(X) :- b(X)."
                      "b(X) :- a(X).")
                  .ok());
  auto text = engine.WhyNot("a", T(&engine.symbols(), {"s"}));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[cycle — already being analyzed]"),
            std::string::npos)
      << *text;

  WhyBudget one;
  one.max_depth = 1;
  auto tight = engine.WhyNot("a", T(&engine.symbols(), {"s"}), one);
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_NE(tight->find("depth budget (1) reached"), std::string::npos)
      << *tight;
}

TEST(WhyAcrossJobs, AllFourRenderingsAreByteIdentical) {
  auto build = [](int threads) {
    auto engine = std::make_unique<IdlogEngine>();
    EXPECT_TRUE(engine->AddRow("edge", {"a", "b"}).ok());
    EXPECT_TRUE(engine->AddRow("edge", {"b", "c"}).ok());
    EXPECT_TRUE(engine->AddRow("edge", {"c", "d"}).ok());
    EXPECT_TRUE(engine->AddRow("emp", {"ann", "sales"}).ok());
    EXPECT_TRUE(engine->AddRow("emp", {"bob", "sales"}).ok());
    engine->SetThreads(threads);
    engine->EnableProvenance(true);
    EXPECT_TRUE(engine
                    ->LoadProgramText(
                        "path(X, Y) :- edge(X, Y)."
                        "path(X, Z) :- path(X, Y), edge(Y, Z)."
                        "rep(N) :- emp[2](N, D, 0).")
                    .ok());
    EXPECT_TRUE(engine->Run().ok());
    return engine;
  };
  auto serial = build(1);
  auto parallel = build(4);
  for (IdlogEngine* e : {serial.get(), parallel.get()}) {
    SCOPED_TRACE(e == serial.get() ? "serial" : "parallel");
    ASSERT_TRUE(e->Why("path", T(&e->symbols(), {"a", "d"})).ok());
  }
  EXPECT_EQ(*serial->Why("path", T(&serial->symbols(), {"a", "d"})),
            *parallel->Why("path", T(&parallel->symbols(), {"a", "d"})));
  EXPECT_EQ(
      *serial->WhyJson("path", T(&serial->symbols(), {"a", "d"})),
      *parallel->WhyJson("path", T(&parallel->symbols(), {"a", "d"})));
  EXPECT_EQ(*serial->WhyNot("rep", T(&serial->symbols(), {"bob"})),
            *parallel->WhyNot("rep", T(&parallel->symbols(), {"bob"})));
  EXPECT_EQ(
      *serial->WhyNotJson("rep", T(&serial->symbols(), {"bob"})),
      *parallel->WhyNotJson("rep", T(&parallel->symbols(), {"bob"})));
}

}  // namespace
}  // namespace idlog
