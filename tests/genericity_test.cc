// The C-genericity property of Section 3.1: for every permutation σ of
// the universal domain fixing the program's own constants,
//   r ∈ f(τ)  iff  σ(r) ∈ f(σ(τ)).
// For the possible-answer sets our enumerator computes, this means:
// renaming the database constants by σ renames the answer set by σ —
// answers never depend on spellings or insertion identities, only on
// structure. This is the property that makes IDLOG queries *queries*
// in the Chandra–Harel sense despite the non-determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "core/answer_enumerator.h"
#include "parser/parser.h"
#include "test_util.h"

namespace idlog {
namespace {

// Renames sort-u constants of a tuple via `sigma` (a map over symbol
// spellings applied in a shared symbol table).
Tuple RenameTuple(const Tuple& t, const std::map<SymbolId, SymbolId>& sigma) {
  Tuple out = t;
  for (Value& v : out) {
    if (v.is_symbol()) {
      auto it = sigma.find(v.symbol());
      if (it != sigma.end()) v = Value::Symbol(it->second);
    }
  }
  return out;
}

std::set<std::vector<Tuple>> RenameAnswers(
    const std::set<std::vector<Tuple>>& answers,
    const std::map<SymbolId, SymbolId>& sigma) {
  std::set<std::vector<Tuple>> out;
  for (const auto& answer : answers) {
    std::vector<Tuple> renamed;
    for (const Tuple& t : answer) renamed.push_back(RenameTuple(t, sigma));
    std::sort(renamed.begin(), renamed.end());
    out.insert(std::move(renamed));
  }
  return out;
}

struct GenericityCase {
  const char* name;
  const char* program;
  const char* query;
};

class Genericity : public ::testing::TestWithParam<GenericityCase> {};

TEST_P(Genericity, AnswerSetsCommuteWithRenaming) {
  const GenericityCase& tc = GetParam();
  SymbolTable s;

  // Base database over constants k0..k3 (disjoint from program text).
  // Kept small: the enumerator explores every permutation of every
  // ID-group, and the global emp[] group has |emp|! of them.
  std::vector<SymbolId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(s.Intern("k" + std::to_string(i)));
  }
  std::mt19937_64 rng(99);
  Database db(&s);
  std::uniform_int_distribution<size_t> pick(0, ids.size() - 1);
  for (int i = 0; i < 5; ++i) {
    (void)db.AddTuple("emp", {Value::Symbol(ids[pick(rng)]),
                              Value::Symbol(ids[pick(rng)])});
  }

  // σ: a permutation of the database constants onto fresh spellings
  // (injective, fixes the program constants trivially).
  std::map<SymbolId, SymbolId> sigma;
  std::vector<SymbolId> targets;
  for (int i = 0; i < 4; ++i) {
    targets.push_back(s.Intern("m" + std::to_string(i)));
  }
  std::shuffle(targets.begin(), targets.end(), rng);
  for (size_t i = 0; i < ids.size(); ++i) sigma[ids[i]] = targets[i];

  Database renamed_db(&s);
  const Relation* emp = *db.Get("emp");
  for (const Tuple& t : emp->tuples()) {
    (void)renamed_db.AddTuple("emp", RenameTuple(t, sigma));
  }

  auto prog = ParseProgram(tc.program, &s);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  auto base = EnumerateAnswers(*prog, db, tc.query);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto renamed = EnumerateAnswers(*prog, renamed_db, tc.query);
  ASSERT_TRUE(renamed.ok()) << renamed.status().ToString();

  EXPECT_EQ(RenameAnswers(base->answers, sigma), renamed->answers)
      << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, Genericity,
    ::testing::Values(
        GenericityCase{"plain_join", "q(X, Z) :- emp(X, Y), emp(Y, Z).",
                       "q"},
        GenericityCase{"one_per_group", "q(D) :- emp[2](N, D, 0).", "q"},
        GenericityCase{"sample_two",
                       "q(N) :- emp[2](N, D, T), T < 2.", "q"},
        GenericityCase{"global_order_size",
                       // |emp| via the global ID-relation: the max tid
                       // is order-independent even though tids are not.
                       "cnt(M) :- emp[](X, Y, T), succ(T, M), "
                       "not bigger(M)."
                       "bigger(M) :- emp[](X, Y, T), succ(T, M), "
                       "emp[](X2, Y2, T2), T2 >= M.",
                       "cnt"},
        GenericityCase{"negation",
                       "q(X) :- emp(X, Y), not emp(Y, X).", "q"}),
    [](const ::testing::TestParamInfo<GenericityCase>& info) {
      return info.param.name;
    });

// A sharper structural check: insertion order of the same tuples must
// not change the possible-answer set either (order-genericity of the
// canonical enumeration).
TEST(Genericity, InsertionOrderIrrelevantForAnswerSets) {
  SymbolTable s;
  auto prog = ParseProgram("q(N) :- emp[2](N, D, T), T < 2.", &s);
  ASSERT_TRUE(prog.ok());

  std::vector<std::vector<std::string>> rows = {
      {"a", "d1"}, {"b", "d1"}, {"c", "d1"}, {"x", "d2"}, {"y", "d2"}};
  std::set<std::vector<Tuple>> previous;
  std::mt19937_64 rng(5);
  for (int round = 0; round < 5; ++round) {
    std::shuffle(rows.begin(), rows.end(), rng);
    Database db(&s);
    for (const auto& r : rows) {
      ASSERT_TRUE(db.AddRow("emp", r).ok());
    }
    auto answers = EnumerateAnswers(*prog, db, "q");
    ASSERT_TRUE(answers.ok());
    if (round > 0) {
      EXPECT_EQ(answers->answers, previous) << "round " << round;
    }
    previous = answers->answers;
  }
}

}  // namespace
}  // namespace idlog
