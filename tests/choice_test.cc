#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "analysis/stratifier.h"
#include "choice/choice_program.h"
#include "choice/choice_semantics.h"
#include "choice/choice_to_idlog.h"
#include "core/answer_enumerator.h"
#include "parser/parser.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::T;

Program MustParse(const std::string& text, SymbolTable* s) {
  auto p = ParseProgram(text, s);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).ValueOrDie();
}

Database EmpDatabase(SymbolTable* s) {
  Database db(s);
  EXPECT_TRUE(db.AddRow("emp", {"ann", "sales"}).ok());
  EXPECT_TRUE(db.AddRow("emp", {"bob", "sales"}).ok());
  EXPECT_TRUE(db.AddRow("emp", {"cal", "dev"}).ok());
  EXPECT_TRUE(db.AddRow("emp", {"dee", "dev"}).ok());
  return db;
}

// The KN88 program of Section 3.2.2: one employee per department.
const char* kSelectEmp =
    "select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).";

TEST(ChoiceProgram, AnalyzeFindsOccurrences) {
  SymbolTable s;
  Program p = MustParse(kSelectEmp, &s);
  auto occ = AnalyzeChoiceProgram(p);
  ASSERT_TRUE(occ.ok()) << occ.status().ToString();
  ASSERT_EQ(occ->size(), 1u);
  EXPECT_EQ((*occ)[0].domain_vars, std::vector<std::string>{"Dept"});
  EXPECT_EQ((*occ)[0].range_vars, std::vector<std::string>{"Name"});
}

TEST(ChoiceProgram, C1ViolationRejected) {
  SymbolTable s;
  Program p = MustParse(
      "q(N) :- emp(N, D), choice((D), (N)), choice((N), (D)).", &s);
  EXPECT_EQ(AnalyzeChoiceProgram(p).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChoiceProgram, C2ViolationRejected) {
  SymbolTable s;
  // The second choice clause consumes the first one's head predicate.
  Program p = MustParse(
      "first(N) :- emp(N, D), choice((D), (N))."
      "second(N) :- first(N), emp(N, D), choice((N), (D)).",
      &s);
  EXPECT_EQ(AnalyzeChoiceProgram(p).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChoiceProgram, IndependentChoicesAllowed) {
  SymbolTable s;
  Program p = MustParse(
      "one(N) :- emp(N, D), choice((D), (N))."
      "other(D) :- emp(N, D), choice((N), (D)).",
      &s);
  auto occ = AnalyzeChoiceProgram(p);
  EXPECT_TRUE(occ.ok()) << occ.status().ToString();
  EXPECT_EQ(occ->size(), 2u);
}

TEST(ChoiceProgram, ChoiceVariableMustBeBound) {
  SymbolTable s;
  Program p = MustParse("q(N) :- emp(N, D), choice((Z), (N)).", &s);
  EXPECT_EQ(AnalyzeChoiceProgram(p).status().code(),
            StatusCode::kUnsafeProgram);
}

TEST(ChoiceSemantics, OneEmployeePerDepartment) {
  SymbolTable s;
  Program p = MustParse(kSelectEmp, &s);
  Database db = EmpDatabase(&s);

  ChoicePolicy policy;
  policy.kind = ChoicePolicy::Kind::kFirst;
  auto model = EvaluateChoiceProgram(p, db, policy);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Relation* sel = *model->Get("select_emp");
  EXPECT_EQ(sel->size(), 2u);  // one per department
}

TEST(ChoiceSemantics, RandomPolicyIsSeedStable) {
  SymbolTable s;
  Program p = MustParse(kSelectEmp, &s);
  Database db = EmpDatabase(&s);
  ChoicePolicy policy;
  policy.kind = ChoicePolicy::Kind::kRandom;
  policy.seed = 3;
  auto m1 = EvaluateChoiceProgram(p, db, policy);
  auto m2 = EvaluateChoiceProgram(p, db, policy);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE((*m1->Get("select_emp"))->SetEquals(**m2->Get("select_emp")));
}

TEST(ChoiceSemantics, EnumerationYieldsAllFunctionalSubsets) {
  SymbolTable s;
  Program p = MustParse(kSelectEmp, &s);
  Database db = EmpDatabase(&s);
  auto answers = EnumerateChoiceAnswers(p, db, "select_emp");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // 2 sales x 2 dev picks = 4 models, all distinct answers.
  EXPECT_EQ(answers->assignments_tried, 4u);
  EXPECT_EQ(answers->answers.size(), 4u);
  EXPECT_TRUE(
      answers->ContainsAnswer({T(&s, {"ann"}), T(&s, {"cal"})}));
  EXPECT_TRUE(
      answers->ContainsAnswer({T(&s, {"bob"}), T(&s, {"dee"})}));
}

// Theorem 2: the translated IDLOG program is q-equivalent — identical
// possible-answer sets.
TEST(ChoiceToIdlog, Theorem2Equivalence) {
  SymbolTable s;
  Program p = MustParse(kSelectEmp, &s);
  Database db = EmpDatabase(&s);

  auto translated = TranslateChoiceToIdlog(p);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();

  auto choice_answers = EnumerateChoiceAnswers(p, db, "select_emp");
  ASSERT_TRUE(choice_answers.ok());
  auto idlog_answers = EnumerateAnswers(*translated, db, "select_emp");
  ASSERT_TRUE(idlog_answers.ok()) << idlog_answers.status().ToString();
  EXPECT_EQ(choice_answers->answers, idlog_answers->answers);
}

TEST(ChoiceToIdlog, TranslationIsFourStratum) {
  SymbolTable s;
  Program p = MustParse(kSelectEmp, &s);
  auto translated = TranslateChoiceToIdlog(p);
  ASSERT_TRUE(translated.ok());
  auto strat = Stratify(*translated);
  ASSERT_TRUE(strat.ok()) << strat.status().ToString();
  // choice_body < chosen (ID edge) < select_emp: three derivation
  // strata above the inputs.
  EXPECT_LT(strat->StratumOf("choice_body_0"),
            strat->StratumOf("chosen_0"));
  EXPECT_LE(strat->StratumOf("chosen_0"),
            strat->StratumOf("select_emp"));
}

// Theorem 2 stress: several program shapes, several random databases —
// the translated IDLOG program always has the same possible-answer set
// as the native KN88 semantics.
struct TranslationCase {
  const char* name;
  const char* program;
  const char* query;
};

class Theorem2Sweep
    : public ::testing::TestWithParam<std::tuple<TranslationCase, int>> {};

TEST_P(Theorem2Sweep, AnswerSetsCoincide) {
  const auto& [tc, seed] = GetParam();
  SymbolTable s;
  Database db(&s);
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 31 + 5);
  // Small random emp + dept_ok tables (sizes bounded for enumeration).
  int people = 3 + static_cast<int>(rng() % 3);
  for (int i = 0; i < people; ++i) {
    ASSERT_TRUE(db.AddRow("emp", {"p" + std::to_string(i),
                                  "d" + std::to_string(rng() % 2)})
                    .ok());
  }
  ASSERT_TRUE(db.AddRow("dept_ok", {"d0"}).ok());

  auto program = ParseProgram(tc.program, &s);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto translated = TranslateChoiceToIdlog(*program);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();

  auto native = EnumerateChoiceAnswers(*program, db, tc.query);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto via_idlog = EnumerateAnswers(*translated, db, tc.query,
                                    EnumerateOptions{.max_assignments =
                                                         1000000});
  ASSERT_TRUE(via_idlog.ok()) << via_idlog.status().ToString();
  EXPECT_EQ(native->answers, via_idlog->answers)
      << tc.name << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Theorem2Sweep,
    ::testing::Combine(
        ::testing::Values(
            TranslationCase{"one_per_dept",
                            "q(N) :- emp(N, D), choice((D), (N)).", "q"},
            TranslationCase{"one_dept_per_name",
                            "q(D) :- emp(N, D), choice((N), (D)).", "q"},
            TranslationCase{"global_pick",
                            "q(N) :- emp(N, D), choice((), (N)).", "q"},
            TranslationCase{
                "filtered",
                "q(N) :- emp(N, D), dept_ok(D), choice((D), (N)).", "q"},
            TranslationCase{
                "two_independent",
                "one(N) :- emp(N, D), choice((D), (N))."
                "other(D) :- emp(N, D), choice((N), (D))."
                "q(N, D) :- one(N), other(D).",
                "q"}),
        ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<TranslationCase, int>>&
           info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// Example 4: the sex-guess DATALOG^C program of Section 3.2.2 is man-
// and woman-equivalent to the Example 2 IDLOG program.
TEST(ChoiceToIdlog, Example4SexGuessEquivalence) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("person", {"a"}).ok());
  ASSERT_TRUE(db.AddRow("person", {"b"}).ok());

  Program choice_prog = MustParse(
      "sex_guess(X, male) :- person(X)."
      "sex_guess(X, female) :- person(X)."
      "sex(X, Y) :- sex_guess(X, Y), choice((X), (Y))."
      "man(X) :- sex(X, male)."
      "woman(X) :- sex(X, female).",
      &s);
  Program idlog_prog = MustParse(
      "sex_guess(X, male) :- person(X)."
      "sex_guess(X, female) :- person(X)."
      "man(X) :- sex_guess[1](X, male, 1)."
      "woman(X) :- sex_guess[1](X, female, 1).",
      &s);

  for (const char* query : {"man", "woman"}) {
    auto via_choice = EnumerateChoiceAnswers(choice_prog, db, query);
    ASSERT_TRUE(via_choice.ok()) << via_choice.status().ToString();
    auto via_idlog = EnumerateAnswers(idlog_prog, db, query);
    ASSERT_TRUE(via_idlog.ok());
    EXPECT_EQ(via_choice->answers, via_idlog->answers) << query;
  }
}

// Example 5's failure mode: the two-independent-choices DATALOG^C
// program does NOT define "two employees per department" — some of its
// intended models pick fewer than two from a department.
TEST(ChoiceSemantics, Example5IndependentChoicesAreWrong) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("emp", {"a1", "d1"}).ok());
  ASSERT_TRUE(db.AddRow("emp", {"a2", "d1"}).ok());
  ASSERT_TRUE(db.AddRow("emp", {"a3", "d1"}).ok());

  Program p = MustParse(
      "emp1(Name, Dept) :- emp(Name, Dept), choice((Dept), (Name))."
      "emp2(Name, Dept) :- emp(Name, Dept), choice((Dept), (Name))."
      "select_two(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.",
      &s);
  auto answers = EnumerateChoiceAnswers(p, db, "select_two");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // When both choices pick the same employee, the answer is empty —
  // the query can fail to produce any sample.
  EXPECT_TRUE(answers->ContainsAnswer({}));

  // The IDLOG one-liner never fails: every answer has exactly 2 names.
  Program idlog_prog = MustParse(
      "select_two(Name) :- emp[2](Name, Dept, N), N < 2.", &s);
  auto idlog_answers = EnumerateAnswers(idlog_prog, db, "select_two");
  ASSERT_TRUE(idlog_answers.ok());
  EXPECT_FALSE(idlog_answers->ContainsAnswer({}));
  for (const auto& a : idlog_answers->answers) {
    EXPECT_EQ(a.size(), 2u);
  }
}

}  // namespace
}  // namespace idlog
