// Tests for the unified resource governor: every budget kind trips with
// a diagnostic naming the budget and the tripping subsystem, Cancel()
// works from another thread, and partial-results mode keeps the model
// computed so far.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/limits.h"
#include "core/answer_enumerator.h"
#include "core/idlog_engine.h"
#include "eval/engine_impl.h"
#include "parser/parser.h"
#include "storage/csv.h"
#include "storage/tid_assigner.h"
#include "test_util.h"

namespace idlog {
namespace {

// Safe (the head variable is builtin-bound) but has an infinite
// fixpoint: evaluation only stops when a budget trips.
constexpr char kNonTerminating[] =
    "p(0).\n"
    "p(X) :- p(Y), X = Y + 1.\n";

TEST(ResourceGovernor, UnlimitedByDefault) {
  ResourceGovernor gov;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(gov.CheckPoint().ok());
  }
  EXPECT_TRUE(gov.OnDerived(1000, 1 << 20).ok());
  EXPECT_TRUE(gov.OnIteration().ok());
  EXPECT_FALSE(gov.tripped());
}

TEST(ResourceGovernor, TripLatchesUntilRearmed) {
  ResourceGovernor gov(EvalLimits::TupleBudget(5));
  EXPECT_TRUE(gov.OnDerived(5, 0).ok());
  Status st = gov.OnDerived(1, 0);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // Latched: every later check reports the same trip.
  EXPECT_EQ(gov.CheckPoint().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.OnIteration().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.trip().budget, BudgetKind::kTuples);
  gov.Arm(EvalLimits::TupleBudget(5));
  EXPECT_FALSE(gov.tripped());
  EXPECT_TRUE(gov.CheckPoint().ok());
}

TEST(ResourceGovernor, CancelObservedWithinOneProbeInterval) {
  ResourceGovernor gov;
  gov.Cancel();
  Status st = Status::OK();
  uint64_t units = 0;
  while (st.ok() && units < 10 * ResourceGovernor::kProbeInterval) {
    st = gov.CheckPoint();
    ++units;
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_LE(units, ResourceGovernor::kProbeInterval + 1);
  EXPECT_EQ(gov.trip().budget, BudgetKind::kCancelled);
}

TEST(ResourceGovernor, ScopeGuardRestoresStatsSourceAndLabels) {
  ResourceGovernor gov(EvalLimits::TupleBudget(1));
  gov.set_scope("outer");
  {
    EvalStats inner_stats;
    GovernorScope scope(&gov, &inner_stats, "inner");
    EXPECT_EQ(gov.scope(), "inner");
    EXPECT_EQ(gov.stats_source(), &inner_stats);
    gov.set_stratum(3);
  }
  EXPECT_EQ(gov.scope(), "outer");
  EXPECT_EQ(gov.stratum(), -1);
  EXPECT_EQ(gov.stats_source(), nullptr);
  // A trip after the guard exits blames the outer scope, not the dead
  // inner one.
  Status st = gov.OnDerived(2, 0);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("outer"), std::string::npos)
      << st.ToString();
}

TEST(ResourceGovernor, RearmClearsLabelsAndStatsSource) {
  ResourceGovernor gov;
  EvalStats stats;
  gov.set_scope("stale");
  gov.set_stratum(5);
  gov.set_stats_source(&stats);
  gov.Arm(EvalLimits::TupleBudget(10));
  EXPECT_EQ(gov.scope(), "evaluation");
  EXPECT_EQ(gov.stratum(), -1);
  EXPECT_EQ(gov.stats_source(), nullptr);
}

// Regression: an engine borrowing a longer-lived shared governor must
// withdraw its EvalStats pointer when it is done; a budget tripping
// after the engine was destroyed (as in enumerators that evaluate many
// stack-local engines) would otherwise snapshot freed memory.
TEST(ResourceGovernor, TripAfterEngineDestroyedReadsNoDanglingStats) {
  ResourceGovernor gov(EvalLimits::TupleBudget(100));
  gov.set_scope("enumeration driver");

  SymbolTable symbols;
  Database db(&symbols);
  ASSERT_TRUE(db.AddRow("q", {"a"}).ok());
  auto program = ParseProgram("out(X) :- q(X).", &symbols);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  {
    EngineImpl engine(&*program, &db);
    engine.set_governor(&gov);
    ASSERT_TRUE(engine.Prepare().ok());
    IdentityTidAssigner identity;
    ASSERT_TRUE(engine.Evaluate(&identity).ok());
    // The engine restored the driver's labels on its way out.
    EXPECT_EQ(gov.scope(), "enumeration driver");
    EXPECT_EQ(gov.stats_source(), nullptr);
  }
  // Trip with the engine gone: must not dereference its stats
  // (ASan-checked in CI) and must blame the driver's scope.
  Status st = Status::OK();
  while (st.ok()) st = gov.OnDerived(50, 0);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("enumeration driver"), std::string::npos)
      << st.ToString();
}

TEST(ResourceGovernor, LegacyCapOfZeroRejectsFirstCharge) {
  // The deprecated per-module caps rejected the first unit of work when
  // 0; the shim helpers preserve that instead of going unlimited.
  ResourceGovernor tuples;
  ArmLegacyTupleCap(&tuples, 0);
  EXPECT_EQ(tuples.OnDerived(1, 0).code(), StatusCode::kResourceExhausted);

  ResourceGovernor two;
  ArmLegacyTupleCap(&two, 2);
  EXPECT_TRUE(two.OnDerived(1, 0).ok());
  EXPECT_TRUE(two.OnDerived(1, 0).ok());
  EXPECT_EQ(two.OnDerived(1, 0).code(), StatusCode::kResourceExhausted);

  ResourceGovernor iters;
  ArmLegacyIterationCap(&iters, 0);
  EXPECT_EQ(iters.OnIteration().code(), StatusCode::kResourceExhausted);
}

TEST(Limits, DeadlineTripsNonTerminatingFixpoint) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  engine.SetLimits(EvalLimits::Deadline(100));
  auto start = std::chrono::steady_clock::now();
  Status st = engine.Run();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("deadline budget"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("stratum 0"), std::string::npos)
      << st.ToString();
  // Within ~1s of the 100ms deadline, not hanging.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  EXPECT_EQ(engine.governor().trip().budget, BudgetKind::kDeadline);
}

TEST(Limits, TupleBudgetTripsWithDiagnostics) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  engine.SetLimits(EvalLimits::TupleBudget(500));
  Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("tuples budget"), std::string::npos)
      << st.ToString();
  const TripInfo& trip = engine.governor().trip();
  EXPECT_EQ(trip.budget, BudgetKind::kTuples);
  EXPECT_EQ(trip.scope, "stratum fixpoint");
  EXPECT_EQ(trip.stratum, 0);
  EXPECT_GT(trip.stats.facts_derived, 0u);
}

TEST(Limits, MemoryBudgetTrips) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  EvalLimits limits;
  limits.max_memory_bytes = 64 * 1024;
  engine.SetLimits(limits);
  Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("memory budget"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(engine.governor().trip().budget, BudgetKind::kMemory);
}

TEST(Limits, IterationBudgetTrips) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  engine.SetLimits(EvalLimits::IterationBudget(50));
  Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("iterations budget"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(engine.governor().trip().budget, BudgetKind::kIterations);
}

TEST(Limits, BudgetsDoNotAffectTerminatingPrograms) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine.LoadProgramText(
                        "path(X, Y) :- edge(X, Y).\n"
                        "path(X, Z) :- path(X, Y), edge(Y, Z).\n")
                  .ok());
  engine.SetLimits(EvalLimits::TupleBudget(1000));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ((*engine.Query("path"))->size(), 3u);
}

TEST(Limits, CancelFromSecondThreadStopsRun) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  // No budgets at all: only the cancellation can stop this run.
  std::thread canceller([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.Cancel();
  });
  Status st = engine.Run();
  canceller.join();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("cancelled"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(engine.governor().trip().budget, BudgetKind::kCancelled);
}

TEST(Limits, PartialResultsKeepTrippedModelQueryable) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  engine.SetLimits(EvalLimits::TupleBudget(200));
  engine.SetPartialResults(true);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.last_trip().code(), StatusCode::kResourceExhausted);
  auto rel = engine.Query("p");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_GE((*rel)->size(), 200u);
}

// Enumeration over tid assignments of an 8-element group: 8! branches,
// far too many to finish before the cancel lands.
TEST(Limits, CancelFromSecondThreadStopsEnumeration) {
  IdlogEngine engine;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        engine.AddRow("emp", {"e" + std::to_string(i), "sales"}).ok());
  }
  ASSERT_TRUE(
      engine.LoadProgramText("first(N) :- emp[2](N, D, 0).").ok());

  ResourceGovernor gov;
  EnumerateOptions options;
  options.governor = &gov;
  std::thread canceller([&gov] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gov.Cancel();
  });
  auto answers = EnumerateAnswers(engine.program(), engine.database(),
                                  "first", options);
  canceller.join();
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(answers.status().message().find("cancelled"),
            std::string::npos)
      << answers.status().ToString();
}

TEST(Limits, PreCancelledGovernorStopsEnumerationImmediately) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(
      engine.LoadProgramText("first(N) :- emp[2](N, D, 0).").ok());
  ResourceGovernor gov;
  gov.Cancel();
  EnumerateOptions options;
  options.governor = &gov;
  auto answers = EnumerateAnswers(engine.program(), engine.database(),
                                  "first", options);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(Limits, EnumerationRespectsTupleBudget) {
  IdlogEngine engine;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        engine.AddRow("emp", {"e" + std::to_string(i), "sales"}).ok());
  }
  ASSERT_TRUE(
      engine.LoadProgramText("first(N) :- emp[2](N, D, 0).").ok());
  ResourceGovernor gov(EvalLimits::TupleBudget(50));
  EnumerateOptions options;
  options.governor = &gov;
  auto answers = EnumerateAnswers(engine.program(), engine.database(),
                                  "first", options);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(answers.status().message().find("tuples budget"),
            std::string::npos)
      << answers.status().ToString();
}

TEST(Limits, CsvLoadChargesTupleBudget) {
  SymbolTable symbols;
  Database db(&symbols);
  ResourceGovernor gov(EvalLimits::TupleBudget(10));
  std::string csv;
  for (int i = 0; i < 20; ++i) csv += "row" + std::to_string(i) + ",x\n";
  Status st = LoadCsvRelationFromString(&db, "r", csv,
                                        /*skip_header=*/false, &gov);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("csv loader"), std::string::npos)
      << st.ToString();
}

TEST(Limits, RearmingAllowsReuseAfterTrip) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText(kNonTerminating).ok());
  engine.SetLimits(EvalLimits::TupleBudget(100));
  EXPECT_EQ(engine.Run().code(), StatusCode::kResourceExhausted);
  // A fresh Run() with workable budgets (on a terminating program)
  // succeeds: SetLimits + Run re-arm the governor.
  IdlogEngine fresh;
  ASSERT_TRUE(fresh.AddRow("q", {"a"}).ok());
  ASSERT_TRUE(fresh.LoadProgramText("out(X) :- q(X).").ok());
  fresh.SetLimits(EvalLimits::TupleBudget(100));
  EXPECT_TRUE(fresh.Run().ok());
}

}  // namespace
}  // namespace idlog
