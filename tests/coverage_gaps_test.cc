// Focused tests for corner cases not exercised elsewhere.
#include <gtest/gtest.h>

#include "choice/choice_semantics.h"
#include "core/answer_enumerator.h"
#include "core/idlog_engine.h"
#include "parser/parser.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::T;

TEST(CoverageGaps, GlobalChoiceWithEmptyDomainPart) {
  // choice((), (N)): one global pick across the whole relation.
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(db.AddRow("emp", {"bob", "dev"}).ok());
  ASSERT_TRUE(db.AddRow("emp", {"cal", "dev"}).ok());
  auto prog = ParseProgram(
      "one(N) :- emp(N, D), choice((), (N)).", &s);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto answers = EnumerateChoiceAnswers(*prog, db, "one");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->answers.size(), 3u);
  for (const auto& a : answers->answers) {
    EXPECT_EQ(a.size(), 1u);
  }
  // The same query via the global ID-relation.
  auto idlog_prog = ParseProgram("one(N) :- emp[](N, D, 0).", &s);
  ASSERT_TRUE(idlog_prog.ok());
  auto idlog_answers = EnumerateAnswers(*idlog_prog, db, "one");
  ASSERT_TRUE(idlog_answers.ok());
  EXPECT_EQ(answers->answers, idlog_answers->answers);
}

TEST(CoverageGaps, NegatedIdLiteralEvaluates) {
  // "employees that are not their department's representative".
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"cal", "dev"}).ok());
  Status st = engine.LoadProgramText(
      "non_rep(N) :- emp(N, D), not emp[2](N, D, 0).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto r = engine.Query("non_rep");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // One of ann/bob is the sales rep; cal is always the dev rep.
  EXPECT_EQ((*r)->size(), 1u);
  EXPECT_FALSE((*r)->Contains(T(&engine.symbols(), {"cal"})));
}

TEST(CoverageGaps, NegatedIdNeedsFullMaterialization) {
  // A negated ID-literal probing tid 0 still only needs the prefix; the
  // bound analysis treats negative occurrences like positive ones.
  IdlogEngine engine;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.AddRow("emp", {"e" + std::to_string(i), "d"}).ok());
  }
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "non_rep(N) :- emp(N, D), not emp[2](N, D, 0).")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  auto id_rel = engine.QueryIdRelation("emp", {1});
  ASSERT_TRUE(id_rel.ok());
  EXPECT_EQ((*id_rel)->size(), 1u);
  auto r = engine.Query("non_rep");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size(), 9u);
}

TEST(CoverageGaps, EnumerationOverSmallGroupsIsExhaustive) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("g", {"a", "k"}).ok());
  ASSERT_TRUE(db.AddRow("g", {"b", "k"}).ok());
  auto prog = ParseProgram("first(V) :- g[2](V, K, 0).", &s);
  ASSERT_TRUE(prog.ok());
  auto answers = EnumerateAnswers(*prog, db, "first");
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->exhaustive);
  EXPECT_EQ(answers->answers.size(), 2u);
}

TEST(CoverageGaps, SaturatedGroupMarksEnumerationNonExhaustive) {
  // A 21-tuple group has 21! > 2^64 permutations: its radix saturates
  // to UINT64_MAX and the odometer can never step it past rank 0.
  // The enumeration used to return such a slice silently as if it were
  // the whole answer set; it must be flagged.
  SymbolTable s;
  Database db(&s);
  for (int i = 0; i < 21; ++i) {
    ASSERT_TRUE(db.AddRow("g", {"v" + std::to_string(i), "k"}).ok());
  }
  auto prog = ParseProgram("first(V) :- g[2](V, K, 0).", &s);
  ASSERT_TRUE(prog.ok());
  auto answers = EnumerateAnswers(*prog, db, "first");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_FALSE(answers->exhaustive);
  // Only the rank-0 permutation of the saturated group was explored.
  EXPECT_EQ(answers->assignments_tried, 1u);
  EXPECT_EQ(answers->answers.size(), 1u);
}

TEST(CoverageGaps, EnumeratorBudgetExceeded) {
  SymbolTable s;
  Database db(&s);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.AddRow("item", {"x" + std::to_string(i)}).ok());
  }
  auto prog = ParseProgram("ord(X, I) :- item[](X, I).", &s);
  ASSERT_TRUE(prog.ok());
  EnumerateOptions options;
  options.max_assignments = 10;  // 6! = 720 assignments exist
  auto answers = EnumerateAnswers(*prog, db, "ord", options);
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(CoverageGaps, ChoiceEnumerationBudgetExceeded) {
  SymbolTable s;
  Database db(&s);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.AddRow("emp", {"e" + std::to_string(i), "d"}).ok());
  }
  auto prog = ParseProgram(
      "one(N) :- emp(N, D), choice((D), (N)).", &s);
  ASSERT_TRUE(prog.ok());
  auto answers = EnumerateChoiceAnswers(*prog, db, "one", /*max_models=*/3);
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(CoverageGaps, IdAtomOverIdbPredicate) {
  // The base of an ID-literal can itself be derived; stratification
  // sequences the materialization after the defining stratum.
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine.AddRow("edge", {"a", "c"}).ok());
  Status st = engine.LoadProgramText(
      "reach(X, Y) :- edge(X, Y)."
      "reach(X, Z) :- reach(X, Y), edge(Y, Z)."
      "witness(X, Y) :- reach[1](X, Y, 0).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto w = engine.Query("witness");
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  // One witness target per source: sources are a and b.
  EXPECT_EQ((*w)->size(), 2u);
}

TEST(CoverageGaps, TwoIdAtomsSameBaseDifferentGroupsInOneClause) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("emp", {"ann", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"bob", "sales"}).ok());
  ASSERT_TRUE(engine.AddRow("emp", {"cal", "dev"}).ok());
  // Is the per-department representative also the global representative?
  Status st = engine.LoadProgramText(
      "both(N) :- emp[2](N, D, 0), emp[](N, D, 0).");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto r = engine.Query("both");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Exactly one global rep exists; it is also a department rep under
  // the canonical assignment (first tuple of its group).
  EXPECT_LE((*r)->size(), 1u);
}

TEST(CoverageGaps, FactOnlyProgram) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText("p(a). p(b). q(a, 1).").ok());
  auto p = engine.Query("p");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->size(), 2u);
  auto verified = engine.VerifyModel();
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);
}

TEST(CoverageGaps, EmptyProgramText) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.LoadProgramText("").ok());
  EXPECT_TRUE(engine.Run().ok());
}

}  // namespace
}  // namespace idlog
