// Kill-anywhere recovery: a session crashed at any WAL byte boundary or
// any injected failure site must recover — base snapshot + committed
// log tail + re-applied script suffix — to a state equivalent to the
// uninterrupted run: identical answers, identical idlog-dbstats-v1
// JSON, identical WHY proof trees, and (when no checkpoint intervenes)
// a byte-identical WAL. Plus the recovery edge cases: empty WAL, torn
// first record, missing partner files, foreign snapshots, program-hash
// mismatches and double recovery.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/idlog_engine.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::Dump;
using testing_util::T;

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("idlog_wal_recovery_test_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

constexpr const char* kTcProgram =
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Z) :- edge(X, Y), path(Y, Z).\n";

void SeedEdb(IdlogEngine* engine) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    ->AddRow("edge", {"a" + std::to_string(i),
                                      "a" + std::to_string(i + 1)})
                    .ok());
  }
}

/// The scripted update session: three transactions (insert / two-op
/// insert / retract) with an optional checkpoint after the first. The
/// first `skip` transactions are assumed durable (recovered) and are
/// not re-applied; a checkpoint inside the skipped prefix is skipped
/// with it (compaction has no logical effect).
Status DriveSession(IdlogEngine* engine, uint64_t skip, bool checkpoint) {
  uint64_t done = 0;
  SymbolTable* symbols = &engine->symbols();
  // txn 1: insert edge(z, a0)
  if (done++ >= skip) {
    IDLOG_RETURN_NOT_OK(engine->Begin());
    IDLOG_RETURN_NOT_OK(engine->Insert("edge", T(symbols, {"z", "a0"})));
    IDLOG_RETURN_NOT_OK(engine->Commit());
  }
  if (checkpoint && done > skip) {
    IDLOG_RETURN_NOT_OK(engine->WalCheckpoint());
  }
  // txn 2: insert edge(a4, w), edge(w, w2)
  if (done++ >= skip) {
    IDLOG_RETURN_NOT_OK(engine->Begin());
    IDLOG_RETURN_NOT_OK(engine->Insert("edge", T(symbols, {"a4", "w"})));
    IDLOG_RETURN_NOT_OK(engine->Insert("edge", T(symbols, {"w", "w2"})));
    IDLOG_RETURN_NOT_OK(engine->Commit());
  }
  // txn 3: retract edge(a1, a2) — exercises the full-recompute path.
  if (done++ >= skip) {
    IDLOG_RETURN_NOT_OK(engine->Begin());
    IDLOG_RETURN_NOT_OK(engine->Retract("edge", T(symbols, {"a1", "a2"})));
    IDLOG_RETURN_NOT_OK(engine->Commit());
  }
  return Status::OK();
}

constexpr uint64_t kScriptTxns = 3;

/// Everything the equivalence contract compares.
struct Outputs {
  std::string path;
  std::string dbstats;
  std::string why;
};

Outputs Collect(IdlogEngine* engine) {
  Outputs out;
  auto rel = engine->Query("path");
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  if (rel.ok()) out.path = Dump(**rel, engine->symbols());
  out.dbstats = engine->DbStatsJson();
  auto why = engine->Why("path", T(&engine->symbols(), {"z", "a1"}));
  out.why = why.ok() ? *why : why.status().ToString();
  return out;
}

void ExpectEqualOutputs(const Outputs& got, const Outputs& want,
                        const std::string& label) {
  EXPECT_EQ(got.path, want.path) << label;
  EXPECT_EQ(got.dbstats, want.dbstats) << label;
  EXPECT_EQ(got.why, want.why) << label;
  EXPECT_FALSE(got.path.empty()) << label;
}

/// Runs the whole session uninterrupted; optionally hands back the WAL
/// bytes and the base (post-AttachWal) snapshot bytes.
Outputs RunUninterrupted(const std::string& wal_path, int jobs,
                         bool checkpoint, std::string* wal_bytes,
                         std::string* base_snapshot) {
  IdlogEngine engine;
  engine.SetThreads(jobs);
  engine.EnableProvenance(true);
  SeedEdb(&engine);
  EXPECT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  EXPECT_TRUE(engine.AttachWal(wal_path).ok());
  if (base_snapshot != nullptr) {
    *base_snapshot = Slurp(wal_path + ".snap");
  }
  EXPECT_TRUE(DriveSession(&engine, 0, checkpoint).ok());
  if (wal_bytes != nullptr) *wal_bytes = Slurp(wal_path);
  return Collect(&engine);
}

/// Recovers from whatever is on disk at `wal_path`, re-applies the
/// script suffix, and returns the final outputs.
Outputs RecoverAndFinish(const std::string& wal_path, int jobs,
                         bool checkpoint, const std::string& label) {
  IdlogEngine engine;
  engine.SetThreads(jobs);
  engine.EnableProvenance(true);
  Status prep = engine.PrepareRecovery(wal_path);
  EXPECT_TRUE(prep.ok()) << label << ": " << prep.ToString();
  Status load = engine.LoadProgramText(kTcProgram);
  EXPECT_TRUE(load.ok()) << label << ": " << load.ToString();
  Status complete = engine.CompleteRecovery();
  EXPECT_TRUE(complete.ok()) << label << ": " << complete.ToString();
  EXPECT_LE(engine.wal_commits(), kScriptTxns) << label;
  Status drive = DriveSession(&engine, engine.wal_commits(), checkpoint);
  EXPECT_TRUE(drive.ok()) << label << ": " << drive.ToString();
  EXPECT_EQ(engine.wal_commits(), kScriptTxns) << label;
  return Collect(&engine);
}

// ---------------------------------------------------------------------
// The tentpole sweep: kill the session at EVERY byte of the WAL.

void EveryByteSweep(int jobs) {
  ScratchDir reference("ref_j" + std::to_string(jobs));
  std::string ref_wal = reference.Path("s.wal");
  std::string wal_bytes;
  std::string base_snapshot;
  Outputs want = RunUninterrupted(ref_wal, jobs, /*checkpoint=*/false,
                                  &wal_bytes, &base_snapshot);
  ASSERT_GT(wal_bytes.size(), kWalHeaderSize);

  // At --jobs 1 every byte length is swept; at higher job counts the
  // sweep narrows to record boundaries (the same recovery decisions,
  // exercised under the parallel evaluator).
  std::vector<uint64_t> lengths;
  if (jobs == 1) {
    for (uint64_t len = kWalHeaderSize; len <= wal_bytes.size(); ++len) {
      lengths.push_back(len);
    }
  } else {
    auto scan = ScanWal(ref_wal);
    ASSERT_TRUE(scan.ok());
    lengths.push_back(kWalHeaderSize);
    for (const WalRecord& record : scan->records) {
      lengths.push_back(record.offset);
      lengths.push_back(record.offset + 3);  // mid-frame
    }
    lengths.push_back(wal_bytes.size());
  }

  for (uint64_t len : lengths) {
    ScratchDir crashed("crash_j" + std::to_string(jobs) + "_" +
                       std::to_string(len));
    std::string wal_path = crashed.Path("s.wal");
    Spit(wal_path, wal_bytes.substr(0, len));
    Spit(wal_path + ".snap", base_snapshot);
    std::string label =
        "jobs " + std::to_string(jobs) + ", kill at byte " +
        std::to_string(len);
    Outputs got = RecoverAndFinish(wal_path, jobs, /*checkpoint=*/false,
                                   label);
    ExpectEqualOutputs(got, want, label);
    // With no checkpoint in the script, the recovered-and-finished WAL
    // is byte-identical to the uninterrupted one: replay preserved txn
    // ids and the format carries no timestamps.
    EXPECT_EQ(Slurp(wal_path), wal_bytes) << label;
  }
}

TEST(WalRecovery, EveryByteKillRecoversEquivalently_Jobs1) {
  EveryByteSweep(1);
}

TEST(WalRecovery, RecordBoundaryKillsRecoverEquivalently_Jobs4) {
  EveryByteSweep(4);
}

// ---------------------------------------------------------------------
// Failure-site sweep: crash the session at every WAL failpoint site and
// every occurrence of it, then recover from whatever reached disk.

TEST(WalRecovery, EveryWalFailpointSiteRecoversEquivalently) {
  ScratchDir reference("fp_ref");
  Outputs want = RunUninterrupted(reference.Path("s.wal"), 1,
                                  /*checkpoint=*/true, nullptr, nullptr);

  const std::vector<std::string> sites = {
      "wal.append", "wal.commit", "wal.fsync", "wal.rotate",
      "store.write.rename"};
  for (const std::string& site : sites) {
    for (int occurrence = 1; occurrence <= 16; ++occurrence) {
      ScratchDir crashed("fp_" + site + "_" + std::to_string(occurrence));
      std::string wal_path = crashed.Path("s.wal");
      std::string label = site + ":" + std::to_string(occurrence);

      Failpoints::Instance().Reset();
      ASSERT_TRUE(Failpoints::Instance()
                      .ArmFromSpec(site + ":" +
                                   std::to_string(occurrence))
                      .ok());
      bool failed = false;
      {
        IdlogEngine session;
        session.SetThreads(1);
        session.EnableProvenance(true);
        SeedEdb(&session);
        ASSERT_TRUE(session.LoadProgramText(kTcProgram).ok());
        Status st = session.AttachWal(wal_path);
        if (st.ok()) st = DriveSession(&session, 0, /*checkpoint=*/true);
        failed = !st.ok();
      }
      Failpoints::Instance().Reset();
      if (!failed) break;  // The site fires fewer times than that.

      // Whatever the crash left behind — possibly nothing — must
      // recover to the uninterrupted state.
      IdlogEngine engine;
      engine.SetThreads(1);
      engine.EnableProvenance(true);
      Status prep = engine.PrepareRecovery(wal_path);
      ASSERT_TRUE(prep.ok()) << label << ": " << prep.ToString();
      // The crash may predate the base snapshot (AttachWal itself
      // failed); the operator re-seeds the EDB. When the snapshot WAS
      // adopted these AddRows are duplicate-insert no-ops.
      SeedEdb(&engine);
      ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok()) << label;
      ASSERT_TRUE(engine.CompleteRecovery().ok()) << label;
      ASSERT_TRUE(
          DriveSession(&engine, engine.wal_commits(), /*checkpoint=*/true)
              .ok())
          << label;
      ExpectEqualOutputs(Collect(&engine), want, label);
    }
  }
}

// ---------------------------------------------------------------------
// Edge cases.

TEST(WalRecovery, EmptyWalRecoversTheBaseState) {
  ScratchDir scratch("empty");
  std::string wal_path = scratch.Path("s.wal");
  IdlogEngine session;
  session.EnableProvenance(true);
  SeedEdb(&session);
  ASSERT_TRUE(session.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(session.AttachWal(wal_path).ok());
  Outputs want = Collect(&session);

  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.CompleteRecovery().ok());
  EXPECT_EQ(engine.wal_commits(), 0u);
  EXPECT_EQ(engine.wal_commits_replayed(), 0u);
  ExpectEqualOutputs(Collect(&engine), want, "empty WAL");
}

TEST(WalRecovery, TornFirstRecordReplaysNothing) {
  ScratchDir scratch("torn_first");
  std::string wal_path = scratch.Path("s.wal");
  std::string wal_bytes;
  std::string base_snapshot;
  Outputs want = RunUninterrupted(wal_path, 1, /*checkpoint=*/false,
                                  &wal_bytes, &base_snapshot);

  // Garbage where the first record should be: the committed prefix is
  // empty, recovery starts from the base snapshot and re-applies all.
  Spit(wal_path, wal_bytes.substr(0, kWalHeaderSize) +
                     std::string(13, '\x5a'));
  Spit(wal_path + ".snap", base_snapshot);
  Outputs got =
      RecoverAndFinish(wal_path, 1, /*checkpoint=*/false, "torn first");
  ExpectEqualOutputs(got, want, "torn first");
  EXPECT_EQ(Slurp(wal_path), wal_bytes);
}

TEST(WalRecovery, DoubleRecoveryIsIdempotent) {
  ScratchDir scratch("double");
  std::string wal_path = scratch.Path("s.wal");
  std::string wal_bytes;
  std::string base_snapshot;
  Outputs want = RunUninterrupted(wal_path, 1, /*checkpoint=*/false,
                                  &wal_bytes, &base_snapshot);

  // Crash mid-txn-3, recover, and crash again immediately: the second
  // recovery sees the first one's truncated-and-replayed log and lands
  // in the same state.
  Spit(wal_path, wal_bytes.substr(0, wal_bytes.size() - 7));
  Spit(wal_path + ".snap", base_snapshot);
  uint64_t first_commits = 0;
  {
    IdlogEngine first;
    first.EnableProvenance(true);
    ASSERT_TRUE(first.PrepareRecovery(wal_path).ok());
    ASSERT_TRUE(first.LoadProgramText(kTcProgram).ok());
    ASSERT_TRUE(first.CompleteRecovery().ok());
    first_commits = first.wal_commits();
    EXPECT_EQ(first_commits, 2u);  // txn 3's tail was torn off
  }
  IdlogEngine second;
  second.EnableProvenance(true);
  ASSERT_TRUE(second.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(second.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(second.CompleteRecovery().ok());
  EXPECT_EQ(second.wal_commits(), first_commits);
  EXPECT_EQ(second.wal_commits_replayed(), first_commits);
  ASSERT_TRUE(
      DriveSession(&second, second.wal_commits(), /*checkpoint=*/false)
          .ok());
  ExpectEqualOutputs(Collect(&second), want, "double recovery");
  EXPECT_EQ(Slurp(wal_path), wal_bytes);
}

TEST(WalRecovery, ColdStartDegradesToAttach) {
  ScratchDir scratch("cold");
  std::string wal_path = scratch.Path("s.wal");
  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
  SeedEdb(&engine);
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.CompleteRecovery().ok());
  EXPECT_TRUE(engine.wal_attached());
  EXPECT_EQ(engine.wal_commits(), 0u);
  ASSERT_TRUE(DriveSession(&engine, 0, /*checkpoint=*/false).ok());
  EXPECT_EQ(engine.wal_commits(), kScriptTxns);
}

TEST(WalRecovery, WalWithoutSnapshotIsRefused) {
  ScratchDir scratch("no_snap");
  std::string wal_path = scratch.Path("s.wal");
  RunUninterrupted(wal_path, 1, /*checkpoint=*/false, nullptr, nullptr);
  fs::remove(wal_path + ".snap");

  IdlogEngine engine;
  Status st = engine.PrepareRecovery(wal_path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no base snapshot"), std::string::npos);
}

TEST(WalRecovery, SnapshotWithoutWalRecreatesTheLog) {
  ScratchDir scratch("no_wal");
  std::string wal_path = scratch.Path("s.wal");
  std::string base_snapshot;
  Outputs want = RunUninterrupted(wal_path, 1, /*checkpoint=*/false,
                                  nullptr, &base_snapshot);
  // Simulate a crash between the base-snapshot write and the log
  // creation inside AttachWal: only the snapshot exists.
  fs::remove(wal_path);
  Spit(wal_path + ".snap", base_snapshot);

  Outputs got = RecoverAndFinish(wal_path, 1, /*checkpoint=*/false,
                                 "snapshot without WAL");
  ExpectEqualOutputs(got, want, "snapshot without WAL");
}

TEST(WalRecovery, NonSessionSnapshotIsRefused) {
  ScratchDir scratch("foreign_snap");
  std::string wal_path = scratch.Path("s.wal");
  IdlogEngine source;
  SeedEdb(&source);
  ASSERT_TRUE(source.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(source.Run().ok());
  ASSERT_TRUE(source.SaveCheckpoint(wal_path + ".snap").ok());

  IdlogEngine engine;
  Status st = engine.PrepareRecovery(wal_path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no WAL position"), std::string::npos);
}

TEST(WalRecovery, ProgramHashMismatchIsPrecise) {
  ScratchDir scratch("hash");
  std::string wal_path = scratch.Path("s.wal");
  RunUninterrupted(wal_path, 1, /*checkpoint=*/false, nullptr, nullptr);

  // Loading a different program against the session snapshot trips the
  // snapshot's own hash guard at load time.
  {
    IdlogEngine engine;
    ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
    Status st =
        engine.LoadProgramText("other(X, Y) :- edge(X, Y).\n");
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("hash mismatch"), std::string::npos);
  }

  // A WAL written under a different program than the snapshot's is the
  // deeper corruption; CompleteRecovery names it precisely.
  Spit(wal_path, SerializeWalHeader(/*epoch=*/1, /*program_hash=*/999));
  IdlogEngine engine;
  ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  Status st = engine.CompleteRecovery();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("different program (hash mismatch)"),
            std::string::npos);
}

TEST(WalRecovery, UnrelatedEpochIsRefused) {
  ScratchDir scratch("epoch");
  std::string wal_path = scratch.Path("s.wal");
  RunUninterrupted(wal_path, 1, /*checkpoint=*/false, nullptr, nullptr);

  // Same program, but an epoch that neither matches the snapshot nor
  // continues it: files from different sessions.
  auto scan = ScanWal(wal_path);
  ASSERT_TRUE(scan.ok());
  Spit(wal_path, SerializeWalHeader(/*epoch=*/7, scan->program_hash));
  IdlogEngine engine;
  ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  Status st = engine.CompleteRecovery();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("different sessions"), std::string::npos);
}

TEST(WalRecovery, RecoveryNeedsAFreshEngine) {
  ScratchDir scratch("fresh");
  std::string wal_path = scratch.Path("s.wal");
  RunUninterrupted(wal_path, 1, /*checkpoint=*/false, nullptr, nullptr);

  IdlogEngine dirty;
  ASSERT_TRUE(dirty.AddRow("edge", {"q", "r"}).ok());
  Status st = dirty.PrepareRecovery(wal_path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fresh engine"), std::string::npos);
}

TEST(WalRecovery, GroupCommitCheckpointCoversOnlyDurableBytes) {
  // With group commit > 1 the append buffer can hold fsync-pending
  // frames; a checkpoint must flush them before recording its covered
  // offset, or the snapshot points past the on-disk log and a crash
  // before the CHECKPOINT-REF lands leaves recovery replaying from
  // beyond the file.
  ScratchDir scratch("group_ckpt");
  std::string wal_path = scratch.Path("s.wal");
  IdlogEngine::WalOptions opts;
  opts.group_commit_every = 8;

  Failpoints::Instance().Reset();
  {
    IdlogEngine session;
    session.EnableProvenance(true);
    SeedEdb(&session);
    ASSERT_TRUE(session.LoadProgramText(kTcProgram).ok());
    ASSERT_TRUE(session.AttachWal(wal_path, opts).ok());
    ASSERT_TRUE(session.Begin().ok());
    ASSERT_TRUE(
        session.Insert("edge", T(&session.symbols(), {"z", "a0"})).ok());
    ASSERT_TRUE(session.Commit().ok());  // 1 of 8: stays buffered

    // Crash the checkpoint after its snapshot is written: the next
    // wal.append from here is the CHECKPOINT-REF.
    ASSERT_TRUE(Failpoints::Instance().ArmFromSpec("wal.append:1").ok());
    EXPECT_FALSE(session.WalCheckpoint().ok());
    Failpoints::Instance().Reset();

    auto snap = LoadSnapshotFile(wal_path + ".snap");
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    ASSERT_TRUE(snap->wal_pos.present);
    auto scan = ScanWal(wal_path);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_EQ(snap->wal_pos.epoch, scan->epoch);
    // The regression: the covered offset never exceeds the durable
    // committed prefix.
    EXPECT_LE(snap->wal_pos.offset, scan->committed_length);
  }

  ScratchDir reference("group_ckpt_ref");
  Outputs want = RunUninterrupted(reference.Path("s.wal"), 1,
                                  /*checkpoint=*/false, nullptr, nullptr);
  Outputs got = RecoverAndFinish(wal_path, 1, /*checkpoint=*/false,
                                 "group-commit checkpoint crash");
  ExpectEqualOutputs(got, want, "group-commit checkpoint crash");
}

TEST(WalRecovery, SnapshotAheadOfTruncatedLogIsClampedNotSkipped) {
  ScratchDir scratch("clamp");
  std::string wal_path = scratch.Path("s.wal");
  ScratchDir reference("clamp_ref");
  Outputs want = RunUninterrupted(reference.Path("s.wal"), 1,
                                  /*checkpoint=*/false, nullptr, nullptr);

  // Build a same-epoch pair where the snapshot's WAL position points
  // past the log: run txn 1, crash the checkpoint's rotation (snapshot
  // and CHECKPOINT-REF durable, epoch bump lost), then truncate the
  // log to its bare header — as if the device lost the flushed tail
  // behind the snapshot's back.
  Failpoints::Instance().Reset();
  {
    IdlogEngine session;
    session.EnableProvenance(true);
    SeedEdb(&session);
    ASSERT_TRUE(session.LoadProgramText(kTcProgram).ok());
    ASSERT_TRUE(session.AttachWal(wal_path).ok());
    ASSERT_TRUE(session.Begin().ok());
    ASSERT_TRUE(
        session.Insert("edge", T(&session.symbols(), {"z", "a0"})).ok());
    ASSERT_TRUE(session.Commit().ok());
    ASSERT_TRUE(Failpoints::Instance().ArmFromSpec("wal.rotate:1").ok());
    EXPECT_FALSE(session.WalCheckpoint().ok());
    Failpoints::Instance().Reset();
  }
  auto stale = LoadSnapshotFile(wal_path + ".snap");
  ASSERT_TRUE(stale.ok());
  ASSERT_GT(stale->wal_pos.offset, kWalHeaderSize);
  Spit(wal_path, Slurp(wal_path).substr(0, kWalHeaderSize));

  // First recovery: the snapshot covers commit 1 but points past the
  // truncated log. Recovery clamps (the snapshot is self-contained, so
  // nothing is lost) and rewrites the snapshot's WAL position so later
  // recoveries agree with the truncated file.
  {
    IdlogEngine engine;
    engine.EnableProvenance(true);
    ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
    ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
    ASSERT_TRUE(engine.CompleteRecovery().ok());
    EXPECT_EQ(engine.wal_commits(), 1u);
    ASSERT_TRUE(
        DriveSession(&engine, engine.wal_commits(), /*checkpoint=*/false)
            .ok());
    EXPECT_EQ(engine.wal_commits(), kScriptTxns);
  }
  auto rewritten = LoadSnapshotFile(wal_path + ".snap");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->wal_pos.offset, kWalHeaderSize);

  // Second recovery: txns 2 and 3 live at offsets below the stale
  // snapshot position; without the clamp they would be silently
  // skipped here and the commits durably lost.
  IdlogEngine second;
  second.EnableProvenance(true);
  ASSERT_TRUE(second.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(second.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(second.CompleteRecovery().ok());
  EXPECT_EQ(second.wal_commits(), kScriptTxns);
  EXPECT_EQ(second.wal_commits_replayed(), kScriptTxns - 1);
  ExpectEqualOutputs(Collect(&second), want, "clamped recovery");
}

TEST(WalRecovery, CheckpointedSessionRecoversAcrossTheRotation) {
  // Kill after the checkpoint: the snapshot is the checkpoint's, the
  // WAL is the rotated (epoch 2) log holding txns 2 and 3.
  ScratchDir scratch("rotation");
  std::string wal_path = scratch.Path("s.wal");
  Outputs want = RunUninterrupted(wal_path, 1, /*checkpoint=*/true,
                                  nullptr, nullptr);

  auto snap = LoadSnapshotFile(wal_path + ".snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->wal_pos.commits, 1u);
  auto scan = ScanWal(wal_path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->epoch, 2u);

  IdlogEngine engine;
  engine.EnableProvenance(true);
  ASSERT_TRUE(engine.PrepareRecovery(wal_path).ok());
  ASSERT_TRUE(engine.LoadProgramText(kTcProgram).ok());
  ASSERT_TRUE(engine.CompleteRecovery().ok());
  EXPECT_EQ(engine.wal_commits(), kScriptTxns);
  EXPECT_EQ(engine.wal_commits_replayed(), kScriptTxns - 1);
  ExpectEqualOutputs(Collect(&engine), want, "post-rotation recovery");
}

}  // namespace
}  // namespace idlog
