// Crash-safe flight recorder: the disarmed fast path must be a no-op,
// ring wraparound must deterministically keep the newest events in seq
// order, a governor trip with no trace sink must still leave a
// non-empty black box, a failure Status out of Run() must dump to the
// engine's configured path, and recording must compose with
// checkpoint/resume.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/idlog_engine.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "test_util.h"

namespace idlog {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("idlog_flight_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

/// The recorder is process-global; every test arms it afresh and
/// disarms on exit so later tests (and other suites) see it off.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FlightRecorder::Instance().Disarm();
    Failpoints::Instance().Reset();
  }
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Occurrences of `"kind":"<kind>"` in a dump.
size_t CountKind(const std::string& json, const std::string& kind) {
  const std::string needle = "\"kind\":\"" + kind + "\"";
  size_t n = 0;
  for (size_t at = json.find(needle); at != std::string::npos;
       at = json.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// --------------------------------------------------------------------
// Ring mechanics.

TEST_F(FlightRecorderTest, DisarmedRecordIsANoOp) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Disarm();
  ASSERT_FALSE(FlightRecorder::Enabled());
  FlightRecorder::Record(FlightEventKind::kRunStart, "ignored", 1, 2, 3);
  rec.Arm(16);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.retained(), 0u);
}

TEST_F(FlightRecorderTest, ArmDiscardsPriorEventsAndClampsCapacity) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Arm(16);
  FlightRecorder::Record(FlightEventKind::kRunStart, "old");
  EXPECT_EQ(rec.total_recorded(), 1u);
  rec.Arm(1);  // below the minimum: clamps to 16
  EXPECT_EQ(rec.capacity_per_thread(), 16u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.ToJson().find("old"), std::string::npos);
}

TEST_F(FlightRecorderTest, WraparoundKeepsNewestInSeqOrder) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Arm(16);
  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i) {
    FlightRecorder::Record(FlightEventKind::kRoundStart, "wrap", i);
  }
  EXPECT_EQ(rec.total_recorded(), static_cast<uint64_t>(kEvents));
  EXPECT_EQ(rec.retained(), 16u);
  std::string json = rec.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"schema\":\"idlog-flight-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"retained\":16"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":984"), std::string::npos);
  // Exactly the last 16 payloads survive, in ascending seq order: the
  // single-thread wraparound is fully deterministic.
  for (int i = kEvents - 16; i < kEvents; ++i) {
    EXPECT_NE(json.find("\"a\":" + std::to_string(i)), std::string::npos)
        << "missing event " << i;
  }
  EXPECT_EQ(json.find("\"a\":" + std::to_string(kEvents - 17) + ","),
            std::string::npos);
  size_t prev = 0;
  size_t count = 0;
  for (size_t at = json.find("\"seq\":"); at != std::string::npos;
       at = json.find("\"seq\":", at + 1)) {
    size_t seq = std::stoull(json.substr(at + 6));
    if (count > 0) EXPECT_GT(seq, prev);
    prev = seq;
    ++count;
  }
  EXPECT_EQ(count, 16u);
}

TEST_F(FlightRecorderTest, LabelsAreTruncatedNotOverrun) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Arm(16);
  std::string longlabel(100, 'x');
  FlightRecorder::Record(FlightEventKind::kIndexBuild, longlabel.c_str());
  std::string json = rec.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok());
  EXPECT_EQ(json.find(longlabel), std::string::npos);
  EXPECT_NE(json.find(std::string(22, 'x')), std::string::npos);
}

// --------------------------------------------------------------------
// Engine integration: a run leaves a narrative in the rings.

TEST_F(FlightRecorderTest, RunRecordsRoundsAndRunBoundaries) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Arm(256);
  IdlogEngine engine;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.AddRow("e", {"n" + std::to_string(i),
                                    "n" + std::to_string(i + 1)})
                    .ok());
  }
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                     "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  std::string json = rec.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok());
  EXPECT_EQ(CountKind(json, "run-start"), 1u);
  EXPECT_EQ(CountKind(json, "run-end"), 1u);
  EXPECT_GT(CountKind(json, "round-start"), 1u);
  EXPECT_EQ(CountKind(json, "round-start"), CountKind(json, "round-commit"));
  EXPECT_GT(CountKind(json, "index-build"), 0u);
}

// A governor trip with NO trace sink installed still produces a
// non-empty flight dump carrying the trip event — the acceptance
// criterion that makes the recorder a true black box.
TEST_F(FlightRecorderTest, GovernorTripWithoutTraceSinkLeavesDump) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Arm(256);
  ScratchDir dir("trip");
  const std::string dump = dir.Path("flight.json");
  IdlogEngine engine;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.AddRow("e", {"n" + std::to_string(i),
                                    "n" + std::to_string(i + 1)})
                    .ok());
  }
  EvalLimits limits;
  limits.max_tuples = 25;
  engine.SetLimits(limits);
  engine.SetFlightRecorderDump(dump);
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                     "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  Status st = engine.Run();
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  ASSERT_TRUE(fs::exists(dump));
  std::string json = ReadWholeFile(dump);
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_EQ(CountKind(json, "trip"), 1u);
  EXPECT_NE(json.find("\"label\":\"tuples\""), std::string::npos) << json;
  EXPECT_GT(CountKind(json, "round-start"), 0u);
}

// The same via partial-results mode: Run() returns OK but the trip is
// latched, and the dump still happens on the failure path inside Run.
TEST_F(FlightRecorderTest, PartialResultsTripStillDumps) {
  FlightRecorder::Instance().Arm(256);
  ScratchDir dir("partial");
  const std::string dump = dir.Path("flight.json");
  IdlogEngine engine;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.AddRow("e", {"n" + std::to_string(i),
                                    "n" + std::to_string(i + 1)})
                    .ok());
  }
  EvalLimits limits;
  limits.max_tuples = 25;
  engine.SetLimits(limits);
  engine.SetPartialResults(true);
  engine.SetFlightRecorderDump(dump);
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                     "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_FALSE(engine.last_trip().ok());
  ASSERT_TRUE(fs::exists(dump));
  EXPECT_EQ(CountKind(ReadWholeFile(dump), "trip"), 1u);
}

// Deterministic fault injection: an armed failpoint that fails the run
// leaves both its hit breadcrumb and a dump at the configured path.
TEST_F(FlightRecorderTest, FailpointFailureDumpsWithHitEvent) {
  FlightRecorder::Instance().Arm(256);
  ASSERT_TRUE(Failpoints::Instance()
                  .ArmFromSpec("eval.emit.insert:3")
                  .ok());
  ScratchDir dir("failpoint");
  const std::string dump = dir.Path("flight.json");
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("e", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddRow("e", {"b", "c"}).ok());
  engine.SetFlightRecorderDump(dump);
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                     "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  Status st = engine.Run();
  ASSERT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  ASSERT_TRUE(fs::exists(dump));
  std::string json = ReadWholeFile(dump);
  ASSERT_TRUE(ValidateJson(json).ok());
  EXPECT_GE(CountKind(json, "failpoint-hit"), 3u);
  EXPECT_NE(json.find("\"label\":\"eval.emit.insert\""), std::string::npos);
  EXPECT_EQ(CountKind(json, "run-end"), 1u);
  EXPECT_NE(json.find("\"label\":\"failure\""), std::string::npos);
}

// Checkpoint/resume composition: the failed first run dumps; the
// resumed run records its own narrative — checkpoint sections included
// — and completes with the right answers.
TEST_F(FlightRecorderTest, ComposesWithCheckpointResume) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Arm(512);
  ScratchDir dir("resume");
  const std::string snap = dir.Path("ckpt.snap");
  const std::string dump = dir.Path("flight.json");
  const std::string program =
      "p(X, Y) :- e(X, Y)."
      "p(X, Z) :- p(X, Y), e(Y, Z).";

  {
    IdlogEngine tripper;
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(tripper.AddRow("e", {"n" + std::to_string(i),
                                       "n" + std::to_string(i + 1)})
                      .ok());
    }
    EvalLimits limits;
    limits.max_iterations = 3;
    tripper.SetLimits(limits);
    tripper.SetCheckpoint(snap);
    tripper.SetFlightRecorderDump(dump);
    ASSERT_TRUE(tripper.LoadProgramText(program).ok());
    Status st = tripper.Run();
    ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
    ASSERT_TRUE(fs::exists(dump));
    std::string json = ReadWholeFile(dump);
    EXPECT_EQ(CountKind(json, "trip"), 1u);
    EXPECT_GT(CountKind(json, "checkpoint-section"), 0u) << json;
  }

  rec.Arm(512);  // fresh black box for the resumed run
  IdlogEngine resumed;
  ASSERT_TRUE(resumed.ResumeFromCheckpoint(snap).ok());
  resumed.SetCheckpoint(snap);
  ASSERT_TRUE(resumed.LoadProgramText(program).ok());
  ASSERT_TRUE(resumed.Run().ok());
  auto rel = resumed.Query("p");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 20u * 21u / 2u);
  std::string json = rec.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok());
  EXPECT_EQ(CountKind(json, "run-start"), 1u);
  EXPECT_NE(json.find("\"label\":\"ok\""), std::string::npos);
  // The completed-model snapshot written at the end of the resumed run
  // serializes its sections through the same breadcrumb site.
  EXPECT_GT(CountKind(json, "checkpoint-section"), 0u);
}

// Memory milestones: a derivation-heavy run crossing 1 MiB of charges
// leaves governor-memory breadcrumbs with doubling thresholds.
TEST_F(FlightRecorderTest, GovernorMemoryMilestones) {
  FlightRecorder::Instance().Arm(1024);
  IdlogEngine engine;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(engine.AddRow("e", {"n" + std::to_string(i),
                                    "n" + std::to_string(i + 1)})
                    .ok());
  }
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                     "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  // 121 nodes -> ~7260 path tuples * 80 bytes ~ 580 KiB: below the
  // first milestone. Widen the graph if this ever crosses; the point
  // here is the *absence* of spurious milestones on small runs.
  std::string json = FlightRecorder::Instance().ToJson();
  EXPECT_EQ(CountKind(json, "governor-memory"), 0u);

  FlightRecorder::Instance().Arm(1024);
  IdlogEngine big;
  for (int i = 0; i < 260; ++i) {
    ASSERT_TRUE(big.AddRow("e", {"n" + std::to_string(i),
                                 "n" + std::to_string(i + 1)})
                    .ok());
  }
  ASSERT_TRUE(big.LoadProgramText("p(X, Y) :- e(X, Y)."
                                  "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  ASSERT_TRUE(big.Run().ok());
  // ~33930 tuples * 80 bytes ~ 2.7 MiB of charges: crosses 1 MiB and
  // 2 MiB exactly once each.
  json = FlightRecorder::Instance().ToJson();
  EXPECT_EQ(CountKind(json, "governor-memory"), 2u) << json;
  EXPECT_NE(json.find("\"a\":" + std::to_string(1 << 20)),
            std::string::npos);
  EXPECT_NE(json.find("\"a\":" + std::to_string(1 << 21)),
            std::string::npos);
}

}  // namespace
}  // namespace idlog
