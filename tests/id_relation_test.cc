#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "storage/id_relation.h"
#include "storage/tid_assigner.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::T;

// Example 1 of the paper: r = {(a,c), (a,d), (b,c)} grouped by the
// first attribute has sub-relations {(a,c),(a,d)} and {(b,c)}; the two
// ID-relations on {1} assign tids 0/1 within the first group.
TEST(IdRelation, PaperExample1) {
  SymbolTable s;
  Relation r(TypeFromString("00"));
  r.Insert(T(&s, {"a", "c"}));
  r.Insert(T(&s, {"a", "d"}));
  r.Insert(T(&s, {"b", "c"}));

  IdentityTidAssigner identity;
  auto id_rel = BuildIdRelation("r", r, {0}, &identity);
  ASSERT_TRUE(id_rel.ok()) << id_rel.status().ToString();
  EXPECT_EQ(id_rel->size(), 3u);
  EXPECT_TRUE(ValidateIdRelation(r, *id_rel, {0}).ok());

  // (b, c) is alone in its group, so its tid is always 0.
  EXPECT_TRUE(id_rel->Contains(T(&s, {"b", "c", "0"})));
  // The a-group holds tids {0, 1} in some order.
  bool order1 = id_rel->Contains(T(&s, {"a", "c", "0"})) &&
                id_rel->Contains(T(&s, {"a", "d", "1"}));
  bool order2 = id_rel->Contains(T(&s, {"a", "c", "1"})) &&
                id_rel->Contains(T(&s, {"a", "d", "0"}));
  EXPECT_TRUE(order1 || order2);
}

TEST(IdRelation, EmptyGroupSetIsGlobal) {
  SymbolTable s;
  Relation r(TypeFromString("0"));
  for (const char* name : {"a", "b", "c", "d"}) {
    r.Insert(T(&s, {name}));
  }
  IdentityTidAssigner identity;
  auto id_rel = BuildIdRelation("r", r, {}, &identity);
  ASSERT_TRUE(id_rel.ok());
  // One global group: tids are 0..3, a bijection.
  std::set<int64_t> tids;
  for (const Tuple& t : id_rel->tuples()) tids.insert(t.back().number());
  EXPECT_EQ(tids, (std::set<int64_t>{0, 1, 2, 3}));
  EXPECT_TRUE(ValidateIdRelation(r, *id_rel, {}).ok());
}

TEST(IdRelation, EmptyRelation) {
  Relation r(TypeFromString("00"));
  IdentityTidAssigner identity;
  auto id_rel = BuildIdRelation("r", r, {0}, &identity);
  ASSERT_TRUE(id_rel.ok());
  EXPECT_EQ(id_rel->size(), 0u);
  EXPECT_EQ(id_rel->arity(), 3);
}

TEST(IdRelation, OutOfRangeGroupColumn) {
  Relation r(TypeFromString("00"));
  IdentityTidAssigner identity;
  auto bad = BuildIdRelation("r", r, {5}, &identity);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(IdRelation, TidColumnHasSortI) {
  SymbolTable s;
  Relation r(TypeFromString("00"));
  r.Insert(T(&s, {"a", "b"}));
  IdentityTidAssigner identity;
  auto id_rel = BuildIdRelation("r", r, {0}, &identity);
  ASSERT_TRUE(id_rel.ok());
  EXPECT_EQ(TypeToString(id_rel->type()), "001");
}

// Property: for any random assignment, the ID-relation invariant holds
// and projecting the tid away recovers the base relation exactly.
class IdRelationProperty : public ::testing::TestWithParam<int> {};

TEST_P(IdRelationProperty, RandomAssignmentsAreValid) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  SymbolTable s;
  Relation r(TypeFromString("00"));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> groups(1, 5);
  std::uniform_int_distribution<int> members(1, 6);
  int n_groups = groups(rng);
  for (int g = 0; g < n_groups; ++g) {
    int n = members(rng);
    for (int m = 0; m < n; ++m) {
      r.Insert(T(&s, {"m" + std::to_string(g) + "_" + std::to_string(m),
                      "g" + std::to_string(g)}));
    }
  }
  for (const std::vector<int>& group :
       {std::vector<int>{1}, std::vector<int>{0}, std::vector<int>{},
        std::vector<int>{0, 1}}) {
    RandomTidAssigner assigner(seed * 31 + group.size());
    auto id_rel = BuildIdRelation("r", r, group, &assigner);
    ASSERT_TRUE(id_rel.ok());
    EXPECT_TRUE(ValidateIdRelation(r, *id_rel, group).ok())
        << "group size " << group.size() << " seed " << seed;
    // Projection recovers the base.
    Relation projected(r.type());
    for (const Tuple& t : id_rel->tuples()) {
      projected.Insert(Tuple(t.begin(), t.end() - 1));
    }
    EXPECT_TRUE(projected.SetEquals(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdRelationProperty,
                         ::testing::Range(0, 20));

TEST(TidAssigner, IdentityIsCanonical) {
  IdentityTidAssigner identity;
  std::vector<uint32_t> tids;
  Tuple key;
  std::vector<int> group;
  std::string pred = "p";
  GroupContext ctx{pred, group, key};
  identity.AssignGroup(ctx, 4, &tids);
  EXPECT_EQ(tids, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(TidAssigner, RandomIsAPermutationAndSeedRepeatable) {
  Tuple key;
  std::vector<int> group;
  std::string pred = "p";
  GroupContext ctx{pred, group, key};

  RandomTidAssigner a(7);
  RandomTidAssigner b(7);
  std::vector<uint32_t> ta;
  std::vector<uint32_t> tb;
  for (int round = 0; round < 5; ++round) {
    a.AssignGroup(ctx, 6, &ta);
    b.AssignGroup(ctx, 6, &tb);
    EXPECT_EQ(ta, tb) << "same seed must reproduce";
    std::vector<uint32_t> sorted = ta;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
  }
}

TEST(TidAssigner, UnrankPermutationCoversAll) {
  // All 3! = 6 ranks yield distinct permutations of {0,1,2}.
  std::set<std::vector<uint32_t>> perms;
  for (uint64_t rank = 0; rank < 6; ++rank) {
    std::vector<uint32_t> p;
    UnrankPermutation(rank, 3, &p);
    perms.insert(p);
  }
  EXPECT_EQ(perms.size(), 6u);
  std::vector<uint32_t> id;
  UnrankPermutation(0, 3, &id);
  EXPECT_EQ(id, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(TidAssigner, SaturatingFactorial) {
  EXPECT_EQ(SaturatingFactorial(0), 1u);
  EXPECT_EQ(SaturatingFactorial(1), 1u);
  EXPECT_EQ(SaturatingFactorial(5), 120u);
  EXPECT_EQ(SaturatingFactorial(20), 2432902008176640000ull);
  EXPECT_EQ(SaturatingFactorial(21), UINT64_MAX);
  EXPECT_EQ(SaturatingFactorial(100), UINT64_MAX);
}

TEST(TidAssigner, ScriptedRecordsRadicesAndReplays) {
  Tuple key;
  std::vector<int> group;
  std::string pred = "p";
  GroupContext ctx{pred, group, key};

  ScriptedTidAssigner scripted;
  scripted.ResetRadices();
  std::vector<uint32_t> tids;
  scripted.AssignGroup(ctx, 3, &tids);  // beyond script: rank 0
  EXPECT_EQ(tids, (std::vector<uint32_t>{0, 1, 2}));
  ASSERT_EQ(scripted.radices().size(), 1u);
  EXPECT_EQ(scripted.radices()[0], 6u);

  // Replaying rank 1 gives the next permutation deterministically.
  scripted.SetScript({1});
  scripted.ResetRadices();
  scripted.AssignGroup(ctx, 3, &tids);
  std::vector<uint32_t> expected;
  UnrankPermutation(1, 3, &expected);
  EXPECT_EQ(tids, expected);
  EXPECT_TRUE(scripted.radices().empty());
}

}  // namespace
}  // namespace idlog
