#include <gtest/gtest.h>

#include "eval/builtin_eval.h"

namespace idlog {
namespace {

std::vector<std::vector<int64_t>> Solutions(
    BuiltinKind kind, const std::vector<std::optional<int64_t>>& args) {
  std::vector<std::optional<Value>> vals;
  for (const auto& a : args) {
    if (a.has_value()) {
      vals.push_back(Value::Number(*a));
    } else {
      vals.push_back(std::nullopt);
    }
  }
  std::vector<std::vector<int64_t>> out;
  Status st = EnumerateBuiltin(kind, vals, [&](const std::vector<Value>& v) {
    std::vector<int64_t> row;
    for (const Value& x : v) row.push_back(x.number());
    out.push_back(row);
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(BuiltinHolds, Comparisons) {
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kLt,
                           {Value::Number(1), Value::Number(2)}));
  EXPECT_FALSE(BuiltinHolds(BuiltinKind::kLt,
                            {Value::Number(2), Value::Number(2)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kLe,
                           {Value::Number(2), Value::Number(2)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kGt,
                           {Value::Number(3), Value::Number(2)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kGe,
                           {Value::Number(2), Value::Number(2)}));
}

TEST(BuiltinHolds, EqualityAcrossSorts) {
  Value sym = Value::Symbol(0);
  Value num = Value::Number(0);
  EXPECT_FALSE(BuiltinHolds(BuiltinKind::kEq, {sym, num}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kNe, {sym, num}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kEq, {sym, sym}));
}

TEST(BuiltinHolds, ComparingSymbolsIsFalse) {
  // Order comparisons are only defined on sort i.
  Value sym = Value::Symbol(1);
  EXPECT_FALSE(BuiltinHolds(BuiltinKind::kLt, {sym, Value::Number(5)}));
}

TEST(BuiltinHolds, Arithmetic) {
  auto n = [](int64_t v) { return Value::Number(v); };
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kSucc, {n(4), n(5)}));
  EXPECT_FALSE(BuiltinHolds(BuiltinKind::kSucc, {n(5), n(5)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kAdd, {n(2), n(3), n(5)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kSub, {n(5), n(3), n(2)}));
  EXPECT_FALSE(BuiltinHolds(BuiltinKind::kSub, {n(3), n(5), n(-2)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kMul, {n(3), n(4), n(12)}));
  EXPECT_TRUE(BuiltinHolds(BuiltinKind::kDiv, {n(7), n(2), n(3)}));
  EXPECT_FALSE(BuiltinHolds(BuiltinKind::kDiv, {n(7), n(0), n(0)}));
}

TEST(EnumerateBuiltin, SuccForward) {
  EXPECT_EQ(Solutions(BuiltinKind::kSucc, {4, std::nullopt}),
            (std::vector<std::vector<int64_t>>{{4, 5}}));
}

TEST(EnumerateBuiltin, SuccBackward) {
  EXPECT_EQ(Solutions(BuiltinKind::kSucc, {std::nullopt, 5}),
            (std::vector<std::vector<int64_t>>{{4, 5}}));
  // 0 has no predecessor in the naturals.
  EXPECT_TRUE(Solutions(BuiltinKind::kSucc, {std::nullopt, 0}).empty());
}

TEST(EnumerateBuiltin, AddForwardAndSolve) {
  EXPECT_EQ(Solutions(BuiltinKind::kAdd, {2, 3, std::nullopt}),
            (std::vector<std::vector<int64_t>>{{2, 3, 5}}));
  EXPECT_EQ(Solutions(BuiltinKind::kAdd, {2, std::nullopt, 5}),
            (std::vector<std::vector<int64_t>>{{2, 3, 5}}));
  EXPECT_EQ(Solutions(BuiltinKind::kAdd, {std::nullopt, 3, 5}),
            (std::vector<std::vector<int64_t>>{{2, 3, 5}}));
  // Natural arithmetic: no solution when the difference is negative.
  EXPECT_TRUE(Solutions(BuiltinKind::kAdd, {7, std::nullopt, 5}).empty());
}

TEST(EnumerateBuiltin, AddNnbEnumeratesDecompositions) {
  // The paper's nnb case: L + M = 3 has the four solutions.
  auto sols =
      Solutions(BuiltinKind::kAdd, {std::nullopt, std::nullopt, 3});
  EXPECT_EQ(sols, (std::vector<std::vector<int64_t>>{
                      {0, 3, 3}, {1, 2, 3}, {2, 1, 3}, {3, 0, 3}}));
}

TEST(EnumerateBuiltin, SubBnnEnumerates) {
  auto sols =
      Solutions(BuiltinKind::kSub, {2, std::nullopt, std::nullopt});
  EXPECT_EQ(sols, (std::vector<std::vector<int64_t>>{
                      {2, 0, 2}, {2, 1, 1}, {2, 2, 0}}));
}

TEST(EnumerateBuiltin, SubSolvesEachPosition) {
  EXPECT_EQ(Solutions(BuiltinKind::kSub, {5, 2, std::nullopt}),
            (std::vector<std::vector<int64_t>>{{5, 2, 3}}));
  EXPECT_EQ(Solutions(BuiltinKind::kSub, {5, std::nullopt, 2}),
            (std::vector<std::vector<int64_t>>{{5, 3, 2}}));
  EXPECT_EQ(Solutions(BuiltinKind::kSub, {std::nullopt, 3, 2}),
            (std::vector<std::vector<int64_t>>{{5, 3, 2}}));
  // 2 - 5 has no natural solution.
  EXPECT_TRUE(Solutions(BuiltinKind::kSub, {2, 5, std::nullopt}).empty());
}

TEST(EnumerateBuiltin, MulAndDivForward) {
  EXPECT_EQ(Solutions(BuiltinKind::kMul, {3, 4, std::nullopt}),
            (std::vector<std::vector<int64_t>>{{3, 4, 12}}));
  EXPECT_EQ(Solutions(BuiltinKind::kDiv, {7, 2, std::nullopt}),
            (std::vector<std::vector<int64_t>>{{7, 2, 3}}));
  EXPECT_TRUE(
      Solutions(BuiltinKind::kDiv, {7, 0, std::nullopt}).empty());
}

TEST(EnumerateBuiltin, EqBindsUnboundSide) {
  EXPECT_EQ(Solutions(BuiltinKind::kEq, {7, std::nullopt}),
            (std::vector<std::vector<int64_t>>{{7, 7}}));
  EXPECT_EQ(Solutions(BuiltinKind::kEq, {std::nullopt, 7}),
            (std::vector<std::vector<int64_t>>{{7, 7}}));
  EXPECT_TRUE(Solutions(BuiltinKind::kEq, {7, 8}).empty());
}

TEST(EnumerateBuiltin, FullyBoundActsAsFilter) {
  EXPECT_EQ(Solutions(BuiltinKind::kLt, {1, 2}).size(), 1u);
  EXPECT_TRUE(Solutions(BuiltinKind::kLt, {2, 1}).empty());
  EXPECT_EQ(Solutions(BuiltinKind::kAdd, {2, 2, 4}).size(), 1u);
  EXPECT_TRUE(Solutions(BuiltinKind::kAdd, {2, 2, 5}).empty());
}

TEST(EnumerateBuiltin, UnsafePatternsRejected) {
  std::vector<std::optional<Value>> args = {std::nullopt, std::nullopt};
  Status st =
      EnumerateBuiltin(BuiltinKind::kEq, args, [](const auto&) {});
  EXPECT_EQ(st.code(), StatusCode::kUnsafeProgram);
  std::vector<std::optional<Value>> args3 = {std::nullopt, std::nullopt,
                                             std::nullopt};
  st = EnumerateBuiltin(BuiltinKind::kMul, args3, [](const auto&) {});
  EXPECT_EQ(st.code(), StatusCode::kUnsafeProgram);
}

TEST(EnumerateBuiltin, NonNaturalInputsYieldNothing) {
  // Generation from a symbol or out-of-sort value produces no tuples.
  std::vector<std::optional<Value>> args = {Value::Symbol(3), std::nullopt};
  int count = 0;
  Status st = EnumerateBuiltin(BuiltinKind::kSucc, args,
                               [&](const auto&) { ++count; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace idlog
