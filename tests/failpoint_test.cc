// Fault-injection harness tests: the Failpoints registry semantics, a
// drift check that the central Catalog() matches the sites actually
// planted in src/, and the headline sweep — for EVERY catalogued site,
// injecting a failure into a composite workload (CSV load, snapshot
// resume, checkpointed evaluation, query) must surface one clean Status,
// never crash, and never leave a torn snapshot or stray temp file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/idlog_engine.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_util.h"

namespace idlog {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("idlog_failpoint_test_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  const fs::path& dir() const { return dir_; }

 private:
  fs::path dir_;
};

int TmpFileCount(const fs::path& dir) {
  int n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string().find(".tmp") != std::string::npos) ++n;
  }
  return n;
}

// --------------------------------------------------------------------
// Registry semantics.

class FailpointRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().Reset(); }
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(FailpointRegistryTest, RejectsMalformedSpecs) {
  auto& fp = Failpoints::Instance();
  EXPECT_FALSE(fp.ArmFromSpec("").ok());
  EXPECT_FALSE(fp.ArmFromSpec("csv.load.row").ok());       // no count
  EXPECT_FALSE(fp.ArmFromSpec("csv.load.row:").ok());      // empty count
  EXPECT_FALSE(fp.ArmFromSpec("csv.load.row:abc").ok());   // not a number
  EXPECT_FALSE(fp.ArmFromSpec("csv.load.row:0").ok());     // 1-based
  EXPECT_FALSE(fp.ArmFromSpec("csv.load.row:1:boom").ok()); // bad action

  Status st = fp.ArmFromSpec("no.such.site:1");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unknown failpoint site"), std::string::npos);
  EXPECT_FALSE(Failpoints::AnyArmed());
}

TEST_F(FailpointRegistryTest, NthCountingAndHitCounts) {
  auto& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.ArmFromSpec("storage.relation.insert:3").ok());
  EXPECT_TRUE(Failpoints::AnyArmed());

  SymbolTable symbols;
  Relation rel(RelationType{Sort::kI});
  int failures = 0;
  for (int i = 0; i < 5; ++i) {
    Status st = rel.InsertChecked({Value::Number(i)});
    if (!st.ok()) {
      ++failures;
      EXPECT_EQ(i, 2) << "the third execution must be the failing one";
      EXPECT_NE(st.message().find("storage.relation.insert"),
                std::string::npos);
      EXPECT_NE(st.message().find("execution 3"), std::string::npos);
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(rel.size(), 4u);  // the injected row was rejected
  EXPECT_EQ(fp.HitCount("storage.relation.insert"), 5u);

  fp.Reset();
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_EQ(fp.HitCount("storage.relation.insert"), 0u);
  EXPECT_TRUE(rel.InsertChecked({Value::Number(99)}).ok());
}

TEST_F(FailpointRegistryTest, ThrowActionThrows) {
  auto& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.ArmFromSpec("storage.relation.insert:1:throw").ok());
  Relation rel(RelationType{Sort::kI});
  EXPECT_THROW(rel.InsertChecked({Value::Number(1)}).ok(),
               std::runtime_error);
}

TEST_F(FailpointRegistryTest, RearmingResetsTheCounter) {
  auto& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.ArmFromSpec("storage.relation.insert:2").ok());
  Relation rel(RelationType{Sort::kI});
  EXPECT_TRUE(rel.InsertChecked({Value::Number(1)}).ok());
  EXPECT_FALSE(rel.InsertChecked({Value::Number(2)}).ok());
  ASSERT_TRUE(fp.ArmFromSpec("storage.relation.insert:2").ok());  // re-arm
  EXPECT_TRUE(rel.InsertChecked({Value::Number(3)}).ok());
  EXPECT_FALSE(rel.InsertChecked({Value::Number(4)}).ok());
}

TEST_F(FailpointRegistryTest, CatalogIsSortedAndUnique) {
  const auto& catalog = Failpoints::Catalog();
  ASSERT_FALSE(catalog.empty());
  for (size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1], catalog[i])
        << "catalog must stay sorted and duplicate-free";
  }
}

// --------------------------------------------------------------------
// Catalog drift: every IDLOG_FAILPOINT("...") / OnHit("...") literal in
// src/ must appear in Catalog() and vice versa, so --fail-at can always
// reach every planted site and the catalog never advertises dead ones.

std::set<std::string> PlantedSites() {
  std::set<std::string> sites;
  const std::string root = std::string(IDLOG_SOURCE_ROOT) + "/src";
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") continue;
    // The registry's own files mention sites in comments, not plants.
    if (name == "failpoint.h" || name == "failpoint.cc") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    for (const char* needle : {"IDLOG_FAILPOINT(\"", "OnHit(\""}) {
      const std::string n = needle;
      for (size_t pos = text.find(n); pos != std::string::npos;
           pos = text.find(n, pos + 1)) {
        size_t start = pos + n.size();
        size_t end = text.find('"', start);
        if (end == std::string::npos) break;
        sites.insert(text.substr(start, end - start));
      }
    }
  }
  return sites;
}

TEST(FailpointCatalog, MatchesSitesPlantedInSources) {
  std::set<std::string> planted = PlantedSites();
  ASSERT_FALSE(planted.empty()) << "source scan found no failpoints";
  std::set<std::string> catalog(Failpoints::Catalog().begin(),
                                Failpoints::Catalog().end());
  for (const std::string& site : planted) {
    EXPECT_TRUE(catalog.count(site) > 0)
        << site << " is planted in src/ but missing from Catalog()";
  }
  for (const std::string& site : catalog) {
    EXPECT_TRUE(planted.count(site) > 0)
        << site << " is catalogued but no longer planted anywhere in src/";
  }
}

// --------------------------------------------------------------------
// The sweep: arm each site in turn against a composite workload that
// exercises every subsystem a site lives in. Assertions per site:
//   - the workload actually executes the site (at jobs 1 or jobs 4);
//   - the run that consumed the injection surfaced a non-OK Status
//     carrying the injected message (no crash, no silent success);
//   - the pre-existing snapshot is untouched, any checkpoint the run
//     managed to write still validates, and no temp files leak.

struct WorkloadOutcome {
  bool all_ok = true;
  std::string first_error;
};

void Note(WorkloadOutcome* out, const Status& st) {
  if (!st.ok() && out->all_ok) {
    out->all_ok = false;
    out->first_error = st.ToString();
  }
}

const char* kSweepProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
    "also(X, Y) :- tc(X, Y).\n";

/// A mid-fixpoint snapshot to resume from: a 25-round transitive
/// closure interrupted after 2 rounds.
void MakePrevSnapshot(const std::string& path) {
  IdlogEngine engine;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(engine
                    .AddRow("edge", {"n" + std::to_string(i),
                                     "n" + std::to_string(i + 1)})
                    .ok());
  }
  ASSERT_TRUE(engine.LoadProgramText(kSweepProgram).ok());
  EvalLimits limits;
  limits.max_iterations = 2;
  engine.SetLimits(limits);
  engine.SetPartialResults(true);
  engine.SetCheckpoint(path);
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_FALSE(engine.last_trip().ok()) << "snapshot must be mid-fixpoint";
}

WorkloadOutcome RunCompositeWorkload(const std::string& csv_path,
                                     const std::string& prev_snap,
                                     const std::string& checkpoint,
                                     int jobs) {
  WorkloadOutcome out;
  {
    SymbolTable symbols;
    Database db(&symbols);
    Note(&out, LoadCsvRelation(&db, "rows", csv_path));
  }
  IdlogEngine engine;
  engine.SetThreads(jobs);
  Status resume = engine.ResumeFromCheckpoint(prev_snap);
  Note(&out, resume);
  if (resume.ok()) {
    Status load = engine.LoadProgramText(kSweepProgram);
    Note(&out, load);
    if (load.ok()) {
      engine.SetCheckpoint(checkpoint);
      Note(&out, engine.Run());
      auto rel = engine.Query("tc");
      Note(&out, rel.status());
      // A durable update session — attach, one committed transaction, a
      // recovery scan, and a checkpoint rotation — so every wal.* site
      // is on the sweep's path.
      std::string wal_path = checkpoint + ".wal";
      Status wal = engine.AttachWal(wal_path);
      Note(&out, wal);
      if (wal.ok()) {
        Status txn = engine.Begin();
        if (txn.ok()) {
          txn = engine.Insert(
              "edge", testing_util::T(&engine.symbols(), {"zz", "n0"}));
        }
        if (txn.ok()) txn = engine.Commit();
        Note(&out, txn);
        if (txn.ok()) Note(&out, ScanWal(wal_path).status());
        if (txn.ok()) Note(&out, engine.WalCheckpoint());
      }
    }
  }
  return out;
}

TEST(FailpointSweep, EverySiteFailsCleanlyAndLeavesNoTornState) {
  for (const std::string& site : Failpoints::Catalog()) {
    SCOPED_TRACE(site);
    ScratchDir scratch("sweep_" + site);
    std::string csv_path = scratch.Path("rows.csv");
    {
      std::ofstream csv(csv_path);
      csv << "a,b\nc,d\ne,f\n";
    }
    std::string prev = scratch.Path("prev.snap");
    MakePrevSnapshot(prev);

    Failpoints::Instance().Reset();
    ASSERT_TRUE(Failpoints::Instance().ArmFromSpec(site + ":1").ok());

    WorkloadOutcome serial =
        RunCompositeWorkload(csv_path, prev, scratch.Path("ck1.snap"), 1);
    bool hit_serial = Failpoints::Instance().HitCount(site) > 0;
    WorkloadOutcome parallel;
    bool hit_parallel = false;
    if (!hit_serial) {
      // Sites on the parallel-only path (e.g. exec.round.task) need a
      // threaded run to execute.
      parallel = RunCompositeWorkload(csv_path, prev,
                                      scratch.Path("ck4.snap"), 4);
      hit_parallel = Failpoints::Instance().HitCount(site) > 0;
    }
    Failpoints::Instance().Reset();

    EXPECT_TRUE(hit_serial || hit_parallel)
        << "the sweep workload never executes this site — extend it";
    if (hit_serial) {
      EXPECT_FALSE(serial.all_ok)
          << "injection was consumed but every step reported OK";
      EXPECT_NE(serial.first_error.find("injected failure at failpoint"),
                std::string::npos)
          << serial.first_error;
      EXPECT_NE(serial.first_error.find(site), std::string::npos)
          << serial.first_error;
    } else if (hit_parallel) {
      EXPECT_FALSE(parallel.all_ok)
          << "injection was consumed but every step reported OK";
      EXPECT_NE(parallel.first_error.find(site), std::string::npos)
          << parallel.first_error;
    }

    // No torn state, whatever happened: the input snapshot is pristine,
    // any checkpoint that exists parses and validates, no temp files.
    EXPECT_EQ(TmpFileCount(scratch.dir()), 0);
    EXPECT_TRUE(ValidateSnapshotFile(prev).ok())
        << "the resumed-from snapshot was modified";
    for (const char* ck : {"ck1.snap", "ck4.snap"}) {
      if (fs::exists(scratch.Path(ck))) {
        EXPECT_TRUE(ValidateSnapshotFile(scratch.Path(ck)).ok())
            << ck << " is torn";
      }
    }
  }
}

}  // namespace
}  // namespace idlog
