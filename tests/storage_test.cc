#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::T;

RelationType UU() { return TypeFromString("00"); }

TEST(Relation, InsertDeduplicates) {
  SymbolTable s;
  Relation r(UU());
  EXPECT_TRUE(r.Insert(T(&s, {"a", "b"})));
  EXPECT_FALSE(r.Insert(T(&s, {"a", "b"})));
  EXPECT_TRUE(r.Insert(T(&s, {"a", "c"})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T(&s, {"a", "b"})));
  EXPECT_FALSE(r.Contains(T(&s, {"b", "a"})));
}

TEST(Relation, InsertRejectsWrongArity) {
  SymbolTable s;
  Relation r(UU());
  EXPECT_FALSE(r.Insert(T(&s, {"a"})));
  EXPECT_EQ(r.size(), 0u);
}

TEST(Relation, InsertCheckedValidatesSorts) {
  SymbolTable s;
  Relation r(TypeFromString("01"));
  EXPECT_TRUE(r.InsertChecked(T(&s, {"a", "1"})).ok());
  Status st = r.InsertChecked(T(&s, {"a", "b"}));
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  st = r.InsertChecked(T(&s, {"a"}));
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(Relation, InsertionOrderPreserved) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"z", "z"}));
  r.Insert(T(&s, {"a", "a"}));
  EXPECT_EQ(TupleToString(r.tuples()[0], s), "(z, z)");
  EXPECT_EQ(TupleToString(r.tuples()[1], s), "(a, a)");
  // SortedTuples canonicalizes by value order — interning order for
  // sort-u, so "z" (interned first) precedes "a" here.
  auto sorted = r.SortedTuples();
  EXPECT_EQ(TupleToString(sorted[0], s), "(z, z)");
  EXPECT_EQ(TupleToString(sorted[1], s), "(a, a)");
}

TEST(Relation, SetEqualsIgnoresOrder) {
  SymbolTable s;
  Relation a(UU());
  Relation b(UU());
  a.Insert(T(&s, {"x", "y"}));
  a.Insert(T(&s, {"u", "v"}));
  b.Insert(T(&s, {"u", "v"}));
  b.Insert(T(&s, {"x", "y"}));
  EXPECT_TRUE(a.SetEquals(b));
  b.Insert(T(&s, {"q", "q"}));
  EXPECT_FALSE(a.SetEquals(b));
}

TEST(Relation, VersionAdvancesOnChange) {
  SymbolTable s;
  Relation r(UU());
  uint64_t v0 = r.version();
  r.Insert(T(&s, {"a", "b"}));
  EXPECT_GT(r.version(), v0);
  uint64_t v1 = r.version();
  r.Insert(T(&s, {"a", "b"}));  // duplicate: no change
  EXPECT_EQ(r.version(), v1);
  r.Clear();
  EXPECT_GT(r.version(), v1);
  EXPECT_EQ(r.size(), 0u);
}

TEST(Relation, AssignmentChangesUid) {
  SymbolTable s;
  Relation a(UU());
  Relation b(UU());
  b.Insert(T(&s, {"a", "b"}));
  uint64_t uid = a.uid();
  a = b;
  EXPECT_NE(a.uid(), uid);
  EXPECT_NE(a.uid(), b.uid());
  EXPECT_EQ(a.size(), 1u);
}

TEST(ColumnIndex, LookupByColumnSubset) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  r.Insert(T(&s, {"a", "y"}));
  r.Insert(T(&s, {"b", "x"}));
  ColumnIndex index(&r, {0});
  const auto* rows = index.Lookup(T(&s, {"a"}));
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_EQ(index.Lookup(T(&s, {"zzz"})), nullptr);
}

TEST(ColumnIndex, RefreshSeesNewRows) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  ColumnIndex index(&r, {0});
  r.Insert(T(&s, {"a", "y"}));
  index.Refresh();
  EXPECT_EQ(index.Lookup(T(&s, {"a"}))->size(), 2u);
}

TEST(ColumnIndex, RefreshSurvivesWholesaleReplacement) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  ColumnIndex index(&r, {0});
  Relation other(UU());
  other.Insert(T(&s, {"b", "y"}));
  r = other;  // same pointer, new identity
  index.Refresh();
  EXPECT_EQ(index.Lookup(T(&s, {"a"})), nullptr);
  ASSERT_NE(index.Lookup(T(&s, {"b"})), nullptr);
}

// Regression: Clear() followed by re-inserts that grow the relation
// back to (at least) its old row count used to satisfy the incremental
// Refresh branch — same uid, size >= built_rows — so the index kept its
// pre-Clear buckets and joins read rows that no longer exist. Clear()
// now bumps a clear generation that forces a full rebuild.
TEST(ColumnIndex, RefreshRebuildsAfterClear) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  r.Insert(T(&s, {"b", "y"}));
  ColumnIndex index(&r, {0});
  ASSERT_NE(index.Lookup(T(&s, {"a"})), nullptr);

  r.Clear();
  r.Insert(T(&s, {"c", "x"}));
  r.Insert(T(&s, {"d", "y"}));  // same row count as before the Clear
  index.Refresh();

  EXPECT_EQ(index.Lookup(T(&s, {"a"})), nullptr);
  const auto* rows = index.Lookup(T(&s, {"c"}));
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], 0u);  // row positions restart after the rebuild
}

TEST(ColumnIndex, RefreshAfterClearAndRegrowthBeyondOldSize) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  ColumnIndex index(&r, {0});
  r.Clear();
  r.Insert(T(&s, {"b", "x"}));
  r.Insert(T(&s, {"a", "y"}));  // "a" reappears, at a different row
  index.Refresh();
  const auto* rows = index.Lookup(T(&s, {"a"}));
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], 1u);
}

TEST(IndexCache, FindFreshIsLookupOnly) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  IndexCache cache(&r);
  // Nothing built yet: FindFresh never creates or refreshes.
  EXPECT_EQ(cache.FindFresh({0}), nullptr);
  const ColumnIndex& built = cache.Get({0});
  EXPECT_EQ(cache.FindFresh({0}), &built);
  r.Insert(T(&s, {"b", "y"}));  // stale now
  EXPECT_EQ(cache.FindFresh({0}), nullptr);
  cache.Get({0});  // refreshes
  EXPECT_EQ(cache.FindFresh({0}), &built);
  r.Clear();
  EXPECT_EQ(cache.FindFresh({0}), nullptr);
}

TEST(IndexCache, ReusesIndexes) {
  SymbolTable s;
  Relation r(UU());
  r.Insert(T(&s, {"a", "x"}));
  IndexCache cache(&r);
  const ColumnIndex& i1 = cache.Get({0});
  const ColumnIndex& i2 = cache.Get({0});
  EXPECT_EQ(&i1, &i2);
  const ColumnIndex& on_both = cache.Get({0, 1});
  ASSERT_NE(on_both.Lookup(T(&s, {"a", "x"})), nullptr);
}

TEST(Database, AddTupleInfersType) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddTuple("r", T(&s, {"a", "3"})).ok());
  auto rel = db.Get("r");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(TypeToString((*rel)->type()), "01");
}

TEST(Database, AddRowParsesNumbers) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("r", {"emp1", "42"}).ok());
  const Relation* rel = *db.Get("r");
  EXPECT_TRUE(rel->tuples()[0][0].is_symbol());
  EXPECT_TRUE(rel->tuples()[0][1].is_number());
  EXPECT_EQ(rel->tuples()[0][1].number(), 42);
}

TEST(Database, TypeMismatchRejected) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("r", {"a", "1"}).ok());
  Status st = db.AddRow("r", {"a", "b"});
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(Database, UDomainTracksSymbols) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.AddRow("r", {"a", "7"}).ok());
  ASSERT_TRUE(db.AddRow("q", {"b"}).ok());
  EXPECT_EQ(db.u_domain().size(), 2u);  // a and b; 7 is sort i
  db.AddDomainConstant(s.Intern("lonely"));
  EXPECT_EQ(db.u_domain().size(), 3u);
}

TEST(Database, GetMissingIsNotFound) {
  SymbolTable s;
  Database db(&s);
  EXPECT_EQ(db.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(Database, CreateRelationConflict) {
  SymbolTable s;
  Database db(&s);
  ASSERT_TRUE(db.CreateRelation("r", TypeFromString("00")).ok());
  EXPECT_TRUE(db.CreateRelation("r", TypeFromString("00")).ok());
  EXPECT_EQ(db.CreateRelation("r", TypeFromString("01")).code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace idlog
