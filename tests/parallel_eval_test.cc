// Parallel fixpoint equivalence: `SetThreads(n)` must be an invisible
// go-faster switch. For fixed paper-style programs and a corpus of
// random stratified programs, a 4-thread run must produce byte-identical
// answers, EvalStats, per-rule profiles and trace structure to the
// serial run (timing values aside) — the determinism contract of the
// stratum executor's task-order merge.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/idlog_engine.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "test_util.h"

namespace idlog {
namespace {

using testing_util::Dump;

// --------------------------------------------------------------------
// ThreadPool basics.

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  pool.Run(std::move(tasks));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunIsABarrierAndReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&counter] { ++counter; });
    }
    pool.Run(std::move(tasks));
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, SizeOneRunsOnCaller) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Run({[&seen] { seen = std::this_thread::get_id(); }});
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, EmptyBatchIsANoop) {
  ThreadPool pool(2);
  pool.Run({});
}

// Pins the claim-order invariant Run() documents: every thread takes
// the lowest unclaimed index under the pool mutex, so the observed
// claim sequence is exactly 0, 1, 2, ... regardless of which thread
// claims or how long tasks run. The round executor's abort protocol
// depends on this ordering.
TEST(ThreadPool, ClaimsTasksStrictlyInIndexOrder) {
  ThreadPool pool(4);
  // The observer runs under the pool mutex, so appends are serialized
  // and claim order == append order; the read below happens after the
  // Run() barrier.
  std::vector<size_t> claims;
  pool.SetClaimObserverForTest([&claims](size_t i) {
    claims.push_back(i);
  });
  for (int batch = 0; batch < 3; ++batch) {
    claims.clear();
    std::vector<std::function<void()>> tasks;
    std::atomic<int> sink{0};
    for (int i = 0; i < 100; ++i) {
      // Uneven task durations so completion order scrambles while claim
      // order must not.
      tasks.push_back([&sink, i] {
        for (int spin = 0; spin < (i % 7) * 50; ++spin) ++sink;
      });
    }
    pool.Run(std::move(tasks));
    ASSERT_EQ(claims.size(), 100u);
    for (size_t i = 0; i < claims.size(); ++i) {
      ASSERT_EQ(claims[i], i) << "claim out of order at position " << i;
    }
  }
  pool.SetClaimObserverForTest(nullptr);
}

// Error hardening: a throwing task is contained at the pool boundary —
// it neither terminates the process nor wedges the batch accounting,
// and the pool stays usable for later batches.
TEST(ThreadPool, ThrowingTaskIsContained) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    if (i % 4 == 1) {
      tasks.push_back([] { throw std::runtime_error("task boom"); });
    } else {
      tasks.push_back([&ran] { ++ran; });
    }
  }
  pool.Run(std::move(tasks));
  EXPECT_EQ(ran.load(), 12);
  // The pool must still drain a fresh batch after swallowing throws.
  std::atomic<int> again{0};
  pool.Run({[&again] { ++again; }, [&again] { ++again; }});
  EXPECT_EQ(again.load(), 2);
}

// --------------------------------------------------------------------
// Serial-vs-parallel equivalence harness.

struct RunOutcome {
  std::string answers;          ///< Dump of every query predicate.
  EvalStats stats;
  EvalProfile profile;
  std::vector<std::string> trace;  ///< Events minus timing fields.
  std::string explain_json;     ///< idlog-explain-v1 document.
  std::string why;              ///< WHY text + JSON for sample answers.
};

// Renders the deterministic part of a trace event (everything except
// timestamps and durations).
std::vector<std::string> TraceShape(const TraceSink& sink) {
  std::vector<std::string> shape;
  for (const TraceEvent& ev : sink.events()) {
    std::string line;
    line += ev.phase;
    line += " " + ev.category + "/" + ev.name;
    for (const TraceArg& arg : ev.args) {
      line += " " + arg.key + "=" + arg.value;
    }
    shape.push_back(std::move(line));
  }
  return shape;
}

RunOutcome RunWith(int threads, int partitions,
                   const std::string& program,
                   const std::vector<std::vector<std::string>>& edb,
                   const std::vector<std::string>& queries) {
  IdlogEngine engine;
  for (const auto& row : edb) {
    std::vector<std::string> fields(row.begin() + 1, row.end());
    EXPECT_TRUE(engine.AddRow(row[0], fields).ok());
  }
  engine.SetThreads(threads);
  engine.SetDeltaPartitions(partitions);
  engine.EnableProfiling(true);
  engine.EnableExplain(true);
  engine.EnableProvenance(true);
  TraceSink sink;
  engine.SetTraceSink(&sink);
  Status st = engine.LoadProgramText(program);
  EXPECT_TRUE(st.ok()) << st.ToString();

  RunOutcome out;
  for (const std::string& q : queries) {
    auto rel = engine.Query(q);
    EXPECT_TRUE(rel.ok()) << q << ": " << rel.status().ToString();
    if (rel.ok()) {
      out.answers += q + ":\n" + Dump(**rel, engine.symbols());
      // Proof trees (text and idlog-why-v1 JSON) for a few answers per
      // query: the provenance merge contract says these are pure
      // functions of the model, so they must be byte-identical across
      // thread counts.
      size_t sampled = 0;
      for (const Tuple& t : (*rel)->tuples()) {
        if (++sampled > 3) break;
        auto why_text = engine.Why(q, t);
        EXPECT_TRUE(why_text.ok()) << q << ": "
                                   << why_text.status().ToString();
        if (why_text.ok()) out.why += *why_text;
        auto why_json = engine.WhyJson(q, t);
        EXPECT_TRUE(why_json.ok()) << q << ": "
                                   << why_json.status().ToString();
        if (why_json.ok()) out.why += *why_json + "\n";
      }
    }
  }
  out.stats = engine.stats();
  out.profile = engine.profile();
  out.trace = TraceShape(sink);
  auto doc = engine.ExplainPlanJson(/*analyze=*/true);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (doc.ok()) out.explain_json = *doc;
  return out;
}

void ExpectSameStats(const EvalStats& serial, const EvalStats& parallel) {
  EXPECT_EQ(serial.tuples_considered, parallel.tuples_considered);
  EXPECT_EQ(serial.facts_derived, parallel.facts_derived);
  EXPECT_EQ(serial.facts_inserted, parallel.facts_inserted);
  EXPECT_EQ(serial.rule_firings, parallel.rule_firings);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.strata_evaluated, parallel.strata_evaluated);
  EXPECT_EQ(serial.id_groups_assigned, parallel.id_groups_assigned);
  EXPECT_EQ(serial.id_tuples_materialized,
            parallel.id_tuples_materialized);
  // index_probes is a logical counter: the same joins probe the same
  // keys regardless of --jobs. index_builds and index_cache_misses are
  // NOT compared — they are physical (the serial path builds indexes
  // lazily inside the executor, the parallel coordinator pre-builds
  // them eagerly before the round), so they legitimately differ, like
  // eval_wall_ns.
  EXPECT_EQ(serial.index_probes, parallel.index_probes);
  // Provenance counters are logical: the task-order merge reproduces
  // the serial store node for node.
  EXPECT_EQ(serial.provenance_nodes, parallel.provenance_nodes);
  EXPECT_EQ(serial.provenance_premises, parallel.provenance_premises);
  EXPECT_EQ(serial.provenance_bytes, parallel.provenance_bytes);
}

// Profile columns must sum to the engine totals in both modes — the
// invariant the attribution design guarantees (counters are deltas of
// the same shared stats in serial mode; merged per-task counters in
// parallel mode).
void ExpectProfileSumsToTotals(const RunOutcome& run) {
  uint64_t considered = 0, derived = 0, inserted = 0, firings = 0;
  for (const RuleProfile& rp : run.profile.rules) {
    considered += rp.tuples_considered;
    derived += rp.facts_derived;
    inserted += rp.facts_inserted;
    firings += rp.firings;
  }
  EXPECT_EQ(considered, run.stats.tuples_considered);
  EXPECT_EQ(derived, run.stats.facts_derived);
  EXPECT_EQ(inserted, run.stats.facts_inserted);
  EXPECT_EQ(firings, run.stats.rule_firings);
}

// Full byte-equality between two runs: answers, logical stats, per-rule
// profile columns, trace shape, EXPLAIN ANALYZE JSON (logical counters
// only) and WHY output (proof trees read the merged provenance store,
// which order-tag absorption makes identical to the serial one).
void ExpectSameOutcome(const RunOutcome& serial,
                       const RunOutcome& parallel) {
  EXPECT_EQ(serial.answers, parallel.answers);
  ExpectSameStats(serial.stats, parallel.stats);
  ExpectProfileSumsToTotals(serial);
  ExpectProfileSumsToTotals(parallel);
  ASSERT_EQ(serial.profile.rules.size(), parallel.profile.rules.size());
  for (size_t i = 0; i < serial.profile.rules.size(); ++i) {
    const RuleProfile& s = serial.profile.rules[i];
    const RuleProfile& p = parallel.profile.rules[i];
    EXPECT_EQ(s.evals, p.evals) << "rule " << i;
    EXPECT_EQ(s.firings, p.firings) << "rule " << i;
    EXPECT_EQ(s.tuples_considered, p.tuples_considered) << "rule " << i;
    EXPECT_EQ(s.facts_derived, p.facts_derived) << "rule " << i;
    EXPECT_EQ(s.facts_inserted, p.facts_inserted) << "rule " << i;
  }
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.explain_json, parallel.explain_json);
  EXPECT_EQ(serial.why, parallel.why);
}

void ExpectEquivalent(const std::string& program,
                      const std::vector<std::vector<std::string>>& edb,
                      const std::vector<std::string>& queries) {
  SCOPED_TRACE(program);
  RunOutcome serial = RunWith(1, 0, program, edb, queries);
  RunOutcome parallel = RunWith(4, 0, program, edb, queries);
  ExpectSameOutcome(serial, parallel);
}

// --------------------------------------------------------------------
// Fixed programs: the shapes the paper exercises.

TEST(ParallelEval, TransitiveClosure) {
  std::vector<std::vector<std::string>> edb;
  for (int i = 0; i < 12; ++i) {
    edb.push_back({"edge", "n" + std::to_string(i),
                   "n" + std::to_string((i + 1) % 12)});
  }
  ExpectEquivalent(
      "path(X, Y) :- edge(X, Y)."
      "path(X, Z) :- path(X, Y), edge(Y, Z).",
      edb, {"path"});
}

TEST(ParallelEval, ManyRulesSameHeadOneStratum) {
  // Eight independent join rules with one head: the round-0 batch the
  // parallel executor fans out, including cross-rule duplicate
  // derivations the merge must dedup exactly like the serial shared
  // staging does.
  std::vector<std::vector<std::string>> edb;
  std::string program;
  for (int k = 0; k < 8; ++k) {
    std::string e = "e" + std::to_string(k);
    std::string f = "f" + std::to_string(k);
    for (int i = 0; i < 6; ++i) {
      edb.push_back({e, "a" + std::to_string(i),
                     "m" + std::to_string(i % 3)});
      edb.push_back({f, "m" + std::to_string(i % 3),
                     "b" + std::to_string(i % 4)});
    }
    program += "q(X, Y) :- " + e + "(X, Z), " + f + "(Z, Y).";
  }
  ExpectEquivalent(program, edb, {"q"});
}

TEST(ParallelEval, MutualRecursionInOneStratum) {
  std::vector<std::vector<std::string>> edb;
  for (int i = 0; i < 10; ++i) {
    edb.push_back({"e", "n" + std::to_string(i),
                   "n" + std::to_string(i + 1)});
  }
  ExpectEquivalent(
      "even(n0)."
      "odd(Y) :- even(X), e(X, Y)."
      "even(Y) :- odd(X), e(X, Y).",
      edb, {"even", "odd"});
}

TEST(ParallelEval, StratifiedNegation) {
  std::vector<std::vector<std::string>> edb;
  for (int i = 0; i < 8; ++i) {
    edb.push_back({"node", "n" + std::to_string(i)});
    if (i % 2 == 0) {
      edb.push_back({"e", "n" + std::to_string(i),
                     "n" + std::to_string(i + 1)});
    }
  }
  ExpectEquivalent(
      "reach(X) :- e(n0, X)."
      "reach(Y) :- reach(X), e(X, Y)."
      "unreached(X) :- node(X), not reach(X).",
      edb, {"reach", "unreached"});
}

TEST(ParallelEval, IdLiteralsAcrossWorkers) {
  // ID-relations are materialized by the coordinator before the round;
  // workers only read them. Identity assigner keeps choices fixed.
  std::vector<std::vector<std::string>> edb;
  for (int i = 0; i < 6; ++i) {
    edb.push_back({"emp", "p" + std::to_string(i),
                   "d" + std::to_string(i % 3)});
  }
  ExpectEquivalent(
      "rep(N, D) :- emp[2](N, D, 0)."
      "others(N) :- emp(N, D), not emp[2](N, D, 0)."
      "pair(A, B) :- rep(A, D), rep(B, D).",
      edb, {"rep", "others", "pair"});
}

TEST(ParallelEval, ArithmeticChains) {
  ExpectEquivalent(
      "count(0)."
      "count(M) :- count(N), N < 40, succ(N, M)."
      "twice(M) :- count(N), mul(N, 2, M).",
      {}, {"count", "twice"});
}

TEST(ParallelEval, NaiveModeAlsoEquivalent) {
  IdlogEngine serial;
  IdlogEngine parallel;
  for (IdlogEngine* e : {&serial, &parallel}) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(e->AddRow("edge", {"n" + std::to_string(i),
                                     "n" + std::to_string(i + 1)})
                      .ok());
    }
    e->SetSeminaive(false);
    ASSERT_TRUE(e->LoadProgramText("path(X, Y) :- edge(X, Y)."
                                   "path(X, Z) :- path(X, Y), edge(Y, Z).")
                    .ok());
  }
  parallel.SetThreads(4);
  auto rs = serial.Query("path");
  auto rp = parallel.Query("path");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(Dump(**rs, serial.symbols()), Dump(**rp, parallel.symbols()));
  ExpectSameStats(serial.stats(), parallel.stats());
}

TEST(ParallelEval, ProvenanceRecordsUnderWorkerPool) {
  // Provenance no longer forces a serial fallback: workers record into
  // private per-task stores merged in task order, so a 4-thread run
  // explains facts and matches the serial run's store exactly.
  IdlogEngine serial;
  IdlogEngine parallel;
  for (IdlogEngine* e : {&serial, &parallel}) {
    ASSERT_TRUE(e->AddRow("e", {"a", "b"}).ok());
    ASSERT_TRUE(e->AddRow("e", {"b", "c"}).ok());
    ASSERT_TRUE(e->AddRow("e", {"c", "d"}).ok());
    e->EnableProvenance(true);
    ASSERT_TRUE(e->LoadProgramText("p(X, Y) :- e(X, Y)."
                                   "p(X, Z) :- p(X, Y), e(Y, Z).")
                    .ok());
  }
  parallel.SetThreads(4);
  ASSERT_TRUE(serial.Run().ok());
  ASSERT_TRUE(parallel.Run().ok());
  EXPECT_EQ(serial.stats().provenance_nodes,
            parallel.stats().provenance_nodes);
  EXPECT_EQ(serial.stats().provenance_premises,
            parallel.stats().provenance_premises);
  EXPECT_EQ(serial.stats().provenance_bytes,
            parallel.stats().provenance_bytes);
  auto st = serial.Explain("p", testing_util::T(&serial.symbols(),
                                                {"a", "d"}));
  auto pt = parallel.Explain("p", testing_util::T(&parallel.symbols(),
                                                  {"a", "d"}));
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  EXPECT_EQ(*st, *pt);
}

TEST(ParallelEval, GovernorTripsSurfaceFromParallelRuns) {
  IdlogEngine engine;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.AddRow("e", {"n" + std::to_string(i),
                                    "n" + std::to_string(i + 1)})
                    .ok());
  }
  engine.SetThreads(4);
  EvalLimits limits;
  limits.max_tuples = 10;
  engine.SetLimits(limits);
  ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                     "p(X, Z) :- p(X, Y), e(Y, Z).")
                  .ok());
  Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
}

TEST(ParallelEval, ThreadCountChangeInvalidatesRun) {
  IdlogEngine engine;
  ASSERT_TRUE(engine.AddRow("e", {"a", "b"}).ok());
  ASSERT_TRUE(engine.LoadProgramText("p(X) :- e(X, Y).").ok());
  ASSERT_TRUE(engine.Run().ok());
  uint64_t firings = engine.stats().rule_firings;
  engine.SetThreads(4);
  ASSERT_TRUE(engine.Run().ok());  // re-evaluates under the pool
  EXPECT_EQ(engine.stats().rule_firings, firings);
}

// --------------------------------------------------------------------
// The worked examples from tests/paper_examples_test.cc, re-run under
// the equivalence harness: every program the paper suite mechanizes
// must produce identical answers, stats, profiles and trace shapes
// under --jobs 1 and --jobs 4.

struct PaperCase {
  const char* label;
  const char* program;
  std::vector<std::vector<std::string>> edb;
  std::vector<std::string> queries;
};

std::vector<PaperCase> PaperCases() {
  return {
      {"AllDepts", "all_depts(D) :- emp[2](N, D, 0).",
       {{"emp", "ann", "sales"}, {"emp", "bob", "sales"},
        {"emp", "cal", "dev"}},
       {"all_depts"}},
      {"Example2SexGuess",
       "sex_guess(X, male) :- person(X)."
       "sex_guess(X, female) :- person(X)."
       "man(X) :- sex_guess[1](X, male, 1)."
       "woman(X) :- sex_guess[1](X, female, 1).",
       {{"person", "a"}, {"person", "b"}},
       {"man", "woman"}},
      {"Example5SelectTwo",
       "select_two(Name) :- emp[2](Name, Dept, N), N < 2.",
       {{"emp", "a1", "d1"}, {"emp", "a2", "d1"}, {"emp", "a3", "d1"},
        {"emp", "b1", "d2"}, {"emp", "b2", "d2"}},
       {"select_two"}},
      {"Example7Rewritten",
       "q1 :- x(c)."
       "q2 :- x(a)."
       "x(Y) :- p[](Y, 0)."
       "p(b) :- y(X)."
       "p(c) :- y(X).",
       {{"y", "w"}},
       {"q1", "q2"}},
      {"ArbitraryCafe",
       "at_corner(C) :- cafe(C, st_germain), corner(C)."
       "pick(C) :- at_corner[](C, 0).",
       {{"cafe", "les_deux_magots", "st_germain"},
        {"cafe", "flore", "st_germain"},
        {"cafe", "cluny", "st_michel"},
        {"corner", "les_deux_magots"}, {"corner", "flore"}},
       {"pick"}},
      {"Section4IntroRewrite",
       "p(X) :- q(X, Z), z[1](Z, Y, 0), y[](W, 0).",
       {{"q", "x1", "z1"}, {"q", "x2", "z2"},
        {"z", "z1", "y1"}, {"z", "z1", "y2"}, {"z", "z2", "y1"},
        {"y", "w1"}, {"y", "w2"}},
       {"p"}},
  };
}

class ParallelPaperExamples
    : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelPaperExamples, SerialAndParallelAgree) {
  PaperCase c = PaperCases()[GetParam()];
  SCOPED_TRACE(c.label);
  ExpectEquivalent(c.program, c.edb, c.queries);
}

INSTANTIATE_TEST_SUITE_P(Examples, ParallelPaperExamples,
                         ::testing::Range<size_t>(0, PaperCases().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return PaperCases()[info.index].label;
                         });

// --------------------------------------------------------------------
// Randomized corpus (testing_util::CorpusGenerator): layered stratified
// programs with recursion, negation and ID-literals.

class ParallelCorpus : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCorpus, SerialAndParallelAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  testing_util::CorpusGenerator gen(seed);
  std::string text = gen.Generate();
  ExpectEquivalent(text, testing_util::CorpusEdb(seed), gen.queries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCorpus, ::testing::Range(0, 40));

// --------------------------------------------------------------------
// Delta-partition sweep: `--partitions K` is, like `--jobs`, a purely
// physical knob. Every (jobs, partitions) combination must reproduce
// the jobs=1/partitions=1 run byte for byte — answers, logical stats,
// profiles, trace shape, EXPLAIN ANALYZE JSON and WHY proofs. Explicit
// K is honored even in a serial run, so the sweep crosses partitioned
// execution with and without a worker pool.

constexpr int kSweepPartitions[] = {1, 2, 3, 8};
constexpr int kSweepJobs[] = {1, 4};

void ExpectSweepMatchesBaseline(
    const std::string& program,
    const std::vector<std::vector<std::string>>& edb,
    const std::vector<std::string>& queries) {
  RunOutcome baseline = RunWith(1, 1, program, edb, queries);
  for (int jobs : kSweepJobs) {
    for (int parts : kSweepPartitions) {
      if (jobs == 1 && parts == 1) continue;
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " partitions=" + std::to_string(parts));
      RunOutcome run = RunWith(jobs, parts, program, edb, queries);
      ExpectSameOutcome(baseline, run);
    }
  }
}

// The E7 bench shape: a single recursive transitive-closure rule with
// the recursive subgoal outermost, where delta partitioning is the only
// parallelism available. Branchy edges so partitions are non-trivial.
TEST(PartitionSweep, SingleRecursiveRuleTransitiveClosure) {
  std::vector<std::vector<std::string>> edb;
  for (int i = 0; i < 14; ++i) {
    edb.push_back({"edge", "n" + std::to_string(i),
                   "n" + std::to_string((i + 1) % 14)});
    if (i % 3 == 0) {
      edb.push_back({"edge", "n" + std::to_string(i),
                     "n" + std::to_string((i + 5) % 14)});
    }
  }
  ExpectSweepMatchesBaseline(
      "path(X, Y) :- edge(X, Y)."
      "path(X, Z) :- path(X, Y), edge(Y, Z).",
      edb, {"path"});
}

class PartitionSweepCorpus : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweepCorpus, AllFanoutsAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  testing_util::CorpusGenerator gen(seed);
  std::string text = gen.Generate();
  SCOPED_TRACE(text);
  ExpectSweepMatchesBaseline(text, testing_util::CorpusEdb(seed),
                             gen.queries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweepCorpus,
                         ::testing::Range(0, 40));

// A governor trip mid-way through a partitioned fixpoint is part of the
// determinism contract too: derived-tuple charges happen at Commit in
// task order, a coordinator-side sequence identical for every jobs and
// partition setting, so the trip fires at the same logical point and
// the partial stats match the serial trip exactly.
TEST(PartitionSweep, GovernorTripMidPartitionedRun) {
  auto run_tripped = [](int jobs, int parts, Status* st,
                        EvalStats* stats) {
    IdlogEngine engine;
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine.AddRow("e", {"n" + std::to_string(i),
                                      "n" + std::to_string(i + 1)})
                      .ok());
    }
    engine.SetThreads(jobs);
    engine.SetDeltaPartitions(parts);
    EvalLimits limits;
    limits.max_tuples = 25;  // trips inside a later, partitioned round
    engine.SetLimits(limits);
    ASSERT_TRUE(engine.LoadProgramText("p(X, Y) :- e(X, Y)."
                                       "p(X, Z) :- p(X, Y), e(Y, Z).")
                    .ok());
    *st = engine.Run();
    *stats = engine.stats();
  };
  Status serial_st;
  EvalStats serial_stats;
  run_tripped(1, 1, &serial_st, &serial_stats);
  EXPECT_EQ(serial_st.code(), StatusCode::kResourceExhausted)
      << serial_st.ToString();
  for (int jobs : kSweepJobs) {
    for (int parts : kSweepPartitions) {
      if (jobs == 1 && parts == 1) continue;
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " partitions=" + std::to_string(parts));
      Status st;
      EvalStats stats;
      run_tripped(jobs, parts, &st, &stats);
      EXPECT_EQ(st.ToString(), serial_st.ToString());
      ExpectSameStats(serial_stats, stats);
    }
  }
}

// --------------------------------------------------------------------
// Round-task error hardening, driven by the fault-injection harness.

void SetUpParallelChainEngine(IdlogEngine* engine) {
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine
                    ->AddRow("edge", {"n" + std::to_string(i),
                                      "n" + std::to_string(i + 1)})
                    .ok());
  }
  ASSERT_TRUE(engine
                  ->LoadProgramText("tc(X, Y) :- edge(X, Y).\n"
                                    "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
                                    "also(X, Y) :- tc(X, Y).\n")
                  .ok());
  engine->SetThreads(4);
}

// A RoundTask whose evaluation fails cancels the round and surfaces
// exactly one Status — the injected one — through Run().
TEST(RoundTaskHardening, FailingTaskSurfacesOneStatus) {
  Failpoints::Instance().Reset();
  ASSERT_TRUE(Failpoints::Instance().ArmFromSpec("exec.round.task:1").ok());
  IdlogEngine engine;
  SetUpParallelChainEngine(&engine);
  Status st = engine.Run();
  Failpoints::Instance().Reset();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exec.round.task"), std::string::npos)
      << st.ToString();
  // The engine recovers: the next run (no failpoints) is clean and
  // matches a serial evaluation.
  engine.InvalidateRun();
  ASSERT_TRUE(engine.Run().ok());
  IdlogEngine serial;
  SetUpParallelChainEngine(&serial);
  serial.SetThreads(1);
  auto par = engine.Query("tc");
  auto ser = serial.Query("tc");
  ASSERT_TRUE(par.ok() && ser.ok());
  EXPECT_EQ(Dump(**par, engine.symbols()), Dump(**ser, serial.symbols()));
}

// The same via an exception: the :throw action makes the failpoint
// throw from inside the worker; the task wrapper converts it into a
// Status and no exception reaches the pool (run under TSan in CI).
TEST(RoundTaskHardening, ThrowingTaskBecomesStatus) {
  Failpoints::Instance().Reset();
  ASSERT_TRUE(
      Failpoints::Instance().ArmFromSpec("exec.round.task:1:throw").ok());
  IdlogEngine engine;
  SetUpParallelChainEngine(&engine);
  Status st = engine.Run();
  Failpoints::Instance().Reset();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("round task threw"), std::string::npos)
      << st.ToString();
  engine.InvalidateRun();
  EXPECT_TRUE(engine.Run().ok());
}

}  // namespace
}  // namespace idlog
